(* Table 4: where the refinement loop placed the fine-tuned handler's
   bucket after iterations 1 and 2 — the search-accuracy instrumentation
   of §6.2. A rank within the kept set means the "right" bucket survived;
   beyond it, the bucket was (possibly correctly, per §6.2's discussion of
   BBR and Vegas) discarded. Reuses the Table 2 synthesis runs. *)

let paper_positions =
  [ ("bbr", "4/127", "3/5"); ("cubic", "7/27", "-"); ("htcp", "2/31", "4/5");
    ("hybla", "4/7", "1/5"); ("illinois", "3/63", "3/5"); ("lp", "1/63", "1/6");
    ("nv", "5/15", "2/5"); ("reno", "3/218", "1/5");
    ("scalable", "1/218", "1/5"); ("vegas", "5/15", "4/5");
    ("veno", "1/7", "1/5"); ("westwood", "1/218", "1/5");
    ("yeah", "1/31", "1/5") ]

let rank_string outcome ~target ~iteration =
  match
    Abg_core.Refinement.bucket_rank_of
      outcome.Abg_core.Synthesis.refinement ~target ~iteration
  with
  | Some (rank, total) -> Printf.sprintf "%d/%d" rank total
  | None -> "-"

let run () =
  Runs.heading "Table 4: fine-tuned handler's bucket rank per iteration";
  Printf.printf "%-10s | %-10s | %-10s | paper iter1, iter2\n" "CCA"
    "after it.1" "after it.2";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, p1, p2) ->
      match (Runs.synthesis name, Abg_core.Fine_tuned.find_fine_tuned name) with
      | Some outcome, Some target ->
          Printf.printf "%-10s | %-10s | %-10s | %s, %s\n%!" name
            (rank_string outcome ~target ~iteration:1)
            (rank_string outcome ~target ~iteration:2)
            p1 p2
      | _ -> Printf.printf "%-10s | (no synthesis run)\n%!" name)
    paper_positions;
  print_newline ()
