bench/table3.ml: Abg_classifier List Option Printf Runs String
