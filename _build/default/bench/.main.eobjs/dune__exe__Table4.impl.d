bench/table4.ml: Abg_core List Printf Runs String
