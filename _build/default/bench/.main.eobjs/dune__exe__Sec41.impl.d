bench/sec41.ml: Abg_dsl Abg_enum List Printf Runs
