bench/runs.ml: Abg_cca Abg_classifier Abg_core Abg_dsl Abg_trace Abg_util Hashtbl List Printf String Unix
