bench/main.mli:
