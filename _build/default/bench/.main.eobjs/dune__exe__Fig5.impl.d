bench/fig5.ml: Abg_core Abg_dsl List Option Printf Runs String
