bench/table2.ml: Abg_core List Printf Runs String
