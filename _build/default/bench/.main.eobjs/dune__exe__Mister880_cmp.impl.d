bench/mister880_cmp.ml: Abg_cca Abg_core Abg_distance Abg_dsl Abg_netsim Abg_trace Abg_util List Option Printf Runs
