bench/ablation.ml: Abg_cca Abg_core Abg_distance Abg_dsl Abg_enum Abg_netsim Abg_trace Abg_util List Option Printf Runs
