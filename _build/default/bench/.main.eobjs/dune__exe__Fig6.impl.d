bench/fig6.ml: Abg_core Abg_dsl List Printf Runs String
