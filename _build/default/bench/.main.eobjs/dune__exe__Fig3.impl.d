bench/fig3.ml: Abg_core Abg_distance Abg_util Array Float Hashtbl List Option Printf Runs String
