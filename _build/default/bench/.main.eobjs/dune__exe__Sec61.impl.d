bench/sec61.ml: Abg_core Abg_dsl Abg_enum Float List Printf Runs
