bench/main.ml: Ablation Array Fig3 Fig4 Fig5 Fig6 List Micro Mister880_cmp Printf Sec41 Sec61 String Sys Table2 Table3 Table4 Unix
