bench/fig4.ml: Abg_core Abg_dsl Abg_trace List Option Printf Runs String
