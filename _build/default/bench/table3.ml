(* Table 3: classifier verdicts. Gordon for the kernel CCAs (its known
   set); CCAnalyzer for the student dataset (always "Unknown" plus the two
   closest known CCAs, since these are novel algorithms). The "paper"
   column shows what the original classifiers reported. *)

let paper_verdicts =
  [ ("bbr", "BBR"); ("reno", "Reno"); ("westwood", "Vegas");
    ("scalable", "Scalable"); ("lp", "Unknown (Vegas)"); ("hybla", "BBR");
    ("htcp", "HTCP"); ("illinois", "Illinois"); ("vegas", "Vegas");
    ("veno", "YeAH"); ("nv", "Unknown"); ("yeah", "YeAH");
    ("cubic", "Cubic"); ("bic", "-");
    ("student1", "Unknown (CDG, Vegas)"); ("student2", "Unknown (CDG, Vegas)");
    ("student3", "Unknown (Scalable, Vegas)"); ("student4", "Unknown (CDG, NV)");
    ("student5", "Unknown (CDG, Vegas)"); ("student6", "Unknown (CDG, Vegas)");
    ("student7", "Unknown (CDG, Vegas)") ]

let correctness name verdict =
  match verdict with
  | Abg_classifier.Gordon.Known k ->
      if String.equal k name then "correct" else "INCORRECT"
  | Abg_classifier.Gordon.Unknown _ ->
      if List.mem name Abg_classifier.Gordon.known_set then "unknown(miss)"
      else "unknown(ok)"

let run () =
  Runs.heading "Table 3: classifier output per CCA";
  Printf.printf "%-10s | %-28s | %-13s | paper\n" "CCA" "classifier verdict" "";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun name ->
      let traces = Runs.traces name in
      let verdict = Abg_classifier.Gordon.classify traces in
      Printf.printf "%-10s | %-28s | %-13s | %s\n%!" name
        (Abg_classifier.Gordon.verdict_to_string verdict)
        (correctness name verdict)
        (Option.value ~default:"-" (List.assoc_opt name paper_verdicts)))
    Runs.kernel_rows;
  List.iter
    (fun name ->
      let traces = Runs.traces name in
      let result = Abg_classifier.Ccanalyzer.classify traces in
      let closest =
        match Abg_classifier.Ccanalyzer.closest_two result with
        | Some (a, b) -> Printf.sprintf "Unknown (%s, %s)" a b
        | None -> "Unknown"
      in
      Printf.printf "%-10s | %-28s | %-13s | %s\n%!" name closest "unknown(ok)"
        (Option.value ~default:"-" (List.assoc_opt name paper_verdicts)))
    Runs.student_rows;
  print_newline ()
