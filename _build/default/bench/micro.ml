(* Bechamel micro-benchmarks: one per table/figure, measuring the kernel
   operation that dominates that experiment's runtime, so regressions in
   the hot paths are visible without re-running whole syntheses. *)

open Bechamel
open Toolkit

let series n = Array.init n (fun i -> float_of_int (i mod 37) +. (0.3 *. float_of_int i))

let dtw_test =
  let a = series 128 and b = series 128 in
  Test.make ~name:"table2/fig4: dtw-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Dtw.distance ~band:12 a b)))

let euclidean_test =
  let a = series 128 and b = series 128 in
  Test.make ~name:"fig3: euclidean-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Pointwise.euclidean a b)))

let frechet_test =
  let a = series 128 and b = series 128 in
  Test.make ~name:"fig3: frechet-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Frechet.distance a b)))

let replay_test =
  lazy
    (let segments = Runs.segments_for "reno" in
     let seg = List.hd segments in
     let handler = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
     Test.make ~name:"table2: replay-segment"
       (Staged.stage (fun () -> ignore (Abg_core.Replay.synthesize handler seg))))

let enumerate_test =
  lazy
    (let enc = Abg_enum.Encode.create Abg_dsl.Catalog.reno in
     Test.make ~name:"sec61: sat-enumerate-sketch"
       (Staged.stage (fun () -> ignore (Abg_enum.Encode.next enc))))

let simulate_test =
  Test.make ~name:"table3: simulate-1s-reno"
    (Staged.stage (fun () ->
         let cfg =
           Abg_netsim.Config.make ~duration:1.0 ~bandwidth_mbps:10.0
             ~rtt_ms:50.0 ()
         in
         let cca = Abg_cca.Reno.create ~mss:1448.0 () in
         ignore (Abg_netsim.Sim.run cfg cca)))

let classify_features_test =
  lazy
    (let traces = Runs.traces "reno" in
     Test.make ~name:"table3: extract-features"
       (Staged.stage (fun () ->
            ignore (Abg_classifier.Features.extract traces))))

let benchmark test =
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) i raw)
      instances
  in
  results

let print_result test =
  let results = benchmark test in
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
        result)
    results

let run () =
  Runs.heading "Micro-benchmarks (Bechamel, monotonic clock)";
  List.iter print_result
    [ dtw_test; euclidean_test; frechet_test; Lazy.force replay_test;
      Lazy.force enumerate_test; simulate_test;
      Lazy.force classify_features_test ];
  print_newline ()
