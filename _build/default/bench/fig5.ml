(* Figure 5: the HTCP trap (§5.3). HTCP's window growth has an inflection
   point (the alpha(t) schedule kicks in one second after a loss), yet a
   plain Reno-variant handler already achieves a low enough distance that
   Abagnale does not explore more complex structure. We print the
   distances of the Reno-variant handler, the HTCP fine-tuned handler and
   the identity over HTCP's segments: the point reproduces when the
   Reno-variant is within a small factor of the fine-tuned handler and far
   below the identity. *)

let run () =
  Runs.heading "Figure 5: a Reno-variant handler on HTCP traces";
  let open Abg_dsl.Expr in
  let reno_variant = Add (Cwnd, Macro Abg_dsl.Macro.Reno_inc) in
  let fine_tuned = Option.get (Abg_core.Fine_tuned.find_fine_tuned "htcp") in
  let segments = Runs.segments_for "htcp" in
  Printf.printf "%-40s | %10s\n" "handler" "sum DTW";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun (label, h) ->
      Printf.printf "%-40s | %10.2f\n%!" label
        (Abg_core.Replay.total_distance h segments))
    [ ("CWND + reno-inc (Reno variant)", reno_variant);
      ("fine-tuned HTCP (htcp-diff conditional)", fine_tuned);
      ("CWND (identity, for scale)", Cwnd) ];
  (match Runs.synthesis "htcp" with
  | Some o ->
      Printf.printf "%-40s | %10.2f   <- what Abagnale returned\n"
        ("synthesized: " ^ o.Abg_core.Synthesis.pretty)
        o.Abg_core.Synthesis.distance
  | None -> ());
  print_newline ()
