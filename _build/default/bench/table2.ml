(* Table 2: synthesized vs fine-tuned cwnd-ack handlers with summed DTW
   distances, for the kernel CCAs and the student dataset.

   Per the paper: distances are sums over the trace segments used for
   synthesis and are NOT comparable across rows; within a row, synthesized
   vs fine-tuned distances show how close the two handlers' behaviors are.
   The "fine-tuned" column replays the paper's Table 2 column-3
   expressions on OUR traces, so its constants (tuned to the authors'
   testbed) may legitimately score worse here. *)

let paper_distances =
  (* cca -> (synthesized DTW, fine-tuned DTW) as printed in Table 2, for
     the side-by-side shape comparison. *)
  [ ("bbr", (195.21, Some 143.08)); ("reno", (18.84, Some 18.84));
    ("westwood", (86.99, Some 12.72)); ("scalable", (26.25, Some 26.25));
    ("lp", (18.2, Some 18.2)); ("hybla", (35.77, Some 35.77));
    ("htcp", (56.24, Some 54.53)); ("illinois", (397.99, Some 467.81));
    ("vegas", (24.36, Some 20.21)); ("veno", (9.26, Some 9.26));
    ("nv", (58.1, Some 479.39)); ("yeah", (33.41, Some 33.41));
    ("cubic", (3580.67, Some 41.74));
    ("student1", (196.06, None)); ("student2", (12203.07, None));
    ("student3", (7698.63, None)); ("student4", (217.56, None));
    ("student5", (32.69, None)); ("student6", (24406.14, None));
    ("student7", (17541.93, None)) ]

let row name =
  let segments = Runs.segments_for name in
  (match Runs.synthesis name with
  | None -> Printf.printf "%-10s | (no candidate found)\n%!" name
  | Some o ->
      Printf.printf "%-10s | %-68s | %8.2f" name o.Abg_core.Synthesis.pretty
        o.Abg_core.Synthesis.distance;
      (match Abg_core.Fine_tuned.find_fine_tuned name with
      | None -> Printf.printf " | %-12s" "-"
      | Some ft ->
          let d = Abg_core.Replay.total_distance ft segments in
          Printf.printf " | %12.2f" d);
      (match List.assoc_opt name paper_distances with
      | Some (ps, pf) ->
          let pf_str =
            match pf with Some v -> Printf.sprintf "%.2f" v | None -> "-"
          in
          Printf.printf " | paper: %.2f / %s" ps pf_str
      | None -> ());
      print_newline ())

let run () =
  Runs.heading "Table 2: synthesized vs fine-tuned cwnd-ack handlers";
  Printf.printf "%-10s | %-68s | %8s | %12s | %s\n" "CCA"
    "synthesized handler (this reproduction)" "DTW" "fine-tuned" "paper syn/ft";
  Printf.printf "%s\n" (String.make 140 '-');
  List.iter
    (fun name -> Runs.timed name (fun () -> row name))
    (Runs.kernel_rows @ Runs.student_rows);
  List.iter
    (fun (name, reason) -> Printf.printf "%-10s | skipped: %s\n" name reason)
    Runs.skipped_rows;
  print_newline ()
