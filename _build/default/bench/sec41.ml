(* §4.1 search-space sizes: the raw sketch-universe counts motivating the
   whole search machinery, computed in closed form. The paper's headline:
   ~10^150 possible depth-7 sketches over a 25-component DSL (more than
   atoms in the universe, ~10^79). *)

let run () =
  Runs.heading "Sec 4.1: raw sketch-universe sizes (before pruning)";
  List.iter
    (fun (dsl : Abg_dsl.Catalog.t) ->
      Printf.printf "%-10s | %2d components | depth %d | %s sketches\n"
        dsl.Abg_dsl.Catalog.name
        (List.length dsl.Abg_dsl.Catalog.components)
        dsl.Abg_dsl.Catalog.max_depth
        (Abg_enum.Count.to_string (Abg_enum.Count.universe dsl)))
    [ Abg_dsl.Catalog.reno; Abg_dsl.Catalog.cubic; Abg_dsl.Catalog.delay;
      Abg_dsl.Catalog.vegas ];
  List.iter
    (fun depth ->
      Printf.printf "%-10s | %2d components | depth %d | %s sketches%s\n"
        "full DSL"
        (List.length Abg_dsl.Catalog.vegas.Abg_dsl.Catalog.components)
        depth
        (Abg_enum.Count.to_string
           (Abg_enum.Count.universe_at
              ~components:Abg_dsl.Catalog.vegas.Abg_dsl.Catalog.components
              ~depth))
        (if depth = 7 then "   <- the paper's 1e150-scale headline" else ""))
    [ 5; 6; 7 ];
  print_newline ()
