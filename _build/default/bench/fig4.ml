(* Figure 4: the BBR case study (§5.2). The paper shows two traces — one
   where the fine-tuned handler (RTT-clocked pulses) beats the synthesized
   one (window-parity pulses) on DTW distance, and one where the opposite
   holds, illustrating DTW's indifference to temporal shifts. We replay
   both Table 2 BBR expressions over every selected BBR segment and print
   the per-segment distances plus which handler wins. *)

let run () =
  Runs.heading "Figure 4: BBR synthesized vs fine-tuned, per trace segment";
  let synthesized =
    Option.get (Abg_core.Fine_tuned.find_synthesized "bbr")
  in
  let fine_tuned = Option.get (Abg_core.Fine_tuned.find_fine_tuned "bbr") in
  Printf.printf "synthesized: %s\n" (Abg_dsl.Pretty.num synthesized);
  Printf.printf "fine-tuned : %s\n\n" (Abg_dsl.Pretty.num fine_tuned);
  Printf.printf "%-22s | %10s | %10s | winner\n" "segment" "d(synth)"
    "d(fine-tuned)";
  Printf.printf "%s\n" (String.make 66 '-');
  let synth_wins = ref 0 and ft_wins = ref 0 in
  List.iteri
    (fun i seg ->
      let d_synth = Abg_core.Replay.distance synthesized seg in
      let d_ft = Abg_core.Replay.distance fine_tuned seg in
      let winner = if d_synth < d_ft then "synthesized" else "fine-tuned" in
      if d_synth < d_ft then incr synth_wins else incr ft_wins;
      Printf.printf "%-22s | %10.2f | %10.2f | %s\n%!"
        (Printf.sprintf "%d: %s" i seg.Abg_trace.Segmentation.scenario)
        d_synth d_ft winner)
    (Runs.segments_for "bbr");
  Printf.printf
    "\nsynthesized wins on %d segment(s), fine-tuned on %d — the paper's \
     Figure 4 point\nis that *both* cases occur (4a fine-tuned wins, 4b \
     synthesized wins).\n\n"
    !synth_wins !ft_wins
