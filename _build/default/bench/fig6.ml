(* Figure 6: impact of the input DSL (§6.3). Student CCAs 1 and 3 are
   synthesized under three DSLs — Delay-7 (depth 4, 7 nodes), Delay-11
   (depth 4, 11 nodes) and Vegas-11 (depth 5, 11 nodes, vegas-diff macro).
   The paper's finding: for student 1 the Vegas-11 macro frees nodes and
   fits best; for student 3 (whose behavior does not involve vegas-diff)
   the larger Vegas-11 space only slows the search and Delay-11 wins. *)

let dsls =
  [ Abg_dsl.Catalog.delay_7; Abg_dsl.Catalog.delay_11;
    Abg_dsl.Catalog.vegas_11 ]

let run_one name =
  Printf.printf "\n-- %s --\n" name;
  Printf.printf "%-10s | %-58s | %10s\n" "DSL" "best handler" "sum DTW";
  Printf.printf "%s\n" (String.make 86 '-');
  let results =
    List.map
      (fun dsl ->
        let outcome =
          Runs.timed
            (name ^ "/" ^ dsl.Abg_dsl.Catalog.name)
            (fun () ->
              Abg_core.Synthesis.run ~config:Runs.config ~dsl ~name
                (Runs.traces name))
        in
        (match outcome with
        | Some o ->
            Printf.printf "%-10s | %-58s | %10.2f\n%!"
              dsl.Abg_dsl.Catalog.name o.Abg_core.Synthesis.pretty
              o.Abg_core.Synthesis.distance
        | None ->
            Printf.printf "%-10s | (no candidate)\n%!" dsl.Abg_dsl.Catalog.name);
        (dsl.Abg_dsl.Catalog.name, outcome))
      dsls
  in
  let best =
    List.fold_left
      (fun acc (dsl_name, o) ->
        match (acc, o) with
        | None, Some o -> Some (dsl_name, o.Abg_core.Synthesis.distance)
        | Some (_, d), Some o when o.Abg_core.Synthesis.distance < d ->
            Some (dsl_name, o.Abg_core.Synthesis.distance)
        | acc, _ -> acc)
      None results
  in
  match best with
  | Some (dsl_name, _) -> Printf.printf "winner: %s\n" dsl_name
  | None -> ()

let run () =
  Runs.heading "Figure 6: DSL choice for student CCAs 1 and 3";
  run_one "student1";
  run_one "student3";
  print_newline ()
