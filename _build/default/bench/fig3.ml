(* Figure 3: distance metrics' tolerance to error in handler constants.

   BBR traces; expert handlers for BBR, Cubic, Reno, Vegas. Every constant
   of every handler is multiplied by an error factor swept over
   [0.1, 10] (log scale); for each metric we check whether the *correct*
   CCA's handler still has the smallest distance to the BBR traces. The
   paper's result: DTW stays correct over the widest factor range. The
   series below prints, per metric, the correctness band (the paper's
   red/white background). *)

let subjects = [ "bbr"; "cubic"; "reno"; "vegas" ]

let handlers =
  List.map
    (fun name ->
      match Abg_core.Fine_tuned.find_fine_tuned name with
      | Some h -> (name, h)
      | None -> invalid_arg name)
    subjects

let run () =
  Runs.heading "Figure 3: metric tolerance to constant error (BBR traces)";
  let segments = Runs.segments_for "bbr" in
  let errors = Abg_util.Floatx.log_grid ~lo:0.1 ~hi:10.0 ~n:21 in
  let metrics = Abg_distance.Metric.all in
  let correct_band = Hashtbl.create 7 in
  List.iter
    (fun metric ->
      Printf.printf "\n-- metric: %s --\n" (Abg_distance.Metric.name metric);
      Printf.printf "%8s | %10s | %10s | %s\n" "error" "d(bbr)" "best other"
        "verdict";
      Array.iter
        (fun err ->
          let distances =
            List.map
              (fun (name, h) ->
                let h' = Abg_core.Fine_tuned.scale_constants err h in
                (name, Abg_core.Replay.total_distance ~metric h' segments))
              handlers
          in
          let d_bbr = List.assoc "bbr" distances in
          let best_other =
            List.filter (fun (n, _) -> not (String.equal n "bbr")) distances
            |> List.fold_left (fun acc (_, d) -> Float.min acc d) infinity
          in
          let ok = d_bbr <= best_other in
          if ok then begin
            let lo, hi =
              Option.value ~default:(infinity, neg_infinity)
                (Hashtbl.find_opt correct_band metric)
            in
            Hashtbl.replace correct_band metric
              (Float.min lo err, Float.max hi err)
          end;
          Printf.printf "%8.3f | %10.2f | %10.2f | %s\n%!" err d_bbr best_other
            (if ok then "correct" else "WRONG (red region)"))
        errors)
    metrics;
  Printf.printf "\nCorrect-identification band per metric (wider is better):\n";
  List.iter
    (fun metric ->
      match Hashtbl.find_opt correct_band metric with
      | Some (lo, hi) when lo <= hi ->
          Printf.printf "  %-10s [%.3f .. %.3f] (x%.1f span)\n"
            (Abg_distance.Metric.name metric) lo hi (hi /. lo)
      | _ ->
          Printf.printf "  %-10s never correct\n"
            (Abg_distance.Metric.name metric))
    metrics;
  print_newline ()
