(* The student-CCA dataset (§5.6): novel algorithms written for a
   networking class, which no classifier can identify. Abagnale instead
   produces an expression for each. This example runs the pipeline on
   three of them and compares against the structures the paper reports in
   Table 2.

   Run with: dune exec examples/student_ccas.exe *)

let paper_says =
  [ ("student2", "{vegas-diff / minRTT < 5} ? CWND + MSS : MSS");
    ("student4", "MSS");
    ("student7", "CWND + 2 * ACKed / RTT") ]

let () =
  List.iter
    (fun (name, paper) ->
      Printf.printf "== %s ==\n%!" name;
      let constructor = Option.get (Abg_cca.Registry.find name) in
      let traces =
        Abg_trace.Trace.collect_suite ~duration:20.0 ~n:4 ~name constructor
      in
      (* Student CCAs are Vegas-adjacent per CCAnalyzer (Table 3), so the
         paper searches them with the Vegas DSL. *)
      (match
         Abg_core.Abagnale.synthesize ~dsl:Abg_dsl.Catalog.vegas ~name traces
       with
      | None -> print_endline "no candidate found"
      | Some o ->
          Printf.printf "synthesized: %s   (DTW %.2f)\n"
            o.Abg_core.Synthesis.pretty o.Abg_core.Synthesis.distance;
          Printf.printf "paper's answer: %s\n" paper);
      print_newline ())
    paper_says
