(* Noise robustness: why Abagnale is an optimizer, not a decider (§2.2).

   Mister880 framed synthesis as a decision problem — a candidate either
   reproduces the trace exactly or is discarded — so any measurement noise
   rejects even the correct algorithm. Abagnale's distance formulation
   degrades gracefully instead. This example corrupts Reno traces with
   increasing observation noise and shows that the correct handler keeps
   the lowest distance long after exact matching (distance ~ 0) has become
   impossible.

   Run with: dune exec examples/noise_robustness.exe *)

let () =
  let constructor = Option.get (Abg_cca.Registry.find "reno") in
  let traces =
    Abg_trace.Trace.collect_suite ~duration:15.0 ~n:3 ~name:"reno" constructor
  in
  let reno = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  let scalable = Option.get (Abg_core.Fine_tuned.find_fine_tuned "scalable") in
  let vegas = Option.get (Abg_core.Fine_tuned.find_fine_tuned "vegas") in
  Printf.printf "%-12s | %10s | %10s | %10s | correct CCA still closest?\n"
    "noise stddev" "d(reno)" "d(scalable)" "d(vegas)";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun stddev ->
      let rng = Abg_util.Rng.create 99 in
      let noisy =
        List.map (Abg_trace.Noise.observation_noise rng ~stddev) traces
      in
      let score h = Abg_core.Abagnale.handler_distance ~handler:h noisy in
      let d_reno = score reno and d_scal = score scalable and d_veg = score vegas in
      Printf.printf "%12.2f | %10.2f | %10.2f | %10.2f | %s\n%!" stddev d_reno
        d_scal d_veg
        (if d_reno <= d_scal && d_reno <= d_veg then "yes" else "NO")
    )
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  print_endline
    "\nan exact-match (decision) formulation would reject every handler at\n\
     any nonzero noise level: no synthesized trace reproduces a corrupted\n\
     measurement bit-for-bit."
