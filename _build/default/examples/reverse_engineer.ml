(* Reverse-engineering a CCA you wrote yourself.

   This is the paper's core use case: someone deploys a proprietary CCA;
   you can only observe its packet traces; Abagnale tells you the
   algorithm's structure. Here the "proprietary" CCA is defined inline —
   an AIAD variant that grows by half an MSS per RTT while measured
   queueing delay is low and backs off multiplicatively when it grows —
   and the pipeline has no access to this code, only to its traces.

   Run with: dune exec examples/reverse_engineer.exe *)

let mystery_cca ~mss () : Abg_cca.Cca_sig.t =
  let cwnd = ref (Abg_cca.Cca_sig.initial_window ~mss) in
  let base_rtt = ref infinity in
  let on_ack ~now:_ ~acked ~rtt =
    if rtt > 0.0 then base_rtt := Float.min !base_rtt rtt;
    let queue_delay = rtt -. !base_rtt in
    if queue_delay < 0.3 *. !base_rtt then
      (* Gentle additive increase: half Reno's rate. *)
      cwnd := !cwnd +. (0.5 *. mss *. acked /. !cwnd)
    else
      (* Precautionary multiplicative shedding. *)
      cwnd := Abg_cca.Cca_sig.clamp_cwnd ~mss (!cwnd *. 0.999)
  in
  let on_loss ~now:_ = cwnd := Abg_cca.Cca_sig.clamp_cwnd ~mss (0.6 *. !cwnd) in
  { Abg_cca.Cca_sig.name = "mystery"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

let () =
  print_endline "collecting traces of the mystery CCA...";
  let traces =
    Abg_trace.Trace.collect_suite ~duration:20.0 ~n:4 ~name:"mystery"
      mystery_cca
  in

  print_endline "what does a classifier say?";
  let verdict = Abg_classifier.Gordon.classify traces in
  Printf.printf "  gordon: %s\n"
    (Abg_classifier.Gordon.verdict_to_string verdict);
  Printf.printf
    "  (a classifier can only map to known CCAs — it cannot explain an\n\
    \   unknown one; that is exactly the gap Abagnale fills)\n";

  print_endline "synthesizing...";
  match Abg_core.Abagnale.synthesize ~name:"mystery" traces with
  | None -> print_endline "no candidate found"
  | Some outcome ->
      Printf.printf "synthesized handler: %s\n" outcome.Abg_core.Synthesis.pretty;
      Printf.printf "distance: %.2f (dsl: %s)\n" outcome.Abg_core.Synthesis.distance
        outcome.Abg_core.Synthesis.dsl_name;
      Printf.printf
        "ground truth (hidden from the pipeline): additive increase of\n\
         .5 * reno-inc gated on queueing delay < 0.3 * baseRTT\n"
