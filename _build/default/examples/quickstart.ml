(* Quickstart: reverse-engineer TCP Reno in three steps.

   1. Collect traces of the target CCA on the simulated testbed grid.
   2. Run the synthesis pipeline (classifier hint picks the sub-DSL).
   3. Read off the handler expression and its distance to the traces.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "1. collecting Reno traces on the testbed grid...";
  let constructor = Option.get (Abg_cca.Registry.find "reno") in
  let traces =
    Abg_trace.Trace.collect_suite ~duration:20.0 ~n:4 ~name:"reno" constructor
  in
  List.iter
    (fun t ->
      Printf.printf "   %s: %d ACK records, %d loss events\n"
        t.Abg_trace.Trace.scenario (Abg_trace.Trace.length t)
        (Array.length t.Abg_trace.Trace.loss_times))
    traces;

  print_endline "2. synthesizing a cwnd-ack handler (this takes a few seconds)...";
  match Abg_core.Abagnale.synthesize ~name:"reno" traces with
  | None -> print_endline "   no candidate found"
  | Some outcome ->
      Printf.printf "3. result:\n";
      Printf.printf "   handler  = %s\n" outcome.Abg_core.Synthesis.pretty;
      Printf.printf "   distance = %.2f (sum of DTW over %d trace segments)\n"
        outcome.Abg_core.Synthesis.distance
        outcome.Abg_core.Synthesis.segments_used;
      Printf.printf
        "   (the paper's Table 2 answer for Reno is CWND + .7 * reno-inc;\n\
        \    expect the same structure here, possibly with a different\n\
        \    constant since the simulated testbed differs)\n"
