examples/noise_robustness.ml: Abg_cca Abg_core Abg_trace Abg_util List Option Printf String
