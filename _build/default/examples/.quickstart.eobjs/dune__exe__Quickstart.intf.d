examples/quickstart.mli:
