examples/student_ccas.mli:
