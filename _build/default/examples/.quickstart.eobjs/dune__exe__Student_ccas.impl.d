examples/student_ccas.ml: Abg_cca Abg_core Abg_dsl Abg_trace List Option Printf
