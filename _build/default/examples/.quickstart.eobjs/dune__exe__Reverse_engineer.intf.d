examples/reverse_engineer.mli:
