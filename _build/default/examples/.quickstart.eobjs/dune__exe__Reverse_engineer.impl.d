examples/reverse_engineer.ml: Abg_cca Abg_classifier Abg_core Abg_trace Float Printf
