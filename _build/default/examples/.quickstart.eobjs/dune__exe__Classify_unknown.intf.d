examples/classify_unknown.mli:
