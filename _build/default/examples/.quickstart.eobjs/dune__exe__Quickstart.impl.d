examples/quickstart.ml: Abg_cca Abg_core Abg_trace Array List Option Printf
