examples/classify_unknown.ml: Abg_cca Abg_classifier Abg_dsl Abg_trace List Option Printf
