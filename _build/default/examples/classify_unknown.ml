(* Classifier walk-through (the Table 3 machinery).

   Collects traces of three kernel CCAs plus one student CCA, runs both
   classifiers on each, and shows how the verdict picks the sub-DSL that
   Abagnale will search (§3.3).

   Run with: dune exec examples/classify_unknown.exe *)

let subjects = [ "reno"; "bbr"; "vegas"; "student2" ]

let () =
  List.iter
    (fun name ->
      let constructor = Option.get (Abg_cca.Registry.find name) in
      let traces =
        Abg_trace.Trace.collect_suite ~duration:20.0 ~n:4 ~name constructor
      in
      Printf.printf "== %s ==\n" name;
      Printf.printf "features: %s\n"
        (Abg_classifier.Features.to_string
           (Abg_classifier.Features.extract traces));
      let verdict = Abg_classifier.Gordon.classify traces in
      Printf.printf "gordon verdict: %s\n"
        (Abg_classifier.Gordon.verdict_to_string verdict);
      let result = Abg_classifier.Ccanalyzer.classify traces in
      (match Abg_classifier.Ccanalyzer.closest_two result with
      | Some (a, b) -> Printf.printf "ccanalyzer closest: %s, %s\n" a b
      | None -> ());
      let dsl = Abg_classifier.Dsl_hint.choose verdict in
      Printf.printf "sub-DSL hint for synthesis: %s\n\n" dsl.Abg_dsl.Catalog.name)
    subjects
