(** A CDCL SAT solver: the enumeration engine behind sketch search.

    The paper iteratively queries Z3 for models of a quantifier-free
    finite-domain formula, blocking each returned sketch (§4.1). This
    module provides the same capability from scratch: a conflict-driven
    clause-learning solver in the MiniSat lineage — two-literal watches,
    VSIDS branching, first-UIP learning, phase saving and Luby restarts.
    Problems in this pipeline are small (thousands of variables), so no
    learnt-clause garbage collection is needed.

    External literal convention is DIMACS-like: variables are positive
    integers from {!new_var}; a positive literal [v] asserts the variable,
    [-v] negates it.

    Internal conventions (MiniSat-style):
    - literal encoding: [2*var] positive, [2*var+1] negative, vars 0-based;
    - every clause watches its first two literals; watch lists are indexed
      by the *watched literal*, revisited when that literal becomes false;
    - for any clause that acted as a propagation reason, the propagated
      literal sits at index 0. *)

type lbool = Unknown | True | False

type t = {
  mutable clauses : int array array;
  mutable n_clauses : int;
  mutable watches : int list array;  (** indexed by internal literal *)
  mutable n_vars : int;
  mutable assign : lbool array;
  mutable level : int array;
  mutable reason : int array;  (** clause index, or -1 for decisions *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list;  (** trail sizes at decisions, newest first *)
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable polarity : bool array;
  mutable seen : bool array;
  mutable ok : bool;
  mutable conflicts : int;
}

let create () =
  {
    clauses = Array.make 256 [||];
    n_clauses = 0;
    watches = Array.make 64 [];
    n_vars = 0;
    assign = Array.make 32 Unknown;
    level = Array.make 32 0;
    reason = Array.make 32 (-1);
    trail = Array.make 32 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    activity = Array.make 32 0.0;
    var_inc = 1.0;
    polarity = Array.make 32 false;
    seen = Array.make 32 false;
    ok = true;
    conflicts = 0;
  }

let var_of lit = lit lsr 1
let is_neg lit = lit land 1 = 1
let negate lit = lit lxor 1

let to_internal ext =
  assert (ext <> 0);
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

let grow_arrays s =
  let old = Array.length s.assign in
  if s.n_vars > old then begin
    let n = Stdlib.max (2 * old) s.n_vars in
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- grow s.assign Unknown;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.activity <- grow s.activity 0.0;
    s.polarity <- grow s.polarity false;
    s.seen <- grow s.seen false;
    let trail = Array.make n 0 in
    Array.blit s.trail 0 trail 0 s.trail_size;
    s.trail <- trail
  end;
  let old_w = Array.length s.watches in
  if 2 * s.n_vars > old_w then begin
    let w = Array.make (Stdlib.max (2 * old_w) (2 * s.n_vars)) [] in
    Array.blit s.watches 0 w 0 old_w;
    s.watches <- w
  end

(** [new_var s] allocates a fresh variable (a positive integer usable as a
    literal). *)
let new_var s =
  s.n_vars <- s.n_vars + 1;
  grow_arrays s;
  s.n_vars

let value_lit s lit =
  match s.assign.(var_of lit) with
  | Unknown -> Unknown
  | True -> if is_neg lit then False else True
  | False -> if is_neg lit then True else False

let decision_level s = List.length s.trail_lim

let enqueue s lit reason =
  let v = var_of lit in
  s.assign.(v) <- (if is_neg lit then False else True);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let push_clause s arr =
  if s.n_clauses = Array.length s.clauses then begin
    let c = Array.make (2 * s.n_clauses) [||] in
    Array.blit s.clauses 0 c 0 s.n_clauses;
    s.clauses <- c
  end;
  s.clauses.(s.n_clauses) <- arr;
  s.n_clauses <- s.n_clauses + 1;
  s.n_clauses - 1

(* Watch lists are indexed by the watched literal: the clause is revisited
   when that literal becomes false. *)
let watch s lit idx = s.watches.(lit) <- idx :: s.watches.(lit)

(** [add_clause s lits] adds a clause over external literals. Only valid
    at decision level 0 (before or between solve calls). *)
let add_clause s ext_lits =
  if s.ok then begin
    let lits = List.sort_uniq compare (List.map to_internal ext_lits) in
    let tautology = List.exists (fun l -> List.mem (negate l) lits) lits in
    if not tautology then begin
      (* At level 0 every current assignment is permanent: false literals
         can be removed, a true literal satisfies the clause outright. *)
      let satisfied = List.exists (fun l -> value_lit s l = True) lits in
      if not satisfied then begin
        let lits = List.filter (fun l -> value_lit s l <> False) lits in
        match lits with
        | [] -> s.ok <- false
        | [ l ] -> begin
            enqueue s l (-1);
            (* Keep level-0 propagation eager so later adds see it. *)
            ()
          end
        | _ ->
            let arr = Array.of_list lits in
            let idx = push_clause s arr in
            watch s arr.(0) idx;
            watch s arr.(1) idx
      end
    end
  end

(* Boolean constraint propagation. Returns a conflicting clause index or
   -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_size do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let falsified = negate lit in
    let watching = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec revisit = function
      | [] -> ()
      | idx :: rest -> begin
          let c = s.clauses.(idx) in
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if value_lit s c.(0) = True then begin
            watch s falsified idx;
            revisit rest
          end
          else begin
            let n = Array.length c in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if value_lit s c.(!k) <> False then begin
                c.(1) <- c.(!k);
                c.(!k) <- falsified;
                watch s c.(1) idx;
                found := true
              end;
              incr k
            done;
            if !found then revisit rest
            else begin
              watch s falsified idx;
              if value_lit s c.(0) = False then begin
                conflict := idx;
                List.iter (fun i -> watch s falsified i) rest;
                s.qhead <- s.trail_size
              end
              else begin
                enqueue s c.(0) idx;
                revisit rest
              end
            end
          end
        end
    in
    revisit watching
  done;
  !conflict

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.n_vars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activities s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP conflict analysis. Returns the learnt clause (asserting
   literal first) and the backjump level. *)
let analyze s conflict_idx =
  let learnt_rest = ref [] in
  let counter = ref 0 in
  let trail_pos = ref (s.trail_size - 1) in
  let idx = ref conflict_idx in
  let skip_head = ref false in
  let asserting = ref 0 in
  let dl = decision_level s in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!idx) in
    let start = if !skip_head then 1 else 0 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= dl then incr counter
        else learnt_rest := q :: !learnt_rest
      end
    done;
    (* Find the next marked literal walking the trail backwards. *)
    while not s.seen.(var_of s.trail.(!trail_pos)) do
      decr trail_pos
    done;
    let p = s.trail.(!trail_pos) in
    let v = var_of p in
    s.seen.(v) <- false;
    decr trail_pos;
    decr counter;
    if !counter = 0 then begin
      asserting := negate p;
      continue := false
    end
    else begin
      idx := s.reason.(v);
      skip_head := true
    end
  done;
  List.iter (fun l -> s.seen.(var_of l) <- false) !learnt_rest;
  (* Order the tail so a literal from the backjump (second-highest) level
     sits right after the asserting literal: both watched positions then
     respect the watching invariant after the backjump. *)
  let backjump =
    List.fold_left (fun acc l -> Stdlib.max acc s.level.(var_of l)) 0 !learnt_rest
  in
  let at_bj, below =
    List.partition (fun l -> s.level.(var_of l) = backjump) !learnt_rest
  in
  (!asserting :: (at_bj @ below), backjump)

let cancel_until s target_level =
  let dl = decision_level s in
  if dl > target_level then begin
    let rec pop n lim =
      match (n, lim) with
      | 1, sz :: tl -> (sz, tl)
      | n, _ :: tl -> pop (n - 1) tl
      | _, [] -> assert false
    in
    let target_size, keep = pop (dl - target_level) s.trail_lim in
    for i = s.trail_size - 1 downto target_size do
      let v = var_of s.trail.(i) in
      s.polarity.(v) <- s.assign.(v) = True;
      s.assign.(v) <- Unknown;
      s.reason.(v) <- -1
    done;
    s.trail_size <- target_size;
    s.qhead <- target_size;
    s.trail_lim <- keep
  end

let pick_branch_var s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.n_vars - 1 do
    if s.assign.(v) = Unknown && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby_at i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby_at (i - ((1 lsl (!k - 1)) - 1))

(** Result of {!solve}: a model indexed by external variable
    ([m.(v)] for variable [v]; index 0 unused), or unsatisfiable. *)
type result = Sat of bool array | Unsat

let model_of s =
  let m = Array.make (s.n_vars + 1) false in
  for v = 0 to s.n_vars - 1 do
    m.(v + 1) <- s.assign.(v) = True
  done;
  m

(** [solve ?assumptions s] decides the accumulated clauses. Assumptions
    are external literals asserted for this call only; learnt clauses
    persist across calls, making repeated (blocking-clause) enumeration
    cheap. *)
let solve ?(assumptions = []) s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let n_assumptions = List.length assumptions in
    let result = ref None in
    if propagate s >= 0 then begin
      s.ok <- false;
      result := Some Unsat
    end;
    let restart_count = ref 0 in
    let conflict_budget = ref (100 * luby_at 1) in
    while !result = None do
      let conflict = propagate s in
      if conflict >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        decr conflict_budget;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else if decision_level s <= n_assumptions then
          (* The conflict involves only assumption decisions: the formula
             is unsatisfiable under these assumptions (but may be
             satisfiable without them, so [ok] stays true). *)
          result := Some Unsat
        else begin
          let learnt, backjump = analyze s conflict in
          (* Never jump back into the middle of the assumption prefix with
             a clause asserting below it. *)
          let backjump = Stdlib.max backjump n_assumptions in
          cancel_until s backjump;
          (match learnt with
          | [] -> result := Some Unsat
          | [ l ] ->
              if value_lit s l = False then result := Some Unsat
              else if value_lit s l = Unknown then enqueue s l (-1)
          | l :: _ ->
              let arr = Array.of_list learnt in
              let idx = push_clause s arr in
              watch s arr.(0) idx;
              watch s arr.(1) idx;
              if value_lit s l = Unknown then enqueue s l idx);
          decay_activities s
        end
      end
      else if !conflict_budget <= 0 && decision_level s > n_assumptions then begin
        incr restart_count;
        conflict_budget := 100 * luby_at (!restart_count + 1);
        cancel_until s n_assumptions
      end
      else begin
        let dl = decision_level s in
        if dl < n_assumptions then begin
          let a = to_internal (List.nth assumptions dl) in
          match value_lit s a with
          | True -> s.trail_lim <- s.trail_size :: s.trail_lim
          | False -> result := Some Unsat
          | Unknown ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              enqueue s a (-1)
        end
        else begin
          match pick_branch_var s with
          | -1 -> result := Some (Sat (model_of s))
          | v ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              let lit = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
              enqueue s lit (-1)
        end
      end
    done;
    let r = match !result with Some r -> r | None -> assert false in
    cancel_until s 0;
    r
  end

(** [randomize s ~seed] scrambles the branching heuristic: random VSIDS
    activities and random saved phases. Model *enumeration* uses this
    between solve calls so that successive models sample scattered corners
    of the solution space instead of crawling lexicographically — the
    blocking-clause analogue of Z3's [:random-seed]/phase randomization.
    Does not affect soundness, only which model is found first. *)
let randomize s ~seed =
  let state = ref (Int64.of_int (seed lxor 0x5DEECE66D)) in
  let next_bits () =
    (* splitmix64 step, as in the utility PRNG, inlined to keep this
       library dependency-free. *)
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  for v = 0 to s.n_vars - 1 do
    let bits = next_bits () in
    s.activity.(v) <-
      Int64.to_float (Int64.shift_right_logical bits 11) /. 9.0e15;
    s.polarity.(v) <- Int64.logand bits 1L = 1L
  done;
  s.var_inc <- 1.0

(** Number of conflicts encountered so far (a search-effort statistic). *)
let conflicts s = s.conflicts

(** Number of variables allocated. *)
let num_vars s = s.n_vars
