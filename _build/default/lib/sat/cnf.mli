(** CNF encoding helpers over {!Solver}: the standard gadgets the sketch
    encoding needs. All functions add clauses to the given solver; [lits]
    are external literals. *)

val at_most_one : Solver.t -> int list -> unit
(** Pairwise encoding, O(n^2) clauses — fine for short lists. *)

val at_least_one : Solver.t -> int list -> unit
val exactly_one : Solver.t -> int list -> unit

val implies : Solver.t -> int -> int -> unit
(** [implies s a b] — a -> b. *)

val implies_all : Solver.t -> int -> int list -> unit
(** [implies_all s a bs] — a -> b for every b. *)

val implies_clause : Solver.t -> int -> int list -> unit
(** [implies_clause s a bs] — a -> (b1 \/ ... \/ bn). *)

val define_and : Solver.t -> int list -> int
(** Fresh literal equivalent to the conjunction (Tseitin). *)

val define_or : Solver.t -> int list -> int
(** Fresh literal equivalent to the disjunction (Tseitin). *)

val at_most_k : Solver.t -> int list -> int -> unit
(** Sequential-counter cardinality constraint (Sinz 2005), O(n*k)
    clauses; used for the sketch node budget. *)
