(** A CDCL SAT solver in the MiniSat lineage: two-literal watches, VSIDS
    branching, first-UIP clause learning, phase saving and Luby restarts.
    It is the enumeration engine behind sketch search — the substitute for
    the paper's iterated Z3 queries (§4.1): solve, block the model,
    solve again.

    External literals are DIMACS-like: variables are the positive integers
    returned by {!new_var}; a positive literal [v] asserts the variable,
    [-v] negates it. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) literal. *)

val add_clause : t -> int list -> unit
(** Add a clause over external literals. Only valid between solve calls.
    Tautologies are dropped; an empty clause makes the instance
    permanently unsatisfiable. *)

type result = Sat of bool array | Unsat
(** A model is indexed by external variable ([m.(v)]; index 0 unused). *)

val solve : ?assumptions:int list -> t -> result
(** Decide the accumulated clauses. [assumptions] are external literals
    asserted for this call only — an [Unsat] under assumptions leaves the
    instance usable. Learnt clauses persist across calls, making repeated
    blocking-clause enumeration cheap. *)

val randomize : t -> seed:int -> unit
(** Scramble the branching heuristic (random activities and phases) so
    that successive models during enumeration sample scattered corners of
    the solution space instead of crawling lexicographically. Soundness is
    unaffected. *)

val conflicts : t -> int
(** Conflicts encountered so far — a search-effort statistic. *)

val num_vars : t -> int
