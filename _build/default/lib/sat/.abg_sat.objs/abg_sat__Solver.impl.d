lib/sat/solver.ml: Array Int64 List Stdlib
