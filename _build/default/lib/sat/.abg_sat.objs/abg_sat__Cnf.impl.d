lib/sat/cnf.ml: Array List Solver
