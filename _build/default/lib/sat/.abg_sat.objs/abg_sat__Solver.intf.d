lib/sat/solver.mli:
