lib/sat/cnf.mli: Solver
