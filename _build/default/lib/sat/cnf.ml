(** CNF encoding helpers over {!Solver}.

    The sketch encoding needs a few standard gadgets: exactly-one /
    at-most-one over small sets (pairwise encoding — component lists are
    short), implications, and Tseitin-style AND/OR definitions, plus a
    sequential-counter cardinality constraint for node budgets. *)

(** [at_most_one s lits] — pairwise encoding, O(n^2) clauses; fine for the
    component-per-node sets used here (|lits| <= ~25). *)
let at_most_one s lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
        List.iter (fun l' -> Solver.add_clause s [ -l; -l' ]) rest;
        pairs rest
  in
  pairs lits

let at_least_one s lits = Solver.add_clause s lits

let exactly_one s lits =
  at_least_one s lits;
  at_most_one s lits

(** [implies s a b] — a -> b. *)
let implies s a b = Solver.add_clause s [ -a; b ]

(** [implies_all s a bs] — a -> b for every b. *)
let implies_all s a bs = List.iter (implies s a) bs

(** [implies_clause s a bs] — a -> (b1 \/ ... \/ bn). *)
let implies_clause s a bs = Solver.add_clause s (-a :: bs)

(** [define_and s bs] returns a fresh literal equivalent to the
    conjunction of [bs] (Tseitin). *)
let define_and s bs =
  let x = Solver.new_var s in
  List.iter (fun b -> Solver.add_clause s [ -x; b ]) bs;
  Solver.add_clause s (x :: List.map (fun b -> -b) bs);
  x

(** [define_or s bs] returns a fresh literal equivalent to the disjunction
    of [bs] (Tseitin). *)
let define_or s bs =
  let x = Solver.new_var s in
  List.iter (fun b -> Solver.add_clause s [ x; -b ]) bs;
  Solver.add_clause s (-x :: bs);
  x

(** [at_most_k s lits k] — sequential-counter encoding (Sinz 2005):
    auxiliary registers r_{i,j} meaning "at least j of the first i+1
    literals are true"; O(n*k) clauses. *)
let at_most_k s lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k >= n then ()
  else if k = 0 then Array.iter (fun l -> Solver.add_clause s [ -l ]) lits
  else begin
    let r = Array.make_matrix n k 0 in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        r.(i).(j) <- Solver.new_var s
      done
    done;
    for i = 0 to n - 1 do
      (* lit i true -> register counts at least 1. *)
      Solver.add_clause s [ -lits.(i); r.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          (* Registers are monotone in i. *)
          Solver.add_clause s [ -r.(i - 1).(j); r.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          (* lit i true and j of the prefix -> j+1 counted. *)
          Solver.add_clause s [ -lits.(i); -r.(i - 1).(j - 1); r.(i).(j) ]
        done;
        (* Overflow: lit i true while the prefix already holds k. *)
        Solver.add_clause s [ -lits.(i); -r.(i - 1).(k - 1) ]
      end
    done
  end
