lib/netsim/sim.ml: Abg_cca Abg_util Array Config Event_queue Float Hashtbl Rng Stdlib
