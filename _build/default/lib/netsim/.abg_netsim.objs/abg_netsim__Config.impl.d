lib/netsim/config.ml: Float List Printf Stdlib
