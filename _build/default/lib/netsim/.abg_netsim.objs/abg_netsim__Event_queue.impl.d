lib/netsim/event_queue.ml: Array
