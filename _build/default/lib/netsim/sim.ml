(** Single-flow packet-level simulation of a bulk transfer through one
    bottleneck.

    The model is the standard single-bottleneck dumbbell used by the
    paper's trace-collection testbed: the sender emits fixed-size segments
    whenever the flight size is below the CCA's window; segments pass
    through a DropTail queue served at the bottleneck rate, reach the
    receiver after half the propagation RTT, and cumulative ACKs return
    after the other half (plus optional jitter). Loss is detected by three
    duplicate ACKs (with an RTO fallback), exactly the signal Abagnale's
    trace segmentation later infers from traces (§3.2).

    The queue is represented implicitly by the time the link becomes free:
    with fixed-size packets, backlog divided by serialization time is the
    queue length. This is exact for DropTail FIFO. *)

open Abg_util

(** One observation delivered to the trace-collection callback, one per
    cumulative ACK arriving at the sender. *)
type ack_observation = {
  time : float;
  cwnd : float;  (** CCA's window after processing this ACK, bytes *)
  in_flight : float;  (** bytes outstanding after this ACK ("visible CWND") *)
  acked_bytes : float;  (** bytes newly acknowledged *)
  rtt_sample : float;  (** RTT measured from the triggering segment, s *)
}

type observer = {
  on_ack_obs : ack_observation -> unit;
  on_loss_obs : time:float -> unit;
}

let null_observer = { on_ack_obs = ignore; on_loss_obs = (fun ~time:_ -> ()) }

type event =
  | Deliver of int  (** segment [seq] reaches the receiver *)
  | Ack_arrival of { cum : int; sent_at : float; sample_ok : bool }
      (** cumulative ACK up to [cum] reaches the sender; [sent_at] is the
          send time of the segment that triggered it, and [sample_ok] is
          false when that segment was ever retransmitted (Karn's
          algorithm: such RTT samples are ambiguous and discarded) *)
  | Rto_check of int  (** RTO timer with its generation number *)

type t = {
  cfg : Config.t;
  cca : Abg_cca.Cca_sig.t;
  events : event Event_queue.t;
  rng : Rng.t;
  mutable now : float;
  (* Sender state. *)
  mutable next_seq : int;
  mutable snd_una : int;  (** lowest unacknowledged sequence number *)
  mutable dup_acks : int;
  mutable recovery_point : int;  (** next_seq at the last loss event *)
  mutable in_recovery : bool;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto_generation : int;
  (* Per-segment send times, for RTT samples; grows with next_seq. *)
  mutable sent_at : float array;
  mutable retransmitted : bool array;
  (* Link state. *)
  mutable link_free : float;
  (* Receiver state: segments received beyond the cumulative point. *)
  ooo : (int, unit) Hashtbl.t;
  mutable rcv_next : int;
  mutable rcv_high : int;  (** highest sequence number received *)
  mutable last_ack_arrival : float;  (** ACK-path FIFO ordering floor *)
  (* Counters. *)
  mutable delivered : int;
  mutable drops : int;
  mutable losses_detected : int;
}

let serialize_time cfg = cfg.Config.mss *. 8.0 /. cfg.Config.bandwidth_bps
let one_way cfg = cfg.Config.rtt_prop /. 2.0

let create cfg cca =
  {
    cfg;
    cca;
    events = Event_queue.create ();
    rng = Rng.create cfg.Config.seed;
    now = 0.0;
    next_seq = 0;
    snd_una = 0;
    dup_acks = 0;
    recovery_point = 0;
    in_recovery = false;
    srtt = 0.0;
    rttvar = 0.0;
    rto_generation = 0;
    sent_at = Array.make 1024 0.0;
    retransmitted = Array.make 1024 false;
    link_free = 0.0;
    ooo = Hashtbl.create 97;
    rcv_next = 0;
    rcv_high = -1;
    last_ack_arrival = 0.0;
    delivered = 0;
    drops = 0;
    losses_detected = 0;
  }

let ensure_seq_capacity sim seq =
  let len = Array.length sim.sent_at in
  if seq >= len then begin
    let new_len = Stdlib.max (2 * len) (seq + 1) in
    let sent_at = Array.make new_len 0.0 in
    Array.blit sim.sent_at 0 sent_at 0 len;
    sim.sent_at <- sent_at;
    let retransmitted = Array.make new_len false in
    Array.blit sim.retransmitted 0 retransmitted 0 len;
    sim.retransmitted <- retransmitted
  end

let queue_length sim =
  let backlog = sim.link_free -. sim.now in
  if backlog <= 0.0 then 0
  else int_of_float (Float.ceil (backlog /. serialize_time sim.cfg))

(* Transmit segment [seq]: DropTail admission, serialization, delivery. *)
let transmit sim seq =
  ensure_seq_capacity sim seq;
  sim.sent_at.(seq) <- sim.now;
  let dropped =
    queue_length sim >= sim.cfg.Config.queue_capacity
    || (sim.cfg.Config.loss_rate > 0.0 && Rng.float sim.rng < sim.cfg.Config.loss_rate)
  in
  if dropped then sim.drops <- sim.drops + 1
  else begin
    let start = Float.max sim.now sim.link_free in
    let departure = start +. serialize_time sim.cfg in
    sim.link_free <- departure;
    Event_queue.push sim.events (departure +. one_way sim.cfg) (Deliver seq)
  end

let in_flight_bytes sim =
  float_of_int (sim.next_seq - sim.snd_una) *. sim.cfg.Config.mss

(* Oracle view of the receiver, standing in for SACK blocks: the sender of
   a real (SACK-enabled) stack knows which segments above snd_una arrived. *)
let is_received sim seq = seq < sim.rcv_next || Hashtbl.mem sim.ooo seq

(* A segment is scored lost when it is unreceived and either carries SACK
   evidence (>= 3 segments received above its first transmission, RFC
   6675's DupThresh rule) or its latest (re)transmission is older than a
   RACK-style reordering timer. The evidence/timer requirement prevents
   spurious retransmission of segments merely still in transit, whose
   ambiguous RTT samples would poison every delay-based CCA; the timer
   makes re-dropped retransmissions recoverable without waiting for a
   full RTO per hole. *)
let scored_lost sim seq =
  let evidence = (not sim.retransmitted.(seq)) && seq <= sim.rcv_high - 3 in
  let rack_timeout = if sim.srtt > 0.0 then 1.25 *. sim.srtt else 1.0 in
  evidence || sim.now -. sim.sent_at.(seq) > rack_timeout

let retransmit_hole sim seq =
  sim.retransmitted.(seq) <- true;
  transmit sim seq

(* Transmission policy per RFC 6675 with a per-segment scoreboard:
   retransmissions of scored-lost segments take priority over new data,
   both gated on pipe < cwnd, where the pipe excludes received and
   scored-lost segments. When [force_rtx] is set (one per incoming ACK
   event during recovery, the spirit of proportional-rate reduction), the
   first retransmission goes out even if the pipe has not yet drained
   below the window. *)
let fill_window ?(force_rtx = false) sim =
  let window =
    Float.min (sim.cca.Abg_cca.Cca_sig.cwnd ()) (Config.rwnd sim.cfg)
  in
  let mss = sim.cfg.Config.mss in
  (* One scoreboard pass: pipe size and the list of repairable holes. *)
  let pipe = ref 0.0 in
  let holes = ref [] in
  if sim.in_recovery then begin
    for seq = sim.next_seq - 1 downto sim.snd_una do
      if not (is_received sim seq) then begin
        if scored_lost sim seq then holes := seq :: !holes
        else pipe := !pipe +. mss
      end
    done
  end
  else pipe := float_of_int (sim.next_seq - sim.snd_una) *. mss;
  if sim.in_recovery then begin
    (* Packet conservation during recovery: one transmission per incoming
       ACK event, repairs first. Anything more re-floods the queue that
       just overflowed and stretches the episode; anything less lets the
       ACK clock die. New data is sent only once every hole is repaired
       or in flight. *)
    let budget = ref (if force_rtx || !pipe +. mss <= window then 1 else 0) in
    while !budget > 0 do
      decr budget;
      match !holes with
      | seq :: rest ->
          holes := rest;
          retransmit_hole sim seq
      | [] ->
          transmit sim sim.next_seq;
          sim.next_seq <- sim.next_seq + 1
    done
  end
  else
    while !pipe +. mss <= window do
      transmit sim sim.next_seq;
      sim.next_seq <- sim.next_seq + 1;
      pipe := !pipe +. mss
    done

let rto sim =
  if sim.srtt = 0.0 then 1.0
  else Float.max 0.2 (sim.srtt +. (4.0 *. sim.rttvar))

let arm_rto sim =
  sim.rto_generation <- sim.rto_generation + 1;
  Event_queue.push sim.events (sim.now +. rto sim) (Rto_check sim.rto_generation)

let update_rtt_estimators sim rtt =
  if sim.srtt = 0.0 then begin
    sim.srtt <- rtt;
    sim.rttvar <- rtt /. 2.0
  end
  else begin
    sim.rttvar <- (0.75 *. sim.rttvar) +. (0.25 *. Float.abs (sim.srtt -. rtt));
    sim.srtt <- (0.875 *. sim.srtt) +. (0.125 *. rtt)
  end

(* Receiver side: segment [seq] arrives; emit a cumulative ACK. *)
let receive sim seq =
  if seq > sim.rcv_high then sim.rcv_high <- seq;
  if seq >= sim.rcv_next && not (Hashtbl.mem sim.ooo seq) then begin
    Hashtbl.replace sim.ooo seq ();
    while Hashtbl.mem sim.ooo sim.rcv_next do
      Hashtbl.remove sim.ooo sim.rcv_next;
      sim.rcv_next <- sim.rcv_next + 1
    done
  end;
  let jitter =
    if sim.cfg.Config.ack_jitter > 0.0 then
      Float.abs (Rng.normal sim.rng ~mean:0.0 ~stddev:sim.cfg.Config.ack_jitter)
    else 0.0
  in
  (* The ACK path is FIFO: jitter delays but never reorders, or every
     delayed ACK would masquerade as duplicate-ACK loss evidence. *)
  let arrival =
    Float.max (sim.now +. one_way sim.cfg +. jitter) sim.last_ack_arrival
  in
  sim.last_ack_arrival <- arrival;
  Event_queue.push sim.events arrival
    (Ack_arrival
       {
         cum = sim.rcv_next;
         sent_at = sim.sent_at.(seq);
         sample_ok = not sim.retransmitted.(seq);
       })

let handle_loss sim observer =
  sim.losses_detected <- sim.losses_detected + 1;
  sim.cca.Abg_cca.Cca_sig.on_loss ~now:sim.now;
  observer.on_loss_obs ~time:sim.now;
  (* A loss during an ongoing episode (an RTO) must not move the episode's
     exit point to the raced-ahead next_seq, or the episode never ends. *)
  if not sim.in_recovery then begin
    sim.in_recovery <- true;
    sim.recovery_point <- sim.next_seq
  end;
  fill_window ~force_rtx:true sim

let handle_ack sim observer ~cum ~sent_at ~sample_ok =
  if cum > sim.snd_una then begin
    let newly = cum - sim.snd_una in
    sim.snd_una <- cum;
    sim.dup_acks <- 0;
    sim.delivered <- sim.delivered + newly;
    (* Karn: an RTT measured through a retransmitted segment is ambiguous;
       substitute the smoothed estimate so the CCA still sees a sane
       sample without polluting its min/max filters. *)
    let rtt =
      if sample_ok then sim.now -. sent_at
      else if sim.srtt > 0.0 then sim.srtt
      else sim.cfg.Config.rtt_prop
    in
    if sample_ok then update_rtt_estimators sim rtt;
    let acked_bytes = float_of_int newly *. sim.cfg.Config.mss in
    sim.cca.Abg_cca.Cca_sig.on_ack ~now:sim.now ~acked:acked_bytes ~rtt;
    if sim.in_recovery && cum >= sim.recovery_point then
      sim.in_recovery <- false;
    (* A partial ACK (still in recovery) keeps repairing holes. *)
    fill_window ~force_rtx:sim.in_recovery sim;
    observer.on_ack_obs
      {
        time = sim.now;
        cwnd = sim.cca.Abg_cca.Cca_sig.cwnd ();
        in_flight = in_flight_bytes sim;
        acked_bytes;
        rtt_sample = rtt;
      };
    arm_rto sim
  end
  else begin
    (* Duplicate ACK: each one shrinks the SACK pipe, possibly opening
       room for new transmissions. *)
    sim.dup_acks <- sim.dup_acks + 1;
    if sim.dup_acks = 3 && not sim.in_recovery then handle_loss sim observer
    else fill_window ~force_rtx:sim.in_recovery sim
  end

let handle_rto sim observer generation =
  if generation = sim.rto_generation && sim.next_seq > sim.snd_una then begin
    (* After a timeout the RACK timer has expired for the whole
       outstanding flight, so handle_loss's scoreboard pass retransmits
       from the head. *)
    handle_loss sim observer;
    sim.dup_acks <- 0;
    arm_rto sim
  end

(** Simulation statistics returned by {!run}. *)
type stats = {
  acks_processed : int;
  packets_dropped : int;
  loss_events : int;
  final_time : float;
  delivered_bytes : float;
}

(** [run cfg cca ~observer] simulates the flow for [cfg.duration] seconds,
    invoking [observer] on every cumulative ACK and loss event, and
    returns summary statistics. *)
let run ?(observer = null_observer) cfg cca =
  let sim = create cfg cca in
  let acks = ref 0 in
  let counting_observer =
    {
      on_ack_obs =
        (fun obs ->
          incr acks;
          observer.on_ack_obs obs);
      on_loss_obs = observer.on_loss_obs;
    }
  in
  fill_window sim;
  arm_rto sim;
  let continue = ref true in
  while !continue do
    match Event_queue.pop sim.events with
    | None -> continue := false
    | Some (time, _) when time > cfg.Config.duration -> continue := false
    | Some (time, ev) ->
        sim.now <- time;
        (match ev with
        | Deliver seq -> receive sim seq
        | Ack_arrival { cum; sent_at; sample_ok } ->
            handle_ack sim counting_observer ~cum ~sent_at ~sample_ok
        | Rto_check generation -> handle_rto sim counting_observer generation)
  done;
  {
    acks_processed = !acks;
    packets_dropped = sim.drops;
    loss_events = sim.losses_detected;
    final_time = sim.now;
    delivered_bytes = float_of_int sim.delivered *. cfg.Config.mss;
  }
