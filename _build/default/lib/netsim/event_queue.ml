(** Binary min-heap event queue for the discrete-event simulator.

    Ordered by (time, sequence-of-insertion) so simultaneous events pop in
    insertion order, which keeps runs deterministic. *)

type 'a t = {
  mutable heap : (float * int * 'a) array;
  mutable size : int;
  mutable next_id : int;
}

let create () = { heap = [||]; size = 0; next_id = 0 }

let is_empty q = q.size = 0
let length q = q.size

let before (t1, i1, _) (t2, i2, _) = t1 < t2 || (t1 = t2 && i1 < i2)

(* The array is allocated lazily from the first pushed entry, so no dummy
   element of type 'a is ever needed. *)
let ensure_capacity q entry =
  if Array.length q.heap = 0 then q.heap <- Array.make 64 entry
  else if q.size = Array.length q.heap then begin
    let heap = Array.make (2 * Array.length q.heap) q.heap.(0) in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let push q time payload =
  let entry = (time, q.next_id, payload) in
  ensure_capacity q entry;
  q.next_id <- q.next_id + 1;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before q.heap.(!i) q.heap.(parent) then begin
      let tmp = q.heap.(parent) in
      q.heap.(parent) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let (time, _, payload) = q.heap.(0) in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
      if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = q.heap.(!smallest) in
        q.heap.(!smallest) <- q.heap.(!i);
        q.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (time, payload)
  end
