(** Candidate-handler replay (§3.1).

    Given a trace segment collected from the ground-truth CCA, a candidate
    cwnd-ack handler is executed in simulation over the *same* sequence of
    events and congestion signals: for every ACK record, the handler
    computes a new window from the recorded signals and its own current
    window (statefulness flows only through the window). The resulting
    series is the candidate's *synthesized trace*, compared against the
    observed trace with a distance metric. *)

open Abg_dsl

(* Keep candidate windows in a sane numeric range: a wild handler (e.g. a
   cube of a cube) must score badly, not overflow the distance
   arithmetic. *)
let cwnd_ceiling = 1e12

(** [synthesize expr segment] — the candidate's window series over the
    segment, starting from the ground truth's initial window. *)
let synthesize expr (segment : Abg_trace.Segmentation.segment) =
  let records = segment.Abg_trace.Segmentation.records in
  let n = Array.length records in
  let out = Array.make n 0.0 in
  let cwnd = ref (Abg_trace.Record.observed_cwnd records.(0)) in
  (* One scratch environment for the whole replay (see Env mutability). *)
  let env = Env.copy Env.example in
  for i = 0 to n - 1 do
    Abg_trace.Record.load_env env records.(i) ~cwnd:!cwnd;
    cwnd := Float.min cwnd_ceiling (Eval.handler expr env);
    out.(i) <- !cwnd
  done;
  out

(** [distance ?metric expr segment] — distance between the synthesized and
    observed window series of one segment. *)
let distance ?(metric = Abg_distance.Metric.default) expr segment =
  let truth = Abg_trace.Segmentation.observed segment in
  let candidate = synthesize expr segment in
  Abg_distance.Metric.compute metric ~truth ~candidate

(** [total_distance ?metric expr segments] — the sum used throughout the
    paper's Table 2 ("sum of DTW distances ... over the trace segments
    used to synthesize each CCA"). *)
let total_distance ?metric expr segments =
  List.fold_left (fun acc seg -> acc +. distance ?metric expr seg) 0.0 segments
