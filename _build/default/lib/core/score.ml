(** Sketch and handler scoring.

    A handler's score is its summed distance over the current segment
    subset ({!Replay.total_distance}); a sketch's score is the best score
    any of its concretizations achieves (§4.2) — that minimum is also what
    the bucket prioritization of §4.4 aggregates. *)

open Abg_dsl

type scored = {
  sketch : Expr.num;
  handler : Expr.num;  (** best concretization found *)
  distance : float;
  completions_scored : int;
}

(** [sketch rng ~dsl ~metric ~budget ~segments sk] — score one sketch:
    concretize (bounded by [budget]), replay handlers, keep the best.
    Scoring is two-stage: every completion is scored coarsely on the
    first segment only, then the best few are scored on the full segment
    list. The coarse stage is a sound-enough filter because completions of
    one sketch differ only in constants, and a grossly wrong constant is
    visible on any single segment; the fine stage breaks remaining ties
    properly. A sketch with no plausible completion scores infinity. *)
let sketch rng ~(dsl : Catalog.t) ~metric ~budget ~segments sk =
  let handlers =
    Concretize.completions rng sk ~pool:dsl.Catalog.constant_pool ~budget
  in
  match (handlers, segments) with
  | [], _ | _, [] ->
      { sketch = sk; handler = sk; distance = infinity; completions_scored = 0 }
  | _, first_segment :: _ ->
      let coarse =
        List.map
          (fun h -> (h, Replay.distance ~metric h first_segment))
          handlers
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      let finalists =
        let keep = Stdlib.max 3 (List.length coarse / 4) in
        List.filteri (fun i _ -> i < keep) coarse
      in
      let best_h, best_d =
        List.fold_left
          (fun (best_h, best_d) (h, _) ->
            let d = Replay.total_distance ~metric h segments in
            if d < best_d then (h, d) else (best_h, best_d))
          (sk, infinity) finalists
      in
      {
        sketch = sk;
        handler = best_h;
        distance = best_d;
        completions_scored = List.length handlers;
      }
