(** Abagnale: reverse-engineering congestion control algorithm behavior.

    Facade over the synthesis pipeline. Typical use:

    {[
      let traces =
        Abg_trace.Trace.collect_suite ~n:4 ~name:"mystery" my_cca in
      match Abg_core.Abagnale.synthesize ~name:"mystery" traces with
      | Some outcome -> print_endline outcome.Abg_core.Synthesis.pretty
      | None -> prerr_endline "no candidate found"
    ]}

    The pipeline stages are available individually: {!Replay} (candidate
    simulation), {!Concretize} (constant sampling), {!Score},
    {!Refinement} (Algorithm 1), and {!Fine_tuned} (the paper's Table 2
    expressions). *)

type outcome = Synthesis.outcome

(** See {!Synthesis.run}. *)
let synthesize = Synthesis.run

(** See {!Synthesis.collect_and_run}. *)
let synthesize_from_cca = Synthesis.collect_and_run

(** Default refinement-loop configuration (paper's N=16, k=5). *)
let default_config = Refinement.default_config

(** Distance between a candidate handler and collected traces — the
    quantity reported throughout Table 2. *)
let handler_distance ?metric ~handler traces =
  let segments = Abg_trace.Segmentation.split_all ~min_length:30 traces in
  Replay.total_distance ?metric handler segments
