lib/core/concretize.ml: Abg_dsl Array Env Eval Float List Sketch
