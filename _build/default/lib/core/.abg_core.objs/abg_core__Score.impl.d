lib/core/score.ml: Abg_dsl Catalog Concretize Expr List Replay Stdlib
