lib/core/abagnale.ml: Abg_trace Refinement Replay Synthesis
