lib/core/refinement.ml: Abg_distance Abg_dsl Abg_enum Abg_parallel Abg_trace Abg_util Array Catalog Expr Float List Option Printf Replay Rng Score Simplify Stdlib Unix
