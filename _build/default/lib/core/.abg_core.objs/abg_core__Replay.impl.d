lib/core/replay.ml: Abg_distance Abg_dsl Abg_trace Array Env Eval Float List
