lib/core/mister880.ml: Abg_dsl Abg_enum Abg_trace Abg_util Array Catalog Concretize Float List Replay
