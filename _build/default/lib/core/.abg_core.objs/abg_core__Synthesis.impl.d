lib/core/synthesis.ml: Abg_classifier Abg_distance Abg_dsl Abg_trace Abg_util Array Catalog Expr List Pretty Refinement Rng
