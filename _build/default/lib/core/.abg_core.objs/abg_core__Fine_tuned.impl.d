lib/core/fine_tuned.ml: Abg_dsl List
