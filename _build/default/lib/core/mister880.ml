(** A Mister880-style decision-procedure baseline (§2.2, §7).

    Mister880 (Ferreira et al., HotNets '21) formulates CCA synthesis as a
    decision problem: a candidate handler is *correct* only if its
    simulated trace reproduces the observation (within a small numeric
    tolerance at every point), and incorrect otherwise — there is no
    notion of "close". The paper's key comparison claims follow directly:
    on noiseless traces the decision procedure can accept the true
    handler, but any measurement noise rejects every candidate including
    the ground truth.

    This module implements that acceptance test over the same replay
    machinery Abagnale uses, so the comparison isolates exactly the
    decision-vs-optimization difference. *)

open Abg_dsl

(** Relative per-point tolerance for "exact" reproduction. Mister880
    matches SMT-modeled integer traces exactly; replaying float windows,
    the honest equivalent is a tight relative epsilon. *)
let default_tolerance = 0.01

(** [accepts ?tolerance handler segment] — the decision procedure: does
    the candidate reproduce the observed window at *every* ACK? *)
let accepts ?(tolerance = default_tolerance) handler segment =
  let truth = Abg_trace.Segmentation.observed segment in
  let synth = Replay.synthesize handler segment in
  let n = Array.length truth in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Float.abs (synth.(i) -. truth.(i)) > tolerance *. Float.max 1.0 truth.(i)
    then ok := false
  done;
  !ok

(** [accepts_all ?tolerance handler segments] — accepted on every
    segment (Mister880 considers a single simulated trace; requiring all
    segments is the generous multi-trace generalization). *)
let accepts_all ?tolerance handler segments =
  List.for_all (fun seg -> accepts ?tolerance handler seg) segments

(** [synthesize ?tolerance ~dsl ~budget segments] — enumerate sketches in
    DSL order (no buckets, no prioritization: Mister880 attempts full
    enumeration), concretize each, and return the first handler the
    decision procedure accepts, with the number of candidates tried.
    [budget] bounds the sketch enumeration. *)
let synthesize ?tolerance ~(dsl : Catalog.t) ~budget segments =
  let enc = Abg_enum.Encode.create dsl in
  let rng = Abg_util.Rng.create 424242 in
  let tried = ref 0 in
  let rec search remaining =
    if remaining = 0 then (None, !tried)
    else
      match Abg_enum.Encode.next enc with
      | None -> (None, !tried)
      | Some sketch -> begin
          let handlers =
            Concretize.completions rng sketch ~pool:dsl.Catalog.constant_pool
              ~budget:32
          in
          let hit =
            List.find_opt
              (fun h ->
                incr tried;
                accepts_all ?tolerance h segments)
              handlers
          in
          match hit with
          | Some h -> (Some h, !tried)
          | None -> search (remaining - 1)
        end
  in
  search budget
