(** Approximate sketch concretization (§4.2).

    A sketch's constants could take any real value; solving that
    optimization per sketch is prohibitive, so Abagnale fills holes from a
    small pool of values observed in known CCAs. Sketches with few
    completions are enumerated exhaustively; larger ones are sampled. The
    paper notes this makes the search incomplete but effective.

    Concretization also applies the semantic §4.1 filters that the
    enumeration formula cannot express, evaluated on a probe grid of
    window/delay states:

    - a handler that *strictly shrinks* the window in every probed state
      is no congestion control algorithm (the paper: the window must grow
      at some point; a flat handler like Student 4's [MSS] is fine, a
      universally decreasing one is not);
    - a handler that returns the *current window unchanged* in every
      probed state is the identity in disguise (e.g.
      [mss / reno-inc / (1 / acked)] = CWND) — it explains nothing and
      would otherwise shadow every real candidate on near-flat traces. *)

open Abg_dsl

(* Probe states: windows from one segment up to ~120 segments, across
   queue-empty and queue-building conditions. The one-MSS probe matters
   for the decrease filter: a constant-window handler equals (rather than
   undercuts) the window there. *)
(* Every probe keeps min_rtt <= rtt <= max_rtt: a physically impossible
   state would let conditionals that can never fire in reality (e.g.
   [{max-rtt < rtt} ? x : CWND]) masquerade as non-identity handlers. *)
let probe_envs =
  let base = { Env.example with Env.max_rtt = 0.1 } in
  [ { base with Env.cwnd = base.Env.mss };
    base;
    { base with Env.cwnd = 3.0 *. base.Env.mss; time_since_loss = 2.0 };
    { base with Env.cwnd = 50.0 *. base.Env.mss; rtt = 0.09;
      time_since_loss = 4.0; ack_rate = 800_000.0 };
    { base with Env.cwnd = 120.0 *. base.Env.mss; rtt = 0.05;
      time_since_loss = 8.0 } ]

let relative_tolerance = 1e-6

(** [plausible handler] — the two probe-grid filters above. The *raw*
    expression value is probed (not the MSS-floored handler output):
    flooring would disguise a universally shrinking handler as a flat one
    at the one-MSS probe. *)
let plausible handler =
  let always_below = ref true in
  let always_identity = ref true in
  List.iter
    (fun env ->
      let raw = Eval.num env handler in
      let v = if Float.is_finite raw then raw else env.Env.mss in
      let cwnd = env.Env.cwnd in
      if v >= cwnd -. (relative_tolerance *. cwnd) then always_below := false;
      if Float.abs (v -. cwnd) > relative_tolerance *. cwnd then
        always_identity := false)
    probe_envs;
  (not !always_below) && not !always_identity

(** [completions rng sketch ~pool ~budget] — concrete handlers for a
    sketch: exhaustive when the completion count fits in [budget], a
    random sample otherwise; implausible handlers filtered out. *)
let completions rng sketch ~pool ~budget =
  let total = Sketch.num_completions sketch ~pool_size:(Array.length pool) in
  let handlers =
    if total <= budget then Sketch.all_completions sketch ~pool ~max_count:budget
    else Sketch.sample_completions rng sketch ~pool ~n:budget
  in
  List.filter plausible handlers
