(** Point-to-point distances: cheap but phase-sensitive (the weakness
    Figure 3 quantifies against DTW). Both require equal-length series —
    use {!Series.prepare}. *)

val euclidean : float array -> float array -> float
(** L2 distance. Empty input yields [infinity]. *)

val manhattan : float array -> float array -> float
(** L1 distance. Empty input yields [infinity]. *)
