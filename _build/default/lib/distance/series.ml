(** Preparation of CWND series for distance computation.

    Distances compare a ground-truth visible-CWND series against a
    synthesized one. Both are resampled to a fixed length and normalized to
    a common scale so that a distance of "10" means comparable things
    across scenarios with different bandwidths. Normalization divides by
    the ground-truth series' mean (never by the candidate's: a candidate
    must not be able to shrink its own error by inflating its output). *)

let default_length = 128

(** [normalize ~reference xs] scales both series by the reference mean. *)
let normalize ~reference xs =
  let n = Array.length reference in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 reference /. float_of_int n in
  let scale = if mean > 1e-9 then 1.0 /. mean else 1.0 in
  (Array.map (fun v -> v *. scale) reference, Array.map (fun v -> v *. scale) xs)

(** [prepare ?length ~truth ~candidate ()] resamples both value series to
    [length] points and normalizes by the truth's mean, returning
    [(truth', candidate')]. *)
let prepare ?(length = default_length) ~truth ~candidate () =
  let resample xs =
    let n = Array.length xs in
    if n = length then Array.copy xs
    else if n = 0 then Array.make length 0.0
    else begin
      (* Index-based linear interpolation handles both up- and
         down-sampling. *)
      let times = Array.init n float_of_int in
      Abg_util.Resample.linear ~times ~values:xs ~n:length
    end
  in
  let truth = resample truth and candidate = resample candidate in
  normalize ~reference:truth candidate
