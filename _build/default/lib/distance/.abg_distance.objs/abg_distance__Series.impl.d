lib/distance/series.ml: Abg_util Array
