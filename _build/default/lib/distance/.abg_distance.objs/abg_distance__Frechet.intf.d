lib/distance/frechet.mli:
