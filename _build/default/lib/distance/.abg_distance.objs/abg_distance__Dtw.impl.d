lib/distance/dtw.ml: Array Float List Stdlib
