lib/distance/metric.mli:
