lib/distance/dtw.mli:
