lib/distance/metric.ml: Dtw Frechet List Pointwise Series Stdlib String
