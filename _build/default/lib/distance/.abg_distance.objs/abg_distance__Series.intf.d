lib/distance/series.mli:
