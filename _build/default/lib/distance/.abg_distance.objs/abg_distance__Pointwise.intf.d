lib/distance/pointwise.mli:
