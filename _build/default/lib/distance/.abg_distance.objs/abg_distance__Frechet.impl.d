lib/distance/frechet.ml: Array Float
