lib/distance/pointwise.ml: Array Float
