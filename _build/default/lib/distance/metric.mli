(** Unified distance-metric dispatch (§4.3).

    All metrics consume raw (possibly unequal-length) value series;
    resampling to a common length and normalization by the ground truth's
    mean happen inside {!compute}, so every call site gets identical
    semantics. *)

type kind = Dtw | Euclidean | Manhattan | Frechet

val all : kind list
val name : kind -> string
val of_name : string -> kind option

val dtw_band : int -> int
(** [dtw_band length] — the Sakoe–Chiba band used for series of the given
    length (10%, minimum 2). *)

val compute :
  ?length:int -> kind -> truth:float array -> candidate:float array -> float
(** [compute kind ~truth ~candidate] is the distance between a
    ground-truth and a candidate visible-CWND series, after resampling
    both to [length] points (default {!Series.default_length}) and
    normalizing by the truth's mean. Lower is a better match. *)

val default : kind
(** The metric the synthesis pipeline uses unless told otherwise: DTW,
    per the paper's Figure 3 error-tolerance comparison. *)
