(** Dynamic Time Warping distance (Berndt & Clifford, KDD '94) — the
    paper's primary metric (§4.3).

    DTW finds the minimum-cost monotone alignment between two series, so
    it forgives temporal shifts — exactly the tolerance needed when a
    candidate handler reproduces the right window *shape* slightly out of
    phase with the measured trace (Figure 4's discussion). Cost of a
    matched pair is |a - b|; the total is the sum along the optimal
    warping path.

    The optional Sakoe–Chiba [band] constrains |i - j| <= band, cutting
    cost from O(nm) to O(n*band) and preventing degenerate alignments;
    [band = None] computes the exact unconstrained distance. *)

let distance ?band a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then infinity
  else begin
    let w =
      match band with
      | None -> Stdlib.max n m
      | Some w -> Stdlib.max w (abs (n - m))
    in
    (* Rolling two-row DP over the (n+1) x (m+1) cost lattice. *)
    let prev = Array.make (m + 1) infinity in
    let cur = Array.make (m + 1) infinity in
    prev.(0) <- 0.0;
    for i = 1 to n do
      Array.fill cur 0 (m + 1) infinity;
      let lo = Stdlib.max 1 (i - w) and hi = Stdlib.min m (i + w) in
      for j = lo to hi do
        let cost = Float.abs (a.(i - 1) -. b.(j - 1)) in
        let best =
          Float.min prev.(j) (Float.min cur.(j - 1) prev.(j - 1))
        in
        cur.(j) <- cost +. best
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

(** [path a b] additionally returns the optimal warping path as (i, j)
    index pairs — useful for visualizing which parts of two traces were
    aligned. Quadratic memory; intended for inspection, not scoring. *)
let path a b =
  let n = Array.length a and m = Array.length b in
  assert (n > 0 && m > 0);
  let dp = Array.make_matrix (n + 1) (m + 1) infinity in
  dp.(0).(0) <- 0.0;
  for i = 1 to n do
    for j = 1 to m do
      let cost = Float.abs (a.(i - 1) -. b.(j - 1)) in
      dp.(i).(j) <-
        cost
        +. Float.min dp.(i - 1).(j)
             (Float.min dp.(i).(j - 1) dp.(i - 1).(j - 1))
    done
  done;
  let rec walk i j acc =
    if i = 1 && j = 1 then (i - 1, j - 1) :: acc
    else begin
      let candidates =
        List.filter
          (fun (i', j') -> i' >= 1 && j' >= 1)
          [ (i - 1, j - 1); (i - 1, j); (i, j - 1) ]
      in
      let i', j' =
        List.fold_left
          (fun (bi, bj) (ci, cj) ->
            if dp.(ci).(cj) < dp.(bi).(bj) then (ci, cj) else (bi, bj))
          (List.hd candidates) (List.tl candidates)
      in
      walk i' j' ((i - 1, j - 1) :: acc)
    end
  in
  (dp.(n).(m), walk n m [])
