(** Point-to-point distances: Euclidean and Manhattan.

    Both compare series position-by-position (no temporal alignment), so
    they are cheap but sensitive to phase shifts — the weakness Figure 3
    quantifies against DTW. Series must have equal lengths (use
    {!Series.prepare}). *)

let euclidean a b =
  let n = Array.length a in
  assert (n = Array.length b);
  if n = 0 then infinity
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = a.(i) -. b.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  end

let manhattan a b =
  let n = Array.length a in
  assert (n = Array.length b);
  if n = 0 then infinity
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. Float.abs (a.(i) -. b.(i))
    done;
    !acc
  end
