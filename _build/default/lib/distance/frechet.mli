(** Discrete Fréchet ("dog-leash") distance: like DTW it aligns the
    series monotonically, but the cost is the *maximum* pointwise gap
    along the best alignment — one bad excursion dominates. *)

val distance : float array -> float array -> float
(** [distance a b]. Empty input yields [infinity]. *)
