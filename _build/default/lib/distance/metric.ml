(** Unified distance-metric dispatch (§4.3).

    All metrics consume raw (unequal-length) value series; preparation —
    resampling to a common length and normalizing by the ground truth's
    mean — happens here so every call site gets identical semantics. DTW
    is the default; the paper selects it for its tolerance to constant
    error (Figure 3) and accepts its extra cost. *)

type kind = Dtw | Euclidean | Manhattan | Frechet

let all = [ Dtw; Euclidean; Manhattan; Frechet ]

let name = function
  | Dtw -> "dtw"
  | Euclidean -> "euclidean"
  | Manhattan -> "manhattan"
  | Frechet -> "frechet"

let of_name s =
  List.find_opt (fun k -> String.equal (name k) s) all

(* DTW band: 10% of the series length, the standard Sakoe-Chiba default. *)
let dtw_band length = Stdlib.max 2 (length / 10)

(** [compute kind ~truth ~candidate] is the distance between the
    ground-truth and candidate visible-CWND value series. Lower is a
    better match. *)
let compute ?(length = Series.default_length) kind ~truth ~candidate =
  let truth', candidate' = Series.prepare ~length ~truth ~candidate () in
  match kind with
  | Dtw -> Dtw.distance ~band:(dtw_band length) truth' candidate'
  | Euclidean -> Pointwise.euclidean truth' candidate'
  | Manhattan -> Pointwise.manhattan truth' candidate'
  | Frechet -> Frechet.distance truth' candidate'

(** Default metric used by the synthesis pipeline. *)
let default = Dtw
