(** Discrete Fréchet distance (the "dog-leash" distance).

    Like DTW it aligns the two series monotonically, but the cost is the
    *maximum* pointwise gap along the best alignment instead of the sum —
    one bad excursion dominates the score. Included as the fourth metric
    of the Figure 3 comparison. Computed with a rolling-row DP, O(nm)
    time, O(m) space. *)

let distance a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then infinity
  else begin
    let prev = Array.make m infinity in
    let cur = Array.make m infinity in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        let d = Float.abs (a.(i) -. b.(j)) in
        let reach =
          if i = 0 && j = 0 then d
          else begin
            let best = ref infinity in
            if i > 0 then best := Float.min !best prev.(j);
            if j > 0 then best := Float.min !best cur.(j - 1);
            if i > 0 && j > 0 then best := Float.min !best prev.(j - 1);
            Float.max d !best
          end
        in
        cur.(j) <- reach
      done;
      Array.blit cur 0 prev 0 m
    done;
    prev.(m - 1)
  end
