(** Preparation of CWND series for distance computation: resampling to a
    fixed length and normalization by the ground-truth mean, so a
    candidate cannot shrink its own error by inflating its output. *)

val default_length : int
(** Points per prepared series (128). *)

val normalize :
  reference:float array -> float array -> float array * float array
(** [normalize ~reference xs] scales both series by the reference's mean;
    returns [(reference', xs')]. *)

val prepare :
  ?length:int ->
  truth:float array ->
  candidate:float array ->
  unit ->
  float array * float array
(** [prepare ~truth ~candidate ()] resamples both value series to
    [length] points (index-based linear interpolation) and normalizes by
    the truth's mean. *)
