lib/parallel/pool.ml: Array Domain List Stdlib
