lib/parallel/pool.mli:
