(** Parallel work distribution over OCaml 5 domains.

    The paper distributes bucket scoring over a Ray cluster (§5); this
    module is the laptop-scale substitute. Work is split into contiguous
    chunks, one per domain, because bucket scoring is embarrassingly
    parallel and chunking avoids any shared mutable state: each worker
    writes to a disjoint slice of the result array.

    [num_domains] defaults to the machine's recommended domain count, and a
    sequential fallback is used for tiny inputs where domain spawn overhead
    dominates. *)

let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(** [map ?num_domains f xs] is [Array.map f xs] computed in parallel.
    [f] must be safe to run concurrently on distinct elements. Exceptions
    raised by [f] are re-raised in the caller. *)
let map ?num_domains f xs =
  let n = Array.length xs in
  let domains = match num_domains with Some d -> Stdlib.max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n < 4 then Array.map f xs
  else begin
    let out = Array.make n None in
    let workers = Stdlib.min domains n in
    let chunk = (n + workers - 1) / workers in
    let run lo hi () =
      for i = lo to hi do
        out.(i) <- Some (f xs.(i))
      done
    in
    let handles =
      List.init workers (fun w ->
          let lo = w * chunk in
          let hi = Stdlib.min (lo + chunk - 1) (n - 1) in
          if lo > hi then None else Some (Domain.spawn (run lo hi)))
    in
    List.iter (function Some d -> Domain.join d | None -> ()) handles;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing result")
      out
  end

(** [mapi ?num_domains f xs] is the indexed variant of {!map}. *)
let mapi ?num_domains f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map ?num_domains (fun (i, x) -> f i x) indexed

(** [map_list ?num_domains f xs] is {!map} over lists. *)
let map_list ?num_domains f xs =
  Array.to_list (map ?num_domains f (Array.of_list xs))
