(** Parallel work distribution over OCaml 5 domains — the laptop-scale
    substitute for the paper's Ray cluster (§5). Work is split into
    contiguous chunks, one per domain; falls back to sequential execution
    for tiny inputs or single-domain machines. *)

val default_domains : unit -> int
(** Recommended worker count for this machine (at least 1). *)

val map : ?num_domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] is [Array.map f xs] computed in parallel. [f] must be safe
    to run concurrently on distinct elements; exceptions re-raise in the
    caller. *)

val mapi : ?num_domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val map_list : ?num_domains:int -> ('a -> 'b) -> 'a list -> 'b list
