(** Trace serialization: a line-oriented TSV with a [#]-comment header.

    The format is intentionally trivial so traces can be produced or
    consumed by external tools (tcpdump post-processors, plotting
    scripts). One record per line, columns in the order of
    {!Record.t}. *)

let header = "# abagnale-trace v1"

let columns =
  [ "time"; "cwnd"; "in_flight"; "acked_bytes"; "rtt"; "min_rtt"; "max_rtt";
    "ack_rate"; "rtt_gradient"; "delay_gradient"; "time_since_loss"; "wmax";
    "mss" ]

let record_to_line (r : Record.t) =
  String.concat "\t"
    (List.map
       (Printf.sprintf "%.9g")
       [ r.Record.time; r.cwnd; r.in_flight; r.acked_bytes; r.rtt; r.min_rtt;
         r.max_rtt; r.ack_rate; r.rtt_gradient; r.delay_gradient;
         r.time_since_loss; r.wmax; r.mss ])

let record_of_line line =
  let fields =
    try String.split_on_char '\t' line |> List.map float_of_string
    with Failure _ -> invalid_arg ("Io.record_of_line: malformed line: " ^ line)
  in
  match fields with
  | [ time; cwnd; in_flight; acked_bytes; rtt; min_rtt; max_rtt; ack_rate;
      rtt_gradient; delay_gradient; time_since_loss; wmax; mss ] ->
      {
        Record.time; cwnd; in_flight; acked_bytes; rtt; min_rtt; max_rtt;
        ack_rate; rtt_gradient; delay_gradient; time_since_loss; wmax; mss;
      }
  | _ -> invalid_arg ("Io.record_of_line: malformed line: " ^ line)

let write_channel oc (trace : Trace.t) =
  output_string oc (header ^ "\n");
  Printf.fprintf oc "# cca: %s\n" trace.Trace.cca_name;
  Printf.fprintf oc "# scenario: %s\n" trace.Trace.scenario;
  Printf.fprintf oc "# losses: %s\n"
    (String.concat ","
       (Array.to_list (Array.map (Printf.sprintf "%.9g") trace.Trace.loss_times)));
  Printf.fprintf oc "# columns: %s\n" (String.concat "\t" columns);
  Array.iter
    (fun r -> output_string oc (record_to_line r ^ "\n"))
    trace.Trace.records

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc trace)

let parse_meta lines key =
  let prefix = "# " ^ key ^ ": " in
  List.find_map
    (fun line ->
      if String.length line >= String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then Some (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
      else None)
    lines

let read_channel ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  let meta, data = List.partition (fun l -> String.length l > 0 && l.[0] = '#') lines in
  let cca_name = Option.value ~default:"unknown" (parse_meta meta "cca") in
  let scenario = Option.value ~default:"unknown" (parse_meta meta "scenario") in
  let loss_times =
    match parse_meta meta "losses" with
    | None | Some "" -> [||]
    | Some s ->
        String.split_on_char ',' s |> List.map float_of_string |> Array.of_list
  in
  let records =
    data
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map record_of_line
    |> Array.of_list
  in
  {
    Trace.cca_name;
    scenario;
    config = Abg_netsim.Config.default;
    records;
    loss_times;
  }

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
