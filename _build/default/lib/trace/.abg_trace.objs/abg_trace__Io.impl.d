lib/trace/io.ml: Abg_netsim Array Fun List Option Printf Record String Trace
