lib/trace/segmentation.ml: Array List Record Stdlib Trace
