lib/trace/record.ml: Abg_dsl
