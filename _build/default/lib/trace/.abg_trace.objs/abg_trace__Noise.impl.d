lib/trace/noise.ml: Abg_util Array Float List Record Rng Trace
