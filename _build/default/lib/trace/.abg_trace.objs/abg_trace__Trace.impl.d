lib/trace/trace.ml: Abg_cca Abg_netsim Array Config Float List Record Sim
