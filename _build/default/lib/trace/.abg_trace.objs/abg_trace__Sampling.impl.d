lib/trace/sampling.ml: Abg_util Array List Rng Segmentation Stdlib
