(** One per-ACK trace record with all derived congestion signals.

    This is the measurement unit of the whole pipeline: trace collection
    produces arrays of records, and candidate-handler replay (§3.1) turns a
    record into a DSL evaluation environment — substituting the candidate's
    own simulated window for [cwnd]. *)

type t = {
  time : float;  (** seconds since flow start *)
  cwnd : float;  (** ground-truth CCA window, bytes *)
  in_flight : float;  (** bytes in flight: the externally visible CWND *)
  acked_bytes : float;
  rtt : float;
  min_rtt : float;
  max_rtt : float;
  ack_rate : float;  (** delivery-rate estimate, bytes/s *)
  rtt_gradient : float;
  delay_gradient : float;
  time_since_loss : float;
  wmax : float;  (** window at the most recent loss event, bytes *)
  mss : float;
}

(** [to_env record ~cwnd] is the evaluation environment for a candidate
    handler whose current simulated window is [cwnd]. *)
let to_env record ~cwnd : Abg_dsl.Env.t =
  {
    Abg_dsl.Env.cwnd;
    mss = record.mss;
    acked_bytes = record.acked_bytes;
    time_since_loss = record.time_since_loss;
    rtt = record.rtt;
    min_rtt = record.min_rtt;
    max_rtt = record.max_rtt;
    ack_rate = record.ack_rate;
    rtt_gradient = record.rtt_gradient;
    delay_gradient = record.delay_gradient;
    wmax = record.wmax;
  }

(** [load_env env record ~cwnd] overwrites every field of a scratch
    environment in place — the allocation-free variant of {!to_env} for
    the replay hot loop. *)
let load_env (env : Abg_dsl.Env.t) record ~cwnd =
  env.Abg_dsl.Env.cwnd <- cwnd;
  env.Abg_dsl.Env.mss <- record.mss;
  env.Abg_dsl.Env.acked_bytes <- record.acked_bytes;
  env.Abg_dsl.Env.time_since_loss <- record.time_since_loss;
  env.Abg_dsl.Env.rtt <- record.rtt;
  env.Abg_dsl.Env.min_rtt <- record.min_rtt;
  env.Abg_dsl.Env.max_rtt <- record.max_rtt;
  env.Abg_dsl.Env.ack_rate <- record.ack_rate;
  env.Abg_dsl.Env.rtt_gradient <- record.rtt_gradient;
  env.Abg_dsl.Env.delay_gradient <- record.delay_gradient;
  env.Abg_dsl.Env.wmax <- record.wmax

(** The observed window value used as ground truth for distances: the
    visible (in-flight) window, which is what a passive measurement
    vantage point sees. *)
let observed_cwnd record = record.in_flight
