(** Diversity-driven trace-segment selection (§3.2).

    Evaluating every packet of every trace is too costly, so each
    refinement iteration works on a subset of segments. The paper's
    strategy: pick half the budget uniformly at random, then for each
    picked segment add the not-yet-picked segment *farthest* from it under
    the trace distance — biasing the subset toward covering distinct
    network conditions and away from over-fitting one configuration. *)

open Abg_util

(** [select rng ~distance ~n segments] returns at most [n] segments using
    the half-random / half-farthest strategy. [distance] compares two
    observed-CWND value series. *)
let select rng ~distance ~n segments =
  let pool = Array.of_list segments in
  let total = Array.length pool in
  if total <= n then segments
  else begin
    let picked = Array.make total false in
    let series = Array.map Segmentation.observed pool in
    let chosen = ref [] in
    let n_random = Stdlib.max 1 (n / 2) in
    (* Random half. *)
    let order = Array.init total (fun i -> i) in
    Rng.shuffle rng order;
    let seeds = Array.sub order 0 (Stdlib.min n_random total) in
    Array.iter
      (fun i ->
        picked.(i) <- true;
        chosen := i :: !chosen)
      seeds;
    (* Farthest-match half: for each seed, add the unpicked segment with
       the greatest distance from it. *)
    Array.iter
      (fun seed ->
        if List.length !chosen < n then begin
          let best = ref (-1) in
          let best_d = ref neg_infinity in
          for j = 0 to total - 1 do
            if not picked.(j) then begin
              let d = distance series.(seed) series.(j) in
              if d > !best_d then begin
                best_d := d;
                best := j
              end
            end
          done;
          if !best >= 0 then begin
            picked.(!best) <- true;
            chosen := !best :: !chosen
          end
        end)
      seeds;
    List.rev_map (fun i -> pool.(i)) !chosen
  end
