lib/classifier/gordon.ml: Abg_cca Abg_netsim Abg_trace Array Features Lazy List Printf
