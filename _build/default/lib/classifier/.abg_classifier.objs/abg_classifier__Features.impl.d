lib/classifier/features.ml: Abg_trace Abg_util Array Float List Printf Stats Stdlib
