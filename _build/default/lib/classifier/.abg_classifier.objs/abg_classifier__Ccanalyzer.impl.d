lib/classifier/ccanalyzer.ml: Abg_cca Abg_distance Abg_trace Array Gordon Lazy List
