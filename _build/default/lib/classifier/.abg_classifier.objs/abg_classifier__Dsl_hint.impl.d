lib/classifier/dsl_hint.ml: Abg_dsl Catalog Gordon
