(** From classifier verdict to sub-DSL choice (§3.3).

    "We use existing CCA classifiers to hint which sub-DSL Abagnale should
    use for a given set of traces." The mapping groups the known CCAs into
    the families whose signals the sub-DSLs carry: Reno-like loss-based
    algorithms, Cubic's time-since-loss polynomial family, and the
    delay/rate family (with the Vegas queue-estimator macro for its
    conditional members). *)

open Abg_dsl

let family_of_cca = function
  | "reno" | "westwood" | "scalable" | "lp" | "hybla" -> Catalog.reno
  | "cubic" | "bic" -> Catalog.cubic
  | "bbr" -> Catalog.delay
  | "vegas" | "veno" | "nv" | "yeah" | "illinois" | "htcp" | "cdg" ->
      Catalog.vegas
  | _ -> Catalog.vegas

(** [choose verdict] — the sub-DSL Abagnale is invoked with. An unknown
    CCA falls back to the family of the closest known one; with no hint at
    all, the most expressive delay DSL is used. *)
let choose = function
  | Gordon.Known name -> family_of_cca name
  | Gordon.Unknown (Some closest) -> family_of_cca closest
  | Gordon.Unknown None -> Catalog.delay
