(** Congestion signals available to DSL expressions (Listing 1).

    A signal is a per-ACK measurement that the trace-collection substrate
    records and that a synthesized handler may read. Signals carry units for
    the dimensional-analysis constraint of §4.1. *)

open Abg_util

type t =
  | Mss  (** maximum segment size, bytes *)
  | Acked_bytes  (** bytes newly acknowledged by this ACK *)
  | Time_since_loss  (** seconds since the last inferred loss event *)
  | Rtt  (** smoothed round-trip time sample, seconds *)
  | Min_rtt  (** minimum RTT observed on the connection, seconds *)
  | Max_rtt  (** maximum RTT observed on the connection, seconds *)
  | Ack_rate  (** delivery rate estimate, bytes per second *)
  | Rtt_gradient  (** d(RTT)/dt, dimensionless (s/s) *)
  | Delay_gradient  (** smoothed queueing-delay gradient, dimensionless *)
  | Wmax  (** window at the time of the last loss, bytes (Cubic-DSL) *)

let all =
  [ Mss; Acked_bytes; Time_since_loss; Rtt; Min_rtt; Max_rtt; Ack_rate;
    Rtt_gradient; Delay_gradient; Wmax ]

let name = function
  | Mss -> "mss"
  | Acked_bytes -> "acked"
  | Time_since_loss -> "time-since-loss"
  | Rtt -> "rtt"
  | Min_rtt -> "min-rtt"
  | Max_rtt -> "max-rtt"
  | Ack_rate -> "ack-rate"
  | Rtt_gradient -> "rtt-gradient"
  | Delay_gradient -> "delay-gradient"
  | Wmax -> "wmax"

let of_name s =
  List.find_opt (fun sig_ -> String.equal (name sig_) s) all

let unit_of = function
  | Mss | Acked_bytes | Wmax -> Units.bytes
  | Time_since_loss | Rtt | Min_rtt | Max_rtt -> Units.seconds
  | Ack_rate -> Units.rate
  | Rtt_gradient | Delay_gradient -> Units.dimensionless

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt s = Format.pp_print_string fmt (name s)
