(** Sketches: expressions with unassigned constant holes (§4.1–4.2).

    Enumeration returns sketches; concretization fills each hole from the
    DSL's constant pool. The number of completions is [pool^k] for [k]
    holes, which is why the refinement loop samples completions rather than
    enumerating them (§4.2). *)

type t = Expr.num

let holes = Expr.holes

(** [num_completions sketch ~pool_size] — completions count, saturating at
    [max_int] to avoid overflow for deep sketches. *)
let num_completions sketch ~pool_size =
  let k = List.length (holes sketch) in
  let rec power acc i =
    if i = 0 then acc
    else if acc > max_int / pool_size then max_int
    else power (acc * pool_size) (i - 1)
  in
  power 1 k

(** [complete sketch assignment] fills hole [i] with [assignment.(i)]s
    value looked up positionally in the sketch's hole list. *)
let complete sketch values =
  let hole_ids = holes sketch in
  let table = List.combine hole_ids (Array.to_list values) in
  Expr.fill sketch (fun i -> List.assoc i table)

(** [all_completions sketch ~pool ~max_count] enumerates completions in
    mixed-radix order over the pool, stopping at [max_count]. *)
let all_completions sketch ~pool ~max_count =
  let hole_ids = holes sketch in
  let k = List.length hole_ids in
  let p = Array.length pool in
  if k = 0 then [ sketch ]
  else begin
    let total = num_completions sketch ~pool_size:p in
    let count = Stdlib.min total max_count in
    List.init count (fun idx ->
        let values =
          Array.init k (fun h ->
              let digit = idx / int_of_float (Float.pow (float_of_int p) (float_of_int h)) mod p in
              pool.(digit))
        in
        complete sketch values)
  end

(** [sample_completions rng sketch ~pool ~n] draws [n] uniformly random
    completions (with replacement across samples, independent per hole);
    used by bucket scoring where exhaustive completion is too costly. *)
let sample_completions rng sketch ~pool ~n =
  let hole_ids = holes sketch in
  let k = List.length hole_ids in
  if k = 0 then [ sketch ]
  else
    List.init n (fun _ ->
        let values = Array.init k (fun _ -> Abg_util.Rng.choice rng pool) in
        complete sketch values)

(** Operator subset used by a sketch — the bucket discriminator (§4.4). *)
let operator_set sketch =
  let add acc op = if List.exists (Component.equal op) acc then acc else op :: acc in
  let rec go acc = function
    | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
        acc
    | Expr.Add (a, b) -> go (go (add acc Component.Op_add) a) b
    | Expr.Sub (a, b) -> go (go (add acc Component.Op_sub) a) b
    | Expr.Mul (a, b) -> go (go (add acc Component.Op_mul) a) b
    | Expr.Div (a, b) -> go (go (add acc Component.Op_div) a) b
    | Expr.Ite (c, t, e) ->
        go (go (go_bool (add acc Component.Op_ite) c) t) e
    | Expr.Cube a -> go (add acc Component.Op_cube) a
    | Expr.Cbrt a -> go (add acc Component.Op_cbrt) a
  and go_bool acc = function
    | Expr.Lt (a, b) -> go (go (add acc Component.Op_lt) a) b
    | Expr.Gt (a, b) -> go (go (add acc Component.Op_gt) a) b
    | Expr.Mod_eq (a, b) -> go (go (add acc Component.Op_modeq) a) b
  in
  List.sort Component.compare (go [] sketch)
