(** Evaluation environment: the per-ACK snapshot a handler executes
    against. The [cwnd] field is the *candidate's own* simulated window —
    statefulness flows through it. Fields are mutable so the replay hot
    loop can reuse one scratch environment per run instead of allocating
    per ACK. *)

type t = {
  mutable cwnd : float;
  mutable mss : float;
  mutable acked_bytes : float;
  mutable time_since_loss : float;
  mutable rtt : float;
  mutable min_rtt : float;
  mutable max_rtt : float;
  mutable ack_rate : float;
  mutable rtt_gradient : float;
  mutable delay_gradient : float;
  mutable wmax : float;
}

val copy : t -> t
val signal : t -> Signal.t -> float

val example : t
(** A neutral environment for smoke-testing expressions: 1448-byte MSS on
    a 50 ms, ~10 Mbit/s path. *)

val with_cwnd : t -> float -> t
