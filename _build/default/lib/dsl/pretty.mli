(** Pretty-printing in the notation of the paper's Table 2: infix
    arithmetic, [{cond} ? a : b] conditionals, macros by name, constants
    with minimal digits ([.7], not [0.700000]). *)

val const_to_string : float -> string
val num : Expr.num -> string
val to_string : Expr.num -> string
(** Alias of {!num}. *)

val boolean : Expr.boolean -> string
val pp : Format.formatter -> Expr.num -> unit
val pp_bool : Format.formatter -> Expr.boolean -> unit
