(** Sub-DSL catalog (§3.3, Listing 1): family-specific vocabularies,
    depth/node budgets, constant pools and unit-checking switches. The
    classifier hint maps a trace suite to one of these. *)

type t = {
  name : string;
  components : Component.t list;
  max_depth : int;
  max_nodes : int;
  constant_pool : float array;
  unit_check : bool;
}

val default_constants : float array
(** The §4.2 approximate-concretization pool: constants observed in the
    published classical CCAs, plus 0 and small integers. *)

val reno : t
(** The base Reno-DSL (black elements of Listing 1 + reno-inc). *)

val cubic : t
(** Reno plus cube/cube-root and wmax; unit checking disabled (§5.5). *)

val delay : t
(** The rate/delay DSL (starred extensions of Listing 1). *)

val vegas : t
(** The delay DSL plus the vegas-diff macro. *)

val delay_7 : t
val delay_11 : t
val vegas_11 : t
(** The Figure 6 budget variants. *)

val all : t list
val find : string -> t option
val operators : t -> Component.t list
val leaves : t -> Component.t list
