(** DSL components: the vocabulary from which sketches are assembled.

    The enumerator ([Abg_enum]) works over a flat component list; each
    component knows its sort (num/bool), its children's sorts, and whether
    it counts as an *operator* for the bucket discriminator of §4.4
    (buckets partition the space by the exact subset of operators used). *)

type sort = Num | Bool

type t =
  | Leaf_cwnd
  | Leaf_signal of Signal.t
  | Leaf_const  (** a sketch hole, concretized later *)
  | Leaf_macro of Macro.t
  | Op_add
  | Op_sub
  | Op_mul
  | Op_div
  | Op_ite
  | Op_cube
  | Op_cbrt
  | Op_lt
  | Op_gt
  | Op_modeq

let sort = function
  | Leaf_cwnd | Leaf_signal _ | Leaf_const | Leaf_macro _ -> Num
  | Op_add | Op_sub | Op_mul | Op_div | Op_ite | Op_cube | Op_cbrt -> Num
  | Op_lt | Op_gt | Op_modeq -> Bool

let child_sorts = function
  | Leaf_cwnd | Leaf_signal _ | Leaf_const | Leaf_macro _ -> []
  | Op_add | Op_sub | Op_mul | Op_div -> [ Num; Num ]
  | Op_ite -> [ Bool; Num; Num ]
  | Op_cube | Op_cbrt -> [ Num ]
  | Op_lt | Op_gt | Op_modeq -> [ Num; Num ]

let arity c = List.length (child_sorts c)

(** Operators are the non-leaf components; the bucket discriminator of §4.4
    is the subset of these a sketch uses. *)
let is_operator c = arity c > 0

let name = function
  | Leaf_cwnd -> "cwnd"
  | Leaf_signal s -> Signal.name s
  | Leaf_const -> "const"
  | Leaf_macro m -> Macro.name m
  | Op_add -> "+"
  | Op_sub -> "-"
  | Op_mul -> "*"
  | Op_div -> "/"
  | Op_ite -> "?:"
  | Op_cube -> "^3"
  | Op_cbrt -> "cbrt"
  | Op_lt -> "<"
  | Op_gt -> ">"
  | Op_modeq -> "%="

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt c = Format.pp_print_string fmt (name c)

(** Commutative operators, used by the enumerator's symmetry-breaking
    constraint (left argument not structurally greater than right). *)
let is_commutative = function
  | Op_add | Op_mul -> true
  | Leaf_cwnd | Leaf_signal _ | Leaf_const | Leaf_macro _ | Op_sub | Op_div
  | Op_ite | Op_cube | Op_cbrt | Op_lt | Op_gt | Op_modeq ->
      false
