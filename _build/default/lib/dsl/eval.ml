(** Expression evaluation.

    Division by (near-)zero yields 0 rather than an infinity: during a
    search over millions of machine-generated candidates, degenerate
    arithmetic must not abort a replay — a handler that divides by zero
    simply scores badly. [Hole]s must be filled before evaluation. *)

open Abg_util

exception Unfilled_hole of int

let rec num (env : Env.t) = function
  | Expr.Cwnd -> env.cwnd
  | Expr.Signal s -> Env.signal env s
  | Expr.Macro m -> Macro.eval env m
  | Expr.Const c -> c
  | Expr.Hole i -> raise (Unfilled_hole i)
  | Expr.Add (a, b) -> num env a +. num env b
  | Expr.Sub (a, b) -> num env a -. num env b
  | Expr.Mul (a, b) -> num env a *. num env b
  | Expr.Div (a, b) -> Floatx.safe_div (num env a) (num env b)
  | Expr.Ite (c, t, e) -> if boolean env c then num env t else num env e
  | Expr.Cube a ->
      let v = num env a in
      v *. v *. v
  | Expr.Cbrt a -> Floatx.cbrt (num env a)

and boolean env = function
  | Expr.Lt (a, b) -> num env a < num env b
  | Expr.Gt (a, b) -> num env a > num env b
  | Expr.Mod_eq (a, b) ->
      (* n1 % n2 = 0, with a small tolerance so that float windows counted
         in segments (e.g. CWND % 2.7 in the paper's BBR result) still
         produce a periodic predicate rather than never firing. *)
      let a_v = num env a and b_v = num env b in
      if Float.abs b_v < 1e-9 then false
      else begin
        let r = Floatx.fmod a_v b_v in
        let tol = 0.05 *. Float.abs b_v in
        r <= tol || Float.abs b_v -. r <= tol
      end

(** [handler expr env] is the handler's proposed new congestion window,
    guarded to stay finite and at least one MSS (a real sender can never
    run a window below one segment). *)
let handler expr (env : Env.t) =
  let v = num env expr in
  if not (Float.is_finite v) then env.mss else Float.max env.mss v
