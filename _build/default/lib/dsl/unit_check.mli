(** Unit (dimensional-analysis) checking of expressions (§4.1) over a
    finite integer-exponent unit domain — the quantifier-free
    finite-domain restriction the paper adopts, with its documented
    consequence that cube roots of non-cube units are untypable (the
    Cubic limitation, §5.5). *)

val constant_units : Abg_util.Units.t list
(** Units a bare (non-zero) constant may carry: scalar, seconds, or
    per-second. Zero is fully unit-polymorphic. *)

val possible : ?limit:int -> Expr.num -> Abg_util.Units.t list
(** The set of units the expression can denote, bottom-up, with constants
    ranging over {!constant_units}. [limit] bounds the absolute exponent
    (default 3). *)

val bool_consistent : ?limit:int -> Expr.boolean -> bool
(** Order comparisons need a shared unit on both sides; the modular
    predicate is exempt (the paper's own BBR result compares
    [CWND % 2.7]). *)

val check : ?limit:int -> Expr.num -> expected:Abg_util.Units.t -> bool
(** Can the expression denote a quantity in [expected]? The pipeline uses
    [expected = Units.bytes] for cwnd-ack handlers. *)
