(** The CCA expression AST (Listing 1).

    Two sorts, [num] and [boolean], mirror the grammar: a cwnd-ack handler
    is a [num] expression whose value becomes the new congestion window.
    Constant positions appear either concretized ([Const]) or as sketch
    holes ([Hole]) to be filled during concretization (§4.2). *)

type num =
  | Cwnd
  | Signal of Signal.t
  | Macro of Macro.t
  | Const of float
  | Hole of int  (** sketch hole, identified by index *)
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num
  | Ite of boolean * num * num
  | Cube of num  (** num^3 *)
  | Cbrt of num  (** cube root *)

and boolean =
  | Lt of num * num
  | Gt of num * num
  | Mod_eq of num * num  (** n1 % n2 = 0 *)

(** Structural equality. *)
let rec equal_num a b =
  match (a, b) with
  | Cwnd, Cwnd -> true
  | Signal s1, Signal s2 -> Signal.equal s1 s2
  | Macro m1, Macro m2 -> Macro.equal m1 m2
  | Const c1, Const c2 -> Float.equal c1 c2
  | Hole i1, Hole i2 -> i1 = i2
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2) ->
      equal_num a1 b1 && equal_num a2 b2
  | Ite (c1, t1, e1), Ite (c2, t2, e2) ->
      equal_bool c1 c2 && equal_num t1 t2 && equal_num e1 e2
  | Cube a1, Cube b1 | Cbrt a1, Cbrt b1 -> equal_num a1 b1
  | ( ( Cwnd | Signal _ | Macro _ | Const _ | Hole _ | Add _ | Sub _ | Mul _
      | Div _ | Ite _ | Cube _ | Cbrt _ ),
      _ ) ->
      false

and equal_bool a b =
  match (a, b) with
  | Lt (a1, a2), Lt (b1, b2)
  | Gt (a1, a2), Gt (b1, b2)
  | Mod_eq (a1, a2), Mod_eq (b1, b2) ->
      equal_num a1 b1 && equal_num a2 b2
  | (Lt _ | Gt _ | Mod_eq _), _ -> false

(** [size e] is the number of AST nodes ("up to 7 or 11 nodes", §6.3). *)
let rec size = function
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Ite (c, t, e) -> 1 + size_bool c + size t + size e
  | Cube a | Cbrt a -> 1 + size a

and size_bool = function
  | Lt (a, b) | Gt (a, b) | Mod_eq (a, b) -> 1 + size a + size b

(** [depth e] is the number of levels; leaves (incl. macros) have depth 1. *)
let rec depth = function
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      1 + Stdlib.max (depth a) (depth b)
  | Ite (c, t, e) ->
      1 + Stdlib.max (depth_bool c) (Stdlib.max (depth t) (depth e))
  | Cube a | Cbrt a -> 1 + depth a

and depth_bool = function
  | Lt (a, b) | Gt (a, b) | Mod_eq (a, b) ->
      1 + Stdlib.max (depth a) (depth b)

(** [holes e] is the sorted list of distinct hole indices in [e]. *)
let holes e =
  let rec go acc = function
    | Hole i -> i :: acc
    | Cwnd | Signal _ | Macro _ | Const _ -> acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
    | Ite (c, t, el) -> go (go (go_bool acc c) t) el
    | Cube a | Cbrt a -> go acc a
  and go_bool acc = function
    | Lt (a, b) | Gt (a, b) | Mod_eq (a, b) -> go (go acc a) b
  in
  List.sort_uniq compare (go [] e)

(** [fill e assignment] replaces each [Hole i] with
    [Const (assignment i)]. *)
let rec fill e assignment =
  match e with
  | Hole i -> Const (assignment i)
  | Cwnd | Signal _ | Macro _ | Const _ -> e
  | Add (a, b) -> Add (fill a assignment, fill b assignment)
  | Sub (a, b) -> Sub (fill a assignment, fill b assignment)
  | Mul (a, b) -> Mul (fill a assignment, fill b assignment)
  | Div (a, b) -> Div (fill a assignment, fill b assignment)
  | Ite (c, t, el) ->
      Ite (fill_bool c assignment, fill t assignment, fill el assignment)
  | Cube a -> Cube (fill a assignment)
  | Cbrt a -> Cbrt (fill a assignment)

and fill_bool b assignment =
  match b with
  | Lt (x, y) -> Lt (fill x assignment, fill y assignment)
  | Gt (x, y) -> Gt (fill x assignment, fill y assignment)
  | Mod_eq (x, y) -> Mod_eq (fill x assignment, fill y assignment)

(** [signals e] is the set of congestion signals read by [e], including
    those read through macros (macros are expanded for this purpose). *)
let signals e =
  let of_macro = function
    | Macro.Reno_inc -> [ Signal.Acked_bytes; Signal.Mss ]
    | Macro.Vegas_diff ->
        [ Signal.Rtt; Signal.Min_rtt; Signal.Ack_rate; Signal.Mss ]
    | Macro.Htcp_diff -> [ Signal.Rtt; Signal.Min_rtt; Signal.Max_rtt ]
    | Macro.Rtts_since_loss -> [ Signal.Time_since_loss; Signal.Rtt ]
  in
  let rec go acc = function
    | Signal s -> s :: acc
    | Macro m -> of_macro m @ acc
    | Cwnd | Const _ | Hole _ -> acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
    | Ite (c, t, el) -> go (go (go_bool acc c) t) el
    | Cube a | Cbrt a -> go acc a
  and go_bool acc = function
    | Lt (a, b) | Gt (a, b) | Mod_eq (a, b) -> go (go acc a) b
  in
  List.sort_uniq Signal.compare (go [] e)
