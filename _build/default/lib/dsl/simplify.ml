(** Algebraic simplification — the sympy substitute (§4.1).

    The enumerator rejects sketches that are "arithmetically simplifiable":
    a sketch whose rewritten form has fewer nodes carries redundant
    structure, and some smaller sketch in the space denotes the same
    function. The rewriter below implements the local rules that matter for
    this DSL; like sympy as used by the paper, it performs no interval
    reasoning, so e.g. a conditional that is only *semantically* vacuous
    (Student 5, §5.6) is not reduced. *)

open Expr

let is_const = function Const _ -> true | _ -> false

(* One bottom-up rewriting pass. *)
let rec pass e =
  match e with
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> e
  | Add (a, b) -> begin
      match (pass a, pass b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      (* a + (b - a) = b, in either operand order. *)
      | a', Sub (x, y) when equal_num a' y -> x
      | Sub (x, y), b' when equal_num b' y -> x
      | a', b' -> Add (a', b')
    end
  | Sub (a, b) -> begin
      match (pass a, pass b) with
      | Const x, Const y -> Const (x -. y)
      | a', Const 0.0 -> a'
      | a', b' when equal_num a' b' -> Const 0.0
      (* (a + b) - a = b; a - (a - c) = c; a - (a + c) = -... (left out:
         negative results are rarely sketches' intent and -1 * c is not
         smaller). *)
      | Add (x, y), b' when equal_num x b' -> y
      | Add (x, y), b' when equal_num y b' -> x
      | a', Sub (x, c) when equal_num a' x -> c
      | a', b' -> Sub (a', b')
    end
  | Mul (a, b) -> begin
      match (pass a, pass b) with
      | Const x, Const y -> Const (x *. y)
      | Const 0.0, _ | _, Const 0.0 -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      (* a * (b / a) = b, in either operand order. *)
      | a', Div (x, y) when equal_num a' y -> x
      | Div (x, y), b' when equal_num b' y -> x
      | a', b' -> Mul (a', b')
    end
  | Div (a, b) -> begin
      match (pass a, pass b) with
      | Const x, Const y when y <> 0.0 -> Const (x /. y)
      | Const 0.0, _ -> Const 0.0
      | a', Const 1.0 -> a'
      | a', b' when equal_num a' b' && not (is_const a') -> Const 1.0
      (* Cancellation through a nested quotient/product: a / (a / c) = c,
         (a * b) / a = b. These are the identity composites the enumerator
         would otherwise emit to smuggle CWND through a bigger tree. *)
      | a', Div (x, c) when equal_num a' x -> c
      | Mul (x, y), b' when equal_num x b' -> y
      | Mul (x, y), b' when equal_num y b' -> x
      | a', b' -> Div (a', b')
    end
  | Ite (c, t, el) -> begin
      let t' = pass t and el' = pass el in
      match pass_bool c with
      | `Known true -> t'
      | `Known false -> el'
      | `Open c' -> if equal_num t' el' then t' else Ite (c', t', el')
    end
  | Cube a -> begin
      match pass a with
      | Const x -> Const (x *. x *. x)
      | Cbrt inner -> inner
      | a' -> Cube a'
    end
  | Cbrt a -> begin
      match pass a with
      | Const x -> Const (Abg_util.Floatx.cbrt x)
      | Cube inner -> inner
      | a' -> Cbrt a'
    end

and pass_bool b =
  let fold cmp a b =
    match (pass a, pass b) with
    | Const x, Const y -> `Known (cmp x y)
    | a', b' when equal_num a' b' -> `Known false
    | a', b' -> `Open (a', b')
  in
  match b with
  | Lt (a, b) -> begin
      match fold ( < ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> `Open (Lt (a', b'))
    end
  | Gt (a, b) -> begin
      match fold ( > ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> `Open (Gt (a', b'))
    end
  | Mod_eq (a, b) -> begin
      (* x % x = 0 is always true; constants fold. *)
      match (pass a, pass b) with
      | Const x, Const y when y <> 0.0 ->
          `Known (Float.abs (Float.rem x y) < 1e-9)
      | a', b' when equal_num a' b' -> `Known true
      | a', b' -> `Open (Mod_eq (a', b'))
    end

(** [simplify e] rewrites to a fixpoint (bounded; each pass shrinks or
    preserves size, so the bound is generous). *)
let simplify e =
  let rec go e fuel =
    if fuel = 0 then e
    else begin
      let e' = pass e in
      if equal_num e' e then e else go e' (fuel - 1)
    end
  in
  go e 32

(** [is_simplifiable e] — the §4.1 enumeration filter: [e] is redundant if
    rewriting strictly reduces its node count. *)
let is_simplifiable e = size (simplify e) < size e
