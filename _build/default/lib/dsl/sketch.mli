(** Sketches: expressions with unassigned constant holes (§4.1–4.2),
    concretized by filling holes from a DSL's constant pool. *)

type t = Expr.num

val holes : t -> int list
(** Sorted distinct hole indices. *)

val num_completions : t -> pool_size:int -> int
(** [pool^k] for [k] holes, saturating at [max_int]. *)

val complete : t -> float array -> t
(** Fill holes positionally (values paired with {!holes} order). *)

val all_completions : t -> pool:float array -> max_count:int -> t list
(** Mixed-radix enumeration over the pool, capped at [max_count]. *)

val sample_completions :
  Abg_util.Rng.t -> t -> pool:float array -> n:int -> t list
(** [n] uniformly random completions (independent per hole) — used where
    exhaustive completion is too costly (§4.2). *)

val operator_set : t -> Component.t list
(** The sorted operator subset a sketch uses: the §4.4 bucket
    discriminator. *)
