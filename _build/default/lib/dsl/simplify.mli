(** Algebraic simplification — the sympy substitute (§4.1). Local
    rewriting only (constant folding, identities, cancellation through
    nested products/quotients, trivial conditionals); no interval
    reasoning, reproducing the paper's Student-5 limitation (§5.6). *)

val simplify : Expr.num -> Expr.num
(** Rewrite to a fixpoint. Never grows the tree; preserves the evaluated
    value on finite inputs. *)

val is_simplifiable : Expr.num -> bool
(** The §4.1 enumeration filter: true when rewriting strictly reduces the
    node count (the sketch carries redundant structure). *)
