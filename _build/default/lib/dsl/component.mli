(** DSL components: the flat vocabulary the enumerator assembles sketches
    from. Each component knows its sort, its children's sorts, and
    whether it counts as an *operator* for the §4.4 bucket
    discriminator. *)

type sort = Num | Bool

type t =
  | Leaf_cwnd
  | Leaf_signal of Signal.t
  | Leaf_const  (** a sketch hole, concretized later *)
  | Leaf_macro of Macro.t
  | Op_add
  | Op_sub
  | Op_mul
  | Op_div
  | Op_ite
  | Op_cube
  | Op_cbrt
  | Op_lt
  | Op_gt
  | Op_modeq

val sort : t -> sort
val child_sorts : t -> sort list
val arity : t -> int
val is_operator : t -> bool
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val is_commutative : t -> bool
