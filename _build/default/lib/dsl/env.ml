(** Evaluation environment: the per-ACK snapshot a handler executes
    against.

    One [Env.t] is built per trace record during replay (§3.1). The [cwnd]
    field is the *candidate's own* simulated window, not the ground-truth
    one — the handler is stateful through it. *)

type t = {
  mutable cwnd : float;  (** candidate's current congestion window, bytes *)
  mutable mss : float;
  mutable acked_bytes : float;
  mutable time_since_loss : float;
  mutable rtt : float;
  mutable min_rtt : float;
  mutable max_rtt : float;
  mutable ack_rate : float;
  mutable rtt_gradient : float;
  mutable delay_gradient : float;
  mutable wmax : float;
}

(* Fields are mutable so the replay hot loop can reuse one scratch
   environment per run instead of allocating one record per ACK. *)

let copy env = { env with cwnd = env.cwnd }

let signal env = function
  | Signal.Mss -> env.mss
  | Signal.Acked_bytes -> env.acked_bytes
  | Signal.Time_since_loss -> env.time_since_loss
  | Signal.Rtt -> env.rtt
  | Signal.Min_rtt -> env.min_rtt
  | Signal.Max_rtt -> env.max_rtt
  | Signal.Ack_rate -> env.ack_rate
  | Signal.Rtt_gradient -> env.rtt_gradient
  | Signal.Delay_gradient -> env.delay_gradient
  | Signal.Wmax -> env.wmax

(** A neutral environment for smoke-testing expressions: 1448-byte MSS,
    50 ms RTT path at ~10 Mbit/s. *)
let example =
  {
    cwnd = 14480.0;
    mss = 1448.0;
    acked_bytes = 1448.0;
    time_since_loss = 0.5;
    rtt = 0.05;
    min_rtt = 0.04;
    max_rtt = 0.08;
    ack_rate = 1_250_000.0;
    rtt_gradient = 0.0;
    delay_gradient = 0.0;
    wmax = 20000.0;
  }

let with_cwnd env cwnd = { env with cwnd }
