(** Sub-DSL catalog (§3.3, Listing 1).

    Searching the full DSL is intractable, so Abagnale is invoked with a
    family-specific sub-DSL chosen from classifier hints. Each entry fixes
    the component vocabulary, the AST depth and node budgets, the pool of
    candidate constant values for approximate concretization (§4.2), and
    whether unit constraints are enforced (disabled only for the Cubic DSL,
    per §5.5). *)

type t = {
  name : string;
  components : Component.t list;
  max_depth : int;
  max_nodes : int;
  constant_pool : float array;
  unit_check : bool;
}

(** Default placeholder constant values (§5.1/§6.1): the union of constants
    observed in the published descriptions of the classical CCAs, plus
    small integers. Concretization samples assignments from this pool. *)
let default_constants =
  [| 0.0; 0.16; 0.2; 0.25; 0.3; 0.35; 0.37; 0.5; 0.68; 0.7; 0.8; 1.0; 1.3;
     2.0; 2.05; 2.15; 2.6; 2.7; 3.0; 5.0; 8.0 |]

let base_ops =
  [ Component.Op_add; Component.Op_sub; Component.Op_mul; Component.Op_div;
    Component.Op_ite; Component.Op_lt; Component.Op_gt; Component.Op_modeq ]

(* Family sub-DSLs restrict operators as well as signals (§3.3): the
   paper's Table 4 bucket counts (e.g. 15 buckets for the Vegas DSL vs 218
   for Reno) only arise when the delay-family DSLs carry the handful of
   operators those CCAs actually use. *)
let vegas_ops =
  [ Component.Op_add; Component.Op_mul; Component.Op_div; Component.Op_ite;
    Component.Op_lt; Component.Op_gt ]

let delay_ops =
  [ Component.Op_add; Component.Op_mul; Component.Op_ite; Component.Op_lt;
    Component.Op_gt; Component.Op_modeq ]

let base_leaves =
  [ Component.Leaf_cwnd; Component.Leaf_const;
    Component.Leaf_signal Signal.Mss; Component.Leaf_signal Signal.Acked_bytes;
    Component.Leaf_signal Signal.Time_since_loss ]

(** The base Reno-DSL: black elements of Listing 1 plus the reno-inc
    macro. *)
let reno =
  {
    name = "reno";
    components =
      base_leaves @ [ Component.Leaf_macro Macro.Reno_inc ] @ base_ops;
    max_depth = 3;
    max_nodes = 7;
    constant_pool = default_constants;
    unit_check = true;
  }

(** Cubic-DSL: Reno plus cube/cube-root and wmax; unit checking disabled
    because integer-exponent units cannot type cube roots (§5.5). *)
let cubic =
  {
    name = "cubic";
    components =
      base_leaves
      @ [ Component.Leaf_signal Signal.Wmax;
          Component.Leaf_macro Macro.Reno_inc ]
      @ base_ops
      @ [ Component.Op_cube; Component.Op_cbrt ];
    max_depth = 4;
    max_nodes = 9;
    constant_pool = default_constants;
    unit_check = false;
  }

let delay_leaves =
  base_leaves
  @ [ Component.Leaf_signal Signal.Rtt; Component.Leaf_signal Signal.Min_rtt;
      Component.Leaf_signal Signal.Max_rtt;
      Component.Leaf_signal Signal.Ack_rate;
      Component.Leaf_signal Signal.Rtt_gradient ]

(** Rate/delay-DSL: olive-starred extensions of Listing 1 (RTT and rate
    signals) used by BBR-like and delay-based CCAs. *)
let delay =
  {
    name = "delay";
    components =
      delay_leaves
      @ [ Component.Leaf_macro Macro.Reno_inc;
          Component.Leaf_macro Macro.Htcp_diff;
          Component.Leaf_macro Macro.Rtts_since_loss ]
      @ delay_ops;
    max_depth = 4;
    max_nodes = 11;
    constant_pool = default_constants;
    unit_check = true;
  }

(** Vegas-DSL: the delay DSL plus the vegas-diff macro (bottleneck-queue
    estimator), freeing sketch nodes for other structure (§6.3). *)
let vegas =
  {
    name = "vegas";
    components =
      delay_leaves
      @ [ Component.Leaf_macro Macro.Reno_inc;
          Component.Leaf_macro Macro.Htcp_diff;
          Component.Leaf_macro Macro.Rtts_since_loss;
          Component.Leaf_macro Macro.Vegas_diff ]
      @ vegas_ops;
    max_depth = 4;
    (* 11 nodes: a Vegas-style conditional increase (CWND + ({vegas-diff <
       c} ? c * reno-inc : c)) takes 10 AST nodes. *)
    max_nodes = 11;
    constant_pool = default_constants;
    unit_check = true;
  }

(* Figure 6 variants: same vocabularies, explicit node budgets. *)
let delay_7 = { delay with name = "delay-7"; max_depth = 4; max_nodes = 7 }
let delay_11 = { delay with name = "delay-11"; max_depth = 4; max_nodes = 11 }

let vegas_11 =
  { vegas with name = "vegas-11"; max_depth = 5; max_nodes = 11 }

let all = [ reno; cubic; delay; vegas; delay_7; delay_11; vegas_11 ]
let find name = List.find_opt (fun d -> String.equal d.name name) all

let operators dsl = List.filter Component.is_operator dsl.components
let leaves dsl = List.filter (fun c -> not (Component.is_operator c)) dsl.components
