lib/dsl/component.ml: Format List Macro Signal Stdlib
