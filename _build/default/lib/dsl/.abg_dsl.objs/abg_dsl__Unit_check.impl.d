lib/dsl/unit_check.ml: Abg_util Expr List Macro Signal Units
