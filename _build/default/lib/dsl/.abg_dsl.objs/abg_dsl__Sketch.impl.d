lib/dsl/sketch.ml: Abg_util Array Component Expr Float List Stdlib
