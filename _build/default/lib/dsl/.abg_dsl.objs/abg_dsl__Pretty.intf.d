lib/dsl/pretty.mli: Expr Format
