lib/dsl/sketch.mli: Abg_util Component Expr
