lib/dsl/unit_check.mli: Abg_util Expr
