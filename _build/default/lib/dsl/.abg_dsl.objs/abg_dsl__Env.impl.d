lib/dsl/env.ml: Signal
