lib/dsl/macro.ml: Abg_util Env Floatx Format List Stdlib String Units
