lib/dsl/eval.ml: Abg_util Env Expr Float Floatx Macro
