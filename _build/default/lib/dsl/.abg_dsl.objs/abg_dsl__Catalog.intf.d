lib/dsl/catalog.mli: Component
