lib/dsl/signal.ml: Abg_util Format List Stdlib String Units
