lib/dsl/env.mli: Signal
