lib/dsl/pretty.ml: Expr Float Format Macro Printf Signal String
