lib/dsl/macro.mli: Abg_util Env Format
