lib/dsl/simplify.ml: Abg_util Expr Float
