lib/dsl/signal.mli: Abg_util Format
