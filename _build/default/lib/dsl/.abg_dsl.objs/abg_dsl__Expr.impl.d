lib/dsl/expr.ml: Float List Macro Signal Stdlib
