lib/dsl/catalog.ml: Component List Macro Signal String
