lib/dsl/component.mli: Format Macro Signal
