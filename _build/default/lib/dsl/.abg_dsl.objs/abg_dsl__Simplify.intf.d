lib/dsl/simplify.mli: Expr
