lib/dsl/eval.mli: Env Expr
