(** Pretty-printing of DSL expressions, in the notation of the paper's
    Table 2: infix arithmetic, [{cond} ? a : b] conditionals, macros by
    name. Constants print with minimal digits ([.7], not [0.700000]). *)

let const_to_string c =
  if Float.is_integer c && Float.abs c < 1e15 then
    string_of_int (int_of_float c)
  else begin
    (* Trim trailing zeros of a fixed-point rendering; keep leading dot
       style used in the paper (".7"). *)
    let s = Printf.sprintf "%.6f" c in
    let s =
      let len = String.length s in
      let rec last_nonzero i = if s.[i] = '0' then last_nonzero (i - 1) else i in
      let i = last_nonzero (len - 1) in
      let i = if s.[i] = '.' then i - 1 else i in
      String.sub s 0 (i + 1)
    in
    if String.length s > 1 && s.[0] = '0' && s.[1] = '.' then
      String.sub s 1 (String.length s - 1)
    else if String.length s > 2 && s.[0] = '-' && s.[1] = '0' && s.[2] = '.'
    then "-" ^ String.sub s 2 (String.length s - 2)
    else s
  end

(* Precedence levels: additive 1, multiplicative 2, atom 3. A conditional
   always prints parenthesized so its extent is unambiguous. *)
let rec num_prec prec e =
  let paren level s = if level < prec then "(" ^ s ^ ")" else s in
  match e with
  | Expr.Cwnd -> "CWND"
  | Expr.Signal s -> Signal.name s
  | Expr.Macro m -> Macro.name m
  | Expr.Const c -> const_to_string c
  | Expr.Hole i -> Printf.sprintf "c%d" (i + 1)
  | Expr.Add (a, b) -> paren 1 (num_prec 1 a ^ " + " ^ num_prec 2 b)
  | Expr.Sub (a, b) -> paren 1 (num_prec 1 a ^ " - " ^ num_prec 2 b)
  | Expr.Mul (a, b) -> paren 2 (num_prec 2 a ^ " * " ^ num_prec 3 b)
  | Expr.Div (a, b) -> paren 2 (num_prec 2 a ^ " / " ^ num_prec 3 b)
  | Expr.Ite (c, t, e) ->
      "({" ^ boolean c ^ "} ? " ^ num_prec 0 t ^ " : " ^ num_prec 0 e ^ ")"
  | Expr.Cube a -> num_prec 3 a ^ "^3"
  | Expr.Cbrt a -> "cbrt(" ^ num_prec 3 a ^ ")"

and boolean = function
  | Expr.Lt (a, b) -> num_prec 1 a ^ " < " ^ num_prec 1 b
  | Expr.Gt (a, b) -> num_prec 1 a ^ " > " ^ num_prec 1 b
  | Expr.Mod_eq (a, b) -> num_prec 1 a ^ " % " ^ num_prec 1 b ^ " = 0"

let num e = num_prec 0 e
let to_string = num
let pp fmt e = Format.pp_print_string fmt (num e)
let pp_bool fmt b = Format.pp_print_string fmt (boolean b)
