(** Expression evaluation against a per-ACK environment. Degenerate
    arithmetic (division by ~0, non-finite results) is absorbed rather
    than raised: during a search over millions of machine-generated
    candidates, a wild handler must score badly, not abort the replay. *)

exception Unfilled_hole of int
(** Raised when evaluating a sketch whose constant holes were never
    concretized. *)

val num : Env.t -> Expr.num -> float
val boolean : Env.t -> Expr.boolean -> bool
(** [boolean] evaluates [n1 % n2 = 0] with a small relative tolerance so
    the predicate stays periodic on float-valued windows (the paper's
    synthesized BBR handler relies on [CWND % 2.7]). *)

val handler : Expr.num -> Env.t -> float
(** [handler expr env] is the handler's proposed new congestion window:
    the raw value guarded to be finite and at least one MSS. *)
