(** Unit (dimensional-analysis) checking of expressions (§4.1).

    Signals and macros have fixed units; constants (and holes) are mildly
    unit-polymorphic: a literal can act as a pure scalar, a time threshold
    (seconds), or a time-scaling factor (per-second — needed for e.g.
    Hybla's [8 * RTT * reno-inc], where the 8 carries 1/s). Allowing
    constants to stand for *any* unit would let the enumerator launder
    arbitrary ill-dimensioned arithmetic through a constant, exploding the
    sketch space; this restriction is what keeps the pruned space at the
    paper's reported scale (§6.1). The [num % num = 0] predicate is exempt
    from unit agreement: the paper's own synthesized BBR handler compares
    [CWND % 2.7].

    Checking computes, bottom-up, the *set* of units each sub-expression
    can take over a finite unit domain (integer exponents bounded by
    [limit]), and asks whether the expected unit is reachable at the root.
    The finite integer-exponent domain reproduces the paper's decision to
    keep the solver formula quantifier-free over finite domains — with the
    documented consequence that cube roots of non-cube units are
    unrepresentable and Cubic must be searched with unit constraints
    disabled (§5.5). *)

open Abg_util

(** Units a bare constant may carry. *)
let constant_units =
  [ Units.dimensionless; Units.seconds;
    { Units.bytes = 0; Units.seconds = -1 } ]

let in_domain ~limit (u : Units.t) =
  abs u.Units.bytes <= limit && abs u.Units.seconds <= limit

let dedup units = List.sort_uniq compare units

(* Set-level lifting of the unit algebra. *)
let cross ~limit f xs ys =
  dedup
    (List.concat_map
       (fun x -> List.filter_map (fun y -> let u = f x y in
          if in_domain ~limit u then Some u else None) ys)
       xs)

let intersect xs ys = List.filter (fun x -> List.exists (Units.equal x) ys) xs

let rec possible ?(limit = 3) (e : Expr.num) : Units.t list =
  match e with
  | Expr.Cwnd -> [ Units.bytes ]
  | Expr.Signal s -> [ Signal.unit_of s ]
  | Expr.Macro m -> [ Macro.unit_of m ]
  (* Zero is unit-polymorphic: 0 bytes = 0 of anything (the paper's Vegas
     handler ends in ": 0" on a bytes-valued branch). *)
  | Expr.Const 0.0 -> Units.domain ~limit
  | Expr.Const _ | Expr.Hole _ -> constant_units
  | Expr.Add (a, b) | Expr.Sub (a, b) ->
      intersect (possible ~limit a) (possible ~limit b)
  | Expr.Mul (a, b) ->
      cross ~limit Units.mul (possible ~limit a) (possible ~limit b)
  | Expr.Div (a, b) ->
      cross ~limit Units.div (possible ~limit a) (possible ~limit b)
  | Expr.Ite (c, t, el) ->
      if bool_consistent ~limit c then
        intersect (possible ~limit t) (possible ~limit el)
      else []
  | Expr.Cube a ->
      dedup
        (List.filter_map
           (fun u ->
             let u3 = Units.pow u 3 in
             if in_domain ~limit u3 then Some u3 else None)
           (possible ~limit a))
  | Expr.Cbrt a ->
      dedup (List.filter_map Units.cbrt (possible ~limit a))

(* An order comparison is consistent when its two sides can share a unit;
   the modular predicate is exempt (see module comment). *)
and bool_consistent ?(limit = 3) (b : Expr.boolean) =
  match b with
  | Expr.Lt (a, b) | Expr.Gt (a, b) ->
      intersect (possible ~limit a) (possible ~limit b) <> []
  | Expr.Mod_eq (a, b) ->
      possible ~limit a <> [] && possible ~limit b <> []

(** [check ?limit e ~expected] — can [e] denote a quantity in unit
    [expected]? The synthesis pipeline uses [expected = Units.bytes] for
    cwnd-ack handlers. *)
let check ?(limit = 3) e ~expected =
  List.exists (Units.equal expected) (possible ~limit e)
