(** Pre-defined macros (Table 1): recurring sub-expressions packaged as
    single AST nodes so the enumerator finds fruitful candidates within a
    small depth budget (§3.3). *)

type t =
  | Reno_inc  (** ACKed * MSS / CWND — Reno's per-ACK additive increase *)
  | Vegas_diff
      (** (RTT - minRTT) * ack-rate / MSS — estimated packets queued at
          the bottleneck *)
  | Htcp_diff  (** (RTT - minRTT) / maxRTT — H-TCP's relative RTT variation *)
  | Rtts_since_loss  (** time-since-loss / RTT — elapsed time in RTTs *)

val all : t list
val name : t -> string
val of_name : string -> t option
val unit_of : t -> Abg_util.Units.t
val eval : Env.t -> t -> float
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
