(** Pre-defined macros (Table 1).

    Macros package sub-expressions that recur across CCA families, so a
    single AST node can stand for a familiar quantity. Encoding them in the
    DSL lets the enumerator find fruitful candidates within a small depth
    budget (§3.3): the paper's Reno result [CWND + .7 * reno-inc] is depth 3
    only because [reno-inc] is one node. *)

open Abg_util

type t =
  | Reno_inc  (** ACKed * MSS / CWND — Reno's per-ACK additive increase *)
  | Vegas_diff
      (** (RTT - minRTT) * ack-rate / MSS — estimated packets queued at the
          bottleneck (Vegas's expected-vs-actual rate difference) *)
  | Htcp_diff  (** (RTT - minRTT) / maxRTT — H-TCP's relative RTT variation *)
  | Rtts_since_loss
      (** time-since-loss / RTT — elapsed time measured in RTTs, as used by
          BBR's cycle logic *)

let all = [ Reno_inc; Vegas_diff; Htcp_diff; Rtts_since_loss ]

let name = function
  | Reno_inc -> "reno-inc"
  | Vegas_diff -> "vegas-diff"
  | Htcp_diff -> "htcp-diff"
  | Rtts_since_loss -> "RTTs-since-loss"

let of_name s = List.find_opt (fun m -> String.equal (name m) s) all

let unit_of = function
  | Reno_inc -> Units.bytes
  | Vegas_diff -> Units.dimensionless
  | Htcp_diff -> Units.dimensionless
  | Rtts_since_loss -> Units.dimensionless

let eval (env : Env.t) = function
  | Reno_inc -> Floatx.safe_div (env.acked_bytes *. env.mss) env.cwnd
  | Vegas_diff ->
      Floatx.safe_div ((env.rtt -. env.min_rtt) *. env.ack_rate) env.mss
  | Htcp_diff -> Floatx.safe_div (env.rtt -. env.min_rtt) env.max_rtt
  | Rtts_since_loss -> Floatx.safe_div env.time_since_loss env.rtt

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt m = Format.pp_print_string fmt (name m)
