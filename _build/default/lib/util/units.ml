(** Dimensional analysis for DSL expressions.

    §4.1 of the paper imposes unit constraints on enumerated sketches ("the
    output should have the correct units, in this case bytes"). A unit is a
    vector of integer exponents over the two base dimensions that appear in
    congestion control: bytes and seconds. For example ack-rate is
    bytes/second, i.e. [{ bytes = 1; seconds = -1 }].

    The paper deliberately restricts itself to integer exponents so the
    enumeration formula stays in a quantifier-free finite domain; fractional
    exponents from cube roots are unrepresentable, which is exactly the
    documented Cubic limitation (§5.5) that we reproduce. *)

type t = { bytes : int; seconds : int }

let dimensionless = { bytes = 0; seconds = 0 }
let bytes = { bytes = 1; seconds = 0 }
let seconds = { bytes = 0; seconds = 1 }
let rate = { bytes = 1; seconds = -1 }

let equal a b = a.bytes = b.bytes && a.seconds = b.seconds
let mul a b = { bytes = a.bytes + b.bytes; seconds = a.seconds + b.seconds }
let div a b = { bytes = a.bytes - b.bytes; seconds = a.seconds - b.seconds }
let pow a k = { bytes = a.bytes * k; seconds = a.seconds * k }

(** [cbrt a] is [Some] of the cube root's unit when all exponents are
    divisible by 3, [None] otherwise (the integer-domain restriction). *)
let cbrt a =
  if a.bytes mod 3 = 0 && a.seconds mod 3 = 0 then
    Some { bytes = a.bytes / 3; seconds = a.seconds / 3 }
  else None

let to_string u =
  let part name e =
    match e with
    | 0 -> []
    | 1 -> [ name ]
    | e -> [ Printf.sprintf "%s^%d" name e ]
  in
  match part "B" u.bytes @ part "s" u.seconds with
  | [] -> "1"
  | parts -> String.concat "*" parts

let pp fmt u = Format.pp_print_string fmt (to_string u)

(** All units reachable by combining DSL signals within a bounded expression
    depth; used as the finite domain of the enumeration encoding. The bound
    [limit] caps the absolute exponent value. *)
let domain ~limit =
  let acc = ref [] in
  for b = -limit to limit do
    for s = -limit to limit do
      acc := { bytes = b; seconds = s } :: !acc
    done
  done;
  List.rev !acc

let index_in_domain ~limit u =
  if abs u.bytes > limit || abs u.seconds > limit then None
  else Some (((u.bytes + limit) * ((2 * limit) + 1)) + (u.seconds + limit))
