(** Streaming and batch descriptive statistics (numerically careful:
    Welford updates, sorted-copy quantiles). *)

type accumulator

val accumulator : unit -> accumulator
val add : accumulator -> float -> unit
val count : accumulator -> int
val mean_of : accumulator -> float
val variance_of : accumulator -> float
(** Sample variance (n-1 denominator); 0 below two samples. *)

val stddev_of : accumulator -> float
val min_of : accumulator -> float
val max_of : accumulator -> float
val of_array : float array -> accumulator

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val quantile : float array -> float -> float
(** Linear-interpolation quantile, [q] in [0, 1]. Non-empty input. *)

val median : float array -> float

val linear_regression : float array -> float array -> float * float
(** Least-squares [(slope, intercept)]. Equal non-zero lengths. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; 0 when either series is constant. *)

val ewma : float -> float array -> float array
(** [ewma alpha xs] — exponentially weighted moving average. *)

val diff : float array -> float array
(** First differences (length n-1). *)

val argmin : ('a -> float) -> 'a array -> int
