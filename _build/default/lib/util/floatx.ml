(** Small float helpers shared across the pipeline. *)

(** [approx_equal ?eps a b] compares with combined absolute/relative
    tolerance; robust near zero and for large magnitudes. *)
let approx_equal ?(eps = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let is_finite x = Float.is_finite x

(** [safe_div a b] avoids infinities: division by (near-)zero yields 0. The
    DSL evaluator uses this so that candidate handlers never poison a whole
    replay with a NaN from one degenerate sample. *)
let safe_div a b = if Float.abs b < 1e-12 then 0.0 else a /. b

(** [cbrt x] is the real cube root, defined for negative inputs too. *)
let cbrt x =
  if x >= 0.0 then Float.pow x (1.0 /. 3.0) else -.Float.pow (-.x) (1.0 /. 3.0)

(** [log_grid ~lo ~hi ~n] is [n] points logarithmically spaced in
    [[lo, hi]]; used for Figure 3's multiplicative-error sweep. *)
let log_grid ~lo ~hi ~n =
  assert (lo > 0.0 && hi > lo && n >= 2);
  let llo = log lo and lhi = log hi in
  Array.init n (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

(** [lin_grid ~lo ~hi ~n] is [n] points linearly spaced in [[lo, hi]]. *)
let lin_grid ~lo ~hi ~n =
  assert (n >= 2);
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

(** Positive floating-point modulo; [fmod 7.5 2.0 = 1.5], result in
    [[0, b)]. Used by the DSL's [num % num = 0] predicate. *)
let fmod a b =
  if b = 0.0 then 0.0
  else begin
    let r = Float.rem a b in
    if r < 0.0 then r +. Float.abs b else r
  end
