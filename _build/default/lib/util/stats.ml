(** Streaming and batch descriptive statistics.

    The classifier features (slope constancy, convexity, pulse counting) and
    the evaluation harness both need robust summary statistics; everything
    here is numerically careful (Welford updates, sorted-copy quantiles). *)

type accumulator = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minimum : float;
  mutable maximum : float;
}

let accumulator () =
  { n = 0; mean = 0.0; m2 = 0.0; minimum = infinity; maximum = neg_infinity }

(* Welford's online update: numerically stable single-pass variance. *)
let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.minimum then acc.minimum <- x;
  if x > acc.maximum then acc.maximum <- x

let count acc = acc.n
let mean_of acc = if acc.n = 0 then nan else acc.mean

let variance_of acc =
  if acc.n < 2 then 0.0 else acc.m2 /. float_of_int (acc.n - 1)

let stddev_of acc = sqrt (variance_of acc)
let min_of acc = acc.minimum
let max_of acc = acc.maximum

let of_array xs =
  let acc = accumulator () in
  Array.iter (add acc) xs;
  acc

(** [mean xs] of a non-empty array. *)
let mean xs = mean_of (of_array xs)

let variance xs = variance_of (of_array xs)
let stddev xs = stddev_of (of_array xs)

(** [quantile xs q] is the linear-interpolation quantile, [q] in [0, 1]. *)
let quantile xs q =
  let n = Array.length xs in
  assert (n > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

(** [linear_regression xs ys] is [(slope, intercept)] of the least-squares
    line through the points. Requires equal non-zero lengths. *)
let linear_regression xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 0);
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  let slope = if !den = 0.0 then 0.0 else !num /. !den in
  (slope, my -. (slope *. mx))

(** [pearson xs ys] is the Pearson correlation coefficient, or 0 when either
    series is constant. *)
let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 1);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

(** [ewma alpha xs] is the exponentially weighted moving average series with
    smoothing factor [alpha] in (0, 1]. *)
let ewma alpha xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      out.(i) <- (alpha *. xs.(i)) +. ((1.0 -. alpha) *. out.(i - 1))
    done;
    out
  end

(** [diff xs] is the first-difference series (length [n-1]). *)
let diff xs =
  let n = Array.length xs in
  if n <= 1 then [||] else Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i))

(** [argmin f xs] is the index minimizing [f xs.(i)] over a non-empty
    array. *)
let argmin f xs =
  assert (Array.length xs > 0);
  let best = ref 0 and best_v = ref (f xs.(0)) in
  for i = 1 to Array.length xs - 1 do
    let v = f xs.(i) in
    if v < !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best
