(** Dimensional analysis for DSL expressions (§4.1): integer exponent
    vectors over the two base dimensions of congestion control, bytes and
    seconds. Integer exponents keep the enumeration formula in a
    quantifier-free finite domain — with the documented consequence that
    cube roots of non-cube units are unrepresentable (§5.5). *)

type t = { bytes : int; seconds : int }

val dimensionless : t
val bytes : t
val seconds : t
val rate : t
(** Bytes per second. *)

val equal : t -> t -> bool
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> int -> t

val cbrt : t -> t option
(** [Some] when every exponent is divisible by 3. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val domain : limit:int -> t list
(** All units with absolute exponents up to [limit] — the finite domain of
    the SAT encoding. *)

val index_in_domain : limit:int -> t -> int option
