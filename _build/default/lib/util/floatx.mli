(** Small float helpers shared across the pipeline. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Combined absolute/relative tolerance (default 1e-9). *)

val clamp : lo:float -> hi:float -> float -> float
val is_finite : float -> bool

val safe_div : float -> float -> float
(** Division by (near-)zero yields 0 — a degenerate candidate handler
    must score badly, not poison a replay with infinities. *)

val cbrt : float -> float
(** Real cube root, defined for negative inputs. *)

val log_grid : lo:float -> hi:float -> n:int -> float array
(** [n] log-spaced points in [[lo, hi]] (Figure 3's error sweep). *)

val lin_grid : lo:float -> hi:float -> n:int -> float array

val fmod : float -> float -> float
(** Positive floating-point modulo; result in [[0, |b|)); 0 when [b = 0]. *)
