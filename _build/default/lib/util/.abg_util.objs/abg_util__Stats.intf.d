lib/util/stats.mli:
