lib/util/floatx.mli:
