lib/util/rng.mli:
