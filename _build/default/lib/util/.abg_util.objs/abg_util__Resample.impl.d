lib/util/resample.ml: Array Float
