lib/util/floatx.ml: Array Float
