lib/util/resample.mli:
