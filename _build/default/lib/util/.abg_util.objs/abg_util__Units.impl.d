lib/util/units.ml: Format List Printf String
