(** Deterministic pseudo-random number generation (xoshiro256** seeded via
    splitmix64). All randomness in the pipeline flows through this module
    so that every experiment is reproducible from a seed. *)

type t

val create : int -> t

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] — uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n] — uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
val normal : t -> mean:float -> stddev:float -> float
val exponential : t -> rate:float -> float
val shuffle : t -> 'a array -> unit
val choice : t -> 'a array -> 'a
val sample_without_replacement : t -> 'a array -> int -> 'a array

val split : t -> t
(** Derive an independent generator (for handing deterministic streams to
    parallel workers). *)
