(** Deterministic pseudo-random number generation.

    All randomness in the pipeline flows through this module so that every
    experiment is reproducible from a seed. The generator is xoshiro256**
    (Blackman & Vigna), seeded through splitmix64 as its authors
    recommend. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Core xoshiro256** step: returns the next 64-bit output. *)
let next64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** [float t] is uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** [uniform t lo hi] is uniform in [lo, hi). *)
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit unsigned
     value would wrap negative through Int64.to_int. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  bits mod n

(** [bool t] is a fair coin flip. *)
let bool t = Int64.logand (next64 t) 1L = 1L

(** [normal t ~mean ~stddev] samples a Gaussian via Box–Muller. *)
let normal t ~mean ~stddev =
  let u1 = Stdlib.max 1e-12 (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

(** [exponential t ~rate] samples Exp(rate). Requires [rate > 0]. *)
let exponential t ~rate =
  assert (rate > 0.0);
  let u = Stdlib.max 1e-12 (float t) in
  -.log u /. rate

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** [choice t a] is a uniformly random element of the non-empty array [a]. *)
let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

(** [sample_without_replacement t a k] picks [k] distinct elements. *)
let sample_without_replacement t a k =
  let n = Array.length a in
  assert (k <= n);
  let copy = Array.copy a in
  shuffle t copy;
  Array.sub copy 0 k

(** [split t] derives an independent generator; used to hand deterministic
    streams to parallel workers. *)
let split t =
  let seed = Int64.to_int (next64 t) land max_int in
  create seed
