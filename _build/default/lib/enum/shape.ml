(** Tree-shape bookkeeping for the sketch encoding.

    Sketch ASTs are embedded in a complete ternary tree (the maximum
    component arity is 3, for the conditional): node [i]'s children are
    [3i+1, 3i+2, 3i+3]. A sketch of depth [d] uses nodes within the first
    [d] levels; inactive nodes are switched off by the encoding. *)

let arity_max = 3

(** Number of positions in a complete ternary tree of [depth] levels. *)
let num_nodes ~depth =
  let rec go level acc width =
    if level = 0 then acc else go (level - 1) (acc + width) (width * arity_max)
  in
  go depth 0 1

let parent i =
  assert (i > 0);
  (i - 1) / arity_max

let child i k = (arity_max * i) + 1 + k

(** Position of node [i] among its siblings (0-based). *)
let position i =
  assert (i > 0);
  (i - 1) mod arity_max

(** Level of node [i], root = 0. *)
let level i =
  let rec go i acc = if i = 0 then acc else go (parent i) (acc + 1) in
  go i 0
