(** Closed-form counting of the sketch universe (§4.1, §6.1).

    The paper motivates its search techniques with the raw size of the
    space: ~10^150 sketches at depth 7 over the 25-component DSL, and ~2
    billion raw depth-3 Reno-DSL sketches. These are counts of *all*
    well-sorted trees, before any pruning; computed here by dynamic
    programming over (sort, depth), in floating point since the values
    overflow integers immediately. *)

open Abg_dsl

(* trees sort d = number of distinct trees of exactly-valid sort with depth
   <= d. *)
let rec trees components sort d =
  if d = 0 then 0.0
  else
    List.fold_left
      (fun acc c ->
        if Component.sort c <> sort then acc
        else begin
          let product =
            List.fold_left
              (fun p child_sort -> p *. trees components child_sort (d - 1))
              1.0 (Component.child_sorts c)
          in
          acc +. product
        end)
      0.0 components

(** [universe dsl] is the number of well-sorted num-trees of depth up to
    [dsl.max_depth] buildable from [dsl.components]. *)
let universe (dsl : Catalog.t) =
  trees dsl.Catalog.components Component.Num dsl.Catalog.max_depth

(** [universe_at ~components ~depth] for custom what-if counts (e.g. the
    paper's 25-component depth-7 figure). *)
let universe_at ~components ~depth = trees components Component.Num depth

(** Pretty scientific-notation rendering ("2.1e9", "1.3e150"). *)
let to_string x =
  if x < 1e6 then Printf.sprintf "%.0f" x else Printf.sprintf "%.1e" x
