lib/enum/encode.ml: Abg_dsl Abg_sat Abg_util Array Catalog Component Expr List Macro Shape Signal Simplify Unit_check Units
