lib/enum/buckets.ml: Abg_dsl Array Catalog Component List String
