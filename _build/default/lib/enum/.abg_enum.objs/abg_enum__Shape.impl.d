lib/enum/shape.ml:
