lib/enum/count.ml: Abg_dsl Catalog Component List Printf
