(** TCP New Vegas (Brakmo, Linux Plumbers '10).

    The same fundamental logic as Vegas — compare a delay-derived queue
    estimate to thresholds once per RTT — but the delay measurement is a
    moving average rather than a per-epoch mean, and updates are gated by a
    hidden per-RTT counter state variable (§5.4 of the paper notes that
    Abagnale correctly recovers the *same* handler as Vegas for NV because
    the differences are measurement detail). *)

let create ?(alpha = 2.0) ?(beta = 4.0) ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let avg_rtt = ref 0.0 in
  let epoch_start = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then begin
      base_rtt := Float.min !base_rtt rtt;
      (* Moving average with NV's fast-start behavior. *)
      avg_rtt := if !avg_rtt = 0.0 then rtt else (0.875 *. !avg_rtt) +. (0.125 *. rtt)
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else if now -. !epoch_start >= !base_rtt && !avg_rtt > 0.0 then begin
      let expected = !cwnd /. !base_rtt in
      let actual = !cwnd /. !avg_rtt in
      let diff_pkts = (expected -. actual) *. !base_rtt /. mss in
      if diff_pkts < alpha then cwnd := !cwnd +. mss
      else if diff_pkts > beta then
        cwnd := Cca_sig.clamp_cwnd ~mss (!cwnd -. mss);
      epoch_start := now
    end
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "nv"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
