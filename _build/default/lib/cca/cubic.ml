(** CUBIC (Ha, Rhee & Xu, OSR '08; the Linux default).

    The window is a cubic function of the time since the last loss:
    W(t) = C (t - K)^3 + w_max, with K = cbrt(w_max * beta / C), so growth
    is concave up to the previous saturation point w_max, flat near it, and
    convex beyond (probing). C = 0.4 segments/s^3, multiplicative decrease
    to 0.7 * cwnd. *)

open Abg_util

let c_scale = 0.4 (* segments per second^3 *)
let beta = 0.7 (* multiplicative decrease factor (Linux) *)

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let w_max = ref 0.0 in
  let epoch_start = ref None in
  let on_ack ~now ~acked ~rtt =
    if !cwnd < !ssthresh then begin
      cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked;
      epoch_start := None
    end
    else begin
      let t0 =
        match !epoch_start with
        | Some t0 -> t0
        | None ->
            (* New congestion-avoidance epoch: if there is no loss history,
               treat the current window as the plateau. *)
            if !w_max <= 0.0 then w_max := !cwnd;
            epoch_start := Some now;
            now
      in
      let w_max_seg = !w_max /. mss in
      let k = Floatx.cbrt (w_max_seg *. (1.0 -. beta) /. c_scale) in
      let t = now -. t0 +. rtt in
      let target_seg = (c_scale *. Float.pow (t -. k) 3.0) +. w_max_seg in
      let target = target_seg *. mss in
      (* Move a fraction of the distance to the cubic target each ACK, as
         the kernel does (cnt-based pacing of the increase). Byte counting
         is capped so a cumulative jump after recovery cannot teleport the
         window to the target in one step. *)
      let acked = Float.min acked (2.0 *. mss) in
      if target > !cwnd then
        cwnd := !cwnd +. ((target -. !cwnd) *. acked /. !cwnd)
      else cwnd := !cwnd +. (0.01 *. mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    (* Fast convergence. *)
    if !cwnd < !w_max then w_max := !cwnd *. (1.0 +. beta) /. 2.0
    else w_max := !cwnd;
    ssthresh := Cca_sig.clamp_cwnd ~mss (beta *. !cwnd);
    cwnd := !ssthresh;
    epoch_start := None
  in
  { Cca_sig.name = "cubic"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
