(** TCP Westwood+ (Mascolo et al., MobiCom '01).

    Reno's increase, but on loss the window is set from a bandwidth
    estimate: ssthresh = BWE * RTTmin, where BWE is a low-pass filter over
    per-ACK delivery samples. *)

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let bw_est = ref 0.0 in
  let min_rtt = ref infinity in
  let last_ack_time = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then min_rtt := Float.min !min_rtt rtt;
    let dt = now -. !last_ack_time in
    if dt > 0.0 then begin
      (* First-order low-pass filter of the instantaneous delivery rate,
         as in the Westwood+ kernel module (alpha ~ 0.9). *)
      let sample = acked /. dt in
      bw_est := if !bw_est = 0.0 then sample else (0.9 *. !bw_est) +. (0.1 *. sample)
    end;
    last_ack_time := now;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else cwnd := !cwnd +. (mss *. acked /. !cwnd)
  in
  let on_loss ~now:_ =
    let target =
      if Float.is_finite !min_rtt && !bw_est > 0.0 then !bw_est *. !min_rtt
      else !cwnd /. 2.0
    in
    ssthresh := Cca_sig.clamp_cwnd ~mss target;
    cwnd := !ssthresh
  in
  { Cca_sig.name = "westwood"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
