(** HighSpeed TCP (Floyd, RFC 3649).

    Reno whose increase a(w) and decrease b(w) depend on the current window
    through a logarithmic response function; the kernel implements it as a
    lookup table. We evaluate the RFC's analytic form directly:
    above W0 = 38 segments,
      b(w) = 0.1 + (0.4 (log w - log W0)) / (log W1 - log W0),
      a(w) = w^2 b(w) 2 p(w) / (2 - b(w)) with p(w) from the response
    function; below W0 it is exactly Reno. This module exists for trace
    generation; the paper notes HighSpeed's log-based rules are outside the
    DSL, so synthesis is not attempted on it (§5.5). *)

let w0 = 38.0 (* segments: below this, behave as Reno *)
let w1 = 83000.0 (* segments at the high end of the response function *)

let b_of w =
  if w <= w0 then 0.5
  else 0.1 +. (0.4 *. (log w -. log w0) /. (log w1 -. log w0))

let a_of w =
  if w <= w0 then 1.0
  else begin
    (* RFC 3649 §5: p(w) = 0.078 / w^1.2; a(w) follows from the steady
       state response. *)
    let p = 0.078 /. Float.pow w 1.2 in
    let b = b_of w in
    Float.max 1.0 (w *. w *. p *. 2.0 *. b /. (2.0 -. b))
  end

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let on_ack ~now:_ ~acked ~rtt:_ =
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      let w_seg = !cwnd /. mss in
      cwnd := !cwnd +. (a_of w_seg *. mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    let w_seg = !cwnd /. mss in
    ssthresh := Cca_sig.clamp_cwnd ~mss ((1.0 -. b_of w_seg) *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "highspeed"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
