(** YeAH-TCP (Baiocchi, Castellani & Vacirca, PFLDnet '07).

    Two modes driven by the Vegas-style queue estimate Q: "fast" mode uses
    a Scalable-style aggressive increase while Q stays below Q_max (~80
    packets worth of queue... the published threshold is queue < Q_max and
    delay ratio < 1/phi); "slow" mode falls back to Reno. A precautionary
    decongestion step drains the estimated queue. *)

let q_max = 80.0
let phi = 8.0

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let last_rtt = ref 0.0 in
  let queue_pkts () =
    if Float.is_finite !base_rtt && !last_rtt > !base_rtt then
      (!last_rtt -. !base_rtt) *. (!cwnd /. !last_rtt) /. mss
    else 0.0
  in
  let on_ack ~now:_ ~acked ~rtt =
    if rtt > 0.0 then begin
      base_rtt := Float.min !base_rtt rtt;
      last_rtt := rtt
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      let q = queue_pkts () in
      let delay_ratio =
        if Float.is_finite !base_rtt && !base_rtt > 0.0 then
          (!last_rtt -. !base_rtt) /. !base_rtt
        else 0.0
      in
      if q < q_max && delay_ratio < 1.0 /. phi then
        (* Fast mode: Scalable-style increase. *)
        cwnd := !cwnd +. (0.01 *. acked)
      else begin
        (* Slow mode: Reno, plus precautionary decongestion of the
           estimated queue once it overflows the budget. *)
        cwnd := !cwnd +. (mss *. acked /. !cwnd);
        if q > q_max then
          cwnd := Cca_sig.clamp_cwnd ~mss (!cwnd -. (q /. 2.0 *. mss))
      end
    end
  in
  let on_loss ~now:_ =
    (* YeAH sheds the estimated queue, bounded to [cwnd/8, cwnd/2]: drop
       less than Reno when the queue (not the pipe) caused the loss. *)
    let q = queue_pkts () in
    let reduction =
      Abg_util.Floatx.clamp ~lo:(!cwnd /. 8.0) ~hi:(!cwnd /. 2.0) (q *. mss)
    in
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd -. reduction);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "yeah"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
