(** TCP-LP, Low Priority (Kuzmanovic & Knightly, ToN '06).

    A scavenger CCA: Reno's increase, but an *early congestion inference*
    from one-way delay — when the smoothed delay exceeds
    min + 0.15 * (max - min), the window is halved (at most once per RTT)
    so that LP yields to any competing flow before losses occur. *)

let threshold_fraction = 0.15

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let min_rtt = ref infinity in
  let max_rtt = ref 0.0 in
  let srtt = ref 0.0 in
  let last_backoff = ref neg_infinity in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then begin
      min_rtt := Float.min !min_rtt rtt;
      max_rtt := Float.max !max_rtt rtt;
      srtt := if !srtt = 0.0 then rtt else (0.875 *. !srtt) +. (0.125 *. rtt)
    end;
    let threshold = !min_rtt +. (threshold_fraction *. (!max_rtt -. !min_rtt)) in
    let congested =
      Float.is_finite !min_rtt && !max_rtt > !min_rtt && !srtt > threshold
    in
    if congested && now -. !last_backoff > !srtt then begin
      cwnd := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
      last_backoff := now
    end
    else if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else cwnd := !cwnd +. (mss *. acked /. !cwnd)
  in
  let on_loss ~now =
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
    cwnd := !ssthresh;
    last_backoff := now
  in
  { Cca_sig.name = "lp"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
