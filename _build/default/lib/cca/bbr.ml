(** BBR v1 (Cardwell et al., ACM Queue '16), window-driven model.

    BBR estimates the bottleneck bandwidth (windowed max of delivery rate)
    and the path's minimum RTT, and holds cwnd = cwnd_gain * BDP with
    cwnd_gain = 2. In PROBE_BW it cycles a pacing gain through
    [1.25, 0.75, 1, 1, 1, 1, 1, 1], one phase per RTT; since the simulator
    is window-clocked, the gain is applied to the window, which reproduces
    the pulsing *visible* CWND that the paper's traces show (§5.2). The
    pulse is driven by a hidden state variable (the cycle index) — exactly
    the feature Abagnale cannot model and must approximate. *)

let gain_cycle = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let cwnd_gain = 2.0
let startup_gain = 2.885

type mode = Startup | Drain | Probe_bw | Probe_rtt

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let mode = ref Startup in
  let btl_bw = ref 0.0 in
  let min_rtt = ref infinity in
  let cycle_index = ref 0 in
  let cycle_start = ref 0.0 in
  let full_bw = ref 0.0 in
  let full_bw_rounds = ref 0 in
  let round_start = ref 0.0 in
  let rate_window_start = ref 0.0 in
  let rate_window_bytes = ref 0.0 in
  let rate_window_tainted = ref false in
  let min_rtt_stamp = ref 0.0 in
  let probe_rtt_start = ref 0.0 in
  let prior_mode = ref Probe_bw in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 && rtt < !min_rtt then begin
      min_rtt := rtt;
      min_rtt_stamp := now
    end;
    (* Delivery rate over >= 5 ms windows: per-ACK instantaneous samples
       are hopeless under ACK-path jitter (two coalesced arrivals give a
       near-zero dt and an astronomical rate, which a max filter then
       remembers forever). Windows containing a cumulative jump from loss
       recovery (one ACK covering many segments delivered long ago) are
       discarded outright: that data was not delivered in this window, so
       counting it would again poison the max filter. A real BBR's per-skb
       delivered/interval accounting is immune by construction. *)
    if acked > 1.5 *. mss then rate_window_tainted := true
    else rate_window_bytes := !rate_window_bytes +. acked;
    (if !rate_window_start = 0.0 then rate_window_start := now
     else begin
       (* Roughly one RTT per window: ACK-arrival clumping under jitter
          makes millisecond windows systematically over-read the rate. *)
       let min_span =
         if Float.is_finite !min_rtt then Float.max 0.005 !min_rtt else 0.005
       in
       let span = now -. !rate_window_start in
       if span >= min_span then begin
         if not !rate_window_tainted then begin
           let rate = !rate_window_bytes /. span in
           (* Windowed max filter: slow decay + instant rise. *)
           btl_bw := Float.max rate (!btl_bw *. 0.999)
         end;
         rate_window_start := now;
         rate_window_bytes := 0.0;
         rate_window_tainted := false
       end
     end);
    let bdp () =
      if Float.is_finite !min_rtt && !btl_bw > 0.0 then !btl_bw *. !min_rtt
      else !cwnd
    in
    begin
      match !mode with
      | Startup ->
          (* Exponential growth, bounded by the startup gain over the
             current BDP estimate — the window-clocked equivalent of
             BBR's 2.885x pacing-rate bound, without which a pure
             window-doubling startup overshoots by orders of magnitude. *)
          let grown = !cwnd +. acked in
          cwnd :=
            if !btl_bw > 0.0 && Float.is_finite !min_rtt then
              Float.max !cwnd (Float.min grown (startup_gain *. bdp ()))
            else grown;
          (* Full pipe: bandwidth stopped growing >= 25% for 3 rounds
             (one round per min_rtt of wall-clock time). *)
          if Float.is_finite !min_rtt && now -. !round_start >= !min_rtt then begin
            round_start := now;
            if !btl_bw > !full_bw *. 1.25 then begin
              full_bw := !btl_bw;
              full_bw_rounds := 0
            end
            else begin
              incr full_bw_rounds;
              if !full_bw_rounds >= 3 then begin
                mode := Drain;
                cycle_start := now
              end
            end
          end
      | Drain ->
          cwnd := Float.max (bdp ()) (!cwnd *. 0.9);
          if !cwnd <= bdp () *. 1.05 then begin
            mode := Probe_bw;
            cycle_index := 0;
            cycle_start := now
          end
      | Probe_bw ->
          if Float.is_finite !min_rtt && now -. !cycle_start >= !min_rtt then begin
            cycle_index := (!cycle_index + 1) mod Array.length gain_cycle;
            cycle_start := now
          end;
          let gain = gain_cycle.(!cycle_index) in
          cwnd := cwnd_gain *. gain *. bdp ()
      | Probe_rtt ->
          (* Drain to four segments so the queue empties and the next RTT
             samples measure propagation delay. *)
          cwnd := 4.0 *. mss;
          if now -. !probe_rtt_start >= 0.2 then begin
            min_rtt_stamp := now;
            mode := !prior_mode;
            cycle_start := now
          end
    end;
    (* BBRv1's 10-second min_rtt expiry: periodically re-probe the
       propagation delay (and, as a side effect, drain any standing queue
       the filter overestimates created). *)
    (match !mode with
    | Probe_rtt | Startup | Drain -> ()
    | Probe_bw ->
        if now -. !min_rtt_stamp > 10.0 then begin
          prior_mode := Probe_bw;
          mode := Probe_rtt;
          probe_rtt_start := now;
          min_rtt := infinity
        end);
    cwnd := Cca_sig.clamp_cwnd ~mss !cwnd
  in
  let on_loss ~now:_ =
    (* BBRv1 mostly ignores individual losses; it only bounds the window. *)
    cwnd := Cca_sig.clamp_cwnd ~mss !cwnd
  in
  { Cca_sig.name = "bbr"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
