(** TCP Veno (Fu & Liew, JSAC '03).

    Reno's window evolution modulated by Vegas's queue estimate [diff]:
    when the path looks uncongested (diff < beta) the full Reno increase
    applies; when congested, the increase rate is halved. On loss, the
    decrease is 0.8x if the loss looked random (diff < beta), 0.5x if
    congestive. *)

let create ?(beta = 3.0) ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let last_rtt = ref 0.0 in
  let inc_toggle = ref false in
  let diff_pkts () =
    if Float.is_finite !base_rtt && !last_rtt > 0.0 then
      (!cwnd /. !base_rtt -. (!cwnd /. !last_rtt)) *. !base_rtt /. mss
    else 0.0
  in
  let on_ack ~now:_ ~acked ~rtt =
    if rtt > 0.0 then begin
      base_rtt := Float.min !base_rtt rtt;
      last_rtt := rtt
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else if diff_pkts () < beta then cwnd := !cwnd +. (mss *. acked /. !cwnd)
    else begin
      (* Congested: increase every other ACK (half of Reno's rate). *)
      inc_toggle := not !inc_toggle;
      if !inc_toggle then cwnd := !cwnd +. (mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    let factor = if diff_pkts () < beta then 0.8 else 0.5 in
    ssthresh := Cca_sig.clamp_cwnd ~mss (factor *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "veno"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
