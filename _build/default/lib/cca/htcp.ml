(** H-TCP (Leith & Shorten, PFLDnet '04).

    The additive-increase factor alpha grows with the time elapsed since
    the last loss: alpha = 1 for the first Delta_L = 1 s, then
    1 + 10 (t - Delta_L) + ((t - Delta_L) / 2)^2, scaled by the RTT.
    The decrease factor is adaptive: beta = RTTmin / RTTmax, clamped to
    [0.5, 0.8]. *)

let delta_l = 1.0

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let last_loss = ref 0.0 in
  let min_rtt = ref infinity in
  let max_rtt = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then begin
      min_rtt := Float.min !min_rtt rtt;
      max_rtt := Float.max !max_rtt rtt
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      let t = now -. !last_loss in
      let alpha =
        if t <= delta_l then 1.0
        else begin
          let dt = t -. delta_l in
          1.0 +. (10.0 *. dt) +. (dt /. 2.0 *. (dt /. 2.0))
        end
      in
      (* The kernel scales alpha by 2 * (1 - beta) to keep average rate
         matched to Reno at small windows; we keep the canonical form. *)
      cwnd := !cwnd +. (alpha *. mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now =
    let beta =
      if Float.is_finite !min_rtt && !max_rtt > 0.0 then
        Abg_util.Floatx.clamp ~lo:0.5 ~hi:0.8 (!min_rtt /. !max_rtt)
      else 0.5
    in
    ssthresh := Cca_sig.clamp_cwnd ~mss (beta *. !cwnd);
    cwnd := !ssthresh;
    last_loss := now
  in
  { Cca_sig.name = "htcp"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
