(** TCP Vegas (Brakmo & Peterson, SIGCOMM '94).

    Once per RTT, compares the expected rate (cwnd / baseRTT) to the actual
    rate (cwnd / RTT). The difference, scaled to packets queued at the
    bottleneck, drives a three-way decision: grow by one MSS per RTT when
    below [alpha], shrink by one MSS when above [beta], hold otherwise. *)

let create ?(alpha = 2.0) ?(beta = 4.0) ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let rtt_sum = ref 0.0 in
  let rtt_cnt = ref 0 in
  let epoch_start = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then begin
      base_rtt := Float.min !base_rtt rtt;
      rtt_sum := !rtt_sum +. rtt;
      incr rtt_cnt
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else if now -. !epoch_start >= !base_rtt && !rtt_cnt > 0 then begin
      (* One window-update decision per RTT, from the epoch's mean RTT. *)
      let rtt_avg = !rtt_sum /. float_of_int !rtt_cnt in
      let expected = !cwnd /. !base_rtt in
      let actual = !cwnd /. rtt_avg in
      let diff_pkts = (expected -. actual) *. !base_rtt /. mss in
      if diff_pkts < alpha then cwnd := !cwnd +. mss
      else if diff_pkts > beta then
        cwnd := Cca_sig.clamp_cwnd ~mss (!cwnd -. mss);
      epoch_start := now;
      rtt_sum := 0.0;
      rtt_cnt := 0
    end
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "vegas"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
