(** The congestion-control-algorithm interface the simulator drives.

    A CCA instance is a bundle of closures over private mutable state; the
    simulator only observes [cwnd] and feeds back ACK and loss events. This
    mirrors how the paper treats the kernel implementations: black boxes
    whose externally visible window evolution is the ground truth.

    Times are seconds, sizes are bytes. [on_ack] is invoked once per
    (possibly cumulative) ACK with the bytes it newly acknowledged and the
    RTT sample it produced; [on_loss] once per inferred loss event (triple
    dup-ACK or RTO). *)

type t = {
  name : string;
  cwnd : unit -> float;  (** current congestion window, bytes; > 0 *)
  on_ack : now:float -> acked:float -> rtt:float -> unit;
  on_loss : now:float -> unit;
}

(** A CCA constructor: [create ~mss ()] builds a fresh instance in slow
    start with an initial window of 10 segments (Linux default). *)
type constructor = mss:float -> unit -> t

let initial_window ~mss = 10.0 *. mss

(** [clamp_cwnd ~mss w] keeps a window at least 2 segments — kernel CCAs
    never run below that. *)
let clamp_cwnd ~mss w = Float.max (2.0 *. mss) w

(** Slow-start increment with Appropriate Byte Counting (RFC 3465, L=2):
    at most two segments of growth per ACK, so the cumulative-ACK jumps
    that follow loss recovery cannot explode the window. *)
let ss_increment ~mss ~acked = Float.min acked (2.0 *. mss)
