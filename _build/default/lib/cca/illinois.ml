(** TCP Illinois (Liu, Basar & Srikant, 2008).

    Loss-based window changes with delay-based *sizing*: the additive
    increase alpha is a decreasing function of the current average queueing
    delay (max 10 segments/RTT when the queue is empty, min 0.3 when full),
    and the multiplicative decrease beta grows with delay (1/8 .. 1/2). *)

let alpha_max = 10.0
let alpha_min = 0.3
let beta_min = 0.125
let beta_max = 0.5

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let base_rtt = ref infinity in
  let max_rtt = ref 0.0 in
  let avg_rtt = ref 0.0 in
  let queue_delay_fraction () =
    (* da / dm: current average queueing delay over the maximum observed. *)
    let dm = !max_rtt -. !base_rtt in
    if Float.is_finite !base_rtt && dm > 1e-6 && !avg_rtt > 0.0 then
      Abg_util.Floatx.clamp ~lo:0.0 ~hi:1.0 ((!avg_rtt -. !base_rtt) /. dm)
    else 0.0
  in
  let on_ack ~now:_ ~acked ~rtt =
    if rtt > 0.0 then begin
      base_rtt := Float.min !base_rtt rtt;
      max_rtt := Float.max !max_rtt rtt;
      avg_rtt := if !avg_rtt = 0.0 then rtt else (0.875 *. !avg_rtt) +. (0.125 *. rtt)
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      (* Concave interpolation: alpha falls quickly as delay builds. *)
      let f = queue_delay_fraction () in
      let alpha = alpha_max /. (1.0 +. (f *. (alpha_max /. alpha_min -. 1.0))) in
      cwnd := !cwnd +. (alpha *. mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    let f = queue_delay_fraction () in
    let beta = beta_min +. (f *. (beta_max -. beta_min)) in
    ssthresh := Cca_sig.clamp_cwnd ~mss ((1.0 -. beta) *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "illinois"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
