(** CAIA Delay-Gradient, CDG (Hayes & Armitage, Networking '11).

    Tracks per-RTT gradients of the minimum and maximum RTT envelopes and
    *probabilistically* backs off when the gradient is positive, with
    P[backoff] = 1 - exp(-g / G). The coin flip makes CDG non-deterministic
    — the paper places it out of Abagnale's scope (§5.5); we implement it
    (with a seeded PRNG) so the trace-generation substrate is complete. *)

open Abg_util

let g_scale = 3.0 (* G: backoff scaling factor, in RTT-gradient units *)

let create ?(seed = 7) ~mss () : Cca_sig.t =
  let rng = Rng.create seed in
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let epoch_start = ref 0.0 in
  let epoch_min = ref infinity in
  let epoch_max = ref 0.0 in
  let prev_min = ref nan in
  let prev_max = ref nan in
  let smoothed_gradient = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then begin
      epoch_min := Float.min !epoch_min rtt;
      epoch_max := Float.max !epoch_max rtt
    end;
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      cwnd := !cwnd +. (mss *. acked /. !cwnd);
      if now -. !epoch_start >= Float.max 0.01 !epoch_min then begin
        (* Per-RTT gradient of the min/max RTT envelopes. *)
        if Float.is_finite !prev_min && Float.is_finite !epoch_min then begin
          let g_min = !epoch_min -. !prev_min in
          let g_max = !epoch_max -. !prev_max in
          let g = (g_min +. g_max) /. 2.0 /. Float.max 1e-3 !epoch_min in
          smoothed_gradient := (0.7 *. !smoothed_gradient) +. (0.3 *. g);
          if !smoothed_gradient > 0.0 then begin
            let p = 1.0 -. exp (-.(!smoothed_gradient *. 100.0) /. g_scale) in
            if Rng.float rng < p then
              cwnd := Cca_sig.clamp_cwnd ~mss (0.7 *. !cwnd)
          end
        end;
        prev_min := !epoch_min;
        prev_max := !epoch_max;
        epoch_min := infinity;
        epoch_max := 0.0;
        epoch_start := now
      end
    end
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (0.7 *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "cdg"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
