(** TCP Hybla (Caini & Firrincieli, 2004).

    Compensates high-delay links by scaling Reno's increase with
    rho = RTT / RTT0 (RTT0 = 25 ms): slow start grows by (2^rho - 1)
    segments per ACK, congestion avoidance by rho^2 segments per window.
    The result is window growth *in time* independent of RTT. *)

let rtt0 = 0.025

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let min_rtt = ref infinity in
  let rho = ref 1.0 in
  let on_ack ~now:_ ~acked ~rtt =
    if rtt > 0.0 then begin
      (* rho from the propagation RTT (running minimum), not the inflated
         sample — otherwise queueing delay feeds back into aggressiveness. *)
      min_rtt := Float.min !min_rtt rtt;
      rho := Float.max 1.0 (!min_rtt /. rtt0)
    end;
    if !cwnd < !ssthresh then
      cwnd := !cwnd +. ((Float.pow 2.0 !rho -. 1.0) *. acked)
    else cwnd := !cwnd +. (!rho *. !rho *. mss *. acked /. !cwnd)
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "hybla"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
