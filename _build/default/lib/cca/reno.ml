(** TCP NewReno (Hoe, SIGCOMM '96; RFC 6582).

    Slow start doubles the window each RTT (cwnd += acked); congestion
    avoidance adds one MSS per window of ACKed data
    (cwnd += MSS * acked / cwnd); a loss halves ssthresh and the window. *)

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let on_ack ~now:_ ~acked ~rtt:_ =
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else cwnd := !cwnd +. (mss *. acked /. !cwnd)
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "reno"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
