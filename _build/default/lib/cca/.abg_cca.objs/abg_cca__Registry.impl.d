lib/cca/registry.ml: Bbr Bic Cca_sig Cdg Cubic Highspeed Htcp Hybla Illinois List Lp Nv Reno Scalable String Student Vegas Veno Westwood Yeah
