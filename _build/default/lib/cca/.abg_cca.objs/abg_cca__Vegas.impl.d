lib/cca/vegas.ml: Cca_sig Float
