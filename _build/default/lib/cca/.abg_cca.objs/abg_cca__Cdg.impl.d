lib/cca/cdg.ml: Abg_util Cca_sig Float Rng
