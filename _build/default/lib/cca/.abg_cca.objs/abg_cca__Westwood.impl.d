lib/cca/westwood.ml: Cca_sig Float
