lib/cca/highspeed.ml: Cca_sig Float
