lib/cca/student.ml: Cca_sig Float
