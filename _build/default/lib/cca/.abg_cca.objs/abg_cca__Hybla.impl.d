lib/cca/hybla.ml: Cca_sig Float
