lib/cca/reno.ml: Cca_sig
