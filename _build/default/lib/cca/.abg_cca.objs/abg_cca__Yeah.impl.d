lib/cca/yeah.ml: Abg_util Cca_sig Float
