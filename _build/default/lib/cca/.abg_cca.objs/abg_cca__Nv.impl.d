lib/cca/nv.ml: Cca_sig Float
