lib/cca/scalable.ml: Cca_sig
