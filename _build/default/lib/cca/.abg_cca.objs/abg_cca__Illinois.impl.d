lib/cca/illinois.ml: Abg_util Cca_sig Float
