lib/cca/bic.ml: Abg_util Cca_sig
