lib/cca/htcp.ml: Abg_util Cca_sig Float
