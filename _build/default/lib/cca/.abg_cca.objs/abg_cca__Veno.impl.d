lib/cca/veno.ml: Cca_sig Float
