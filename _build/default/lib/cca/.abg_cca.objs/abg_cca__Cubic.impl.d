lib/cca/cubic.ml: Abg_util Cca_sig Float Floatx
