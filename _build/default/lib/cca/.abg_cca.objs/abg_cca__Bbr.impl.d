lib/cca/bbr.ml: Array Cca_sig Float
