lib/cca/cca_sig.ml: Float
