lib/cca/lp.ml: Cca_sig Float
