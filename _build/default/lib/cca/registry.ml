(** Registry of all ground-truth CCAs available for trace generation.

    The 16 Linux kernel algorithms of §5 plus the seven student CCAs. Look
    up by the names used throughout the paper's tables. *)

let kernel : (string * Cca_sig.constructor) list =
  [
    ("bbr", fun ~mss () -> Bbr.create ~mss ());
    ("cubic", fun ~mss () -> Cubic.create ~mss ());
    ("vegas", fun ~mss () -> Vegas.create ~mss ());
    ("reno", fun ~mss () -> Reno.create ~mss ());
    ("bic", fun ~mss () -> Bic.create ~mss ());
    ("cdg", fun ~mss () -> Cdg.create ~mss ());
    ("highspeed", fun ~mss () -> Highspeed.create ~mss ());
    ("htcp", fun ~mss () -> Htcp.create ~mss ());
    ("hybla", fun ~mss () -> Hybla.create ~mss ());
    ("illinois", fun ~mss () -> Illinois.create ~mss ());
    ("lp", fun ~mss () -> Lp.create ~mss ());
    ("nv", fun ~mss () -> Nv.create ~mss ());
    ("scalable", fun ~mss () -> Scalable.create ~mss ());
    ("veno", fun ~mss () -> Veno.create ~mss ());
    ("westwood", fun ~mss () -> Westwood.create ~mss ());
    ("yeah", fun ~mss () -> Yeah.create ~mss ());
  ]

let student = Student.all
let all = kernel @ student

let find name =
  List.assoc_opt (String.lowercase_ascii name) all

let names = List.map fst all
