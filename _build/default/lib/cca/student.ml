(** The seven "student" CCAs (§5.6).

    The paper's second dataset is novel CCAs written for a graduate
    networking class over a UDP transport (50–150 lines of C++ each). The
    dataset's code is not distributed with the paper, so these are
    synthetic equivalents: each implements the *behavior* that Table 2's
    synthesized handler and §5.6's discussion attribute to it, which is the
    property the reproduction needs (the synthesized expression for
    student k should recover the corresponding structure). *)

(** Student 1 — a fixed-target window protocol: after a brief ramp, it sits
    at a constant window (Table 2 synthesizes the constant [88]). *)
let student1 ~mss () : Cca_sig.t =
  let target = 88.0 *. mss in
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let on_ack ~now:_ ~acked ~rtt:_ =
    if !cwnd < target then cwnd := Float.min target (!cwnd +. acked)
  in
  let on_loss ~now:_ = () in
  { Cca_sig.name = "student1"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

(** Student 2 — AIMD with a delay circuit-breaker: grow one MSS per ACK
    while the queue estimate is small, collapse to one MSS otherwise
    (Table 2: [{vegas-diff / minRTT < 5} ? CWND + MSS : MSS]). *)
let student2 ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let base_rtt = ref infinity in
  let on_ack ~now:_ ~acked:_ ~rtt =
    if rtt > 0.0 then base_rtt := Float.min !base_rtt rtt;
    let queue_score =
      if Float.is_finite !base_rtt && !base_rtt > 0.0 then
        (rtt -. !base_rtt) /. !base_rtt *. (!cwnd /. mss) /. 10.0
      else 0.0
    in
    if queue_score < 5.0 then cwnd := !cwnd +. mss
    else cwnd := Cca_sig.clamp_cwnd ~mss mss
  in
  let on_loss ~now:_ = cwnd := Cca_sig.clamp_cwnd ~mss mss in
  { Cca_sig.name = "student2"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

(** Student 3 — pure rate mirror: window proportional to the measured
    delivery rate times the minimum RTT (Table 2: [.8 * ACKed / minRTT]
    summed over an RTT ~ 0.8 * rate * minRTT). *)
let student3 ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let min_rtt = ref infinity in
  let last_ack = ref 0.0 in
  let rate = ref 0.0 in
  let on_ack ~now ~acked ~rtt =
    if rtt > 0.0 then min_rtt := Float.min !min_rtt rtt;
    let dt = now -. !last_ack in
    if dt > 1e-9 && !last_ack > 0.0 then
      rate := (0.8 *. !rate) +. (0.2 *. (acked /. dt));
    last_ack := now;
    if Float.is_finite !min_rtt && !rate > 0.0 then
      cwnd := Cca_sig.clamp_cwnd ~mss (0.8 *. !rate *. !min_rtt)
    else cwnd := !cwnd +. acked
  in
  let on_loss ~now:_ = () in
  { Cca_sig.name = "student3"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

(** Student 4 — stop-and-wait: a constant one-MSS window. *)
let student4 ~mss () : Cca_sig.t =
  let cwnd = 1.0 *. mss in
  {
    Cca_sig.name = "student4";
    cwnd = (fun () -> cwnd);
    on_ack = (fun ~now:_ ~acked:_ ~rtt:_ -> ());
    on_loss = (fun ~now:_ -> ());
  }

(** Student 5 — constant two-MSS window. *)
let student5 ~mss () : Cca_sig.t =
  let cwnd = 2.0 *. mss in
  {
    Cca_sig.name = "student5";
    cwnd = (fun () -> cwnd);
    on_ack = (fun ~now:_ ~acked:_ ~rtt:_ -> ());
    on_loss = (fun ~now:_ -> ());
  }

(** Student 6 — delay-gradient divider: a large base window shrunk as the
    delay gradient grows (Table 2: [(cwnd + 150 * MSS) / delay-gradient]).
    The gradient estimate is kept >= 1 so the division is meaningful. *)
let student6 ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let prev_rtt = ref nan in
  let gradient = ref 1.0 in
  let on_ack ~now:_ ~acked:_ ~rtt =
    if rtt > 0.0 then begin
      if Float.is_finite !prev_rtt then begin
        let g = (rtt -. !prev_rtt) /. Float.max 1e-4 !prev_rtt in
        gradient := Float.max 1.0 ((0.9 *. !gradient) +. (0.1 *. (1.0 +. (g *. 50.0))))
      end;
      prev_rtt := rtt
    end;
    cwnd := Cca_sig.clamp_cwnd ~mss ((!cwnd +. (150.0 *. mss)) /. !gradient /. 2.0)
  in
  let on_loss ~now:_ = gradient := !gradient *. 1.5 in
  { Cca_sig.name = "student6"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

(** Student 7 — additive rate probe: grows by the ACKed bytes scaled by
    2/RTT per ACK (Table 2: [CWND + 2 * ACKed / RTT], yielding
    near-linear-in-time growth). *)
let student7 ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let on_ack ~now:_ ~acked ~rtt =
    let rtt = Float.max 1e-3 rtt in
    cwnd := !cwnd +. (2.0 *. acked /. rtt *. 0.001)
  in
  let on_loss ~now:_ = cwnd := Cca_sig.clamp_cwnd ~mss (!cwnd /. 2.0) in
  { Cca_sig.name = "student7"; cwnd = (fun () -> !cwnd); on_ack; on_loss }

let all : (string * Cca_sig.constructor) list =
  [
    ("student1", student1);
    ("student2", student2);
    ("student3", student3);
    ("student4", student4);
    ("student5", student5);
    ("student6", student6);
    ("student7", student7);
  ]
