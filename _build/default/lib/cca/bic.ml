(** BIC (Xu, Harfoush & Rhee, INFOCOM '04).

    Binary-search increase: below the last-loss window [w_max] the window
    jumps halfway toward it (capped to [s_max] segments per RTT, floored at
    [s_min]); above [w_max] it probes away slowly then increasingly fast
    (max probing). Loss sets w_max (with fast convergence) and multiplies
    the window by beta = 0.8. *)

let s_max = 32.0 (* segments *)
let s_min = 0.01
let beta = 0.8

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let w_max = ref 0.0 in
  let on_ack ~now:_ ~acked ~rtt:_ =
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else begin
      let inc_per_rtt_segments =
        if !w_max <= 0.0 then 1.0
        else if !cwnd < !w_max then begin
          (* Binary search toward the last known saturation point. *)
          let dist = (!w_max -. !cwnd) /. 2.0 /. mss in
          Abg_util.Floatx.clamp ~lo:s_min ~hi:s_max dist
        end
        else begin
          (* Max probing: slow start-like departure from w_max. *)
          let dist = (!cwnd -. !w_max) /. mss in
          Abg_util.Floatx.clamp ~lo:1.0 ~hi:s_max (dist /. 4.0)
        end
      in
      cwnd := !cwnd +. (inc_per_rtt_segments *. mss *. acked /. !cwnd)
    end
  in
  let on_loss ~now:_ =
    (* Fast convergence: if we lost below the previous w_max, the
       bottleneck share shrank — aim lower. *)
    if !cwnd < !w_max then w_max := !cwnd *. (1.0 +. beta) /. 2.0
    else w_max := !cwnd;
    ssthresh := Cca_sig.clamp_cwnd ~mss (beta *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "bic"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
