(** Scalable TCP (Kelly, CCR '03).

    Multiplicative increase: the window grows by a fixed fraction (0.01) of
    each ACKed byte, so loss-recovery time is independent of window size;
    the decrease factor is 0.875. *)

let create ~mss () : Cca_sig.t =
  let cwnd = ref (Cca_sig.initial_window ~mss) in
  let ssthresh = ref infinity in
  let on_ack ~now:_ ~acked ~rtt:_ =
    if !cwnd < !ssthresh then cwnd := !cwnd +. Cca_sig.ss_increment ~mss ~acked
    else cwnd := !cwnd +. (0.01 *. acked)
  in
  let on_loss ~now:_ =
    ssthresh := Cca_sig.clamp_cwnd ~mss (0.875 *. !cwnd);
    cwnd := !ssthresh
  in
  { Cca_sig.name = "scalable"; cwnd = (fun () -> !cwnd); on_ack; on_loss }
