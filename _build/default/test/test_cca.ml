(* Tests for the CCA implementations: generic per-CCA invariants driven
   through a synthetic ACK feeder, plus behavior checks per published
   algorithm. *)

let mss = 1448.0

(* Feed [n] clean ACKs at a steady clock. *)
let feed ?(rtt = 0.05) ?(acked = mss) ?(start = 0.0) cca n =
  for i = 1 to n do
    let now = start +. (float_of_int i *. 0.001) in
    cca.Abg_cca.Cca_sig.on_ack ~now ~acked ~rtt
  done

let generic_invariants (name, ctor) =
  Alcotest.test_case name `Quick (fun () ->
      let cca = ctor ~mss () in
      Alcotest.(check string) "name matches" name cca.Abg_cca.Cca_sig.name;
      Alcotest.(check bool) "initial window positive" true
        (cca.Abg_cca.Cca_sig.cwnd () > 0.0);
      feed cca 500;
      let w = cca.Abg_cca.Cca_sig.cwnd () in
      Alcotest.(check bool) "window finite" true (Float.is_finite w);
      Alcotest.(check bool) "window >= 1 MSS" true (w >= mss);
      cca.Abg_cca.Cca_sig.on_loss ~now:1.0;
      let w' = cca.Abg_cca.Cca_sig.cwnd () in
      (* Fixed-window CCAs (student 4) legitimately sit at one MSS. *)
      Alcotest.(check bool) "window after loss >= 1 MSS and finite" true
        (Float.is_finite w' && w' >= mss))

let test_reno_slow_start_doubles () =
  let cca = Abg_cca.Reno.create ~mss () in
  let w0 = cca.Abg_cca.Cca_sig.cwnd () in
  (* One window's worth of ACKs in slow start: growth is capped at 2 MSS
     per ACK (ABC) but at least one window. *)
  feed cca 10;
  let w1 = cca.Abg_cca.Cca_sig.cwnd () in
  Alcotest.(check bool) "roughly doubled" true
    (w1 >= w0 +. (9.0 *. mss) && w1 <= w0 +. (21.0 *. mss))

let test_reno_halves_on_loss () =
  let cca = Abg_cca.Reno.create ~mss () in
  feed cca 200;
  let before = cca.Abg_cca.Cca_sig.cwnd () in
  cca.Abg_cca.Cca_sig.on_loss ~now:1.0;
  Alcotest.(check (float 1.0)) "halved" (before /. 2.0)
    (cca.Abg_cca.Cca_sig.cwnd ())

let test_reno_congestion_avoidance_rate () =
  let cca = Abg_cca.Reno.create ~mss () in
  feed cca 100;
  cca.Abg_cca.Cca_sig.on_loss ~now:0.5;
  (* Now in CA: one window of ACKs grows the window by ~1 MSS. *)
  let w = cca.Abg_cca.Cca_sig.cwnd () in
  let acks_per_window = int_of_float (w /. mss) in
  feed ~start:1.0 cca acks_per_window;
  let w' = cca.Abg_cca.Cca_sig.cwnd () in
  Alcotest.(check bool) "+~1 MSS per RTT" true
    (w' -. w > 0.5 *. mss && w' -. w < 2.0 *. mss)

let test_scalable_multiplicative_decrease () =
  let cca = Abg_cca.Scalable.create ~mss () in
  feed cca 300;
  let before = cca.Abg_cca.Cca_sig.cwnd () in
  cca.Abg_cca.Cca_sig.on_loss ~now:1.0;
  Alcotest.(check (float 1.0)) "0.875 factor" (0.875 *. before)
    (cca.Abg_cca.Cca_sig.cwnd ())

let test_cubic_plateau_recovery () =
  let cca = Abg_cca.Cubic.create ~mss () in
  feed cca 300;
  cca.Abg_cca.Cca_sig.on_loss ~now:0.5;
  let after_loss = cca.Abg_cca.Cca_sig.cwnd () in
  (* In CA the window climbs back toward w_max over time. *)
  for i = 1 to 2000 do
    cca.Abg_cca.Cca_sig.on_ack
      ~now:(0.5 +. (float_of_int i *. 0.005))
      ~acked:mss ~rtt:0.05
  done;
  Alcotest.(check bool) "recovers toward plateau" true
    (cca.Abg_cca.Cca_sig.cwnd () > after_loss)

let test_vegas_holds_when_queued () =
  (* With RTT well above the base, Vegas must not keep growing. *)
  let cca = Abg_cca.Vegas.create ~mss () in
  feed ~rtt:0.05 cca 100;
  cca.Abg_cca.Cca_sig.on_loss ~now:0.2;
  (* Establish base RTT then inflate the delay. *)
  for i = 1 to 100 do
    cca.Abg_cca.Cca_sig.on_ack
      ~now:(0.2 +. (float_of_int i *. 0.01))
      ~acked:mss ~rtt:0.05
  done;
  let w = cca.Abg_cca.Cca_sig.cwnd () in
  for i = 1 to 300 do
    cca.Abg_cca.Cca_sig.on_ack
      ~now:(1.2 +. (float_of_int i *. 0.01))
      ~acked:mss ~rtt:0.15
  done;
  let w' = cca.Abg_cca.Cca_sig.cwnd () in
  Alcotest.(check bool) "holds or shrinks under queueing" true (w' <= w +. mss)

let test_westwood_bandwidth_backoff () =
  let cca = Abg_cca.Westwood.create ~mss () in
  (* ACK clock at ~289.6 kB/s with 50 ms RTT -> BDP ~ 14.5 kB. *)
  for i = 1 to 500 do
    cca.Abg_cca.Cca_sig.on_ack
      ~now:(float_of_int i *. 0.005)
      ~acked:mss ~rtt:0.05
  done;
  cca.Abg_cca.Cca_sig.on_loss ~now:2.6;
  let w = cca.Abg_cca.Cca_sig.cwnd () in
  Alcotest.(check bool) "backoff lands near bw*min_rtt" true
    (w > 7_000.0 && w < 30_000.0)

let test_htcp_alpha_grows_with_time () =
  let cca = Abg_cca.Htcp.create ~mss () in
  feed cca 100;
  cca.Abg_cca.Cca_sig.on_loss ~now:0.1;
  let w0 = cca.Abg_cca.Cca_sig.cwnd () in
  (* Shortly after loss: Reno-rate growth. *)
  for i = 1 to 50 do
    cca.Abg_cca.Cca_sig.on_ack ~now:(0.1 +. (float_of_int i *. 0.002)) ~acked:mss ~rtt:0.05
  done;
  let early_growth = cca.Abg_cca.Cca_sig.cwnd () -. w0 in
  (* Far past delta_l: each ACK adds much more. *)
  let w1 = cca.Abg_cca.Cca_sig.cwnd () in
  for i = 1 to 50 do
    cca.Abg_cca.Cca_sig.on_ack ~now:(5.0 +. (float_of_int i *. 0.002)) ~acked:mss ~rtt:0.05
  done;
  let late_growth = cca.Abg_cca.Cca_sig.cwnd () -. w1 in
  Alcotest.(check bool) "alpha accelerates" true (late_growth > 2.0 *. early_growth)

let test_bbr_reaches_steady_state () =
  let cfg = Abg_netsim.Config.make ~duration:15.0 ~bandwidth_mbps:10.0 ~rtt_ms:50.0 () in
  let cca = Abg_cca.Bbr.create ~mss:cfg.Abg_netsim.Config.mss () in
  let stats = Abg_netsim.Sim.run cfg cca in
  let w = cca.Abg_cca.Cca_sig.cwnd () in
  let bdp = Abg_netsim.Config.bdp cfg in
  Alcotest.(check bool) "cwnd near 2x BDP" true (w > 1.0 *. bdp && w < 4.0 *. bdp);
  Alcotest.(check bool) "utilized" true
    (stats.Abg_netsim.Sim.delivered_bytes *. 8.0
     /. (cfg.Abg_netsim.Config.bandwidth_bps *. 15.0)
    > 0.8)

let test_hybla_scales_with_rtt () =
  (* Same wall-clock time, different RTTs: Hybla's growth should be far
     less RTT-dependent than Reno's (per-ACK increase scaled by rho^2). *)
  (* Hammer the window to the clamp floor first so both runs compare
     growth from an identical base window. *)
  let growth rtt =
    let cca = Abg_cca.Hybla.create ~mss () in
    feed ~rtt cca 100;
    for _ = 1 to 30 do
      cca.Abg_cca.Cca_sig.on_loss ~now:0.2
    done;
    let w = cca.Abg_cca.Cca_sig.cwnd () in
    for i = 1 to 50 do
      cca.Abg_cca.Cca_sig.on_ack ~now:(0.2 +. (float_of_int i *. 0.001)) ~acked:mss ~rtt
    done;
    cca.Abg_cca.Cca_sig.cwnd () -. w
  in
  Alcotest.(check bool) "high-RTT grows faster per ACK" true
    (growth 0.1 > 2.0 *. growth 0.025)

let test_ss_increment_cap () =
  Alcotest.(check (float 1e-9)) "capped" (2.0 *. mss)
    (Abg_cca.Cca_sig.ss_increment ~mss ~acked:(50.0 *. mss));
  Alcotest.(check (float 1e-9)) "uncapped" mss
    (Abg_cca.Cca_sig.ss_increment ~mss ~acked:mss)

let test_registry_complete () =
  Alcotest.(check int) "16 kernel CCAs" 16 (List.length Abg_cca.Registry.kernel);
  Alcotest.(check int) "7 student CCAs" 7 (List.length Abg_cca.Registry.student);
  Alcotest.(check bool) "find is case-insensitive" true
    (Abg_cca.Registry.find "RENO" <> None);
  Alcotest.(check bool) "unknown rejected" true (Abg_cca.Registry.find "quic" = None)

let test_student_fixed_windows () =
  let s4 = Abg_cca.Student.student4 ~mss () in
  let s5 = Abg_cca.Student.student5 ~mss () in
  feed s4 100;
  feed s5 100;
  Alcotest.(check (float 1e-9)) "student4 = 1 MSS" mss (s4.Abg_cca.Cca_sig.cwnd ());
  Alcotest.(check (float 1e-9)) "student5 = 2 MSS" (2.0 *. mss)
    (s5.Abg_cca.Cca_sig.cwnd ())

let test_student1_caps_at_88 () =
  let s1 = Abg_cca.Student.student1 ~mss () in
  feed s1 2000;
  Alcotest.(check (float 1.0)) "caps at 88 MSS" (88.0 *. mss)
    (s1.Abg_cca.Cca_sig.cwnd ())

let suites =
  [
    ("cca.invariants", List.map generic_invariants Abg_cca.Registry.all);
    ( "cca.behavior",
      [
        Alcotest.test_case "reno slow start" `Quick test_reno_slow_start_doubles;
        Alcotest.test_case "reno loss halving" `Quick test_reno_halves_on_loss;
        Alcotest.test_case "reno CA rate" `Quick test_reno_congestion_avoidance_rate;
        Alcotest.test_case "scalable 0.875" `Quick test_scalable_multiplicative_decrease;
        Alcotest.test_case "cubic plateau" `Quick test_cubic_plateau_recovery;
        Alcotest.test_case "vegas holds" `Quick test_vegas_holds_when_queued;
        Alcotest.test_case "westwood backoff" `Quick test_westwood_bandwidth_backoff;
        Alcotest.test_case "htcp alpha schedule" `Quick test_htcp_alpha_grows_with_time;
        Alcotest.test_case "bbr steady state" `Quick test_bbr_reaches_steady_state;
        Alcotest.test_case "hybla rtt compensation" `Quick test_hybla_scales_with_rtt;
        Alcotest.test_case "ss increment cap" `Quick test_ss_increment_cap;
        Alcotest.test_case "registry" `Quick test_registry_complete;
        Alcotest.test_case "student fixed windows" `Quick test_student_fixed_windows;
        Alcotest.test_case "student1 cap" `Quick test_student1_caps_at_88;
      ] );
  ]
