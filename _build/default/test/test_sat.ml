(* Tests for the CDCL SAT solver and CNF helpers, including a
   brute-force differential fuzz on random 3-SAT. *)

open Abg_sat

let fresh_vars s n = List.init n (fun _ -> Solver.new_var s)

let expect_sat s =
  match Solver.solve s with
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected SAT"

let expect_unsat ?assumptions s =
  match Solver.solve ?assumptions s with
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Unsat -> ()

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  let m = expect_sat s in
  Alcotest.(check bool) "v true" true m.(v)

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ v ];
  Solver.add_clause s [ -v ];
  expect_unsat s

let test_unit_propagation_chain () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 10) in
  Solver.add_clause s [ vs.(0) ];
  for i = 0 to 8 do
    Solver.add_clause s [ -vs.(i); vs.(i + 1) ]
  done;
  let m = expect_sat s in
  Array.iter (fun v -> Alcotest.(check bool) "chain forced" true m.(v)) vs

let test_empty_formula_sat () =
  let s = Solver.create () in
  let _ = fresh_vars s 3 in
  ignore (expect_sat s)

let test_pigeonhole_unsat () =
  (* 4 pigeons, 3 holes. *)
  let s = Solver.create () in
  let p = Array.init 4 (fun _ -> Array.of_list (fresh_vars s 3)) in
  for i = 0 to 3 do
    Solver.add_clause s (Array.to_list p.(i))
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Solver.add_clause s [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  expect_unsat s

let test_model_satisfies () =
  let s = Solver.create () in
  let vs = fresh_vars s 6 in
  let clauses =
    [ [ List.nth vs 0; -List.nth vs 1 ]; [ List.nth vs 2; List.nth vs 3 ];
      [ -List.nth vs 4; List.nth vs 5; List.nth vs 0 ] ]
  in
  List.iter (Solver.add_clause s) clauses;
  let m = expect_sat s in
  List.iter
    (fun c ->
      Alcotest.(check bool) "clause satisfied" true
        (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) c))
    clauses

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ -a; b ];
  expect_unsat ~assumptions:[ a; -b ] s;
  (match Solver.solve ~assumptions:[ a ] s with
  | Solver.Sat m -> Alcotest.(check bool) "b forced" true m.(b)
  | Solver.Unsat -> Alcotest.fail "expected SAT");
  (* The solver must stay usable after a failed-assumption call. *)
  ignore (expect_sat s)

let test_enumeration_count () =
  (* Count models of (x1 | x2 | x3): 7 of 8 assignments. *)
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Solver.add_clause s vs;
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Solver.solve s with
    | Solver.Sat m ->
        incr count;
        Solver.add_clause s (List.map (fun v -> if m.(v) then -v else v) vs)
    | Solver.Unsat -> continue := false
  done;
  Alcotest.(check int) "model count" 7 !count

let test_randomize_sound () =
  let s = Solver.create () in
  let vs = fresh_vars s 8 in
  List.iteri (fun i v -> if i mod 2 = 0 then Solver.add_clause s [ v ]) vs;
  for seed = 0 to 20 do
    Solver.randomize s ~seed;
    let m = expect_sat s in
    List.iteri
      (fun i v ->
        if i mod 2 = 0 then Alcotest.(check bool) "forced stays true" true m.(v))
      vs
  done

(* -- Cnf helpers -- *)

let count_models s vs =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Solver.solve s with
    | Solver.Sat m ->
        incr count;
        Solver.add_clause s (List.map (fun v -> if m.(v) then -v else v) vs)
    | Solver.Unsat -> continue := false
  done;
  !count

let test_exactly_one () =
  let s = Solver.create () in
  let vs = fresh_vars s 5 in
  Cnf.exactly_one s vs;
  Alcotest.(check int) "5 models" 5 (count_models s vs)

let test_at_most_one () =
  let s = Solver.create () in
  let vs = fresh_vars s 4 in
  Cnf.at_most_one s vs;
  Alcotest.(check int) "4 + empty" 5 (count_models s vs)

let binom n k =
  let rec go n k = if k = 0 then 1 else go (n - 1) (k - 1) * n / k in
  go n k

let test_at_most_k () =
  let n = 6 and k = 2 in
  let s = Solver.create () in
  let vs = fresh_vars s n in
  Cnf.at_most_k s vs k;
  let expected = binom n 0 + binom n 1 + binom n 2 in
  Alcotest.(check int) "sum of binomials" expected (count_models s vs)

let test_at_most_k_zero () =
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Cnf.at_most_k s vs 0;
  Alcotest.(check int) "only empty" 1 (count_models s vs)

let test_at_most_k_slack () =
  let s = Solver.create () in
  let vs = fresh_vars s 3 in
  Cnf.at_most_k s vs 5;
  Alcotest.(check int) "unconstrained" 8 (count_models s vs)

let test_define_and () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let x = Cnf.define_and s [ a; b ] in
  (match Solver.solve ~assumptions:[ a; b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "and true" true m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected");
  match Solver.solve ~assumptions:[ a; -b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "and false" false m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected"

let test_define_or () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let x = Cnf.define_or s [ a; b ] in
  (match Solver.solve ~assumptions:[ -a; b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "or true" true m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected");
  match Solver.solve ~assumptions:[ -a; -b ] s with
  | Solver.Sat m -> Alcotest.(check bool) "or false" false m.(x)
  | Solver.Unsat -> Alcotest.fail "sat expected"

let test_implies () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Cnf.implies s a b;
  expect_unsat ~assumptions:[ a; -b ] s

(* -- Differential fuzz vs brute force -- *)

let brute_force_sat n clauses =
  let rec go assign v =
    if v = n then
      List.for_all
        (fun c ->
          List.exists
            (fun l -> if l > 0 then assign.(l - 1) else not assign.(-l - 1))
            c)
        clauses
    else begin
      assign.(v) <- true;
      go assign (v + 1)
      ||
      (assign.(v) <- false;
       go assign (v + 1))
    end
  in
  go (Array.make n false) 0

let prop_matches_brute_force =
  QCheck.Test.make ~name:"cdcl agrees with brute force on random 3-SAT"
    ~count:150
    QCheck.(pair (int_range 3 10) (int_range 1 40))
    (fun (n, m) ->
      let rng = Abg_util.Rng.create ((n * 1000) + m) in
      let clauses =
        List.init m (fun _ ->
            List.init 3 (fun _ ->
                let v = 1 + Abg_util.Rng.int rng n in
                if Abg_util.Rng.bool rng then v else -v))
      in
      let s = Solver.create () in
      ignore (fresh_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force_sat n clauses in
      match Solver.solve s with
      | Solver.Sat model ->
          expected
          && List.for_all
               (fun c ->
                 List.exists
                   (fun l -> if l > 0 then model.(l) else not model.(-l))
                   c)
               clauses
      | Solver.Unsat -> not expected)

let prop_incremental_enumeration_complete =
  QCheck.Test.make ~name:"enumeration finds the brute-force model count"
    ~count:50
    QCheck.(pair (int_range 2 6) (int_range 1 10))
    (fun (n, m) ->
      let rng = Abg_util.Rng.create ((n * 77) + m) in
      let clauses =
        List.init m (fun _ ->
            List.init 2 (fun _ ->
                let v = 1 + Abg_util.Rng.int rng n in
                if Abg_util.Rng.bool rng then v else -v))
      in
      let brute_count = ref 0 in
      let rec go assign v =
        if v = n then begin
          if
            List.for_all
              (fun c ->
                List.exists
                  (fun l -> if l > 0 then assign.(l - 1) else not assign.(-l - 1))
                  c)
              clauses
          then incr brute_count
        end
        else begin
          assign.(v) <- true;
          go assign (v + 1);
          assign.(v) <- false;
          go assign (v + 1)
        end
      in
      go (Array.make n false) 0;
      let s = Solver.create () in
      let vs = fresh_vars s n in
      List.iter (Solver.add_clause s) clauses;
      count_models s vs = !brute_count)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suites =
  [
    ( "sat.solver",
      [
        Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
        Alcotest.test_case "unit propagation chain" `Quick test_unit_propagation_chain;
        Alcotest.test_case "empty formula" `Quick test_empty_formula_sat;
        Alcotest.test_case "pigeonhole 4->3 unsat" `Quick test_pigeonhole_unsat;
        Alcotest.test_case "model satisfies clauses" `Quick test_model_satisfies;
        Alcotest.test_case "assumptions" `Quick test_assumptions;
        Alcotest.test_case "enumeration count" `Quick test_enumeration_count;
        Alcotest.test_case "randomize is sound" `Quick test_randomize_sound;
      ]
      @ qcheck [ prop_matches_brute_force; prop_incremental_enumeration_complete ]
    );
    ( "sat.cnf",
      [
        Alcotest.test_case "exactly_one" `Quick test_exactly_one;
        Alcotest.test_case "at_most_one" `Quick test_at_most_one;
        Alcotest.test_case "at_most_k counts" `Quick test_at_most_k;
        Alcotest.test_case "at_most_k zero" `Quick test_at_most_k_zero;
        Alcotest.test_case "at_most_k slack" `Quick test_at_most_k_slack;
        Alcotest.test_case "define_and" `Quick test_define_and;
        Alcotest.test_case "define_or" `Quick test_define_or;
        Alcotest.test_case "implies" `Quick test_implies;
      ] );
  ]
