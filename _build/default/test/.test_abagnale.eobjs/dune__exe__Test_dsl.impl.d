test/test_dsl.ml: Abg_core Abg_dsl Abg_util Alcotest Catalog Component Env Eval Expr Float List Macro Pretty QCheck QCheck_alcotest Signal Simplify Sketch String Unit_check
