test/test_abagnale.mli:
