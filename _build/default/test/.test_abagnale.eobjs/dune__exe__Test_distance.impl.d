test/test_distance.ml: Abg_distance Abg_util Alcotest Array Float Gen List QCheck QCheck_alcotest String
