test/test_sat.ml: Abg_sat Abg_util Alcotest Array Cnf List QCheck QCheck_alcotest Solver
