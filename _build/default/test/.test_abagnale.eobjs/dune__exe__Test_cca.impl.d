test/test_cca.ml: Abg_cca Abg_netsim Alcotest Float List
