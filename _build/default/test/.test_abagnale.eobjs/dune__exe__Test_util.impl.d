test/test_util.ml: Abg_parallel Abg_util Alcotest Array Float Floatx Gen List Printf QCheck QCheck_alcotest Resample Rng Stats Units
