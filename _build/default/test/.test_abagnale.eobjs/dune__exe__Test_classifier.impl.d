test/test_classifier.ml: Abg_cca Abg_classifier Abg_dsl Abg_netsim Abg_trace Alcotest Array Dsl_hint Float Gordon Hashtbl List Option Printf String
