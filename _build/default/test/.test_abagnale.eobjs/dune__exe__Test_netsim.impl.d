test/test_netsim.ml: Abg_cca Abg_netsim Alcotest Config Event_queue Gen List Option QCheck QCheck_alcotest Sim
