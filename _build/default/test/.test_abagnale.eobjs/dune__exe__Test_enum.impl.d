test/test_enum.ml: Abg_dsl Abg_enum Abg_util Alcotest Catalog Component Expr Fun List Macro Signal Simplify Unit_check
