test/test_core.ml: Abg_cca Abg_core Abg_distance Abg_dsl Abg_netsim Abg_trace Abg_util Alcotest Array Float Lazy List Option
