test/test_trace.ml: Abg_cca Abg_distance Abg_dsl Abg_netsim Abg_trace Abg_util Alcotest Array Filename Fun Lazy List Sys
