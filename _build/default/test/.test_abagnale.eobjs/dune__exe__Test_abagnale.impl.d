test/test_abagnale.ml: Alcotest Test_cca Test_classifier Test_core Test_distance Test_dsl Test_enum Test_netsim Test_sat Test_trace Test_util
