(* §6.1 search-efficiency deep dive on Reno: how much of the viable
   search space the refinement loop actually evaluates. The paper's
   numbers: ~2e9 raw depth-3 sketches -> 1,617 after enumeration pruning;
   218 buckets; 17,500 then 28,400 handlers scored over 7 and 13 minutes;
   the winner found after exploring ~1/3 of the viable space. We print the
   same series from our instrumented run (scaled workload). *)

let count_viable_sketches ~cap dsl =
  let enc = Abg_enum.Encode.create dsl in
  let rec go n =
    if n >= cap then (n, true, enc)
    else
      match Abg_enum.Encode.next enc with
      | Some _ -> go (n + 1)
      | None -> (n, false, enc)
  in
  go 0

let pp_pruned counters =
  String.concat ", "
    (List.map (fun (reason, n) -> Printf.sprintf "%s %d" reason n) counters)

let run () =
  Runs.heading "Sec 6.1: search efficiency on Reno";
  let dsl = Abg_dsl.Catalog.reno in
  Printf.printf "raw universe (depth %d): %s sketches\n"
    dsl.Abg_dsl.Catalog.max_depth
    (Abg_enum.Count.to_string (Abg_enum.Count.universe dsl));
  let viable, capped, enc =
    Runs.timed "exhaustive enumeration" (fun () ->
        count_viable_sketches ~cap:20_000 dsl)
  in
  Printf.printf
    "viable sketches after type/unit/simplifiability pruning: %s%d (paper: \
     1,617)\n"
    (if capped then ">= " else "")
    viable;
  Printf.printf "statically pruned before simulation: %s (%.1f%% of %d)\n"
    (pp_pruned (Abg_enum.Encode.prune_stats enc))
    (100.0 *. Abg_enum.Encode.prune_rate enc)
    (viable + Abg_enum.Encode.skipped enc);
  let st = Abg_enum.Encode.solver_stats enc in
  Printf.printf
    "solver effort: %d conflicts, %d propagations, %d learnts (%d live), %d \
     DB reductions\n"
    st.Abg_sat.Solver.conflicts st.Abg_sat.Solver.propagations
    st.Abg_sat.Solver.learnts_total st.Abg_sat.Solver.learnts_live
    st.Abg_sat.Solver.db_reductions;
  Printf.printf "buckets: %d (paper: 218)\n"
    (List.length (Abg_enum.Buckets.all dsl));
  match Runs.synthesis "reno" with
  | None -> Printf.printf "(synthesis returned nothing)\n"
  | Some o ->
      let r = o.Abg_core.Synthesis.refinement in
      List.iter
        (fun (it : Abg_core.Refinement.iteration_report) ->
          Printf.printf
            "iteration %d: N=%d sketches/bucket over %d segments; %d \
             cumulative handlers scored; kept %d buckets\n"
            it.Abg_core.Refinement.iteration
            it.Abg_core.Refinement.samples_per_bucket
            it.Abg_core.Refinement.segments_used
            it.Abg_core.Refinement.handlers_scored
            (List.length it.Abg_core.Refinement.kept))
        r.Abg_core.Refinement.iterations;
      Printf.printf "total: %d sketches scored, %d concrete handlers scored\n"
        r.Abg_core.Refinement.total_sketches_scored
        r.Abg_core.Refinement.total_handlers_scored;
      Printf.printf
        "statically pruned during refinement: %s (%.1f%% of enumerated)\n"
        (pp_pruned r.Abg_core.Refinement.pruned)
        (100.0 *. r.Abg_core.Refinement.prune_rate);
      let st = r.Abg_core.Refinement.solver in
      Printf.printf
        "refinement solver effort: %d conflicts, %d propagations, %d learnts \
         (%d live), %d DB reductions\n"
        st.Abg_sat.Solver.conflicts st.Abg_sat.Solver.propagations
        st.Abg_sat.Solver.learnts_total st.Abg_sat.Solver.learnts_live
        st.Abg_sat.Solver.db_reductions;
      if (not capped) && viable > 0 then
        Printf.printf
          "fraction of viable sketch space explored: %.0f%% (paper: ~33%%)\n"
          (100.0
          *. Float.min 1.0
               (float_of_int r.Abg_core.Refinement.total_sketches_scored
               /. float_of_int viable));
      Printf.printf "returned: %s (DTW %.2f)\n\n" o.Abg_core.Synthesis.pretty
        o.Abg_core.Synthesis.distance
