(* Mister880 comparison (§1 "Key Results", §2.2): the decision-problem
   baseline accepts the ground-truth handler only on noiseless traces and
   rejects *everything* once measurement noise is present, while
   Abagnale's distance formulation keeps ranking the true handler first.

   Three measurements on Reno traces:
   1. acceptance of the true (fine-tuned) handler, noiseless vs noisy;
   2. what Mister880-style enumeration finds within a budget;
   3. Abagnale's distance-based ranking on the same noisy traces. *)

let clean_traces () =
  let ctor = Option.get (Abg_cca.Registry.find "reno") in
  Abg_netsim.Config.testbed_grid ~duration:15.0 ~ack_jitter:0.0 ~n:2 ()
  |> Abg_parallel.Pool.map_list (fun cfg ->
         Abg_trace.Trace.collect_cached cfg ~name:"reno" ctor)

let segments_of traces =
  let rng = Abg_util.Rng.create 7 in
  Abg_core.Synthesis.segments_of_traces rng ~metric:Abg_distance.Metric.Dtw
    ~budget:4 traces
  |> List.map (Abg_trace.Segmentation.thin ~max_records:300)

let run () =
  Runs.heading "Mister880 comparison: decision vs optimization under noise";
  (* The handler that actually generated these traces: our Reno adds one
     full reno-inc per ACK (the paper's testbed matched 0.7x; constants
     absorb the testbed). Using the generating handler gives the decision
     procedure its best possible shot. *)
  let truth_handler =
    Abg_dsl.Expr.(Add (Cwnd, Macro Abg_dsl.Macro.Reno_inc))
  in
  let traces = clean_traces () in
  List.iter
    (fun noise ->
      let rng = Abg_util.Rng.create 31337 in
      let noisy =
        if noise = 0.0 then traces
        else List.map (Abg_trace.Noise.observation_noise rng ~stddev:noise) traces
      in
      let segments = segments_of noisy in
      (* Mister880 considers a single trace; give it the single segment it
         matches best, its most favorable setting. *)
      let accepted =
        List.exists
          (fun seg -> Abg_core.Mister880.accepts ~tolerance:0.05 truth_handler seg)
          segments
      in
      let d_true = Abg_core.Replay.total_distance truth_handler segments in
      let d_identity = Abg_core.Replay.total_distance Abg_dsl.Expr.Cwnd segments in
      Printf.printf
        "noise %.2f | mister880 accepts true handler: %-5b | abagnale: \
         d(true)=%.1f vs d(identity)=%.1f -> true handler %s\n%!"
        noise accepted d_true d_identity
        (if d_true < d_identity then "still ranked first" else "LOST");
      if noise = 0.05 then begin
        let found, tried =
          Abg_core.Mister880.synthesize ~tolerance:0.05
            ~dsl:Abg_dsl.Catalog.reno ~budget:400 segments
        in
        match found with
        | Some h ->
            Printf.printf
              "          | mister880 enumeration accepted: %s (%d candidates)\n"
              (Abg_dsl.Pretty.num h) tried
        | None ->
            Printf.printf
              "          | mister880 enumeration: NOTHING accepted after %d \
               candidates (the paper's point)\n"
              tried
      end)
    [ 0.0; 0.02; 0.05 ];
  print_newline ()
