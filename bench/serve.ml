(* Serve load generator: one daemon, >= 1000 concurrent flows
   multiplexed over a unix socket, wall-clock latency sampled on the
   client side.

   Phases: open every session (one [ok] each), stream every flow's trace
   lines round-robin ([obs] is unacked — a [ping] barrier bounds the
   phase), then classify each session sequentially on a persistent
   connection, timing each request from write to verdict. The sequential
   classify loop is deliberate: it measures the daemon's per-request
   service latency — the number the "p99 in the low milliseconds" target
   is about — without the generator's own queueing inflating the tail.

   Results go to BENCH_serve.json (same flat name -> number schema as
   BENCH_micro.json; latency entries in ns) with run metadata in
   BENCH_serve.meta.json, so the CI bench gate can hold both files
   against the committed baseline. *)

let sessions_target = 1024

(* Flow corpus: the reference grid's own suites ({!Trace.collect_suite}
   output) across three CCAs — real traces, cached in the trace store, so
   the generator's cost is the wire and the daemon, not simulation. *)
let corpus () =
  [ "reno"; "cubic"; "vegas" ]
  |> List.concat_map (fun name ->
         let ctor = Option.get (Abg_cca.Registry.find name) in
         Abg_trace.Trace.collect_suite ~duration:3.0 ~n:2 ~name ctor)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

(* Blocking single-request helper for the classify loop: send one line,
   read until [stop_line]. The connection is blocking and the daemon
   always answers, so no select machinery is needed here. *)
let sync_request fd lines line_buf ~request ~stop_line =
  let n = String.length request in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd request !sent (n - !sent)
  done;
  let found = ref None in
  while !found = None do
    match Unix.read fd line_buf 0 (Bytes.length line_buf) with
    | 0 -> failwith "serve bench: daemon hung up"
    | k ->
        Abg_trace.Io.Lines.feed lines
          (Bytes.sub_string line_buf 0 k)
          (fun _ line -> if stop_line line then found := Some line)
  done;
  Option.get !found

let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  \"%s\": %.1f%s\n" name est
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

let write_meta path ~sessions ~obs_lines =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"abagnale-bench-meta/1\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"word_size\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"sessions\": %d,\n\
    \  \"obs_lines\": %d,\n\
    \  \"classify_concurrency\": 1,\n\
    \  \"endpoint\": \"unix\",\n\
    \  \"telemetry_during_measurement\": \"enabled\"\n\
     }\n"
    Sys.ocaml_version Sys.word_size
    (Domain.recommended_domain_count ())
    sessions obs_lines;
  close_out oc

let run () =
  Runs.heading
    (Printf.sprintf "Serve load (%d concurrent flows, one daemon)"
       sessions_target);
  let traces = Array.of_list (corpus ()) in
  Printf.printf "corpus: %d traces, %s records each\n%!" (Array.length traces)
    (String.concat "/"
       (List.map string_of_int
          (Array.to_list (Array.map Abg_trace.Trace.length traces))));
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "abagnale-bench-serve.%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "bench.sock" in
  let endpoint = Abg_serve.Daemon.Unix_socket socket in
  let config =
    { Abg_serve.Daemon.default_config with endpoint; log = (fun _ -> ()) }
  in
  let daemon = Thread.create (fun () -> Abg_serve.Daemon.run ~config ()) () in
  let deadline = Unix.gettimeofday () +. 120.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if not (Sys.file_exists socket) then failwith "serve bench: daemon not up";
  let sids =
    Array.init sessions_target (fun i ->
        Printf.sprintf "f%04d-%s" i
          traces.(i mod Array.length traces).Abg_trace.Trace.cca_name)
  in
  let trace_of i = traces.(i mod Array.length traces) in
  (* Phase 1: open every session; the trailing ping bounds the phase. *)
  let open_req = Buffer.create 65536 in
  Array.iter (fun sid -> Buffer.add_string open_req ("open " ^ sid ^ "\n")) sids;
  Buffer.add_string open_req "ping\n";
  let t0 = Unix.gettimeofday () in
  let replies =
    Abg_serve.Client.execute endpoint
      ~request:(Buffer.contents open_req)
      ~stop_line:(fun l -> l = "ok pong")
  in
  let open_ns =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int sessions_target
  in
  let errs =
    List.length
      (List.filter (fun l -> String.length l >= 3 && String.sub l 0 3 = "err")
         replies)
  in
  if errs > 0 then failwith (Printf.sprintf "serve bench: %d open errors" errs);
  (* Phase 2: stream every flow, round-robin, through one connection. *)
  let obs_req = Buffer.create (1 lsl 24) in
  let obs_lines = ref 0 in
  let flow_lines =
    Array.mapi
      (fun i sid ->
        let all =
          String.split_on_char '\n' (Abg_trace.Io.to_string (trace_of i))
          |> List.filter (fun l -> l <> "")
        in
        (sid, Array.of_list all))
      sids
  in
  let longest =
    Array.fold_left
      (fun acc (_, ls) -> Stdlib.max acc (Array.length ls))
      0 flow_lines
  in
  for k = 0 to longest - 1 do
    Array.iter
      (fun (sid, ls) ->
        if k < Array.length ls then begin
          Buffer.add_string obs_req ("obs " ^ sid ^ " " ^ ls.(k) ^ "\n");
          incr obs_lines
        end)
      flow_lines
  done;
  Buffer.add_string obs_req "ping\n";
  let t0 = Unix.gettimeofday () in
  let replies =
    Abg_serve.Client.execute endpoint
      ~request:(Buffer.contents obs_req)
      ~stop_line:(fun l -> l = "ok pong")
  in
  let obs_elapsed = Unix.gettimeofday () -. t0 in
  let obs_line_ns = obs_elapsed *. 1e9 /. float_of_int !obs_lines in
  let errs =
    List.length
      (List.filter (fun l -> String.length l >= 3 && String.sub l 0 3 = "err")
         replies)
  in
  if errs > 0 then failwith (Printf.sprintf "serve bench: %d obs errors" errs);
  Printf.printf "streamed %d obs lines over %d sessions in %.2fs (%.0f ns/line)\n%!"
    !obs_lines sessions_target obs_elapsed obs_line_ns;
  (* Phase 3: classify every session sequentially, sampling wall-clock
     latency per request on a persistent connection. *)
  let fd = Abg_serve.Client.connect endpoint in
  let samples =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let lines = Abg_trace.Io.Lines.create () in
        let line_buf = Bytes.create 65536 in
        Array.map
          (fun sid ->
            let prefix = "verdict " ^ sid ^ " " in
            let t0 = Unix.gettimeofday () in
            let reply =
              sync_request fd lines line_buf
                ~request:("classify " ^ sid ^ "\n")
                ~stop_line:(fun l ->
                  String.length l >= String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix)
            in
            ignore reply;
            (Unix.gettimeofday () -. t0) *. 1e9)
          sids)
  in
  Array.sort compare samples;
  let p50 = quantile samples 0.50
  and p90 = quantile samples 0.90
  and p99 = quantile samples 0.99 in
  let mean =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  Printf.printf
    "classify over %d sessions: p50 %.2fms  p90 %.2fms  p99 %.2fms  mean \
     %.2fms\n\
     %!"
    (Array.length samples) (p50 /. 1e6) (p90 /. 1e6) (p99 /. 1e6)
    (mean /. 1e6);
  (* Shutdown: the drain closes (and classifies) every open session. *)
  let t0 = Unix.gettimeofday () in
  Abg_serve.Daemon.request_stop ();
  Thread.join daemon;
  let drain_s = Unix.gettimeofday () -. t0 in
  Printf.printf "drained %d sessions in %.2fs\n%!" sessions_target drain_s;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let rows =
    [
      ("serve: sessions", float_of_int sessions_target);
      ("serve: open-ns", open_ns);
      ("serve: obs-line-ns", obs_line_ns);
      ("serve: classify-p50-ns", p50);
      ("serve: classify-p90-ns", p90);
      ("serve: classify-p99-ns", p99);
      ("serve: classify-mean-ns", mean);
      ("serve: drain-session-ns", drain_s *. 1e9 /. float_of_int sessions_target);
    ]
  in
  write_json "BENCH_serve.json" rows;
  write_meta "BENCH_serve.meta.json" ~sessions:sessions_target
    ~obs_lines:!obs_lines;
  Printf.printf
    "[serve: wrote %d estimates to BENCH_serve.json, run metadata to \
     BENCH_serve.meta.json]\n\n"
    (List.length rows)
