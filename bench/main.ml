(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the search-space statistics of Sec. 4.1/6.1 and a set
   of Bechamel micro-benchmarks of the hot kernels.

   Usage: dune exec bench/main.exe [-- section ...]
   Sections: table2 table3 table4 fig3 fig4 fig5 fig6 sec41 sec61
             mister880 ablation micro serve gate
   With no arguments, every section runs (tables and figures share cached
   synthesis runs, so the combined run is much cheaper than the sum). *)

let sections =
  [ ("sec41", Sec41.run); ("table3", Table3.run); ("table2", Table2.run);
    ("table4", Table4.run); ("fig3", Fig3.run); ("fig4", Fig4.run);
    ("fig5", Fig5.run); ("fig6", Fig6.run); ("sec61", Sec61.run);
    ("mister880", Mister880_cmp.run); ("ablation", Ablation.run);
    ("micro", Micro.run); ("serve", Serve.run); ("gate", Gate.run) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %s (known: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested;
  Printf.printf "\n[bench total: %.1fs]\n" (Unix.gettimeofday () -. t0)
