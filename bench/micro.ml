(* Bechamel micro-benchmarks: one per table/figure, measuring the kernel
   operation that dominates that experiment's runtime, so regressions in
   the hot paths are visible without re-running whole syntheses.

   Besides printing, the section writes every estimate to
   BENCH_micro.json (name -> ns/run) in the current directory, so the
   perf trajectory of the hot paths is tracked across PRs. *)

open Bechamel
open Toolkit

let series n = Array.init n (fun i -> float_of_int (i mod 37) +. (0.3 *. float_of_int i))

(* A second series with a different shape, so DTW/Fréchet distances are
   nonzero and a cutoff below them actually abandons. *)
let series_offset n =
  Array.init n (fun i -> float_of_int ((i + 11) mod 29) +. (0.35 *. float_of_int i))

let dtw_test =
  let a = series 128 and b = series_offset 128 in
  Test.make ~name:"table2/fig4: dtw-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Dtw.distance ~band:12 a b)))

let dtw_cutoff_test =
  let a = series 128 and b = series_offset 128 in
  (* Best-so-far threshold at a quarter of the true distance: the scan
     abandons as soon as a row proves the candidate can't beat it. *)
  let cutoff = 0.25 *. Abg_distance.Dtw.distance ~band:12 a b in
  Test.make ~name:"table2/fig4: dtw-128-cutoff"
    (Staged.stage (fun () ->
         ignore (Abg_distance.Dtw.distance ~band:12 ~cutoff a b)))

let euclidean_test =
  let a = series 128 and b = series 128 in
  Test.make ~name:"fig3: euclidean-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Pointwise.euclidean a b)))

let frechet_test =
  (* The production configuration (Metric threads the same Sakoe–Chiba
     band DTW uses); the -full variant keeps the unbanded cost visible. *)
  let a = series 128 and b = series 128 in
  Test.make ~name:"fig3: frechet-128"
    (Staged.stage (fun () -> ignore (Abg_distance.Frechet.distance ~band:12 a b)))

let frechet_full_test =
  let a = series 128 and b = series 128 in
  Test.make ~name:"fig3: frechet-128-full"
    (Staged.stage (fun () -> ignore (Abg_distance.Frechet.distance a b)))

(* The scoring inner loop before and after the hot-path overhaul. The
   "interp" variant replicates the seed implementation: rebuild the env
   and interpret the handler AST for every record. The compiled variant
   is the production path: segment prepared once, handler compiled once,
   then one closure call per record. *)
let replay_tests =
  lazy
    (let segments = Runs.segments_for "reno" in
     let seg = List.hd segments in
     let records = seg.Abg_trace.Segmentation.records in
     let n = Array.length records in
     let handler = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
     let prepared = Abg_core.Replay.prepare seg in
     let compiled = Abg_core.Replay.compile handler in
     let interp () =
       let out = Array.make n 0.0 in
       let cwnd = ref (Abg_trace.Record.observed_cwnd records.(0)) in
       let env = Abg_dsl.Env.copy Abg_dsl.Env.example in
       for i = 0 to n - 1 do
         Abg_trace.Record.load_env env records.(i) ~cwnd:!cwnd;
         cwnd := Float.min 1e12 (Abg_dsl.Eval.handler handler env);
         out.(i) <- !cwnd
       done;
       out
     in
     ( Test.make ~name:"table2: replay-segment"
         (Staged.stage (fun () ->
              ignore (Abg_core.Replay.synthesize_prepared prepared compiled))),
       Test.make ~name:"table2: replay-segment-interp"
         (Staged.stage (fun () -> ignore (interp ()))) ))

(* Bucket-style scoring: a pool of mostly-losing candidates folded with a
   best-so-far incumbent. With cutoffs, losers abandon their replay sum
   and DTW rows early; without, every candidate pays full price. *)
let bucket_score_tests =
  lazy
    (let prepared =
       List.map Abg_core.Replay.prepare (Runs.segments_for "reno")
     in
     let candidates =
       let open Abg_dsl.Expr in
       List.map
         (fun c -> Add (Cwnd, Mul (Const c, Macro Abg_dsl.Macro.Reno_inc)))
         [ 0.7; 0.1; 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 5.0; 8.0 ]
       @ [ Mul (Cwnd, Const 2.0); Add (Cwnd, Signal Abg_dsl.Signal.Mss) ]
     in
     let compiled = List.map Abg_core.Replay.compile candidates in
     let fold cutoffs () =
       List.fold_left
         (fun best f ->
           let cut = if cutoffs then best else infinity in
           let d =
             Abg_core.Replay.total_distance_prepared ~cutoff:cut prepared f
           in
           if d < best then d else best)
         infinity compiled
     in
     ( Test.make ~name:"refine: bucket-score-cutoff"
         (Staged.stage (fun () -> ignore (fold true ()))),
       Test.make ~name:"refine: bucket-score-full"
         (Staged.stage (fun () -> ignore (fold false ()))) ))

(* Persistent pool vs. the seed's spawn-per-call chunking, same workload:
   the difference is domain spawn/join overhead per map call. *)
let pool_tests =
  lazy
    (let pool = Abg_parallel.Pool.create ~size:1 () in
     let xs = Array.init 16 (fun i -> i) in
     let f x =
       let acc = ref 0.0 in
       for i = 1 to 2_000 do
         acc := !acc +. (1.0 /. float_of_int (i + x))
       done;
       !acc
     in
     let spawning () =
       (* The seed implementation: spawn one domain per chunk, join all. *)
       let n = Array.length xs in
       let out = Array.make n 0.0 in
       let workers = 2 in
       let chunk = (n + workers - 1) / workers in
       let run lo hi () =
         for i = lo to hi do
           out.(i) <- f xs.(i)
         done
       in
       let handles =
         List.init workers (fun w ->
             let lo = w * chunk in
             let hi = Stdlib.min (lo + chunk - 1) (n - 1) in
             if lo > hi then None else Some (Domain.spawn (run lo hi)))
       in
       List.iter (function Some d -> Domain.join d | None -> ()) handles;
       out
     in
     ( Test.make ~name:"refine: pool-map-persistent"
         (Staged.stage (fun () ->
              ignore (Abg_parallel.Pool.map ~pool ~num_domains:2 f xs))),
       Test.make ~name:"refine: pool-map-spawning"
         (Staged.stage (fun () -> ignore (spawning ()))) ))

(* The reno space holds ~4k canonical sketches and the incremental
   enumerator now clears them faster than the measurement quota: when the
   space runs dry mid-measurement, start a fresh encoder rather than
   timing post-exhaustion no-ops. The ~5 ms rebuild lands once per ~4k
   calls — amortized noise against the per-sketch estimate. *)
let enumerate_test =
  lazy
    (let enc = ref (Abg_enum.Encode.create Abg_dsl.Catalog.reno) in
     Test.make ~name:"sec61: sat-enumerate-sketch"
       (Staged.stage (fun () ->
            match Abg_enum.Encode.next !enc with
            | Some _ -> ()
            | None -> enc := Abg_enum.Encode.create Abg_dsl.Catalog.reno)))

(* The cost of a bucket switch on the shared enumerator: one solve under
   a bucket's assumptions against a warmed instance (some models already
   enumerated and blocked), no decode, no blocking clause. The two
   buckets alternate so every call really changes the assumption list —
   a repeat of the previous list would resume the kept trail and measure
   nearly nothing. This is what the refinement loop pays to probe a
   bucket. *)
let solve_assumptions_test =
  lazy
    (let enc = Abg_enum.Encode.create Abg_dsl.Catalog.reno in
     let b1 = [ Abg_dsl.Component.Op_add; Abg_dsl.Component.Op_mul ] in
     let b2 = [ Abg_dsl.Component.Op_add; Abg_dsl.Component.Op_div ] in
     for _ = 1 to 8 do
       ignore (Abg_enum.Encode.next ~bucket:b1 enc);
       ignore (Abg_enum.Encode.next ~bucket:b2 enc)
     done;
     let flip = ref false in
     Test.make ~name:"sec61: sat-solve-assumptions"
       (Staged.stage (fun () ->
            flip := not !flip;
            ignore
              (Abg_enum.Encode.check_bucket enc (if !flip then b1 else b2)))))

(* Per-sketch cost of the enumeration's static pruning stages, so the
   overhead the analysis adds to every [Encode.next] is visible next to
   the SAT solve it rides on: the abstract-interpretation dead-sketch
   check and the commutative-normal-form dedup lookup, both on a
   representative depth-3 Reno sketch. *)
let analysis_sketch =
  let open Abg_dsl.Expr in
  Add (Cwnd, Mul (Hole 0, Macro Abg_dsl.Macro.Reno_inc))

let absint_prune_test =
  let box = Abg_analysis.Absint.box_for Abg_dsl.Catalog.reno in
  Test.make ~name:"sec61: absint-prune-sketch"
    (Staged.stage (fun () ->
         ignore (Abg_analysis.Absint.prune box analysis_sketch)))

let canonical_intern_test =
  lazy
    (let tbl = Abg_analysis.Canonical.Tbl.create () in
     Test.make ~name:"sec61: canonical-intern-sketch"
       (Staged.stage (fun () ->
            ignore (Abg_analysis.Canonical.Tbl.intern tbl analysis_sketch))))

(* The relational stages the enumerator runs on every conditional sketch:
   the zone-domain guard check (the vacuous/implied walk, priced on the
   Student-5 shape the interval domain cannot decide) and a full
   [Equiv.decide] on a handler pair — the semantic-subsumption /
   translation-validation worst case, structural provers plus the SAT
   guard-skeleton pass. *)
let relint_guard_sketch =
  let open Abg_dsl.Expr in
  Ite
    ( Lt (Div (Macro Abg_dsl.Macro.Vegas_diff, Signal Abg_dsl.Signal.Min_rtt),
          Const 0.0),
      Add (Cwnd, Signal Abg_dsl.Signal.Mss),
      Mul (Const 2.0, Signal Abg_dsl.Signal.Mss) )

let relint_guard_check_test =
  lazy
    (let rel = Abg_analysis.Relint.for_dsl Abg_dsl.Catalog.vegas in
     let guard =
       match relint_guard_sketch with
       | Abg_dsl.Expr.Ite (g, _, _) -> g
       | _ -> assert false
     in
     Test.make ~name:"sec61: relint-guard-check"
       (Staged.stage (fun () ->
            ignore (Abg_analysis.Relint.boolean rel guard))))

let equiv_handler_pair_test =
  lazy
    (let rel = Abg_analysis.Relint.default () in
     let open Abg_dsl.Expr in
     let a =
       Ite
         ( Gt (Signal Abg_dsl.Signal.Rtt, Const 0.05),
           Add (Cwnd, Signal Abg_dsl.Signal.Mss),
           Add (Signal Abg_dsl.Signal.Mss, Cwnd) )
     and b = Add (Cwnd, Signal Abg_dsl.Signal.Mss) in
     Test.make ~name:"sec61: equiv-handler-pair"
       (Staged.stage (fun () ->
            ignore (Abg_analysis.Equiv.decide rel a b))))

let simulate_test =
  Test.make ~name:"table3: simulate-1s-reno"
    (Staged.stage (fun () ->
         let cfg =
           Abg_netsim.Config.make ~duration:1.0 ~bandwidth_mbps:10.0
             ~rtt_ms:50.0 ()
         in
         let cca = Abg_cca.Reno.create ~mss:1448.0 () in
         ignore (Abg_netsim.Sim.run cfg cca)))

(* Whole-suite collection over the parallel pool, cache bypassed so the
   measurement is the simulate+derive cost, not a store lookup. *)
let collect_suite_test =
  let ctor = Option.get (Abg_cca.Registry.find "reno") in
  Test.make ~name:"table3: collect-suite-grid"
    (Staged.stage (fun () ->
         ignore
           (Abg_trace.Trace.collect_suite ~duration:1.0 ~cache:false ~n:4
              ~name:"reno" ctor)))

(* Batch-orchestrator storage primitives: what a run pays per artifact
   (durable blob write, verified read) and per resume (journal replay).
   The write benchmark stores a fresh payload every iteration — the
   content-addressed fast path for an existing digest would otherwise
   turn the measurement into a Sys.file_exists probe. *)
let batch_store_tests =
  lazy
    (let root =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "abagnale-bench-store.%d" (Unix.getpid ()))
     in
     let store = Abg_batch.Store.open_ root in
     let payload = String.init 4096 (fun i -> Char.chr (32 + (i mod 95))) in
     let counter = ref 0 in
     let read_digest = Abg_batch.Store.put store payload in
     ( Test.make ~name:"batch: store-blob-write-4k"
         (Staged.stage (fun () ->
              incr counter;
              ignore
                (Abg_batch.Store.put store
                   (string_of_int !counter ^ payload)))),
       Test.make ~name:"batch: store-blob-read-4k"
         (Staged.stage (fun () ->
              ignore (Abg_batch.Store.get store read_digest))) ))

(* The group-commit write path: the same fresh 4k payload, but staged in
   a deferred store whose pack flush (one append write + one fsync)
   lands every 64 puts — the store half of a 64-entry flush window. 63
   runs stage in memory, the 64th pays the flush, so the estimate is the
   honest amortized per-blob durability cost to hold against
   store-blob-write-4k's fsync-per-blob baseline. *)
let batch_store_amortized_test =
  lazy
    (let root =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "abagnale-bench-store-deferred.%d" (Unix.getpid ()))
     in
     let store = Abg_batch.Store.open_ ~deferred:true root in
     let payload = String.init 4096 (fun i -> Char.chr (32 + (i mod 95))) in
     let counter = ref 0 in
     Test.make ~name:"batch: store-blob-write-4k-amortized"
       (Staged.stage (fun () ->
            incr counter;
            ignore
              (Abg_batch.Store.put store (string_of_int !counter ^ payload));
            if !counter mod 64 = 0 then
              ignore (Abg_batch.Store.flush_staged store))))

let bench_entry i =
  {
    Abg_batch.Journal.job = Digest.to_hex (Digest.string (string_of_int i));
    status =
      (if i mod 16 = 0 then Abg_batch.Journal.Quarantined
       else Abg_batch.Journal.Ok);
    attempts = 1 + (i mod 3);
    result = Some (Digest.to_hex (Digest.string ("r" ^ string_of_int i)));
    error = None;
  }

(* The journal half of the same window: entries accumulate and every
   64th run pays one append_batch (one write, one fsync) for the lot. *)
let batch_journal_append_amortized_test =
  lazy
    (let path =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "abagnale-bench-journal-amortized.%d.jsonl"
            (Unix.getpid ()))
     in
     if Sys.file_exists path then Sys.remove path;
     let journal = Abg_batch.Journal.open_ path in
     let counter = ref 0 in
     let pending = ref [] in
     Test.make ~name:"batch: journal-append-amortized"
       (Staged.stage (fun () ->
            incr counter;
            pending := bench_entry !counter :: !pending;
            if !counter mod 64 = 0 then begin
              Abg_batch.Journal.append_batch journal !pending;
              pending := []
            end)))

(* Resume cost at the ISSUE's 100k-job scale: a journal holding 100k
   settled outcomes behind a checkpoint record plus a 256-line tail —
   the shape a long run has on disk — read back through the fast path.
   The acceptance bar is sub-second. *)
let batch_journal_replay_100k_test =
  lazy
    (let path =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "abagnale-bench-journal-100k.%d.jsonl"
            (Unix.getpid ()))
     in
     if Sys.file_exists path then Sys.remove path;
     let journal = Abg_batch.Journal.open_ path in
     let total = 100_000 and tail = 256 and chunk = 4_096 in
     let settled = ref [] in
     let rec fill i =
       if i < total then begin
         let n = Stdlib.min chunk (total - i) in
         let entries = List.init n (fun k -> bench_entry (i + k)) in
         Abg_batch.Journal.append_batch journal entries;
         settled := List.rev_append entries !settled;
         fill (i + n)
       end
     in
     fill 0;
     Abg_batch.Journal.append_checkpoint journal !settled;
     Abg_batch.Journal.append_batch journal
       (List.init tail (fun k -> bench_entry (total + k)));
     Abg_batch.Journal.close journal;
     Test.make ~name:"batch: journal-replay-100k-checkpointed"
       (Staged.stage (fun () ->
            ignore (Abg_batch.Journal.replay_checkpointed path))))

let batch_journal_replay_test =
  lazy
    (let path =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "abagnale-bench-journal.%d.jsonl" (Unix.getpid ()))
     in
     if Sys.file_exists path then Sys.remove path;
     let journal = Abg_batch.Journal.open_ path in
     for i = 1 to 256 do
       Abg_batch.Journal.append journal
         {
           Abg_batch.Journal.job = Digest.to_hex (Digest.string (string_of_int i));
           status = (if i mod 16 = 0 then Abg_batch.Journal.Quarantined
                     else Abg_batch.Journal.Ok);
           attempts = 1 + (i mod 3);
           result = Some (Digest.to_hex (Digest.string ("r" ^ string_of_int i)));
           error = None;
         }
     done;
     Abg_batch.Journal.close journal;
     Test.make ~name:"batch: journal-replay-256"
       (Staged.stage (fun () -> ignore (Abg_batch.Journal.replay path))))

let classify_features_test =
  lazy
    (let traces = Runs.traces "reno" in
     Test.make ~name:"table3: extract-features"
       (Staged.stage (fun () ->
            ignore (Abg_classifier.Features.extract traces))))

let benchmark test =
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) i raw)
      instances
  in
  results

(* Estimate, print, and return (name, ns/run) rows for the JSON dump. *)
let measure test =
  let results = benchmark test in
  let rows = ref [] in
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-36s %12.0f ns/run\n%!" name est;
              rows := (name, est) :: !rows
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        result)
    results;
  !rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  \"%s\": %.1f%s\n" (json_escape name) est
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* Run metadata alongside the flat estimate map: what machine and
   configuration produced the numbers, plus the telemetry snapshot of
   the setup phase (trace collection, segment prep) so the workload
   behind the estimates is auditable. BENCH_micro.json itself stays a
   flat name -> ns/run map for cross-PR comparability. *)
let write_meta path =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"abagnale-bench-meta/1\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"word_size\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"quota_s\": 0.5,\n\
    \  \"limit\": 200,\n\
    \  \"telemetry_during_measurement\": \"disabled\",\n\
    \  \"setup_telemetry\": %s}\n"
    (json_escape Sys.ocaml_version)
    Sys.word_size
    (Domain.recommended_domain_count ())
    (Abg_obs.Report.to_json (Abg_obs.Obs.snapshot ()));
  close_out oc

(* One genetic-search generation step at the CI smoke population size:
   ranking, tournament selection, crossover, and mutation for pop 8 —
   the fuzzer's orchestration overhead per generation, exclusive of the
   fitness evaluations themselves (those are simulator runs measured by
   table3: simulate-1s-reno). *)
let fuzz_generation_test =
  lazy
    (let params =
       { Abg_fuzz.Search.default_params with Abg_fuzz.Search.pop = 8 }
     in
     let population = Abg_fuzz.Search.initial_population params in
     let fitness =
       Array.map (fun (g : Abg_fuzz.Genome.t) -> g.(0) +. g.(1)) population
     in
     Test.make ~name:"fuzz: generation-8"
       (Staged.stage (fun () ->
            ignore
              (Abg_fuzz.Search.next_generation params ~gen:0 population
                 fitness))))

let run () =
  Runs.heading "Micro-benchmarks (Bechamel, monotonic clock)";
  let replay_compiled, replay_interp = Lazy.force replay_tests in
  let bucket_cutoff, bucket_full = Lazy.force bucket_score_tests in
  let pool_persistent, pool_spawning = Lazy.force pool_tests in
  let store_write, store_read = Lazy.force batch_store_tests in
  let tests =
    [ dtw_test; dtw_cutoff_test; euclidean_test; frechet_test;
      frechet_full_test; replay_compiled; replay_interp; bucket_cutoff;
      bucket_full; pool_persistent; pool_spawning; Lazy.force enumerate_test;
      Lazy.force solve_assumptions_test;
      absint_prune_test; Lazy.force canonical_intern_test;
      Lazy.force relint_guard_check_test; Lazy.force equiv_handler_pair_test;
      simulate_test;
      collect_suite_test; Lazy.force classify_features_test; store_write;
      store_read; Lazy.force batch_store_amortized_test;
      Lazy.force batch_journal_append_amortized_test;
      Lazy.force batch_journal_replay_test;
      Lazy.force batch_journal_replay_100k_test;
      Lazy.force fuzz_generation_test ]
  in
  (* Estimates are taken with telemetry off: they track the cost of the
     kernel operations themselves, and the disabled path is the one the
     <2% overhead claim in DESIGN.md §7 is measured against. The setup
     snapshot above already captured the instrumented counts. *)
  write_meta "BENCH_micro.meta.json";
  Abg_obs.Obs.set_enabled false;
  let rows =
    Fun.protect
      ~finally:(fun () -> Abg_obs.Obs.set_enabled true)
      (fun () -> List.concat_map measure tests)
  in
  write_json "BENCH_micro.json" rows;
  Printf.printf
    "[micro: wrote %d estimates to BENCH_micro.json, run metadata to \
     BENCH_micro.meta.json]\n"
    (List.length rows);
  print_newline ()
