(* CI bench regression gate: hold fresh BENCH_micro.json / BENCH_serve.json
   hot-path estimates against the committed baseline in
   ci/bench-baseline.json.

   Two checks per gated entry, both optional in the baseline:
   - max_ratio: fresh / baseline_ns must not exceed it (catches
     regressions relative to the committed measurement, tolerant of
     machine-to-machine constant factors up to the ratio);
   - max_ns: an absolute ceiling for targets the design commits to
     unconditionally (e.g. serve classify p99 < 10 ms).

   Exit 1 on any violation or missing fresh entry, so the CI job fails.
   Run it after the micro and serve sections:
     dune exec bench/main.exe -- micro serve gate *)

(* Minimal JSON reader for the flat { "name": number } estimate files and
   the { entries: { name: { field: number } } } baseline — the repo
   deliberately has no JSON parsing dependency, and these two shapes are
   all the gate needs. Numbers, strings, objects; no arrays/bools/null. *)
module Json = struct
  type t = Num of float | Str of string | Obj of (string * t) list

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at byte %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (match peek () with
              | Some '"' -> Buffer.add_char buf '"'
              | Some '\\' -> Buffer.add_char buf '\\'
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some 't' -> Buffer.add_char buf '\t'
              | Some 'u' ->
                  (* The estimate names are ASCII; keep escapes verbatim. *)
                  Buffer.add_string buf "\\u"
              | _ -> fail "bad escape");
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (string_lit ())
      | Some '{' -> obj ()
      | Some ('0' .. '9' | '-') -> Num (number ())
      | _ -> fail "expected value"
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let of_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    parse contents

  let field name = function Obj fields -> List.assoc_opt name fields | _ -> None

  let num_field name j =
    match field name j with Some (Num f) -> Some f | _ -> None
end

let baseline_path = "ci/bench-baseline.json"

(* Flat name -> estimate map of one fresh BENCH_*.json file. *)
let fresh_estimates path =
  if not (Sys.file_exists path) then
    failwith
      (Printf.sprintf
         "bench gate: %s missing — run its bench section first (dune exec \
          bench/main.exe -- micro serve gate)"
         path);
  match Json.of_file path with
  | Json.Obj fields ->
      List.filter_map
        (function name, Json.Num f -> Some (name, f) | _ -> None)
        fields
  | _ -> failwith (Printf.sprintf "bench gate: %s is not a JSON object" path)

let run () =
  Runs.heading "Bench regression gate (vs ci/bench-baseline.json)";
  let baseline = Json.of_file baseline_path in
  let entries =
    match Json.field "entries" baseline with
    | Some (Json.Obj entries) -> entries
    | _ -> failwith "bench gate: baseline has no entries object"
  in
  let fresh =
    fresh_estimates "BENCH_micro.json" @ fresh_estimates "BENCH_serve.json"
  in
  let failures = ref 0 in
  let check name spec =
    match List.assoc_opt name fresh with
    | None ->
        incr failures;
        Printf.printf "FAIL %-32s missing from fresh estimates\n" name
    | Some value ->
        let ratio_verdict =
          match (Json.num_field "baseline_ns" spec, Json.num_field "max_ratio" spec) with
          | Some base, Some max_ratio when base > 0.0 ->
              let ratio = value /. base in
              if ratio > max_ratio then
                Some
                  (false,
                   Printf.sprintf "%.2fx baseline %.0f (limit %.2fx)" ratio
                     base max_ratio)
              else
                Some (true, Printf.sprintf "%.2fx baseline %.0f" ratio base)
          | _ -> None
        in
        let abs_verdict =
          match Json.num_field "max_ns" spec with
          | Some cap ->
              if value > cap then
                Some (false, Printf.sprintf "%.0f ns over cap %.0f ns" value cap)
              else Some (true, Printf.sprintf "under %.0f ns cap" cap)
          | None -> None
        in
        let verdicts = List.filter_map Fun.id [ ratio_verdict; abs_verdict ] in
        let ok = List.for_all fst verdicts in
        if not ok then incr failures;
        Printf.printf "%s %-32s %12.0f ns  %s\n"
          (if ok then "ok  " else "FAIL")
          name value
          (String.concat "; " (List.map snd verdicts))
  in
  List.iter (fun (name, spec) -> check name spec) entries;
  if !failures > 0 then begin
    Printf.printf "[gate: %d regression(s) against %s]\n" !failures
      baseline_path;
    exit 1
  end
  else Printf.printf "[gate: %d entries within budget]\n\n" (List.length entries)
