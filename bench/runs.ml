(* Shared state for the benchmark sections: trace suites and synthesis
   outcomes are computed once per CCA and reused by every table/figure
   that needs them (Table 2 and Table 4 consume the same refinement runs,
   exactly as in the paper). All knobs are scaled to laptop size; the
   reproduction contract is shape, not testbed-absolute numbers. *)

let scenarios = 4
let duration = 20.0

let config =
  {
    Abg_core.Refinement.default_config with
    Abg_core.Refinement.initial_samples = 16;
    completion_budget = 24;
    max_segment_records = 400;
    exhaustive_cap = 300;
  }

(* The kernel CCAs in the paper's Table 2 row order. CDG and HighSpeed are
   listed with the reason they are skipped (§5.5). *)
let kernel_rows =
  [ "bbr"; "reno"; "westwood"; "scalable"; "lp"; "hybla"; "htcp"; "illinois";
    "vegas"; "veno"; "nv"; "yeah"; "cubic"; "bic" ]

let skipped_rows =
  [ ("cdg", "randomized window reduction is outside the DSL (§5.5)");
    ("highspeed", "log-table response function is outside the DSL (§5.5)") ]

let student_rows =
  [ "student1"; "student2"; "student3"; "student4"; "student5"; "student6";
    "student7" ]

(* Suites come from the process-wide trace store (collect_suite caches by
   (cca, config digest)), so repeated calls per name — and any other
   section or example asking for the same grid — are cache hits. *)
let traces name =
  let ctor =
    match Abg_cca.Registry.find name with
    | Some c -> c
    | None -> invalid_arg ("unknown CCA " ^ name)
  in
  Abg_trace.Trace.collect_suite ~duration ~n:scenarios ~name ctor

(* Sub-DSL per CCA, following the paper's classifier-hint procedure
   (Table 3 drives §3.3): the Gordon verdict picks the family for kernel
   CCAs; the student dataset is Vegas-adjacent per CCAnalyzer. *)
let dsl_for name =
  if List.mem name student_rows then Abg_dsl.Catalog.vegas
  else if String.equal name "cubic" || String.equal name "bic" then
    Abg_dsl.Catalog.cubic
  else Abg_classifier.Dsl_hint.choose (Abg_classifier.Gordon.classify (traces name))

let synthesis_cache : (string, Abg_core.Synthesis.outcome option) Hashtbl.t =
  Hashtbl.create 31

let synthesis name =
  match Hashtbl.find_opt synthesis_cache name with
  | Some o -> o
  | None ->
      let dsl = dsl_for name in
      let o = Abg_core.Synthesis.run ~config ~dsl ~name (traces name) in
      Hashtbl.replace synthesis_cache name o;
      o

(* The segment set a synthesis run was evaluated on, rebuilt with the same
   deterministic selection — used to score the paper's fine-tuned handlers
   on identical data. *)
let segments_for name =
  let rng = Abg_util.Rng.create config.Abg_core.Refinement.seed in
  Abg_core.Synthesis.segments_of_traces rng
    ~metric:config.Abg_core.Refinement.metric ~budget:8 (traces name)
  |> List.map
       (Abg_trace.Segmentation.thin
          ~max_records:config.Abg_core.Refinement.max_segment_records)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s: %.1fs]\n%!" name (Unix.gettimeofday () -. t0);
  r
