(* Ablations of the design choices DESIGN.md calls out, each isolating
   one ingredient of the search on the Reno workload:

   a. unit constraints  — how much of the sketch space does dimensional
      analysis prune? (enumerate with/without unit checking)
   b. bucketization     — refinement loop vs a flat enumerate-and-score
      sweep with the same total handler budget
   c. diversity sampling — diversity-selected segment subset vs the first
      N segments, measured by how the winning handler generalizes to the
      full segment set
   d. measurement noise — the echo-handler pathology: with jitterless
      signals the rate-echo handler beats the true one (the DESIGN.md
      "noise is load-bearing" note, quantified). *)

let reno_traces ~jitter =
  let ctor = Option.get (Abg_cca.Registry.find "reno") in
  Abg_netsim.Config.testbed_grid ~duration:15.0 ~ack_jitter:jitter ~n:3 ()
  |> Abg_parallel.Pool.map_list (fun cfg ->
         Abg_trace.Trace.collect_cached cfg ~name:"reno" ctor)

let ablate_units () =
  Printf.printf "\n-- a. unit constraints --\n";
  let count dsl =
    let enc = Abg_enum.Encode.create dsl in
    let n = ref 0 in
    while !n < 3000 && Abg_enum.Encode.next enc <> None do
      incr n
    done;
    !n
  in
  let with_units = count Abg_dsl.Catalog.reno in
  let without =
    count { Abg_dsl.Catalog.reno with Abg_dsl.Catalog.unit_check = false }
  in
  Printf.printf
    "viable sketches enumerated (cap 3000): %d with unit checking, %s \
     without\n%!"
    with_units
    (if without >= 3000 then ">= 3000" else string_of_int without)

let ablate_buckets () =
  Printf.printf "\n-- b. bucketization + prioritization --\n";
  let traces = reno_traces ~jitter:0.001 in
  let rng = Abg_util.Rng.create 11 in
  let segments =
    Abg_core.Synthesis.segments_of_traces rng ~metric:Abg_distance.Metric.Dtw
      ~budget:6 traces
    |> List.map (Abg_trace.Segmentation.thin ~max_records:300)
  in
  (* Refinement loop (bucketed). *)
  let config =
    { Runs.config with Abg_core.Refinement.initial_samples = 8;
      exhaustive_cap = 100 }
  in
  (match Abg_core.Refinement.run ~config ~dsl:Abg_dsl.Catalog.reno segments with
  | Some r ->
      Printf.printf
        "bucketed refinement: d=%.1f after scoring %d handlers -> %s\n%!"
        r.Abg_core.Refinement.distance
        r.Abg_core.Refinement.total_handlers_scored
        (Abg_dsl.Pretty.num r.Abg_core.Refinement.handler);
      (* Flat sweep with the same handler budget, no buckets, no
         prioritization: first-come sketches only. *)
      let budget = r.Abg_core.Refinement.total_handlers_scored in
      let enc = Abg_enum.Encode.create Abg_dsl.Catalog.reno in
      let rng = Abg_util.Rng.create 12 in
      let best = ref (Abg_dsl.Expr.Cwnd, infinity) in
      let scored = ref 0 in
      while !scored < budget do
        match Abg_enum.Encode.next enc with
        | None -> scored := budget
        | Some sk ->
            let s =
              Abg_core.Score.sketch rng ~dsl:Abg_dsl.Catalog.reno
                ~metric:Abg_distance.Metric.Dtw ~budget:24 ~segments sk
            in
            scored := !scored + s.Abg_core.Score.completions_scored;
            if s.Abg_core.Score.distance < snd !best then
              best := (s.Abg_core.Score.handler, s.Abg_core.Score.distance)
      done;
      let handler, d = !best in
      Printf.printf "flat sweep, same budget: d=%.1f -> %s\n%!" d
        (Abg_dsl.Pretty.num handler)
  | None -> print_endline "refinement returned nothing")

let ablate_diversity () =
  Printf.printf "\n-- c. diversity-driven segment selection --\n";
  let traces = reno_traces ~jitter:0.001 in
  let all_segments =
    Abg_trace.Segmentation.split_all ~min_length:30 ~skip_initial:true traces
    |> List.map (Abg_trace.Segmentation.thin ~max_records:300)
  in
  let rng = Abg_util.Rng.create 13 in
  let diverse =
    Abg_core.Synthesis.segments_of_traces rng ~metric:Abg_distance.Metric.Dtw
      ~budget:4 traces
    |> List.map (Abg_trace.Segmentation.thin ~max_records:300)
  in
  let first_n = List.filteri (fun i _ -> i < 4) all_segments in
  let config =
    { Runs.config with Abg_core.Refinement.initial_samples = 8;
      exhaustive_cap = 100 }
  in
  List.iter
    (fun (label, segments) ->
      match Abg_core.Refinement.run ~config ~dsl:Abg_dsl.Catalog.reno segments with
      | Some r ->
          (* Generalization: score the winner on ALL segments. *)
          let general =
            Abg_core.Replay.total_distance r.Abg_core.Refinement.handler
              all_segments
          in
          Printf.printf "%-18s -> %-40s  d(all segments)=%.1f\n%!" label
            (Abg_dsl.Pretty.num r.Abg_core.Refinement.handler)
            general
      | None -> Printf.printf "%-18s -> nothing\n%!" label)
    [ ("diversity-selected", diverse); ("first-N segments", first_n) ]

let ablate_noise () =
  Printf.printf "\n-- d. measurement noise vs echo handlers --\n";
  let open Abg_dsl.Expr in
  let echo = Mul (Signal Abg_dsl.Signal.Ack_rate, Signal Abg_dsl.Signal.Rtt) in
  let true_handler = Option.get (Abg_core.Fine_tuned.find_fine_tuned "reno") in
  List.iter
    (fun jitter ->
      let traces = reno_traces ~jitter in
      let rng = Abg_util.Rng.create 14 in
      let segments =
        Abg_core.Synthesis.segments_of_traces rng
          ~metric:Abg_distance.Metric.Dtw ~budget:6 traces
        |> List.map (Abg_trace.Segmentation.thin ~max_records:300)
      in
      let d_echo = Abg_core.Replay.total_distance echo segments in
      let d_true = Abg_core.Replay.total_distance true_handler segments in
      Printf.printf
        "ack jitter %.3fs: d(echo rate*rtt)=%.1f vs d(true reno)=%.1f -> %s\n%!"
        jitter d_echo d_true
        (if d_true < d_echo then "structure wins" else "ECHO wins"))
    [ 0.0; 0.001 ]

let run () =
  Runs.heading "Ablations: unit pruning, buckets, diversity, noise";
  ablate_units ();
  ablate_buckets ();
  ablate_diversity ();
  ablate_noise ();
  print_newline ()
