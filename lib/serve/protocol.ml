(** The serve wire protocol: line-oriented, multiplexed sessions.

    A single connection carries many flows ("sessions"), each named by a
    client-chosen id, so thousands of concurrent flows fit under the
    [Unix.select] descriptor limit. One request per line:

    {v
    open <sid>              start a session
    obs <sid> <line>        feed one trace-format line (record or # meta)
    classify <sid>          classify the session's current window
    close <sid>             classify, report, and discard the session
    stats                   daemon-wide counters and latency quantiles
    ping                    liveness probe
    v}

    [<sid>] is any non-empty token without whitespace. The [obs] payload
    is {e exactly} a line of the {!Abg_trace.Io} trace file format —
    data row or [#]-comment — so a client streams a capture file
    verbatim, one [obs] prefix per line; malformed rows are rejected
    with their 1-based position in that session's stream, mirroring the
    file loader's errors.

    Responses (one line each): [ok <detail>] for accepted state changes,
    [verdict <sid> <n> <distance> <verdict>] for classifications
    ([n] = window length, [distance] = best reference distance,
    ["%.17g"]), and [err <sid|-> <message>]. [obs] lines are {e not}
    acked — an ack per observation would double the traffic of exactly
    the hot path — errors only. *)

type request =
  | Open of string
  | Obs of string * string  (* sid, raw trace-format payload line *)
  | Classify of string
  | Close of string
  | Stats
  | Ping

(* First token, rest-of-line split. The payload keeps its internal
   whitespace (a record line is tab-separated). *)
let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let valid_sid sid =
  sid <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\t' && c <> '\r') sid

(** [parse line] — the request on [line], or [Error message]. Blank
    lines are [Error ""] (callers skip them silently). *)
let parse line =
  let line = Abg_trace.Io.strip_cr line in
  if String.trim line = "" then Error ""
  else begin
    let cmd, rest = split_first line in
    let with_sid k =
      if valid_sid rest then Ok (k rest)
      else Error (Printf.sprintf "%s: missing or malformed session id" cmd)
    in
    match cmd with
    | "open" -> with_sid (fun sid -> Open sid)
    | "classify" -> with_sid (fun sid -> Classify sid)
    | "close" -> with_sid (fun sid -> Close sid)
    | "obs" ->
        let sid, payload = split_first rest in
        if valid_sid sid then Ok (Obs (sid, payload))
        else Error "obs: missing or malformed session id"
    | "stats" -> Ok Stats
    | "ping" -> Ok Ping
    | _ -> Error (Printf.sprintf "unknown command: %s" cmd)
  end

(* Response formatters — every daemon reply goes through these, so the
   wire format is defined in exactly one place. *)

let ok detail = "ok " ^ detail

let err ?sid msg =
  Printf.sprintf "err %s %s" (Option.value ~default:"-" sid) msg

let verdict ~sid ~window ~distance v =
  Printf.sprintf "verdict %s %d %.17g %s" sid window distance
    (Abg_classifier.Gordon.verdict_to_string v)
