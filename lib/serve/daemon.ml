(** The [abagnale serve] daemon: a single-threaded [Unix.select] event
    loop around one {!Engine}.

    Concurrency model: flows are multiplexed over connections by the
    protocol's session ids, so "thousands of concurrent flows" costs
    tens of descriptors, well under [select]'s limit — and one thread
    suffices because per-request work is bounded (ring-buffer ingest is
    O(1); a windowed classification is a few hundred microseconds).
    Connections are serviced in descriptor order each tick; within a
    connection, requests execute strictly in arrival order, which is
    what makes verdicts replayable.

    The wall clock appears only {e around} the engine — latency
    histograms ([serve.request_ns], [serve.classify_ns]) — never inside
    it, so timing jitter cannot change any verdict.

    Shutdown (SIGTERM/SIGINT, or [stats]-side idle tests): stop
    accepting, flush buffered responses, close every remaining session
    through {!Engine.drain} (final verdicts to the daemon log), run
    queued escalations to completion, unlink the socket file, return.
    Exit is the caller's (the CLI wraps {!run} and exits 0), which is
    what the CI smoke test asserts. *)

let obs_connections = Abg_obs.Obs.Gauge.make "serve.connections"

let obs_accepted =
  Abg_obs.Obs.Counter.make ~volatile:true "serve.connections_accepted"

let obs_refused =
  Abg_obs.Obs.Counter.make ~volatile:true "serve.connections_refused"

let obs_request_ns = Abg_obs.Obs.Histogram.make "serve.request_ns"
let obs_classify_ns = Abg_obs.Obs.Histogram.make "serve.classify_ns"

type endpoint = Unix_socket of string | Tcp of int

let endpoint_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

type config = {
  endpoint : endpoint;
  engine : Engine.config;
  max_connections : int;
      (* stay far under the select FD_SETSIZE ceiling; sessions
         multiplex, so this does not bound concurrent flows *)
  log : string -> unit;  (* daemon log lines (drain verdicts, summary) *)
}

let default_config =
  {
    endpoint = Unix_socket "abagnale.sock";
    engine = Engine.default_config;
    max_connections = 256;
    log = print_endline;
  }

(* One client connection: an incremental line framer for input and a
   byte buffer for output. [out_pos] tracks how much of [out] the socket
   has taken; partial writes are the norm under load. *)
type conn = {
  fd : Unix.file_descr;
  lines : Abg_trace.Io.Lines.t;
  out : Buffer.t;
  mutable out_pos : int;
}

let stop_requested = ref false

let request_stop () = stop_requested := true

let install_signal_handlers () =
  stop_requested := false;
  let handle = Sys.Signal_handle (fun _ -> request_stop ()) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ());
  (* A client vanishing mid-write must be an [EPIPE] error, not death. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let listen_on = function
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 128;
      fd

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Flush as much of [c.out] as the socket accepts right now. Returns
   [false] when the connection is dead. *)
let flush_conn c =
  let len = Buffer.length c.out in
  if c.out_pos >= len then true
  else begin
    match
      Unix.write_substring c.fd (Buffer.contents c.out) c.out_pos
        (len - c.out_pos)
    with
    | n ->
        c.out_pos <- c.out_pos + n;
        if c.out_pos >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.out_pos <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
    | exception Unix.Unix_error _ -> false
  end

let ns_of_s s = s *. 1e9

let is_classifying line =
  let pref p =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  pref "classify " || pref "close "

let is_stats line = String.trim line = "stats"

let latency_line () =
  let s = Abg_obs.Obs.Histogram.summary obs_classify_ns in
  Protocol.ok
    (Printf.sprintf "latency classify_count=%d p50_ns=%.0f p99_ns=%.0f"
       s.Abg_obs.Obs.Histogram.count
       (Abg_obs.Obs.Histogram.quantile s 0.5)
       (Abg_obs.Obs.Histogram.quantile s 0.99))

(* Execute one request line against the engine, timed, and queue the
   responses on the connection. *)
let serve_line engine c line =
  let t0 = Unix.gettimeofday () in
  let responses = Engine.handle_line engine line in
  let elapsed = ns_of_s (Unix.gettimeofday () -. t0) in
  Abg_obs.Obs.Histogram.observe obs_request_ns elapsed;
  if is_classifying line then
    Abg_obs.Obs.Histogram.observe obs_classify_ns elapsed;
  let responses =
    if is_stats line then responses @ [ latency_line () ] else responses
  in
  List.iter
    (fun r ->
      Buffer.add_string c.out r;
      Buffer.add_char c.out '\n')
    responses

(** [run ?config ()] serves until SIGTERM/SIGINT (or {!request_stop}),
    then drains and returns. Installs signal handlers; call from the
    process's main thread. *)
let run ?(config = default_config) () =
  install_signal_handlers ();
  let engine = Engine.create ~config:config.engine () in
  (* Reference preparation costs ~a second; pay it before "listening" so
     no client's first classify absorbs it. *)
  Engine.warm_up engine;
  let listener = listen_on config.endpoint in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  config.log
    (Printf.sprintf "abagnale-serve listening on %s"
       (endpoint_to_string config.endpoint));
  let buf = Bytes.create 65536 in
  let drop fd =
    (match Hashtbl.find_opt conns fd with
    | Some c -> ignore (flush_conn c)
    | None -> ());
    Hashtbl.remove conns fd;
    close_noerr fd;
    Abg_obs.Obs.Gauge.set obs_connections
      (float_of_int (Hashtbl.length conns))
  in
  let accept_one () =
    match Unix.accept listener with
    | fd, _ ->
        if Hashtbl.length conns >= config.max_connections then begin
          Abg_obs.Obs.Counter.incr obs_refused;
          (try
             ignore
               (Unix.write_substring fd "err - connection limit reached\n" 0 31)
           with Unix.Unix_error _ -> ());
          close_noerr fd
        end
        else begin
          Unix.set_nonblock fd;
          Hashtbl.replace conns fd
            {
              fd;
              lines = Abg_trace.Io.Lines.create ();
              out = Buffer.create 256;
              out_pos = 0;
            };
          Abg_obs.Obs.Counter.incr obs_accepted;
          Abg_obs.Obs.Gauge.set obs_connections
            (float_of_int (Hashtbl.length conns))
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
        (* EOF: parse any unterminated tail, then hang up. Sessions are
           daemon-scoped, not connection-scoped — they survive. *)
        Abg_trace.Io.Lines.flush c.lines (fun _ line ->
            serve_line engine c line);
        drop c.fd
    | n ->
        Abg_trace.Io.Lines.feed c.lines
          (Bytes.sub_string buf 0 n)
          (fun _ line -> serve_line engine c line)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> drop c.fd
  in
  while not !stop_requested do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    let wfds =
      Hashtbl.fold
        (fun fd c acc -> if Buffer.length c.out > 0 then fd :: acc else acc)
        conns []
    in
    match Unix.select (listener :: fds) wfds [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> if not (flush_conn c) then drop fd
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if fd == listener then accept_one ()
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> read_conn c
              | None -> ())
          readable
  done;
  (* Drain. Stop accepting first so the remaining work is finite. *)
  close_noerr listener;
  let remaining = Engine.session_count engine in
  List.iter (fun line -> config.log ("drain: " ^ line)) (Engine.drain engine);
  (match config.engine.Engine.escalate with
  | Some esc -> Escalate.drain esc
  | None -> ());
  (* Best-effort flush of queued responses, then hang up. *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec flush_all () =
    let pending =
      Hashtbl.fold
        (fun fd c acc ->
          if Buffer.length c.out - c.out_pos > 0 then (fd, c) :: acc else acc)
        conns []
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map fst pending) [] 0.1
       with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _, writable, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns fd with
              | Some c -> if not (flush_conn c) then drop fd
              | None -> ())
            writable);
      flush_all ()
    end
  in
  flush_all ();
  Hashtbl.iter (fun fd _ -> close_noerr fd) conns;
  Hashtbl.reset conns;
  (match config.endpoint with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let s = Abg_obs.Obs.Histogram.summary obs_classify_ns in
  config.log
    (Printf.sprintf
       "abagnale-serve drained: %d session(s) flushed, %d classification(s), \
        p50=%.0fns p99=%.0fns"
       remaining s.Abg_obs.Obs.Histogram.count
       (Abg_obs.Obs.Histogram.quantile s 0.5)
       (Abg_obs.Obs.Histogram.quantile s 0.99))
