(** The serving engine: protocol requests in, response lines out.

    Pure session bookkeeping — no sockets, no clocks, no threads. The
    daemon owns exactly one engine and feeds it complete lines; tests
    drive it directly. Everything observable in a response is a
    deterministic function of the request sequence: replaying a stream
    yields byte-identical verdicts (the wall clock only ever surrounds
    the engine, in the daemon's latency histograms, never inside it).

    A session is one flow: an incremental trace parser (so [obs]
    payloads are trace-file lines, with 1-based per-session line errors)
    plus a sliding window over its records. Classification scores the
    window against the prepared reference set ({!Online}); an "Unknown"
    verdict on a sufficiently full window escalates the materialized
    window to background synthesis ({!Escalate}). *)

(* Telemetry. All non-volatile counters here count protocol events —
   functions of the request stream alone — so a pinned serve run diffs
   byte-exact in CI. *)
let obs_opened = Abg_obs.Obs.Counter.make "serve.sessions_opened"
let obs_closed = Abg_obs.Obs.Counter.make "serve.sessions_closed"
let obs_records = Abg_obs.Obs.Counter.make "serve.records"
let obs_meta = Abg_obs.Obs.Counter.make "serve.meta_lines"
let obs_classify = Abg_obs.Obs.Counter.make "serve.classifications"
let obs_known = Abg_obs.Obs.Counter.make "serve.verdicts_known"
let obs_unknown = Abg_obs.Obs.Counter.make "serve.verdicts_unknown"
let obs_errors = Abg_obs.Obs.Counter.make "serve.request_errors"

type config = {
  window : int;  (** sliding-window capacity, records per flow *)
  max_sessions : int;  (** concurrent session cap, across connections *)
  escalate : Escalate.t option;  (** [None]: unknowns are only reported *)
}

let default_config = { window = 512; max_sessions = 4096; escalate = None }

type session = {
  sid : string;
  stream : Abg_trace.Io.Stream.t;
  window : Sliding.t;
}

type t = {
  config : config;
  online : Abg_classifier.Online.t Lazy.t;
      (* lazy: reference preparation simulates traces; tests that only
         exercise parsing and session bookkeeping never pay for it *)
  sessions : (string, session) Hashtbl.t;
  (* Engine-local stats for the [stats] reply — plain fields, not the
     global Obs counters, so concurrent engines (tests) don't bleed into
     each other's replies. *)
  mutable n_records : int;
  mutable n_classifications : int;
  mutable n_escalated : int;
  mutable n_errors : int;
}

let create ?(config = default_config) () =
  {
    config;
    online = lazy (Abg_classifier.Online.create ~window:config.window ());
    sessions = Hashtbl.create 256;
    n_records = 0;
    n_classifications = 0;
    n_escalated = 0;
    n_errors = 0;
  }

let session_count t = Hashtbl.length t.sessions

(** [warm_up t] forces the reference preparation now (it simulates every
    reference trace — around a second of work). The daemon calls this
    before announcing itself so the first classify request pays
    milliseconds like every other, instead of absorbing the whole
    preparation into its latency. *)
let warm_up t = ignore (Lazy.force t.online : Abg_classifier.Online.t)

let error t ?sid msg =
  Abg_obs.Obs.Counter.incr obs_errors;
  t.n_errors <- t.n_errors + 1;
  [ Protocol.err ?sid msg ]

let find t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "no such session: %s" sid)

let open_session t sid =
  if Hashtbl.mem t.sessions sid then
    error t ~sid (Printf.sprintf "session already open: %s" sid)
  else if Hashtbl.length t.sessions >= t.config.max_sessions then
    error t ~sid
      (Printf.sprintf "session limit reached (%d)" t.config.max_sessions)
  else begin
    Hashtbl.replace t.sessions sid
      {
        sid;
        stream = Abg_trace.Io.Stream.create ();
        window = Sliding.create ~capacity:t.config.window;
      };
    Abg_obs.Obs.Counter.incr obs_opened;
    [ Protocol.ok ("open " ^ sid) ]
  end

let observe t sid payload =
  match find t sid with
  | Error msg -> error t ~sid msg
  | Ok s -> (
      match Abg_trace.Io.Stream.push s.stream payload with
      | None ->
          Abg_obs.Obs.Counter.incr obs_meta;
          []
      | Some r ->
          Sliding.push s.window r;
          Abg_obs.Obs.Counter.incr obs_records;
          t.n_records <- t.n_records + 1;
          []
      | exception Invalid_argument msg -> error t ~sid msg)

(* Classify [s]'s current window; escalate confirmed unknowns (windows
   deep enough to have meant something). Returns the verdict line. *)
let classify_session t s =
  let w = s.window in
  let len = Sliding.length w in
  let result =
    Abg_classifier.Online.classify (Lazy.force t.online)
      ~get:(fun i -> Sliding.observed w i)
      ~len
  in
  Abg_obs.Obs.Counter.incr obs_classify;
  t.n_classifications <- t.n_classifications + 1;
  (match result.Abg_classifier.Online.verdict with
  | Abg_classifier.Gordon.Known _ -> Abg_obs.Obs.Counter.incr obs_known
  | Abg_classifier.Gordon.Unknown _ ->
      Abg_obs.Obs.Counter.incr obs_unknown;
      if len >= Abg_classifier.Online.min_points then
        Option.iter
          (fun esc ->
            let cca_name =
              Option.value ~default:"unknown"
                (Abg_trace.Io.Stream.cca_name s.stream)
            in
            let trace = Sliding.to_trace ~cca_name ~scenario:s.sid w in
            match Escalate.submit esc ~sid:s.sid trace with
            | Escalate.Submitted -> t.n_escalated <- t.n_escalated + 1
            | Escalate.Duplicate | Escalate.Dropped -> ())
          t.config.escalate);
  let distance =
    match result.Abg_classifier.Online.closest with
    | (_, d) :: _ -> d
    | [] -> infinity
  in
  Protocol.verdict ~sid:s.sid ~window:len ~distance
    result.Abg_classifier.Online.verdict

let classify t sid =
  match find t sid with
  | Error msg -> error t ~sid msg
  | Ok s -> [ classify_session t s ]

let close t sid =
  match find t sid with
  | Error msg -> error t ~sid msg
  | Ok s ->
      let verdict = classify_session t s in
      Hashtbl.remove t.sessions sid;
      Abg_obs.Obs.Counter.incr obs_closed;
      [ verdict; Protocol.ok ("close " ^ sid) ]

let stats t =
  [
    Protocol.ok
      (Printf.sprintf "stats sessions=%d records=%d classifications=%d \
                       escalated=%d errors=%d"
         (Hashtbl.length t.sessions) t.n_records t.n_classifications
         t.n_escalated t.n_errors);
  ]

let handle_request t = function
  | Protocol.Open sid -> open_session t sid
  | Protocol.Obs (sid, payload) -> observe t sid payload
  | Protocol.Classify sid -> classify t sid
  | Protocol.Close sid -> close t sid
  | Protocol.Stats -> stats t
  | Protocol.Ping -> [ Protocol.ok "pong" ]

(** [handle_line t line] — parse and execute one request line; the
    response lines to send back, in order (empty for accepted [obs]
    lines and blank input). *)
let handle_line t line =
  match Protocol.parse line with
  | Error "" -> []
  | Error msg -> error t msg
  | Ok req -> handle_request t req

(** [drain t] closes every remaining session in sid order (sorted, so
    shutdown output is deterministic regardless of hash layout) and
    returns their final verdict lines — the SIGTERM flush. *)
let drain t =
  let sids =
    Hashtbl.fold (fun sid _ acc -> sid :: acc) t.sessions []
    |> List.sort String.compare
  in
  List.concat_map (fun sid -> close t sid) sids
