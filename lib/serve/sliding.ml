(** Per-flow sliding-window state for online classification.

    A long-lived flow streams records forever; classification only ever
    looks at the most recent [capacity] of them. [Sliding] keeps exactly
    that suffix in a ring buffer — O(1) per observation, no allocation
    after construction — together with the loss events visible inside
    the window, detected at ingest by the same passive rule as
    {!Abg_trace.Segmentation.infer_loss_times} (visible window dropping
    below 80% of its predecessor).

    Equivalence contract (the qcheck property in [test_serve]): after
    streaming any record sequence, the state is identical to a batch
    recompute over the suffix — the window holds the last
    [min total capacity] records in order, and the in-window losses are
    exactly the full-stream pairwise detections whose record index falls
    inside the window. Losses are evicted by stream {e index}, not by
    time, so records carrying [nan]/[inf] timestamps cannot corrupt
    eviction (a [nan] comparison is simply false for detection, on both
    the streaming and the batch side). *)

type t = {
  capacity : int;
  ring : Abg_trace.Record.t array;  (* slot = stream index mod capacity *)
  mutable total : int;  (* records streamed so far *)
  losses : (int * float) Queue.t;
      (* (stream index of detecting record, its time), ascending index;
         evicted once the index leaves the window *)
}

let dummy_record =
  {
    Abg_trace.Record.time = 0.0; cwnd = 0.0; in_flight = 0.0;
    acked_bytes = 0.0; rtt = 0.0; min_rtt = 0.0; max_rtt = 0.0;
    ack_rate = 0.0; rtt_gradient = 0.0; delay_gradient = 0.0;
    time_since_loss = 0.0; wmax = 0.0; mss = 0.0;
  }

let create ~capacity =
  if capacity < 2 then invalid_arg "Sliding.create: capacity must be >= 2";
  {
    capacity;
    ring = Array.make capacity dummy_record;
    total = 0;
    losses = Queue.create ();
  }

let capacity t = t.capacity
let length t = Stdlib.min t.total t.capacity
let total t = t.total

(** [get t i] is the window's [i]-th record, oldest first
    ([0 <= i < length t]). *)
let get t i =
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Sliding.get: out of window";
  t.ring.((t.total - len + i) mod t.capacity)

(** [observed t i] is the visible window of the [i]-th record — the
    candidate series the windowed DTW kernel reads. *)
let observed t i = Abg_trace.Record.observed_cwnd (get t i)

(** [push t r] ingests one record: O(1) — overwrite the oldest ring
    slot, detect a loss against the previous record (if any is still
    buffered), evict losses that left the window. *)
let push t (r : Abg_trace.Record.t) =
  if t.total > 0 then begin
    let prev =
      Abg_trace.Record.observed_cwnd t.ring.((t.total - 1) mod t.capacity)
    in
    let cur = Abg_trace.Record.observed_cwnd r in
    if prev > 0.0 && cur < 0.8 *. prev then
      Queue.push (t.total, r.Abg_trace.Record.time) t.losses
  end;
  t.ring.(t.total mod t.capacity) <- r;
  t.total <- t.total + 1;
  (* The window now covers stream indices [total - length, total). *)
  let lo = t.total - length t in
  while
    (not (Queue.is_empty t.losses)) && fst (Queue.peek t.losses) < lo
  do
    ignore (Queue.pop t.losses)
  done

(** In-window loss event times, oldest first. *)
let loss_times t =
  Array.of_seq (Seq.map snd (Queue.to_seq t.losses))

(** [to_trace t] materializes the current window as a trace — what
    classification-by-features and escalation-to-synthesis consume. *)
let to_trace ?(cca_name = "unknown") ?(scenario = "live") t =
  let len = length t in
  {
    Abg_trace.Trace.cca_name;
    scenario;
    config = Abg_netsim.Config.default;
    records = Array.init len (fun i -> get t i);
    loss_times = loss_times t;
  }

(** [features t] — batch feature extraction over the materialized
    window; bit-identical to [Features.extract] on {!to_trace}'s result
    because it {e is} that call. The O(window) cost is paid only on
    classification queries, never per observation. *)
let features t = Abg_classifier.Features.extract [ to_trace t ]
