(** A deterministic serve client: stream trace files as concurrent
    sessions over one connection and collect the daemon's replies.

    Used by [abagnale stream] and the CI smoke test, and built for
    reproducibility rather than throughput: flows are interleaved
    record-by-record in a fixed round-robin over a single connection, so
    the daemon — which processes each connection's lines strictly in
    order — sees one canonical request sequence and produces one
    canonical reply sequence. Two runs against a fresh daemon yield
    byte-identical verdict lines, which is exactly what the smoke test
    pins. (The load generator in [bench/serve.ml] is the opposite
    trade-off: many connections, wall-clock latency sampling.)

    Single-threaded: one [select] loop both feeds the request bytes and
    drains replies, so a daemon blocked on its send buffer can never
    deadlock against a client blocked on its own. *)

(** [script flows] is the full request byte sequence for streaming
    [flows] (sid, trace) concurrently: open every session, round-robin
    one trace-format line per flow per turn ([# meta] comments
    included), then close every session in order. *)
let script flows =
  let buf = Buffer.create 65536 in
  let request line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  List.iter (fun (sid, _) -> request ("open " ^ sid)) flows;
  let lines =
    List.map
      (fun (sid, trace) ->
        let all = String.split_on_char '\n' (Abg_trace.Io.to_string trace) in
        (sid, Array.of_list (List.filter (fun l -> l <> "") all)))
      flows
  in
  let longest =
    List.fold_left (fun acc (_, ls) -> Stdlib.max acc (Array.length ls)) 0 lines
  in
  for k = 0 to longest - 1 do
    List.iter
      (fun (sid, ls) ->
        if k < Array.length ls then request ("obs " ^ sid ^ " " ^ ls.(k)))
      lines
  done;
  List.iter (fun (sid, _) -> request ("close " ^ sid)) flows;
  Buffer.contents buf

let connect = function
  | Daemon.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Daemon.Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      fd

(** [execute ?timeout endpoint ~request ~stop_line] sends [request] and
    collects reply lines until one satisfies [stop_line] (or the daemon
    hangs up). Raises [Failure] after [timeout] seconds (default 30) of
    no progress. *)
let execute ?(timeout = 30.0) endpoint ~request ~stop_line =
  let fd = connect endpoint in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.set_nonblock fd;
  let n = String.length request in
  let sent = ref 0 in
  let lines = Abg_trace.Io.Lines.create () in
  let out = ref [] in
  let finished = ref false in
  let buf = Bytes.create 65536 in
  while not !finished do
    let wants_write = if !sent < n then [ fd ] else [] in
    match Unix.select [ fd ] wants_write [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], [], _ -> failwith "Serve.Client: daemon unresponsive"
    | readable, writable, _ ->
        if writable <> [] then begin
          match Unix.write_substring fd request !sent (n - !sent) with
          | k -> sent := !sent + k
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
        end;
        if readable <> [] then begin
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> finished := true
          | k ->
              Abg_trace.Io.Lines.feed lines (Bytes.sub_string buf 0 k)
                (fun _ line ->
                  out := line :: !out;
                  if stop_line line then finished := true)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
        end
  done;
  List.rev !out

(** [stream endpoint flows] streams [flows] concurrently and returns
    every reply line in daemon order. The last flow's [ok close] reply
    is the completion sentinel. *)
let stream ?timeout endpoint flows =
  match flows with
  | [] -> []
  | _ ->
      let last_sid = fst (List.nth flows (List.length flows - 1)) in
      execute ?timeout endpoint ~request:(script flows)
        ~stop_line:(fun l -> l = "ok close " ^ last_sid)

(** Verdict lines only, as [(sid, window, distance, verdict)] rows. *)
let verdicts lines =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' line with
      | "verdict" :: sid :: window :: distance :: rest ->
          Some
            ( sid,
              int_of_string window,
              float_of_string distance,
              String.concat " " rest )
      | _ -> None)
    lines
