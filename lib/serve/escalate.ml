(** Escalation of unmatched flows to background synthesis.

    When the online classifier returns "Unknown", the flow's window is a
    CCA behavior the reference set cannot name — exactly the input the
    synthesis pipeline exists for. Escalation hands the materialized
    window trace to a background task on the domain pool's low-priority
    lane ({!Abg_parallel.Pool.background}), so synthesis (seconds to
    minutes) never blocks the serving event loop and never starves
    foreground classification work.

    The runner is injected: the daemon wires in real synthesis
    ({!Abg_core.Synthesis.run} behind a closure, keeping this library
    free of the heavyweight core dependency), tests wire in a recorder.
    Escalations are deduplicated by trace digest — a flow re-classified
    every few seconds must not resynthesize an unchanged window — and
    capped by a pending budget so a flood of unknowns degrades to
    dropped escalations, not an unbounded queue. *)

let obs_submitted = Abg_obs.Obs.Counter.make "serve.escalations"
let obs_deduped = Abg_obs.Obs.Counter.make "serve.escalations_deduped"

let obs_dropped =
  Abg_obs.Obs.Counter.make ~volatile:true "serve.escalations_dropped"

type t = {
  runner : sid:string -> Abg_trace.Trace.t -> unit;
  pool : Abg_parallel.Pool.t option;  (* None: the global pool *)
  max_pending : int;
  seen : (string, unit) Hashtbl.t;  (* trace digests already escalated *)
  pending : int Atomic.t;  (* submitted, not yet finished *)
}

let create ?pool ?(max_pending = 64) runner =
  { runner; pool; max_pending; seen = Hashtbl.create 64;
    pending = Atomic.make 0 }

type outcome = Submitted | Duplicate | Dropped

let outcome_to_string = function
  | Submitted -> "submitted"
  | Duplicate -> "duplicate"
  | Dropped -> "dropped"

(** [submit t ~sid trace] queues background synthesis of [trace] unless
    an identical trace was already escalated ([Duplicate]) or the
    pending budget is exhausted ([Dropped]). Runs on the caller only
    through {!Abg_parallel.Pool.background}'s scheduling. *)
let submit t ~sid trace =
  let digest = Digest.string (Abg_trace.Io.to_string trace) in
  if Hashtbl.mem t.seen digest then begin
    Abg_obs.Obs.Counter.incr obs_deduped;
    Duplicate
  end
  else if Atomic.get t.pending >= t.max_pending then begin
    Abg_obs.Obs.Counter.incr obs_dropped;
    Dropped
  end
  else begin
    Hashtbl.replace t.seen digest ();
    Abg_obs.Obs.Counter.incr obs_submitted;
    Atomic.incr t.pending;
    Abg_parallel.Pool.background ?pool:t.pool (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.pending)
          (fun () -> t.runner ~sid trace));
    Submitted
  end

let pending t = Atomic.get t.pending

(** [drain t] — run every queued escalation to completion (the graceful
    shutdown barrier; the caller participates). *)
let drain t = Abg_parallel.Pool.drain_background ?pool:t.pool ()
