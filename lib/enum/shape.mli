(** Tree-shape bookkeeping for the sketch encoding: sketch ASTs are
    embedded in a complete ternary tree (maximum component arity is 3,
    for the conditional); node [i]'s children are [3i+1, 3i+2, 3i+3]. *)

val arity_max : int

val num_nodes : depth:int -> int
(** Number of positions in a complete ternary tree of [depth] levels. *)

val parent : int -> int
(** Parent position; the root (0) has none. *)

val child : int -> int -> int
(** [child i k] is the position of [i]'s [k]-th child (0-based). *)

val position : int -> int
(** Position of a non-root node among its siblings (0-based). *)

val level : int -> int
(** Level of a node, root = 0. *)
