(** Bucketization of the search space (§4.4).

    The bucket discriminator is the exact subset of DSL *operators* a
    sketch uses; every sketch belongs to exactly one bucket, the property
    needed for the divide-and-conquer refinement loop. Buckets are
    generated as the power set of the DSL's operators, filtered by two
    structural facts of the grammar: boolean operators only ever occur
    under a conditional, and a conditional always contains exactly one
    boolean operator occurrence at its guard. Remaining infeasible subsets
    (e.g. too many operators for the node budget) simply enumerate as
    empty. *)

open Abg_dsl

type bucket = Component.t list

let is_bool_op = function
  | Component.Op_lt | Component.Op_gt | Component.Op_modeq -> true
  | _ -> false

let feasible ops =
  let has_ite = List.exists (Component.equal Component.Op_ite) ops in
  let has_bool = List.exists is_bool_op ops in
  (has_ite && has_bool) || ((not has_ite) && not has_bool)

(** [all dsl] is every feasible operator subset of [dsl], the empty set
    (pure-leaf sketches) included. *)
let all (dsl : Catalog.t) =
  let ops = Array.of_list (Catalog.operators dsl) in
  let n = Array.length ops in
  if n > 20 then
    invalid_arg
      (Printf.sprintf
         "Buckets.all: %d operators; the power-set bucketization is capped \
          at 20"
         n);
  let subsets = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let subset = ref [] in
    for b = n - 1 downto 0 do
      if mask land (1 lsl b) <> 0 then subset := ops.(b) :: !subset
    done;
    if feasible !subset then subsets := !subset :: !subsets
  done;
  List.rev !subsets

(** Human-readable bucket label, e.g. "{+,*,?:,<}". *)
let to_string bucket =
  "{" ^ String.concat "," (List.map Component.name bucket) ^ "}"

(** [of_sketch sketch] — the bucket a sketch belongs to. *)
let of_sketch sketch = Abg_dsl.Sketch.operator_set sketch

let equal (a : bucket) b =
  List.length a = List.length b && List.for_all2 Component.equal a b
