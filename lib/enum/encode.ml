(** Propositional encoding of the sketch space (§4.1) — the Z3-formula
    substitute.

    One SAT instance describes all well-sorted, unit-consistent sketches
    of a sub-DSL up to its depth and node budgets. Decision variables:

    - [active.(i)] — tree position [i] is part of the sketch;
    - [comp.(i).(c)] — position [i] holds DSL component [c];
    - [unit_vars.(i).(u)] — position [i] denotes a quantity of unit [u]
      (one-hot over a finite integer-exponent unit domain, exactly the
      quantifier-free finite-domain restriction the paper adopts);
    - [used_op.(o)] — operator [o] appears somewhere in the sketch: the
      bucket discriminator of §4.4, constrained via solver assumptions.

    The commutative canonical form of {!Abg_analysis.Canonical} is
    encoded directly as propositional constraints (a lex-leader circuit
    over the operand subtrees of commutative operators, with constant
    holes interchangeable), so the solver itself never produces a model
    the canonicalizer would fold; see {!add_symmetry_constraints}.
    Unused-slot symmetries are pinned too: an inactive node's one-hot
    unit variable is fixed to the first domain element.

    Models are decoded into {!Abg_dsl.Expr} sketches with constant holes;
    each returned sketch is excluded with a blocking clause, so repeated
    calls enumerate the space. One persistent solver serves the whole
    enumeration: buckets are selected purely via assumptions, and each
    bucket's blocking clauses live in a retractable {!Abg_sat.Solver}
    clause group so {!retire_bucket} can reclaim them when the
    refinement loop drops the bucket. Post-decode, five pruning stages
    run before a sketch is handed to the scorer, each
    blocking-and-skipping the model: arithmetic simplifiability (§4.1's
    sympy filter), the interval-domain dead-on-arrival rules of
    {!Abg_analysis.Absint} (window provably <= 0 or non-finite,
    provably-zero denominators, guards constant over the whole input
    box), commutative-duplicate detection via {!Abg_analysis.Canonical}
    (retained as a safety net even though the in-encoding symmetry
    breaking should leave it idle), relational dead-guard detection via
    {!Abg_analysis.Relint} (guards decided by the zone domain — the
    cross-signal relations of §5.6 — either outright or under the
    assumptions of enclosing guards), and semantic subsumption (one
    representative per {!Abg_analysis.Equiv.rnorm} relational
    normal-form class, so sketches that differ only in provably-dead
    structure are never scored twice). The relational stages touch only
    sketches containing a conditional, so an Ite-free DSL (reno)
    enumerates bit-identically with them on. Returned sketches are in
    canonical form; per-reason counters are surfaced via
    {!prune_stats}. *)

open Abg_dsl
open Abg_util

let unit_limit = 2

type t = {
  solver : Abg_sat.Solver.t;
  dsl : Catalog.t;
  nodes : int;
  components : Component.t array;
  active : int array;
  comp : int array array;
  unit_vars : int array array;  (** [| |] rows when unit checking is off *)
  unit_domain : Units.t array;
  used_op : (Component.t * int) list;
  symmetry : bool;
  bucket_groups : (Component.t list, Abg_sat.Solver.group) Hashtbl.t;
      (** per-bucket blocking-clause groups, keyed by sorted operator set *)
  box : Abg_analysis.Absint.box;
      (** interval box: physical signal ranges, hole = the constant pool *)
  rel : Abg_analysis.Relint.t;
      (** the zone over the same box, for the relational prune stages *)
  seen : Abg_analysis.Canonical.Tbl.t;
      (** canonical forms already returned, for commutative dedup *)
  sem : Abg_analysis.Canonical.Tbl.t;
      (** relational normal forms of every returned sketch, for
          semantic-subsumption dedup; never fed back into [seen] *)
  dead : int array;  (** per-{!Abg_analysis.Absint.reason} prune counts *)
  mutable enumerated : int;
  mutable blocked_simplifiable : int;
  mutable blocked_duplicate : int;
  mutable blocked_vacuous : int;
  mutable blocked_implied : int;
  mutable blocked_subsumed : int;
}

let reason_index r =
  let rec go i = function
    | [] -> invalid_arg "Encode.reason_index"
    | r' :: rest -> if r' = r then i else go (i + 1) rest
  in
  go 0 Abg_analysis.Absint.all_reasons

(* Telemetry: process-wide prune/enumeration counters, incremented
   alongside the per-enumerator cells below. The per-enc integers are
   semantic state (the solver's randomize seed is derived from them and
   per-enc statistics feed §6.1 reporting); the obs counters are what
   run-level aggregation — [Refinement.result.pruned], the [--telemetry]
   report, the CI gate — derives from, as a snapshot delta. Enumeration
   totals are deterministic: every enumerator runs sequentially on the
   domain that owns it, and its model sequence depends only on the DSL
   and its own counters. *)
let obs_returned = Abg_obs.Obs.Counter.make "enum.returned"
let obs_sat = Abg_obs.Obs.Counter.make "enum.sat.sat"
let obs_unsat = Abg_obs.Obs.Counter.make "enum.sat.unsat"
let obs_simplifiable = Abg_obs.Obs.Counter.make "enum.pruned.simplifiable"
let obs_duplicate = Abg_obs.Obs.Counter.make "enum.pruned.duplicate"

let obs_vacuous =
  Abg_obs.Obs.Counter.make "enum.pruned.vacuous-guard"

let obs_implied =
  Abg_obs.Obs.Counter.make "enum.pruned.guard-implied"

let obs_subsumed =
  Abg_obs.Obs.Counter.make "enum.pruned.equiv-subsumed"

let obs_dead =
  Array.of_list
    (List.map
       (fun r ->
         Abg_obs.Obs.Counter.make
           ("enum.pruned." ^ Abg_analysis.Absint.reason_name r))
       Abg_analysis.Absint.all_reasons)

(** Process-wide per-reason prune counters from the telemetry layer, in
    the {!prune_stats} reporting order. All zeros while telemetry is
    disabled. Run-level statistics subtract a snapshot taken at the start
    of the run. *)
let global_prune_stats () =
  ("simplifiable", Abg_obs.Obs.Counter.value obs_simplifiable)
  :: List.mapi
       (fun i r ->
         (Abg_analysis.Absint.reason_name r, Abg_obs.Obs.Counter.value obs_dead.(i)))
       Abg_analysis.Absint.all_reasons
  @ [ ("duplicate", Abg_obs.Obs.Counter.value obs_duplicate);
      ("vacuous-guard", Abg_obs.Obs.Counter.value obs_vacuous);
      ("guard-implied", Abg_obs.Obs.Counter.value obs_implied);
      ("equiv-subsumed", Abg_obs.Obs.Counter.value obs_subsumed) ]

(** Process-wide count of sketches returned by {!next} (telemetry). *)
let global_returned () = Abg_obs.Obs.Counter.value obs_returned

let find_comp_index components c =
  let rec go i =
    if i = Array.length components then None
    else if Component.equal components.(i) c then Some i
    else go (i + 1)
  in
  go 0

let unit_index_in unit_domain u =
  let rec go i =
    if i = Array.length unit_domain then None
    else if Units.equal unit_domain.(i) u then Some i
    else go (i + 1)
  in
  go 0

(* -- Symmetry breaking: the commutative canonical form, in clauses --

   [Abg_analysis.Canonical.normalize] orders the operands of every
   Add/Mul under a total preorder (constructor rank, then Signal/Macro
   order, then children lexicographically; holes compare equal). The
   circuit below mirrors that comparison inside the encoding so every
   model decodes to a tree that is already a fixed point of [normalize]:
   any non-canonical operand order is unsatisfiable, and the solver never
   wastes a solve-decode-block round trip on a commutative duplicate.

   For each aligned position pair (a, b) — sibling operands of a
   potentially commutative node, and recursively their aligned
   descendants — two auxiliary variables are defined one-directionally:
   [gt a b] (resp. [eq a b]) is *forced true* whenever the decoded
   subtree at [a] compares greater than (resp. equal to) the one at [b],
   and left free otherwise. Clauses:

   - cross-component: components of different canonical rank at (a, b)
     with rank(a) > rank(b) force [gt];
   - same nullary component (and the hole component, whose decoded
     indices the canonical order ignores) forces [eq];
   - same k-ary component: a lexicographic chain over the k child digit
     pairs forces [gt]/[eq] ({!Abg_sat.Cnf.lex_gt_implies}).

   At each node that can hold a commutative operator, [lex_le] forbids
   [gt child0 child1] under that operator's component variable.

   Completeness: in a model whose decoded tree is canonical, assigning
   every auxiliary variable its semantic truth value satisfies all the
   clauses above (the implications' premises hold only when their
   conclusions do, and no canonical tree triggers the top-level ban), so
   exactly one representative per commutativity class remains
   reachable. *)

(* Component order consistent with Canonical.compare_num on decoded
   subtree roots. Leaf_const decodes to a Hole (canonical rank 4); no
   component decodes to Const (rank 3). Boolean comparisons live in a
   separate sort, ranked by Canonical's brank (Lt < Gt < Mod_eq). *)
let canon_class = function
  | Component.Leaf_cwnd -> 0
  | Component.Leaf_signal _ -> 1
  | Component.Leaf_macro _ -> 2
  | Component.Leaf_const -> 4
  | Component.Op_add -> 5
  | Component.Op_sub -> 6
  | Component.Op_mul -> 7
  | Component.Op_div -> 8
  | Component.Op_ite -> 9
  | Component.Op_cube -> 10
  | Component.Op_cbrt -> 11
  | Component.Op_lt -> 20
  | Component.Op_gt -> 21
  | Component.Op_modeq -> 22

let canon_compare a b =
  let c = Int.compare (canon_class a) (canon_class b) in
  if c <> 0 then c
  else
    match (a, b) with
    | Component.Leaf_signal s, Component.Leaf_signal s' -> Signal.compare s s'
    | Component.Leaf_macro m, Component.Leaf_macro m' -> Macro.compare m m'
    | _ -> 0

let add_symmetry_constraints ~solver ~nodes ~(components : Component.t array)
    ~(comp : int array array) =
  let n_comp = Array.length components in
  (* Is component [ci] structurally possible at node [i]? (Nodes whose
     children would fall outside the tree already carry a unit ban.) *)
  let feasible i ci =
    let a = Component.arity components.(ci) in
    a = 0 || Shape.child i (a - 1) < nodes
  in
  let pair_tbl : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let rec pair_vars a b =
    match Hashtbl.find_opt pair_tbl (a, b) with
    | Some p -> p
    | None ->
        let gt = Abg_sat.Solver.new_var solver in
        let eq = Abg_sat.Solver.new_var solver in
        Hashtbl.add pair_tbl (a, b) (gt, eq);
        (* Cross-component: a strictly greater canonical rank at [a]
           forces [gt]. *)
        for ci = 0 to n_comp - 1 do
          if feasible a ci then
            for cj = 0 to n_comp - 1 do
              if
                feasible b cj
                && canon_compare components.(ci) components.(cj) > 0
              then
                Abg_sat.Solver.add_clause solver
                  [ -comp.(a).(ci); -comp.(b).(cj); gt ]
            done
        done;
        (* Same component at both positions. *)
        for ci = 0 to n_comp - 1 do
          let k = Component.arity components.(ci) in
          if k = 0 then
            (* Identical leaves compare equal — including two holes,
               whose decoded indices the canonical order ignores. *)
            Abg_sat.Solver.add_clause solver
              [ -comp.(a).(ci); -comp.(b).(ci); eq ]
          else if feasible a ci && feasible b ci then begin
            let digits =
              List.init k (fun j -> pair_vars (Shape.child a j) (Shape.child b j))
            in
            Abg_sat.Cnf.lex_gt_implies solver
              ~under:[ comp.(a).(ci); comp.(b).(ci) ]
              ~target:gt digits;
            Abg_sat.Solver.add_clause solver
              (-comp.(a).(ci) :: -comp.(b).(ci)
              :: List.map (fun (_, e) -> -e) digits
              @ [ eq ])
          end
        done;
        (gt, eq)
  in
  for i = 0 to nodes - 1 do
    let c1 = Shape.child i 0 and c2 = Shape.child i 1 in
    if c2 < nodes then
      Array.iteri
        (fun ci c ->
          if Component.is_commutative c then begin
            let digit = pair_vars c1 c2 in
            Abg_sat.Cnf.lex_le solver ~under:[ comp.(i).(ci) ] [ digit ]
          end)
        components
  done

let create ?(symmetry = true) (dsl : Catalog.t) =
  let solver = Abg_sat.Solver.create () in
  let nodes = Shape.num_nodes ~depth:dsl.Catalog.max_depth in
  let components = Array.of_list dsl.Catalog.components in
  let n_comp = Array.length components in
  let active = Array.init nodes (fun _ -> Abg_sat.Solver.new_var solver) in
  let comp =
    Array.init nodes (fun _ ->
        Array.init n_comp (fun _ -> Abg_sat.Solver.new_var solver))
  in
  let unit_domain = Array.of_list (Units.domain ~limit:unit_limit) in
  let unit_vars =
    if dsl.Catalog.unit_check then
      Array.init nodes (fun _ ->
          Array.init (Array.length unit_domain) (fun _ ->
              Abg_sat.Solver.new_var solver))
    else Array.make nodes [||]
  in
  let used_op =
    List.map
      (fun op -> (op, Abg_sat.Solver.new_var solver))
      (Catalog.operators dsl)
  in
  (* Everything [decode]/[block] reads is allocated above; the symmetry
     circuits, commander variables and group selectors that follow are
     auxiliary, so models need not report them. *)
  Abg_sat.Solver.limit_model solver (Abg_sat.Solver.num_vars solver);
  let enc =
    {
      solver; dsl; nodes; components; active; comp; unit_vars; unit_domain;
      used_op; symmetry; bucket_groups = Hashtbl.create 16;
      box = Abg_analysis.Absint.box_for dsl;
      rel = Abg_analysis.Relint.for_dsl dsl;
      seen = Abg_analysis.Canonical.Tbl.create ();
      sem = Abg_analysis.Canonical.Tbl.create ();
      dead = Array.make (List.length Abg_analysis.Absint.all_reasons) 0;
      enumerated = 0; blocked_simplifiable = 0; blocked_duplicate = 0;
      blocked_vacuous = 0; blocked_implied = 0; blocked_subsumed = 0;
    }
  in
  let unit_index u = unit_index_in unit_domain u in
  (* -- Structural constraints -- *)
  Abg_sat.Solver.add_clause solver [ active.(0) ];
  for i = 0 to nodes - 1 do
    (* Exactly one component on active nodes, none on inactive ones. *)
    Abg_sat.Cnf.implies_clause solver active.(i)
      (Array.to_list comp.(i));
    Abg_sat.Cnf.at_most_one solver (Array.to_list comp.(i));
    Array.iter (fun cv -> Abg_sat.Cnf.implies solver cv active.(i)) comp.(i);
    (* A component requires its children to exist within the tree. *)
    Array.iteri
      (fun ci c ->
        let arity = Component.arity c in
        if arity > 0 && Shape.child i (arity - 1) >= nodes then
          Abg_sat.Solver.add_clause solver [ -comp.(i).(ci) ])
      components
  done;
  (* Root denotes the handler's value: a num. *)
  Array.iteri
    (fun ci c ->
      if Component.sort c = Component.Bool then
        Abg_sat.Solver.add_clause solver [ -comp.(0).(ci) ])
    components;
  (* Child activation and sorts. *)
  for j = 1 to nodes - 1 do
    let p = Shape.parent j in
    let k = Shape.position j in
    let activating = ref [] in
    Array.iteri
      (fun ci c ->
        let arity = Component.arity c in
        if arity > k then begin
          (* Parent component with arity beyond k activates child j and
             pins its sort. *)
          Abg_sat.Cnf.implies solver comp.(p).(ci) active.(j);
          activating := comp.(p).(ci) :: !activating;
          let want = List.nth (Component.child_sorts c) k in
          Array.iteri
            (fun cj c' ->
              if Component.sort c' <> want then
                Abg_sat.Solver.add_clause solver
                  [ -comp.(p).(ci); -comp.(j).(cj) ])
            components
        end
        else Abg_sat.Solver.add_clause solver [ -comp.(p).(ci); -active.(j) ])
      components;
    (* Child j active only under some activating parent component. *)
    Abg_sat.Cnf.implies_clause solver active.(j) !activating
  done;
  (* Node budget. *)
  Abg_sat.Cnf.at_most_k solver (Array.to_list active) dsl.Catalog.max_nodes;
  (* Anti-folding: no arithmetic/comparison over two bare constants (the
     cheapest "simplifiable" patterns, pruned inside the formula). *)
  (match find_comp_index components Component.Leaf_const with
  | None -> ()
  | Some const_idx ->
      for i = 0 to nodes - 1 do
        Array.iteri
          (fun ci c ->
            match c with
            | Component.Op_add | Component.Op_sub | Component.Op_mul
            | Component.Op_div | Component.Op_lt | Component.Op_gt
            | Component.Op_modeq ->
                let c1 = Shape.child i 0 and c2 = Shape.child i 1 in
                if c2 < nodes then
                  Abg_sat.Solver.add_clause solver
                    [ -comp.(i).(ci); -comp.(c1).(const_idx);
                      -comp.(c2).(const_idx) ]
            | Component.Leaf_cwnd | Component.Leaf_signal _
            | Component.Leaf_const | Component.Leaf_macro _
            | Component.Op_ite | Component.Op_cube | Component.Op_cbrt ->
                ())
          components
      done);
  (* Identical-leaf bans: the decoded sketch would simplify (x - x,
     x / x, x < x, {c} ? x : x with equal leaf branches), so each such
     model would cost a wasted solve-and-block round trip. Constants are
     exempt: two holes concretize to different values. *)
  Array.iteri
    (fun li leaf ->
      let banned =
        Component.arity leaf = 0 && not (Component.equal leaf Component.Leaf_const)
      in
      if banned then
        for i = 0 to nodes - 1 do
          Array.iteri
            (fun ci c ->
              let pair a b =
                if b < nodes then
                  Abg_sat.Solver.add_clause solver
                    [ -comp.(i).(ci); -comp.(a).(li); -comp.(b).(li) ]
              in
              match c with
              | Component.Op_sub | Component.Op_div | Component.Op_lt
              | Component.Op_gt | Component.Op_modeq ->
                  pair (Shape.child i 0) (Shape.child i 1)
              | Component.Op_ite -> pair (Shape.child i 1) (Shape.child i 2)
              | Component.Leaf_cwnd | Component.Leaf_signal _
              | Component.Leaf_const | Component.Leaf_macro _
              | Component.Op_add | Component.Op_mul | Component.Op_cube
              | Component.Op_cbrt ->
                  ())
            components
        done)
    components;
  (* used_op definitions. *)
  List.iter
    (fun (op, v) ->
      match find_comp_index components op with
      | None -> ()
      | Some ci ->
          let occurrences = ref [] in
          for i = 0 to nodes - 1 do
            Abg_sat.Cnf.implies solver comp.(i).(ci) v;
            occurrences := comp.(i).(ci) :: !occurrences
          done;
          Abg_sat.Cnf.implies_clause solver v !occurrences)
    used_op;
  (* Commutative canonical form, in clauses. *)
  if symmetry then
    add_symmetry_constraints ~solver ~nodes ~components ~comp;
  (* -- Unit constraints (dimensional analysis) -- *)
  if dsl.Catalog.unit_check then begin
    let n_units = Array.length unit_domain in
    let uvar i u = unit_vars.(i).(u) in
    for i = 0 to nodes - 1 do
      Abg_sat.Cnf.exactly_one solver (Array.to_list unit_vars.(i))
    done;
    if symmetry then
      (* Unused-slot symmetry: an inactive node's one-hot unit row is
         otherwise unconstrained, so pin it to the first domain element —
         one assignment per sketch instead of |domain|^(inactive). *)
      for i = 0 to nodes - 1 do
        Abg_sat.Solver.add_clause solver [ active.(i); uvar i 0 ]
      done;
    (* Root produces bytes. *)
    (match unit_index Units.bytes with
    | Some u -> Abg_sat.Solver.add_clause solver [ uvar 0 u ]
    | None -> assert false);
    let fixed_unit i cv u =
      match unit_index u with
      | Some ui -> Abg_sat.Solver.add_clause solver [ -cv; uvar i ui ]
      | None -> Abg_sat.Solver.add_clause solver [ -cv ]
    in
    let equal_units cv a b =
      (* Under cv, node a and node b share their unit. *)
      for u = 0 to n_units - 1 do
        Abg_sat.Solver.add_clause solver [ -cv; -uvar a u; uvar b u ]
      done
    in
    for i = 0 to nodes - 1 do
      Array.iteri
        (fun ci c ->
          let cv = comp.(i).(ci) in
          let c1 = Shape.child i 0
          and c2 = Shape.child i 1
          and c3 = Shape.child i 2 in
          match c with
          | Component.Leaf_cwnd -> fixed_unit i cv Units.bytes
          | Component.Leaf_signal s -> fixed_unit i cv (Signal.unit_of s)
          | Component.Leaf_macro m -> fixed_unit i cv (Macro.unit_of m)
          | Component.Leaf_const ->
              (* Constants carry one of the scalar-ish units only (see
                 Abg_dsl.Unit_check.constant_units): letting a constant
                 stand for any unit would launder arbitrary
                 ill-dimensioned arithmetic and explode the space. *)
              let allowed =
                List.filter_map unit_index Unit_check.constant_units
              in
              Abg_sat.Solver.add_clause solver
                (-cv :: List.map (uvar i) allowed)
          | Component.Op_add | Component.Op_sub ->
              if c2 < nodes then begin
                equal_units cv i c1;
                equal_units cv i c2
              end
          | Component.Op_mul | Component.Op_div ->
              if c2 < nodes then
                for u1 = 0 to n_units - 1 do
                  for u2 = 0 to n_units - 1 do
                    let result =
                      match c with
                      | Component.Op_mul ->
                          Units.mul unit_domain.(u1) unit_domain.(u2)
                      | _ -> Units.div unit_domain.(u1) unit_domain.(u2)
                    in
                    match unit_index result with
                    | Some ur ->
                        Abg_sat.Solver.add_clause solver
                          [ -cv; -uvar c1 u1; -uvar c2 u2; uvar i ur ]
                    | None ->
                        Abg_sat.Solver.add_clause solver
                          [ -cv; -uvar c1 u1; -uvar c2 u2 ]
                  done
                done
          | Component.Op_ite ->
              if c3 < nodes then begin
                equal_units cv i c2;
                equal_units cv i c3
              end
          | Component.Op_lt | Component.Op_gt ->
              if c2 < nodes then equal_units cv c1 c2
          | Component.Op_modeq ->
              (* Exempt from unit agreement (the paper's synthesized BBR
                 handler compares CWND % 2.7). *)
              ()
          | Component.Op_cube ->
              if c1 < nodes then
                for u = 0 to n_units - 1 do
                  match unit_index (Units.pow unit_domain.(u) 3) with
                  | Some ur ->
                      Abg_sat.Solver.add_clause solver
                        [ -cv; -uvar c1 u; uvar i ur ]
                  | None ->
                      Abg_sat.Solver.add_clause solver [ -cv; -uvar c1 u ]
                done
          | Component.Op_cbrt ->
              if c1 < nodes then
                for u = 0 to n_units - 1 do
                  match Units.cbrt unit_domain.(u) with
                  | Some root -> begin
                      match unit_index root with
                      | Some ur ->
                          Abg_sat.Solver.add_clause solver
                            [ -cv; -uvar c1 u; uvar i ur ]
                      | None ->
                          Abg_sat.Solver.add_clause solver [ -cv; -uvar c1 u ]
                    end
                  | None ->
                      (* The integer-exponent domain cannot type this cube
                         root: reproduce the paper's Cubic limitation. *)
                      Abg_sat.Solver.add_clause solver [ -cv; -uvar c1 u ]
                done)
        components
    done
  end;
  enc

(* Decode the model at [enc] into a sketch; constant holes are numbered
   left-to-right in pre-order — the same order {!Abg_analysis.Canonical}
   renumbers in, so (with symmetry breaking on) a decoded sketch is
   already its own normal form. Children are bound explicitly: OCaml
   evaluates constructor arguments right to left. *)
let decode enc (model : bool array) =
  let hole_counter = ref 0 in
  let comp_at i =
    let found = ref None in
    Array.iteri
      (fun ci cv -> if model.(cv) then found := Some enc.components.(ci))
      enc.comp.(i);
    !found
  in
  let rec num i : Expr.num =
    match comp_at i with
    | None -> invalid_arg "Encode.decode: inactive node reached"
    | Some c -> begin
        match c with
        | Component.Leaf_cwnd -> Expr.Cwnd
        | Component.Leaf_signal s -> Expr.Signal s
        | Component.Leaf_macro m -> Expr.Macro m
        | Component.Leaf_const ->
            let h = !hole_counter in
            incr hole_counter;
            Expr.Hole h
        | Component.Op_add ->
            let a = num (Shape.child i 0) in
            let b = num (Shape.child i 1) in
            Expr.Add (a, b)
        | Component.Op_sub ->
            let a = num (Shape.child i 0) in
            let b = num (Shape.child i 1) in
            Expr.Sub (a, b)
        | Component.Op_mul ->
            let a = num (Shape.child i 0) in
            let b = num (Shape.child i 1) in
            Expr.Mul (a, b)
        | Component.Op_div ->
            let a = num (Shape.child i 0) in
            let b = num (Shape.child i 1) in
            Expr.Div (a, b)
        | Component.Op_ite ->
            let g = boolean (Shape.child i 0) in
            let t = num (Shape.child i 1) in
            let e = num (Shape.child i 2) in
            Expr.Ite (g, t, e)
        | Component.Op_cube -> Expr.Cube (num (Shape.child i 0))
        | Component.Op_cbrt -> Expr.Cbrt (num (Shape.child i 0))
        | Component.Op_lt | Component.Op_gt | Component.Op_modeq ->
            invalid_arg "Encode.decode: boolean component in num position"
      end
  and boolean i : Expr.boolean =
    match comp_at i with
    | Some Component.Op_lt ->
        let a = num (Shape.child i 0) in
        let b = num (Shape.child i 1) in
        Expr.Lt (a, b)
    | Some Component.Op_gt ->
        let a = num (Shape.child i 0) in
        let b = num (Shape.child i 1) in
        Expr.Gt (a, b)
    | Some Component.Op_modeq ->
        let a = num (Shape.child i 0) in
        let b = num (Shape.child i 1) in
        Expr.Mod_eq (a, b)
    | _ -> invalid_arg "Encode.decode: expected boolean component"
  in
  num 0

(* The group holding a bucket's blocking clauses. Buckets partition the
   sketch space (a sketch determines its exact operator set), so a
   blocking clause learned inside one bucket can never exclude a model of
   another — scoping it to the bucket's group is semantically free, and
   lets [retire_bucket] reclaim the clauses when the refinement loop
   drops the bucket. *)
let bucket_key ops = List.sort Component.compare ops

let group_for enc ops =
  let key = bucket_key ops in
  match Hashtbl.find_opt enc.bucket_groups key with
  | Some g -> g
  | None ->
      let g = Abg_sat.Solver.new_group enc.solver in
      Hashtbl.add enc.bucket_groups key g;
      g

(* Exclude exactly this (shape, component) assignment from future models —
   under the bucket's group when enumeration is bucket-scoped. *)
let block ?group enc (model : bool array) =
  let clause = ref [] in
  for i = 0 to enc.nodes - 1 do
    if model.(enc.active.(i)) then
      Array.iter
        (fun cv -> if model.(cv) then clause := -cv :: !clause)
        enc.comp.(i)
    else clause := enc.active.(i) :: !clause
  done;
  match group with
  | None -> Abg_sat.Solver.add_clause enc.solver !clause
  | Some g -> Abg_sat.Solver.add_clause_in enc.solver g !clause

(** [assumptions_for_bucket enc ops] — solver assumptions pinning the
    §4.4 bucket discriminator: the sketch uses exactly the operator set
    [ops]. *)
let assumptions_for_bucket enc ops =
  List.map
    (fun (op, v) ->
      if List.exists (Component.equal op) ops then v else -v)
    enc.used_op

let skipped enc =
  enc.blocked_simplifiable + enc.blocked_duplicate + enc.blocked_vacuous
  + enc.blocked_implied + enc.blocked_subsumed
  + Array.fold_left ( + ) 0 enc.dead

(* The relational prune stages only ever fire on conditionals; every
   other sketch short-circuits here for free. *)
let rec has_ite (e : Expr.num) =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
      false
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      has_ite a || has_ite b
  | Expr.Cube a | Expr.Cbrt a -> has_ite a
  | Expr.Ite _ -> true

(* A guard the interval box leaves Unknown but the zone decides — either
   unconditionally ([`Vacuous], Student 5's cross-signal relation) or
   under the assumptions of its enclosing guards ([`Implied]). Such a
   sketch evaluates identically to its folded, strictly smaller form on
   every physically-consistent environment, so it is dead weight exactly
   like [Absint]'s dead-guard rule — just one domain stronger. *)
let relationally_dead box base (sketch : Expr.num) =
  let rec go rel (e : Expr.num) =
    match e with
    | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _
      ->
        None
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b)
      -> begin
        match go rel a with Some _ as r -> r | None -> go rel b
      end
    | Expr.Cube a | Expr.Cbrt a -> go rel a
    | Expr.Ite (c, t, el) -> begin
        match Abg_analysis.Absint.boolean box c with
        | Interval.True | Interval.False ->
            (* Absint's own dead-guard prune fires first; unreachable. *)
            None
        | Interval.Unknown -> begin
            match Abg_analysis.Relint.boolean base c with
            | Interval.True | Interval.False -> Some `Vacuous
            | Interval.Unknown -> begin
                match Abg_analysis.Relint.boolean rel c with
                | Interval.True | Interval.False -> Some `Implied
                | Interval.Unknown ->
                    let guard_operands =
                      match c with
                      | Expr.Lt (a, b)
                      | Expr.Gt (a, b)
                      | Expr.Mod_eq (a, b) -> begin
                          match go rel a with
                          | Some _ as r -> r
                          | None -> go rel b
                        end
                    in
                    let under truth =
                      match Abg_analysis.Relint.assume rel c truth with
                      | Some r -> r
                      | None -> rel
                    in
                    begin
                      match guard_operands with
                      | Some _ as r -> r
                      | None -> begin
                          match go (under true) t with
                          | Some _ as r -> r
                          | None -> go (under false) el
                        end
                    end
              end
          end
      end
  in
  go base sketch

(* Bucket-scoped enumeration state for one [next]/[next_raw] call: the
   assumption list (used_op pins plus the blocking group's selector) and
   the group new blocking clauses go into. *)
let bucket_context enc bucket =
  match bucket with
  | None -> ([], None)
  | Some ops ->
      let g = group_for enc ops in
      ( Abg_sat.Solver.group_lit g :: assumptions_for_bucket enc ops,
        Some g )

(** [next ?bucket enc] returns the next not-yet-enumerated sketch
    (optionally restricted to an operator bucket) in canonical form, or
    [None] when the (sub)space is exhausted. Three pruning stages block
    and skip models before they reach the simulator: the §4.1
    simplifiability filter, the interval-domain dead-on-arrival rules,
    and the commutative-duplicate safety net (idle while the in-encoding
    symmetry breaking is on).

    One persistent solver serves every bucket: switching buckets costs
    only a different assumption list, and a bucket's blocking clauses are
    scoped to its clause group (see {!retire_bucket}). *)
let rec next ?bucket enc =
  let assumptions, group = bucket_context enc bucket in
  (* Scatter successive models across the bucket (deterministically). *)
  Abg_sat.Solver.randomize enc.solver
    ~seed:((enc.enumerated * 2654435761) + skipped enc + 17);
  match Abg_sat.Solver.solve ~assumptions enc.solver with
  | Abg_sat.Solver.Unsat ->
      Abg_obs.Obs.Counter.incr obs_unsat;
      None
  | Abg_sat.Solver.Sat model ->
      Abg_obs.Obs.Counter.incr obs_sat;
      let sketch = decode enc model in
      block ?group enc model;
      if Simplify.is_simplifiable sketch then begin
        enc.blocked_simplifiable <- enc.blocked_simplifiable + 1;
        Abg_obs.Obs.Counter.incr obs_simplifiable;
        next ?bucket enc
      end
      else begin
        match Abg_analysis.Absint.prune enc.box sketch with
        | Some (reason, _witness) ->
            let i = reason_index reason in
            enc.dead.(i) <- enc.dead.(i) + 1;
            Abg_obs.Obs.Counter.incr obs_dead.(i);
            next ?bucket enc
        | None ->
            let canonical = Abg_analysis.Canonical.normalize sketch in
            let _id, fresh = Abg_analysis.Canonical.Tbl.intern enc.seen canonical in
            if not fresh then begin
              enc.blocked_duplicate <- enc.blocked_duplicate + 1;
              Abg_obs.Obs.Counter.incr obs_duplicate;
              next ?bucket enc
            end
            else begin
              match
                if has_ite canonical then
                  relationally_dead enc.box enc.rel canonical
                else None
              with
              | Some `Vacuous ->
                  enc.blocked_vacuous <- enc.blocked_vacuous + 1;
                  Abg_obs.Obs.Counter.incr obs_vacuous;
                  next ?bucket enc
              | Some `Implied ->
                  enc.blocked_implied <- enc.blocked_implied + 1;
                  Abg_obs.Obs.Counter.incr obs_implied;
                  next ?bucket enc
              | None ->
                  (* Semantic subsumption: one representative per
                     relational-normal-form class. Conditional-free
                     sketches are their own normal form, so [sem] mirrors
                     [seen] exactly on an Ite-free DSL and this stage
                     never fires there. *)
                  let key =
                    if has_ite canonical then
                      Abg_analysis.Canonical.normalize
                        (Abg_analysis.Equiv.rnorm enc.rel canonical)
                    else canonical
                  in
                  let _id, fresh_sem =
                    Abg_analysis.Canonical.Tbl.intern enc.sem key
                  in
                  if not fresh_sem then begin
                    enc.blocked_subsumed <- enc.blocked_subsumed + 1;
                    Abg_obs.Obs.Counter.incr obs_subsumed;
                    next ?bucket enc
                  end
                  else begin
                    enc.enumerated <- enc.enumerated + 1;
                    Abg_obs.Obs.Counter.incr obs_returned;
                    Some canonical
                  end
            end
      end

(** [retire_bucket enc ops] retracts the bucket's blocking clauses (the
    refinement loop calls it when a bucket is dropped from the keep set,
    reclaiming solver memory). Re-enumerating a retired bucket starts a
    fresh group: previously returned sketches are re-decoded but caught
    by the canonical seen-table, so none is returned twice. *)
let retire_bucket enc ops =
  let key = bucket_key ops in
  match Hashtbl.find_opt enc.bucket_groups key with
  | None -> ()
  | Some g ->
      Abg_sat.Solver.retire_group enc.solver g;
      Hashtbl.remove enc.bucket_groups key

(** [check_bucket enc ops] — one solve under the bucket's assumptions:
    does the bucket still contain an unenumerated model? No decoding, no
    blocking; the micro-benchmark behind [sat-solve-assumptions]. *)
let check_bucket enc ops =
  let assumptions, _group = bucket_context enc ops in
  match Abg_sat.Solver.solve ~assumptions enc.solver with
  | Abg_sat.Solver.Sat _ -> true
  | Abg_sat.Solver.Unsat -> false

(* Reuse [bucket_context] with an option for check_bucket's signature. *)
let check_bucket enc ops = check_bucket enc (Some ops)

(** Enumeration statistics: (returned, rejected-as-simplifiable). *)
let stats enc = (enc.enumerated, enc.blocked_simplifiable)

(** Per-reason prune counters, in reporting order: the §4.1
    simplifiability filter, each {!Abg_analysis.Absint.reason}, and
    commutative duplicates. *)
let prune_stats enc =
  ("simplifiable", enc.blocked_simplifiable)
  :: List.mapi
       (fun i r -> (Abg_analysis.Absint.reason_name r, enc.dead.(i)))
       Abg_analysis.Absint.all_reasons
  @ [ ("duplicate", enc.blocked_duplicate);
      ("vacuous-guard", enc.blocked_vacuous);
      ("guard-implied", enc.blocked_implied);
      ("equiv-subsumed", enc.blocked_subsumed) ]

(** Fraction of decoded sketches pruned before simulation. *)
let prune_rate enc =
  let total = enc.enumerated + skipped enc in
  if total = 0 then 0.0 else float_of_int (skipped enc) /. float_of_int total

(** Total SAT variables in the encoding (reported in §6.1-style output). *)
let num_vars enc = Abg_sat.Solver.num_vars enc.solver

(** Solver search-effort statistics for this enumerator's persistent
    instance (conflicts, propagations, learnt-DB state). *)
let solver_stats enc = Abg_sat.Solver.stats enc.solver

(** [next_raw ?bucket enc] is {!next} without any post-decode filtering —
    exposed for diagnosing the encoding's pruning quality (with symmetry
    breaking on, the raw stream already contains no commutative
    duplicates). *)
let next_raw ?bucket enc =
  let assumptions, group = bucket_context enc bucket in
  match Abg_sat.Solver.solve ~assumptions enc.solver with
  | Abg_sat.Solver.Unsat -> None
  | Abg_sat.Solver.Sat model ->
      let sketch = decode enc model in
      block ?group enc model;
      Some sketch
