(** Bucketization of the search space (§4.4): the bucket discriminator is
    the exact subset of DSL operators a sketch uses, so every sketch
    belongs to exactly one bucket — the property the divide-and-conquer
    refinement loop needs. *)

open Abg_dsl

type bucket = Component.t list

val all : Catalog.t -> bucket list
(** Every feasible operator subset of the DSL, the empty set (pure-leaf
    sketches) included. Feasibility: boolean operators only occur under a
    conditional and vice versa. Raises [Invalid_argument] beyond 20
    operators (the power set stops being enumerable). *)

val to_string : bucket -> string
(** Human-readable label, e.g. ["{+,*,?:,<}"]. *)

val of_sketch : Expr.num -> bucket
(** The bucket a sketch belongs to. *)

val equal : bucket -> bucket -> bool
