(** Closed-form counting of the sketch universe (§4.1, §6.1): the number
    of well-sorted trees before any pruning, by dynamic programming over
    (sort, depth), in floating point (the values overflow integers
    immediately). *)

open Abg_dsl

val universe : Catalog.t -> float
(** Well-sorted num-trees of depth up to [max_depth] over the DSL's
    components. *)

val universe_at : components:Component.t list -> depth:int -> float
(** Custom what-if counts (e.g. the paper's 25-component depth-7
    figure). *)

val to_string : float -> string
(** Scientific-notation rendering ("2.1e9", "1.3e150"). *)
