(** Propositional encoding of the sketch space (§4.1) — the Z3-formula
    substitute. One SAT instance describes all well-sorted,
    unit-consistent sketches of a sub-DSL up to its depth and node
    budgets; models are decoded into {!Abg_dsl.Expr} sketches with
    constant holes and excluded with blocking clauses, so repeated calls
    enumerate the space.

    Three pruning stages run post-decode, each blocking-and-skipping the
    model: the §4.1 simplifiability filter, the interval-domain
    dead-on-arrival rules of {!Abg_analysis.Absint}, and
    commutative-duplicate detection via {!Abg_analysis.Canonical}. *)

open Abg_dsl

type t

val create : Catalog.t -> t

val next : ?bucket:Buckets.bucket -> t -> Expr.num option
(** The next not-yet-enumerated sketch in canonical form (optionally
    restricted to an operator bucket), or [None] when the (sub)space is
    exhausted. *)

val next_raw : ?bucket:Buckets.bucket -> t -> Expr.num option
(** {!next} without any post-decode filtering — exposed for diagnosing
    the encoding's pruning quality. *)

val assumptions_for_bucket : t -> Buckets.bucket -> int list
(** Solver assumptions pinning the §4.4 bucket discriminator: the sketch
    uses exactly the given operator set. *)

val stats : t -> int * int
(** [(returned, rejected-as-simplifiable)]. *)

val prune_stats : t -> (string * int) list
(** Per-reason prune counters, in reporting order: ["simplifiable"], each
    {!Abg_analysis.Absint.reason_name}, ["duplicate"]. *)

val global_prune_stats : unit -> (string * int) list
(** Process-wide prune counters from the telemetry layer ({!Abg_obs.Obs}),
    same names and order as {!prune_stats}, summed over every enumerator
    ever driven in this process. All zeros while telemetry is disabled;
    run-level aggregation (e.g. [Refinement.result.pruned]) subtracts a
    snapshot taken at the start of the run. *)

val global_returned : unit -> int
(** Process-wide count of sketches returned by {!next} (telemetry). *)

val skipped : t -> int
(** Total decoded-but-pruned sketches (the sum of {!prune_stats}). *)

val prune_rate : t -> float
(** Fraction of decoded sketches pruned before simulation. *)

val num_vars : t -> int
(** Total SAT variables in the encoding (§6.1-style output). *)
