(** Propositional encoding of the sketch space (§4.1) — the Z3-formula
    substitute. One SAT instance describes all well-sorted,
    unit-consistent sketches of a sub-DSL up to its depth and node
    budgets; models are decoded into {!Abg_dsl.Expr} sketches with
    constant holes and excluded with blocking clauses, so repeated calls
    enumerate the space.

    The commutative canonical form of {!Abg_analysis.Canonical} is
    encoded directly as propositional constraints (a lex-leader circuit
    over the operand subtrees of commutative operators; constant holes
    and unused-slot assignments are pinned too), so the solver never
    produces a model the canonicalizer would fold — the ["duplicate"]
    prune counter stays at zero with symmetry breaking on.

    One persistent solver serves the whole enumeration: buckets are
    selected purely via assumptions, and each bucket's blocking clauses
    live in a retractable {!Abg_sat.Solver} clause group
    (see {!retire_bucket}).

    Five pruning stages run post-decode, each blocking-and-skipping the
    model: the §4.1 simplifiability filter, the interval-domain
    dead-on-arrival rules of {!Abg_analysis.Absint}, commutative-duplicate
    detection via {!Abg_analysis.Canonical} (retained as a safety net),
    relational dead-guard detection via {!Abg_analysis.Relint}
    (["vacuous-guard"]/["guard-implied"]), and semantic subsumption via
    {!Abg_analysis.Equiv.rnorm} (["equiv-subsumed"]: one scored
    representative per relational normal-form class). The relational
    stages only touch sketches containing a conditional, so an Ite-free
    DSL (reno) enumerates bit-identically with them on. *)

open Abg_dsl

type t

val create : ?symmetry:bool -> Catalog.t -> t
(** [create ?symmetry dsl] builds the encoding. [symmetry] (default
    [true]) controls the in-encoding lex-leader symmetry breaking and
    unused-slot pinning; turning it off restores the enumerate-then-fold
    behaviour (every commutative duplicate costs a solve-decode-block
    round trip) and exists for differential testing and ablation. Either
    way the returned sketch stream is duplicate-free and canonical. *)

val next : ?bucket:Buckets.bucket -> t -> Expr.num option
(** The next not-yet-enumerated sketch in canonical form (optionally
    restricted to an operator bucket), or [None] when the (sub)space is
    exhausted. Bucket switches cost only a different assumption list —
    the solver instance, its learnt clauses and its heuristic state
    persist across calls and buckets. *)

val next_raw : ?bucket:Buckets.bucket -> t -> Expr.num option
(** {!next} without any post-decode filtering — exposed for diagnosing
    the encoding's pruning quality (with symmetry breaking on, the raw
    stream already contains no commutative duplicates). *)

val assumptions_for_bucket : t -> Buckets.bucket -> int list
(** Solver assumptions pinning the §4.4 bucket discriminator: the sketch
    uses exactly the given operator set. (Blocking-group selectors are
    managed internally by {!next}; these are just the [used_op] pins.) *)

val retire_bucket : t -> Buckets.bucket -> unit
(** Retract the bucket's blocking clauses (called when the refinement
    loop drops a bucket from the keep set, reclaiming solver memory).
    Re-enumerating a retired bucket starts a fresh group: previously
    returned sketches are re-decoded but caught by the canonical
    seen-table, so none is returned twice. No-op on unknown buckets. *)

val check_bucket : t -> Buckets.bucket -> bool
(** One solve under the bucket's assumptions — does the bucket still
    contain an unenumerated model? No decoding, no blocking. *)

val stats : t -> int * int
(** [(returned, rejected-as-simplifiable)]. *)

val prune_stats : t -> (string * int) list
(** Per-reason prune counters, in reporting order: ["simplifiable"], each
    {!Abg_analysis.Absint.reason_name}, ["duplicate"], then the
    relational stages ["vacuous-guard"], ["guard-implied"],
    ["equiv-subsumed"]. *)

val global_prune_stats : unit -> (string * int) list
(** Process-wide prune counters from the telemetry layer ({!Abg_obs.Obs}),
    same names and order as {!prune_stats}, summed over every enumerator
    ever driven in this process. All zeros while telemetry is disabled;
    run-level aggregation (e.g. [Refinement.result.pruned]) subtracts a
    snapshot taken at the start of the run. *)

val global_returned : unit -> int
(** Process-wide count of sketches returned by {!next} (telemetry). *)

val skipped : t -> int
(** Total decoded-but-pruned sketches (the sum of {!prune_stats}). *)

val prune_rate : t -> float
(** Fraction of decoded sketches pruned before simulation. *)

val num_vars : t -> int
(** Total SAT variables in the encoding (§6.1-style output). *)

val solver_stats : t -> Abg_sat.Solver.stats
(** Search-effort statistics of the enumerator's persistent solver
    (conflicts, propagations, learnt-DB state). *)
