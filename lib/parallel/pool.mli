(** Parallel work distribution over OCaml 5 domains — the laptop-scale
    substitute for the paper's Ray cluster (§5). A persistent pool of
    worker domains serves every job; participants (including the calling
    domain) claim item indices dynamically from a shared atomic counter,
    so imbalanced items pack tightly and per-call overhead is a condition
    broadcast, not a domain spawn. Falls back to sequential execution for
    tiny inputs or single-domain machines. *)

val default_domains : unit -> int
(** Recommended worker count for this machine (at least 1). *)

type t
(** A persistent pool of worker domains. *)

val create : ?size:int -> unit -> t
(** [create ()] spawns a pool of [size] worker domains (default: the
    machine's recommended parallelism minus the calling domain, which
    participates in every job). [size = 0] is valid — jobs run entirely
    on the caller. *)

val shutdown : t -> unit
(** Stop and join the pool's domains. Idempotent. The pool must not be
    used afterwards. *)

val size : t -> int
(** Number of worker domains (excluding callers). *)

val map : ?pool:t -> ?num_domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] is [Array.map f xs] computed in parallel on [pool]
    (default: a lazily-created global pool, shut down at exit). [f] must
    be safe to run concurrently on distinct elements; exceptions re-raise
    in the caller. [num_domains] caps how many domains participate. *)

val mapi : ?pool:t -> ?num_domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val map_list : ?pool:t -> ?num_domains:int -> ('a -> 'b) -> 'a list -> 'b list

val background : ?pool:t -> (unit -> unit) -> unit
(** [background task] enqueues [task] on the pool's low-priority lane
    (default: the global pool). Idle workers run background tasks only
    when no foreground job wants them, and at most [max 1 (size - 1)]
    run concurrently, so foreground {!map}s are never starved on pools
    of two or more workers. Exceptions in [task] are swallowed and
    counted ([pool.background_failures]); on a zero-worker pool tasks
    queue until {!drain_background}. *)

val drain_background : ?pool:t -> unit -> unit
(** Run every queued background task (the caller participates) and
    return once none are queued or running. Call before {!shutdown},
    which discards still-queued tasks. Without [?pool], drains the
    global pool if one exists. *)
