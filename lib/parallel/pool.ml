(** Parallel work distribution over OCaml 5 domains.

    The paper distributes bucket scoring over a Ray cluster (§5); this
    module is the laptop-scale substitute. Earlier versions spawned fresh
    domains per [map] call and split work into one static chunk per
    domain; both hurt the refinement loop, which calls [map] every
    iteration over buckets whose costs vary by orders of magnitude
    (sketch counts differ widely), leaving domains idle behind the
    biggest chunk. Instead, a pool of worker domains is created once and
    each job's items are claimed dynamically: every participant —
    including the calling domain — pulls the next unclaimed index from a
    shared atomic counter until none remain. Imbalanced items therefore
    pack tightly, and per-call overhead is a mutex broadcast instead of a
    domain spawn.

    The [map]/[mapi]/[map_list] wrappers run on a lazily-created global
    pool (shut down via [at_exit]); explicit pools are available through
    {!create}/{!shutdown}. A sequential fallback is used for tiny inputs
    and single-domain machines, where any coordination overhead
    dominates. *)

let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(* Telemetry. Whether a map runs through the pool at all depends on the
   machine (sequential fallback below), and how many workers join a job
   before its items run out depends on scheduling — so every pool counter
   is volatile (excluded from the deterministic report section). Busy
   time is a sharded float cell: each participant accumulates into its
   own domain's slot. *)
let obs_jobs = Abg_obs.Obs.Counter.make ~volatile:true "pool.jobs"
let obs_items = Abg_obs.Obs.Counter.make ~volatile:true "pool.items"

let obs_participations =
  Abg_obs.Obs.Counter.make ~volatile:true "pool.participations"

let obs_sequential =
  Abg_obs.Obs.Counter.make ~volatile:true "pool.sequential_maps"

let obs_workers = Abg_obs.Obs.Gauge.make "pool.workers"
let obs_busy = Abg_obs.Obs.Floatcell.make "pool.busy_s"
let obs_job_items = Abg_obs.Obs.Histogram.make "pool.job_items"

let obs_background =
  Abg_obs.Obs.Counter.make ~volatile:true "pool.background_tasks"

let obs_background_failures =
  Abg_obs.Obs.Counter.make ~volatile:true "pool.background_failures"

type job = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;  (* next unclaimed item index *)
  left : int Atomic.t;  (* items not yet completed *)
  active : int;  (* participation cap, caller included *)
  participants : int Atomic.t;
  mutable exn : exn option;  (* first exception, re-raised by the caller *)
}

type t = {
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  cv : Condition.t;  (* new job submitted, background task queued, or shutdown *)
  done_cv : Condition.t;  (* job completed its last item, or bg task finished *)
  mutable job : job option;
  mutable generation : int;  (* bumped per submitted job *)
  mutable stop : bool;
  (* Background lane: low-priority tasks (the serve daemon's escalated
     synthesis jobs) that idle workers pick up only when no foreground
     job wants them. Foreground maps always win the wakeup check, and at
     least one worker slot is kept clear of background work on pools of
     two or more, so serve sessions fanning classification work out as
     maps are never starved behind a long synthesis. *)
  bg : (unit -> unit) Queue.t;
  mutable bg_active : int;  (* background tasks currently running *)
  bg_cap : int;  (* max concurrent background tasks: max 1 (size - 1) *)
}

(* Claim and run items until none remain. Any participant may run any
   item; the last one to finish wakes the submitter. *)
let work t job =
  let tracking = Abg_obs.Obs.enabled () in
  let t0 = if tracking then Unix.gettimeofday () else 0.0 in
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.n then continue := false
    else begin
      incr executed;
      (try job.run i
       with e ->
         Mutex.lock t.m;
         if job.exn = None then job.exn <- Some e;
         Mutex.unlock t.m);
      if Atomic.fetch_and_add job.left (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end
    end
  done;
  if tracking then begin
    Abg_obs.Obs.Counter.add obs_items !executed;
    if !executed > 0 then begin
      Abg_obs.Obs.Counter.incr obs_participations;
      Abg_obs.Obs.Floatcell.add obs_busy (Unix.gettimeofday () -. t0)
    end
  end

(* Run one already-claimed background task (caller incremented
   [bg_active] under the lock and released it). Exceptions are swallowed
   into a counter: a failed escalation must not take a worker down. *)
let run_background_task t task =
  Abg_obs.Obs.Counter.incr obs_background;
  (try task ()
   with _ -> Abg_obs.Obs.Counter.incr obs_background_failures);
  Mutex.lock t.m;
  t.bg_active <- t.bg_active - 1;
  Condition.broadcast t.done_cv;
  Mutex.unlock t.m

let worker_loop t () =
  let last_gen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    while
      (not t.stop)
      && (t.job = None || t.generation = !last_gen)
      && (Queue.is_empty t.bg || t.bg_active >= t.bg_cap)
    do
      Condition.wait t.cv t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      continue := false
    end
    else if t.job <> None && t.generation <> !last_gen then begin
      let job = Option.get t.job in
      last_gen := t.generation;
      Mutex.unlock t.m;
      (* Honor the job's participation cap (?num_domains): claim one of
         the [active] slots or sit this job out. *)
      if Atomic.fetch_and_add job.participants 1 < job.active then work t job
    end
    else begin
      let task = Queue.pop t.bg in
      t.bg_active <- t.bg_active + 1;
      Mutex.unlock t.m;
      run_background_task t task
    end
  done

(** [create ?size ()] spawns a pool of [size] worker domains (default:
    the machine's recommended parallelism minus the calling domain, which
    participates in every job). [size = 0] is valid: jobs then run
    entirely on the caller, still through the same claiming loop. *)
let create ?size () =
  let size =
    match size with
    | Some s -> Stdlib.max 0 s
    | None -> Stdlib.max 0 (default_domains () - 1)
  in
  let t =
    {
      workers = [||];
      m = Mutex.create ();
      cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      bg = Queue.create ();
      bg_active = 0;
      bg_cap = Stdlib.max 1 (size - 1);
    }
  in
  t.workers <- Array.init size (fun _ -> Domain.spawn (worker_loop t));
  Abg_obs.Obs.Gauge.set obs_workers (float_of_int size);
  t

(** [shutdown t] stops and joins the worker domains. Idempotent; [t] must
    not be used afterwards. *)
let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let size t = Array.length t.workers

(* Submit a job, participate, wait for the last item, re-raise the first
   worker exception. Submitting from inside a running job's [f] is safe
   (the inner submitter participates in its own job, so it always makes
   progress), though such jobs share the worker pool. *)
let run_job t ~active ~n ~body =
  Abg_obs.Obs.Counter.incr obs_jobs;
  Abg_obs.Obs.Histogram.observe obs_job_items (float_of_int n);
  Mutex.lock t.m;
  let job =
    {
      run = body;
      n;
      next = Atomic.make 0;
      left = Atomic.make n;
      active;
      participants = Atomic.make 1 (* the caller *);
      exn = None;
    }
  in
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  work t job;
  Mutex.lock t.m;
  while Atomic.get job.left > 0 do
    Condition.wait t.done_cv t.m
  done;
  if t.job == Some job then t.job <- None;
  Mutex.unlock t.m;
  match job.exn with Some e -> raise e | None -> ()

(* The global pool behind map/mapi/map_list: created on first parallel
   call, torn down at exit. *)
let global_pool = ref None
let global_m = Mutex.create ()

let global () =
  Mutex.lock global_m;
  let t =
    match !global_pool with
    | Some t -> t
    | None ->
        let t = create () in
        at_exit (fun () -> shutdown t);
        global_pool := Some t;
        t
  in
  Mutex.unlock global_m;
  t

(** [map ?pool ?num_domains f xs] is [Array.map f xs] computed in
    parallel. [f] must be safe to run concurrently on distinct elements.
    Exceptions raised by [f] are re-raised in the caller. [num_domains]
    caps how many domains participate (the available parallelism is
    otherwise bounded by the pool's size). *)
let map ?pool ?num_domains f xs =
  let n = Array.length xs in
  let domains =
    match num_domains with
    | Some d -> Stdlib.max 1 d
    | None -> default_domains ()
  in
  if n = 0 then [||]
  else if domains = 1 || n < 4 then begin
    Abg_obs.Obs.Counter.incr obs_sequential;
    Array.map f xs
  end
  else begin
    let t = match pool with Some t -> t | None -> global () in
    let out = Array.make n None in
    run_job t ~active:(Stdlib.min domains n) ~n
      ~body:(fun i -> out.(i) <- Some (f xs.(i)));
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing result")
      out
  end

(** [mapi ?pool ?num_domains f xs] is the indexed variant of {!map}. *)
let mapi ?pool ?num_domains f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map ?pool ?num_domains (fun (i, x) -> f i x) indexed

(** [map_list ?pool ?num_domains f xs] is {!map} over lists. *)
let map_list ?pool ?num_domains f xs =
  Array.to_list (map ?pool ?num_domains f (Array.of_list xs))

(** [background ?pool task] enqueues [task] on the pool's low-priority
    lane: an idle worker runs it only when no foreground job wants that
    worker, and at most [max 1 (size - 1)] background tasks run at once,
    so on pools of two or more workers at least one stays free for
    foreground maps. Exceptions in [task] are swallowed (counted in
    [pool.background_failures]). On a zero-worker pool tasks queue until
    {!drain_background}. *)
let background ?pool task =
  let t = match pool with Some t -> t | None -> global () in
  Mutex.lock t.m;
  Queue.push task t.bg;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

(** [drain_background ?pool ()] runs every queued background task (on
    the calling domain, racing the workers for them) and returns once
    none are queued or running. The serve daemon's shutdown barrier; call
    it before {!shutdown}, which discards still-queued tasks. Without
    [?pool], drains the global pool if one was ever created. *)
let drain_background ?pool () =
  let t_opt =
    match pool with
    | Some t -> Some t
    | None ->
        Mutex.lock global_m;
        let r = !global_pool in
        Mutex.unlock global_m;
        r
  in
  match t_opt with
  | None -> ()
  | Some t ->
      let continue = ref true in
      while !continue do
        Mutex.lock t.m;
        match Queue.take_opt t.bg with
        | Some task ->
            t.bg_active <- t.bg_active + 1;
            Mutex.unlock t.m;
            run_background_task t task
        | None ->
            if t.bg_active = 0 then begin
              Mutex.unlock t.m;
              continue := false
            end
            else begin
              Condition.wait t.done_cv t.m;
              Mutex.unlock t.m
            end
      done
