(** CNF encoding helpers over {!Solver}.

    The sketch encoding needs a few standard gadgets: exactly-one /
    at-most-one over component sets, implications, Tseitin-style AND/OR
    definitions, a sequential-counter cardinality constraint for node
    budgets, and the lexicographic-comparison clauses behind the
    enumerator's symmetry-breaking circuit. *)

let pairwise_at_most_one s lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
        List.iter (fun l' -> Solver.add_clause s [ -l; -l' ]) rest;
        pairs rest
  in
  pairs lits

(* Above this size the commander encoding beats pairwise's O(n^2)
   clauses; below it, pairwise is both smaller and propagation-complete
   without auxiliary variables. *)
let commander_threshold = 6
let commander_group = 3

let rec chunk n = function
  | [] -> []
  | lits ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | l :: rest -> take (k - 1) (l :: acc) rest
      in
      let g, rest = take n [] lits in
      g :: chunk n rest

(** [at_most_one s lits] — pairwise for short lists; above
    {!commander_threshold} a commander encoding (Klieber–Kwon): the list
    is split into groups of three, each group gets the pairwise
    constraint plus a commander variable implied by its members, and
    at-most-one recurses over the commanders. O(n) clauses and auxiliary
    variables; equisatisfiable with pairwise when projected onto [lits]
    (any assignment with at most one true literal extends to the
    commanders, and two true literals falsify either a group's pairwise
    constraint or the commanders' own at-most-one). *)
let rec at_most_one s lits =
  if List.length lits <= commander_threshold then pairwise_at_most_one s lits
  else begin
    let commanders =
      List.map
        (fun group ->
          pairwise_at_most_one s group;
          let c = Solver.new_var s in
          List.iter (fun l -> Solver.add_clause s [ -l; c ]) group;
          c)
        (chunk commander_group lits)
    in
    at_most_one s commanders
  end

let at_least_one s lits = Solver.add_clause s lits

let exactly_one s lits =
  at_least_one s lits;
  at_most_one s lits

(** [implies s a b] — a -> b. *)
let implies s a b = Solver.add_clause s [ -a; b ]

(** [implies_all s a bs] — a -> b for every b. *)
let implies_all s a bs = List.iter (implies s a) bs

(** [implies_clause s a bs] — a -> (b1 \/ ... \/ bn). *)
let implies_clause s a bs = Solver.add_clause s (-a :: bs)

(** [define_and s bs] returns a fresh literal equivalent to the
    conjunction of [bs] (Tseitin). *)
let define_and s bs =
  let x = Solver.new_var s in
  List.iter (fun b -> Solver.add_clause s [ -x; b ]) bs;
  Solver.add_clause s (x :: List.map (fun b -> -b) bs);
  x

(** [define_or s bs] returns a fresh literal equivalent to the disjunction
    of [bs] (Tseitin). *)
let define_or s bs =
  let x = Solver.new_var s in
  List.iter (fun b -> Solver.add_clause s [ x; -b ]) bs;
  Solver.add_clause s (-x :: bs);
  x

(** [at_most_k s lits k] — sequential-counter encoding (Sinz 2005):
    auxiliary registers r_{i,j} meaning "at least j of the first i+1
    literals are true"; O(n*k) clauses. *)
let at_most_k s lits k =
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k >= n then ()
  else if k = 0 then Array.iter (fun l -> Solver.add_clause s [ -l ]) lits
  else begin
    let r = Array.make_matrix n k 0 in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        r.(i).(j) <- Solver.new_var s
      done
    done;
    for i = 0 to n - 1 do
      (* lit i true -> register counts at least 1. *)
      Solver.add_clause s [ -lits.(i); r.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          (* Registers are monotone in i. *)
          Solver.add_clause s [ -r.(i - 1).(j); r.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          (* lit i true and j of the prefix -> j+1 counted. *)
          Solver.add_clause s [ -lits.(i); -r.(i - 1).(j - 1); r.(i).(j) ]
        done;
        (* Overflow: lit i true while the prefix already holds k. *)
        Solver.add_clause s [ -lits.(i); -r.(i - 1).(k - 1) ]
      end
    done
  end

(* -- Lexicographic comparison over (gt, eq) digit pairs --

   The symmetry-breaking circuit compares two subtrees digit by digit:
   each aligned position pair contributes a [gt] and an [eq] literal
   (one-directional — forced true when the corresponding semantic
   relation holds, never forced false). A sequence is lexicographically
   greater when some digit is greater and every earlier digit is equal. *)

(** [lex_gt_implies s ~under ~target digits] — whenever all of [under]
    hold and the digit sequence is lexicographically greater (some [gt_i]
    with all earlier [eq_j]), force [target]:
    one clause [¬under ∨ ¬eq_1 ∨ … ∨ ¬eq_{i-1} ∨ ¬gt_i ∨ target] per
    digit. *)
let lex_gt_implies s ~under ~target digits =
  let neg_under = List.rev_map (fun l -> -l) under in
  let rec go eq_prefix = function
    | [] -> ()
    | (gt, eq) :: rest ->
        Solver.add_clause s (neg_under @ eq_prefix @ [ -gt; target ]);
        go (-eq :: eq_prefix) rest
  in
  go [] digits

(** [lex_le s ~under digits] — whenever all of [under] hold, forbid a
    lexicographically greater digit sequence: the sorted-operand
    constraint placed at each commutative node. The final digit's [eq]
    literal is unused. *)
let lex_le s ~under digits =
  let neg_under = List.rev_map (fun l -> -l) under in
  let rec go eq_prefix = function
    | [] -> ()
    | (gt, eq) :: rest ->
        Solver.add_clause s (neg_under @ eq_prefix @ [ -gt ]);
        go (-eq :: eq_prefix) rest
  in
  go [] digits
