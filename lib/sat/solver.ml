(** A CDCL SAT solver: the enumeration engine behind sketch search.

    The paper iteratively queries Z3 for models of a quantifier-free
    finite-domain formula, blocking each returned sketch (§4.1). This
    module provides the same capability from scratch: a conflict-driven
    clause-learning solver in the MiniSat lineage — two-literal watches,
    VSIDS branching over a binary heap, first-UIP learning, phase saving
    and Luby restarts. Enumeration drives thousands of solve calls against
    one instance, so the solver is built to stay incremental: clauses can
    be added at any point (backtracking only as far as the new clause
    demands, so the trail survives), the trail itself is kept across
    {!solve} calls and re-entered when the assumption list is unchanged,
    the learnt-clause database is bounded by activity-driven reduction,
    and clauses can be registered under a retractable {!group} whose
    selector literal is passed as an assumption.

    External literal convention is DIMACS-like: variables are positive
    integers from {!new_var}; a positive literal [v] asserts the variable,
    [-v] negates it.

    Internal conventions (MiniSat-style):
    - literal encoding: [2*var] positive, [2*var+1] negative, vars 0-based;
    - every clause watches its first two literals; watch lists are indexed
      by the *watched literal*, revisited when that literal becomes false;
    - for any clause that acted as a propagation reason, the propagated
      literal sits at index 0;
    - a deleted clause slot holds [[||]] and is never revisited (its
      watches are unhooked at deletion time). *)

type lbool = Unknown | True | False

type t = {
  mutable clauses : int array array;
  mutable learnt_mark : Bytes.t;  (** parallel to [clauses]: 1 if learnt *)
  mutable cla_act : float array;  (** parallel to [clauses]: learnt activity *)
  mutable n_clauses : int;
  (* Watch lists, one growable int vector per internal literal, storing
     [w_len.(lit)] (clause index, blocker literal) pairs interleaved:
     [w_data.(lit).(2k)] is the clause index, [w_data.(lit).(2k+1)] a
     "blocker" — some other literal of the clause; when it is currently
     true the clause is satisfied and the visit skips the clause array
     entirely (MiniSat 2.2's trick). Flat arrays keep propagation
     allocation-free — the inner loop compacts in place instead of
     rebuilding a list. *)
  mutable w_data : int array array;
  mutable w_len : int array;
  mutable n_vars : int;
  mutable assign : lbool array;
  mutable level : int array;
  mutable reason : int array;  (** clause index, or -1 for decisions *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list;  (** trail sizes at decisions, newest first *)
  mutable n_levels : int;  (** [List.length trail_lim], maintained in O(1) *)
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable polarity : bool array;
  mutable seen : bool array;
  (* Branching order: binary max-heap on (activity desc, var asc);
     [heap_pos.(v)] is v's index in [heap], or -1 when absent. *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;
  mutable ok : bool;
  (* Incremental-enumeration bookkeeping: the trail survives between
     [solve] calls, and the leading [n_assump_levels] decision levels are
     known to be the assumption literals [assump.(0..n_assump_levels-1)].
     [cancel_until] truncates the count whenever it pops below it. *)
  mutable assump : int array;  (** internal literals *)
  mutable n_assump_levels : int;
  mutable model_buf : bool array;  (** reused by [model_of] across calls *)
  mutable model_cap : int;  (** highest variable [model_of] reports *)
  (* Search-effort statistics. *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable learnts_total : int;
  mutable learnts_live : int;
  mutable db_reductions : int;
  mutable max_learnts : int;
}

(* Telemetry: process-wide solver-effort counters. All four are
   deterministic for a fixed workload and seed — the solver itself is
   sequential and its behavior depends only on the clause/assumption
   sequence — so they sit in the deterministic section the CI telemetry
   gate diffs. *)
let obs_propagations = Abg_obs.Obs.Counter.make "sat.propagations"
let obs_conflicts = Abg_obs.Obs.Counter.make "sat.conflicts"
let obs_learnts = Abg_obs.Obs.Counter.make "sat.learnts"
let obs_db_reductions = Abg_obs.Obs.Counter.make "sat.db_reductions"

let create () =
  {
    clauses = Array.make 256 [||];
    learnt_mark = Bytes.make 256 '\000';
    cla_act = Array.make 256 0.0;
    n_clauses = 0;
    w_data = Array.make 64 [||];
    w_len = Array.make 64 0;
    n_vars = 0;
    assign = Array.make 32 Unknown;
    level = Array.make 32 0;
    reason = Array.make 32 (-1);
    trail = Array.make 32 0;
    trail_size = 0;
    trail_lim = [];
    n_levels = 0;
    qhead = 0;
    activity = Array.make 32 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    polarity = Array.make 32 false;
    seen = Array.make 32 false;
    heap = Array.make 32 0;
    heap_size = 0;
    heap_pos = Array.make 32 (-1);
    ok = true;
    assump = [||];
    n_assump_levels = 0;
    model_buf = [||];
    model_cap = max_int;
    conflicts = 0;
    propagations = 0;
    learnts_total = 0;
    learnts_live = 0;
    db_reductions = 0;
    max_learnts = 2048;
  }

let var_of lit = lit lsr 1
let is_neg lit = lit land 1 = 1
let negate lit = lit lxor 1

let to_internal ext =
  assert (ext <> 0);
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

(* -- Branching-order heap -- *)

(* Strict total priority order: higher activity first, lower variable
   index on ties — the same choice the old linear argmax scan made, kept
   so decision sequences are reproducible. *)
let heap_before s u v =
  s.activity.(u) > s.activity.(v)
  || (s.activity.(u) = s.activity.(v) && u < v)

let rec heap_sift_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let v = s.heap.(i) and pv = s.heap.(p) in
    if heap_before s v pv then begin
      s.heap.(i) <- pv;
      s.heap_pos.(pv) <- i;
      s.heap.(p) <- v;
      s.heap_pos.(v) <- p;
      heap_sift_up s p
    end
  end

let rec heap_sift_down s i =
  let l = (2 * i) + 1 in
  if l < s.heap_size then begin
    let r = l + 1 in
    let c =
      if r < s.heap_size && heap_before s s.heap.(r) s.heap.(l) then r else l
    in
    let v = s.heap.(i) and cv = s.heap.(c) in
    if heap_before s cv v then begin
      s.heap.(i) <- cv;
      s.heap_pos.(cv) <- i;
      s.heap.(c) <- v;
      s.heap_pos.(v) <- c;
      heap_sift_down s c
    end
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_sift_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let last = s.heap.(s.heap_size) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_sift_down s 0
  end;
  v

let grow_arrays s =
  let old = Array.length s.assign in
  if s.n_vars > old then begin
    let n = Stdlib.max (2 * old) s.n_vars in
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- grow s.assign Unknown;
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.activity <- grow s.activity 0.0;
    s.polarity <- grow s.polarity false;
    s.seen <- grow s.seen false;
    s.heap_pos <- grow s.heap_pos (-1);
    let heap = Array.make n 0 in
    Array.blit s.heap 0 heap 0 s.heap_size;
    s.heap <- heap;
    let trail = Array.make n 0 in
    Array.blit s.trail 0 trail 0 s.trail_size;
    s.trail <- trail
  end;
  let old_w = Array.length s.w_data in
  if 2 * s.n_vars > old_w then begin
    let cap = Stdlib.max (2 * old_w) (2 * s.n_vars) in
    let w = Array.make cap [||] in
    Array.blit s.w_data 0 w 0 old_w;
    s.w_data <- w;
    let l = Array.make cap 0 in
    Array.blit s.w_len 0 l 0 old_w;
    s.w_len <- l
  end

(** [new_var s] allocates a fresh variable (a positive integer usable as a
    literal). *)
let new_var s =
  s.n_vars <- s.n_vars + 1;
  grow_arrays s;
  heap_insert s (s.n_vars - 1);
  s.n_vars

let value_lit s lit =
  match s.assign.(var_of lit) with
  | Unknown -> Unknown
  | True -> if is_neg lit then False else True
  | False -> if is_neg lit then True else False

(* Tag checks, not [(=)]: structural equality on a variant is a C call
   (caml_equal), and these run millions of times inside propagation. *)
let lb_true = function True -> true | _ -> false
let lb_false = function False -> true | _ -> false
let lb_unknown = function Unknown -> true | _ -> false

let decision_level s = s.n_levels

let enqueue s lit reason =
  let v = var_of lit in
  s.assign.(v) <- (if is_neg lit then False else True);
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let push_clause s arr =
  if s.n_clauses = Array.length s.clauses then begin
    let cap = 2 * s.n_clauses in
    let c = Array.make cap [||] in
    Array.blit s.clauses 0 c 0 s.n_clauses;
    s.clauses <- c;
    let m = Bytes.make cap '\000' in
    Bytes.blit s.learnt_mark 0 m 0 s.n_clauses;
    s.learnt_mark <- m;
    let a = Array.make cap 0.0 in
    Array.blit s.cla_act 0 a 0 s.n_clauses;
    s.cla_act <- a
  end;
  s.clauses.(s.n_clauses) <- arr;
  Bytes.set s.learnt_mark s.n_clauses '\000';
  s.cla_act.(s.n_clauses) <- 0.0;
  s.n_clauses <- s.n_clauses + 1;
  s.n_clauses - 1

(* Watch lists are indexed by the watched literal: the clause is revisited
   when that literal becomes false. [blocker] is another literal of the
   clause (conventionally the other watch at registration time). *)
let watch s lit idx blocker =
  let d = s.w_data.(lit) in
  let n = s.w_len.(lit) in
  let d =
    if 2 * n = Array.length d then begin
      let d' = Array.make (Stdlib.max 8 (4 * n)) 0 in
      Array.blit d 0 d' 0 (2 * n);
      s.w_data.(lit) <- d';
      d'
    end
    else d
  in
  d.(2 * n) <- idx;
  d.((2 * n) + 1) <- blocker;
  s.w_len.(lit) <- n + 1

(* Cold path (clause deletion only): drop [idx], preserving order so the
   deterministic revisit sequence is unaffected for the survivors. *)
let unwatch s lit idx =
  let d = s.w_data.(lit) in
  let n = s.w_len.(lit) in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if d.(2 * i) <> idx then begin
      d.(2 * !j) <- d.(2 * i);
      d.((2 * !j) + 1) <- d.((2 * i) + 1);
      incr j
    end
  done;
  s.w_len.(lit) <- !j

let cancel_until s target_level =
  let dl = decision_level s in
  if dl > target_level then begin
    let rec pop n lim =
      match (n, lim) with
      | 1, sz :: tl -> (sz, tl)
      | n, _ :: tl -> pop (n - 1) tl
      | _, [] -> assert false
    in
    let target_size, keep = pop (dl - target_level) s.trail_lim in
    for i = s.trail_size - 1 downto target_size do
      let v = var_of s.trail.(i) in
      s.polarity.(v) <- lb_true s.assign.(v);
      s.assign.(v) <- Unknown;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- target_size;
    s.qhead <- target_size;
    s.trail_lim <- keep;
    s.n_levels <- target_level;
    if target_level < s.n_assump_levels then s.n_assump_levels <- target_level
  end

(* Core clause insertion over external literals; returns the stored clause
   index, or -1 when nothing was stored (tautology, satisfied at the root
   level, unit or empty). The trail is preserved as far as possible: a
   clause with two non-false literals is installed without backtracking at
   all, and a clause falsified by the current (possibly deep) assignment
   backtracks only far enough to become unit — so enumeration's blocking
   clauses keep almost the whole trail, and the following [solve] resumes
   instead of re-deriving ~every assignment from scratch. *)
let add_clause_core s ext_lits =
  if not s.ok then -1
  else begin
    let lits =
      List.sort_uniq
        (fun (a : int) b -> Stdlib.compare a b)
        (List.map to_internal ext_lits)
    in
    (* Complementary literals sort adjacently in the internal encoding
       ([2v] directly below [2v+1]), so one pass finds tautologies. *)
    let rec tautology = function
      | a :: (b :: _ as tl) -> b = negate a || tautology tl
      | _ -> false
    in
    if tautology lits then -1
    else begin
      (* Root-level assignments are permanent: false-at-root literals can
         be removed, a true-at-root literal satisfies the clause forever. *)
      let root_true l = lb_true (value_lit s l) && s.level.(var_of l) = 0 in
      let root_false l = lb_false (value_lit s l) && s.level.(var_of l) = 0 in
      if List.exists root_true lits then -1
      else begin
        let lits = List.filter (fun l -> not (root_false l)) lits in
        match lits with
        | [] ->
            if decision_level s > 0 then cancel_until s 0;
            s.ok <- false;
            -1
        | [ l ] ->
            (* A unit is a permanent fact: assert it at the root level
               (and keep root propagation eager so later adds see it). *)
            if decision_level s > 0 then cancel_until s 0;
            (match value_lit s l with
            | True -> ()
            | False -> s.ok <- false
            | Unknown -> enqueue s l (-1));
            -1
        | _ ->
            let arr = Array.of_list lits in
            let n = Array.length arr in
            (* Partition non-false (watchable) literals to the front. *)
            let partition () =
              let free = ref 0 in
              for j = 0 to n - 1 do
                if not (lb_false (value_lit s arr.(j))) then begin
                  let t = arr.(!free) in
                  arr.(!free) <- arr.(j);
                  arr.(j) <- t;
                  incr free
                end
              done;
              !free
            in
            (* Move the highest-level literal within [arr.(from..)] to
               [arr.(from)] (watching it keeps the clause revisited as
               early as possible on future backtracks). *)
            let hoist_deepest from =
              for j = from + 1 to n - 1 do
                if s.level.(var_of arr.(j)) > s.level.(var_of arr.(from))
                then begin
                  let t = arr.(from) in
                  arr.(from) <- arr.(j);
                  arr.(j) <- t
                end
              done
            in
            let free = partition () in
            let free =
              if free > 0 then free
              else begin
                (* Falsified by the current assignment: backtrack just far
                   enough to free the deepest literal(s) — to below the
                   top level when several literals sit there, to the
                   second-highest level otherwise (the clause then becomes
                   unit). Root-false literals were filtered out above, so
                   the top level is >= 1 and the target >= 0. *)
                let l1 = ref 0 and c1 = ref 0 and l2 = ref 0 in
                Array.iter
                  (fun l ->
                    let lv = s.level.(var_of l) in
                    if lv > !l1 then begin
                      l2 := !l1;
                      l1 := lv;
                      c1 := 1
                    end
                    else if lv = !l1 then incr c1
                    else if lv > !l2 then l2 := lv)
                  arr;
                cancel_until s (if !c1 >= 2 then !l1 - 1 else !l2);
                partition ()
              end
            in
            if free = 1 then hoist_deepest 1
            else if free >= 2 then hoist_deepest 2;
            let idx = push_clause s arr in
            watch s arr.(0) idx arr.(1);
            watch s arr.(1) idx arr.(0);
            (* Exactly one watchable literal left: the clause is unit
               under the current assignment — propagate it now, with the
               clause as reason ([arr.(0)] holds the propagated literal,
               as the watching invariant requires of reasons). *)
            if free = 1 && lb_unknown (value_lit s arr.(0)) then
              enqueue s arr.(0) idx;
            idx
      end
    end
  end

(** [add_clause s lits] adds a clause over external literals, at any time:
    mid-enumeration it backtracks only as far as the new clause demands
    (not at all when two of its literals are unassigned or true), keeping
    the solver's trail — and hence the next [solve]'s incremental resume —
    intact. *)
let add_clause s ext_lits = ignore (add_clause_core s ext_lits)

(* -- Retractable clause groups -- *)

type group = { sel : int; mutable members : int list; mutable retired : bool }

(** [new_group s] allocates a clause group: a fresh selector variable
    plus the (initially empty) set of clauses guarded by it. *)
let new_group s = { sel = new_var s; members = []; retired = false }

(** The selector literal: pass it as an assumption to activate the
    group's clauses for one solve call. *)
let group_lit g = g.sel

(** [add_clause_in s g lits] stores [¬sel ∨ lits]: the clause is inert
    unless [group_lit g] is assumed. *)
let add_clause_in s g ext_lits =
  if g.retired then invalid_arg "Solver.add_clause_in: retired group";
  let idx = add_clause_core s (-g.sel :: ext_lits) in
  if idx >= 0 then g.members <- idx :: g.members

(* Physically delete a stored clause: unhook its two watches and leave an
   empty slot. Safe at the root level — [analyze] never dereferences the
   reason of a root-level assignment, which is the only place a deleted
   index could still be recorded. *)
let delete_clause s idx =
  let c = s.clauses.(idx) in
  if Array.length c > 0 then begin
    unwatch s c.(0) idx;
    unwatch s c.(1) idx;
    s.clauses.(idx) <- [||];
    if Bytes.get s.learnt_mark idx = '\001' then
      s.learnts_live <- s.learnts_live - 1
  end

(** [retire_group s g] permanently deactivates the group: its clauses are
    physically deleted and the selector is pinned false (which also
    satisfies — forever — any learnt clause derived from the group, since
    every such learnt contains [¬sel]; the selector never occurs
    positively, so resolution cannot eliminate it). Idempotent. *)
let retire_group s g =
  if not g.retired then begin
    g.retired <- true;
    if decision_level s > 0 then cancel_until s 0;
    List.iter (fun idx -> delete_clause s idx) g.members;
    g.members <- [];
    add_clause s [ -g.sel ]
  end

(* Boolean constraint propagation. Returns a conflicting clause index or
   -1. The watch vector of the falsified literal is compacted in place:
   entries that keep watching it are copied down over the ones that moved
   to another literal — no allocation on the hot path. *)
let propagate s =
  let conflict = ref (-1) in
  let processed = ref 0 in
  while !conflict < 0 && s.qhead < s.trail_size do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    incr processed;
    let falsified = negate lit in
    let d = s.w_data.(falsified) in
    let n = s.w_len.(falsified) in
    let i = ref 0 and j = ref 0 in
    (* The (clause, blocker) pairs that stay are re-stored at the write
       cursor [j], inline because this loop runs millions of times; while
       no pair has left the vector ([j] still tracks [i]) the copy-back
       would rewrite each slot with its own value, so it is skipped —
       watch moves are rare (a few percent of visits) and this keeps the
       dominant all-kept pass read-only. *)
    while !i < n do
      let idx = d.(2 * !i) in
      let blocker = d.((2 * !i) + 1) in
      incr i;
      if lb_true (value_lit s blocker) then begin
        (* Blocker true: the clause is satisfied, no need to touch it. *)
        if !j + 1 < !i then begin
          d.(2 * !j) <- idx;
          d.((2 * !j) + 1) <- blocker
        end;
        incr j
      end
      else begin
        let c = s.clauses.(idx) in
        if c.(0) = falsified then begin
          c.(0) <- c.(1);
          c.(1) <- falsified
        end;
        if lb_true (value_lit s c.(0)) then begin
          d.(2 * !j) <- idx;
          d.((2 * !j) + 1) <- c.(0);
          incr j
        end
        else begin
          let len = Array.length c in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if not (lb_false (value_lit s c.(!k))) then begin
              c.(1) <- c.(!k);
              c.(!k) <- falsified;
              (* [c.(1)] differs from [falsified] (it is non-false), so
                 this append never touches the vector being compacted. *)
              watch s c.(1) idx c.(0);
              found := true
            end;
            incr k
          done;
          if not !found then begin
            d.(2 * !j) <- idx;
            d.((2 * !j) + 1) <- c.(0);
            incr j;
            if lb_false (value_lit s c.(0)) then begin
              conflict := idx;
              (* Keep the unvisited tail watching [falsified]. *)
              while !i < n do
                d.(2 * !j) <- d.(2 * !i);
                d.((2 * !j) + 1) <- d.((2 * !i) + 1);
                incr i;
                incr j
              done;
              s.qhead <- s.trail_size
            end
            else enqueue s c.(0) idx
          end
        end
      end
    done;
    s.w_len.(falsified) <- !j
  done;
  s.propagations <- s.propagations + !processed;
  Abg_obs.Obs.Counter.add obs_propagations !processed;
  !conflict

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* Uniform rescaling preserves the heap order. *)
    for i = 0 to s.n_vars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_activities s =
  s.var_inc <- s.var_inc /. 0.95;
  s.cla_inc <- s.cla_inc /. 0.999

let bump_clause s idx =
  if Bytes.get s.learnt_mark idx = '\001' then begin
    s.cla_act.(idx) <- s.cla_act.(idx) +. s.cla_inc;
    if s.cla_act.(idx) > 1e20 then begin
      for i = 0 to s.n_clauses - 1 do
        s.cla_act.(i) <- s.cla_act.(i) *. 1e-20
      done;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

(* First-UIP conflict analysis. Returns the learnt clause (asserting
   literal first) and the backjump level. *)
let analyze s conflict_idx =
  let learnt_rest = ref [] in
  let counter = ref 0 in
  let trail_pos = ref (s.trail_size - 1) in
  let idx = ref conflict_idx in
  let skip_head = ref false in
  let asserting = ref 0 in
  let dl = decision_level s in
  let continue = ref true in
  while !continue do
    bump_clause s !idx;
    let c = s.clauses.(!idx) in
    let start = if !skip_head then 1 else 0 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = var_of q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= dl then incr counter
        else learnt_rest := q :: !learnt_rest
      end
    done;
    (* Find the next marked literal walking the trail backwards. *)
    while not s.seen.(var_of s.trail.(!trail_pos)) do
      decr trail_pos
    done;
    let p = s.trail.(!trail_pos) in
    let v = var_of p in
    s.seen.(v) <- false;
    decr trail_pos;
    decr counter;
    if !counter = 0 then begin
      asserting := negate p;
      continue := false
    end
    else begin
      idx := s.reason.(v);
      skip_head := true
    end
  done;
  List.iter (fun l -> s.seen.(var_of l) <- false) !learnt_rest;
  (* Order the tail so a literal from the backjump (second-highest) level
     sits right after the asserting literal: both watched positions then
     respect the watching invariant after the backjump. *)
  let backjump =
    List.fold_left (fun acc l -> Stdlib.max acc s.level.(var_of l)) 0 !learnt_rest
  in
  let at_bj, below =
    List.partition (fun l -> s.level.(var_of l) = backjump) !learnt_rest
  in
  (!asserting :: (at_bj @ below), backjump)

(* A clause currently acting as a propagation reason must not be deleted:
   the watching invariant keeps the propagated literal at index 0. *)
let locked s idx =
  let c = s.clauses.(idx) in
  Array.length c > 0
  && lb_true (value_lit s c.(0))
  && s.reason.(var_of c.(0)) = idx

(* Activity-driven learnt-DB reduction: delete the lower-activity half of
   the deletable learnts (ties broken by clause index, so the pass is
   deterministic). Binary and locked learnts are kept — binaries are
   cheap and high-value, locked ones are load-bearing for the current
   trail. The ceiling then grows 10%, MiniSat-style, so genuinely hard
   instances still get a growing database. *)
let reduce_db s =
  let cands = ref [] in
  let n_cands = ref 0 in
  for idx = s.n_clauses - 1 downto 0 do
    if
      Bytes.get s.learnt_mark idx = '\001'
      && Array.length s.clauses.(idx) > 2
      && not (locked s idx)
    then begin
      cands := idx :: !cands;
      incr n_cands
    end
  done;
  let cands = List.sort
      (fun a b ->
        let c = Float.compare s.cla_act.(a) s.cla_act.(b) in
        if c <> 0 then c else Int.compare a b)
      !cands
  in
  let to_delete = ref (!n_cands / 2) in
  List.iter
    (fun idx ->
      if !to_delete > 0 then begin
        delete_clause s idx;
        decr to_delete
      end)
    cands;
  s.db_reductions <- s.db_reductions + 1;
  s.max_learnts <- s.max_learnts + (s.max_learnts / 10);
  Abg_obs.Obs.Counter.incr obs_db_reductions

let pick_branch_var s =
  let v = ref (-1) in
  while !v < 0 && s.heap_size > 0 do
    let cand = heap_pop s in
    if lb_unknown s.assign.(cand) then v := cand
  done;
  !v

(* Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby_at i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby_at (i - ((1 lsl (!k - 1)) - 1))

(** Result of {!solve}: a model indexed by external variable
    ([m.(v)] for variable [v]; index 0 unused), or unsatisfiable. The
    array is owned by the solver and overwritten by the next [solve] on
    the same instance — read it (or copy it) before solving again. *)
type result = Sat of bool array | Unsat

(* One buffer reused across calls: enumeration extracts ~thousands of
   models and every consumer decodes the model before the next solve, so
   a fresh n_vars-sized array per model would be pure GC pressure. The
   fill stops at [model_cap]: auxiliary variables (symmetry circuits,
   at-most-one commanders, group selectors) outnumber the variables any
   decoder reads, and skipping them is free. *)
let model_of s =
  let hi = Stdlib.min s.n_vars s.model_cap in
  if Array.length s.model_buf < hi + 1 then
    s.model_buf <- Array.make (hi + 1) false;
  let m = s.model_buf in
  for v = 0 to hi - 1 do
    m.(v + 1) <- lb_true s.assign.(v)
  done;
  m

(** [limit_model s v] caps the model reported by [solve] at variable [v]:
    later [Sat] arrays cover indices [1..v] only. Call it once the
    problem's decision variables are allocated so that models skip the
    (typically far more numerous) auxiliary encoding variables. *)
let limit_model s v =
  if v < 0 then invalid_arg "Solver.limit_model";
  s.model_cap <- v;
  if Array.length s.model_buf > v + 1 then s.model_buf <- [||]

(** [solve ?assumptions s] decides the accumulated clauses. Assumptions
    are external literals asserted for this call only; learnt clauses
    persist across calls, making repeated (blocking-clause) enumeration
    cheap.

    Incremental resume: on [Sat] the trail is kept, so a following call
    with the same assumption list (after, say, one blocking clause)
    backtracks only as far as that clause demanded and searches on from
    there, rather than re-deriving the whole assignment — the fast path
    that makes model enumeration O(changed part of the trail) per model.
    A call with a different assumption list backtracks to the longest
    still-valid assumption prefix first. *)

let solve ?(assumptions = []) s =
  if not s.ok then Unsat
  else begin
    let ints = Array.of_list (List.map to_internal assumptions) in
    let n_assumptions = Array.length ints in
    (* Longest prefix of [ints] that still labels the leading decision
       levels of the kept trail; everything above it is reusable only
       when the whole assumption list is unchanged. *)
    let matching = ref 0 in
    while
      !matching < s.n_assump_levels
      && !matching < n_assumptions
      && s.assump.(!matching) = ints.(!matching)
    do
      incr matching
    done;
    if not (!matching = n_assumptions && s.n_assump_levels = n_assumptions)
    then cancel_until s !matching;
    s.assump <- ints;
    let result = ref None in
    let restart_count = ref 0 in
    let conflict_budget = ref (100 * luby_at 1) in
    while !result = None do
      let conflict = propagate s in
      if conflict >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        Abg_obs.Obs.Counter.incr obs_conflicts;
        decr conflict_budget;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else if decision_level s <= n_assumptions then
          (* The conflict involves only assumption decisions: the formula
             is unsatisfiable under these assumptions (but may be
             satisfiable without them, so [ok] stays true). *)
          result := Some Unsat
        else begin
          let learnt, backjump = analyze s conflict in
          (* Never jump back into the middle of the assumption prefix with
             a clause asserting below it. *)
          let backjump = Stdlib.max backjump n_assumptions in
          cancel_until s backjump;
          (match learnt with
          | [] -> result := Some Unsat
          | [ l ] ->
              if lb_false (value_lit s l) then result := Some Unsat
              else if lb_unknown (value_lit s l) then enqueue s l (-1)
          | l :: _ ->
              let arr = Array.of_list learnt in
              let idx = push_clause s arr in
              Bytes.set s.learnt_mark idx '\001';
              s.cla_act.(idx) <- s.cla_inc;
              s.learnts_total <- s.learnts_total + 1;
              s.learnts_live <- s.learnts_live + 1;
              Abg_obs.Obs.Counter.incr obs_learnts;
              watch s arr.(0) idx arr.(1);
              watch s arr.(1) idx arr.(0);
              if lb_unknown (value_lit s l) then enqueue s l idx);
          decay_activities s
        end
      end
      else if !conflict_budget <= 0 && decision_level s > n_assumptions then begin
        incr restart_count;
        conflict_budget := 100 * luby_at (!restart_count + 1);
        cancel_until s n_assumptions
      end
      else begin
        if s.learnts_live > s.max_learnts then reduce_db s;
        let dl = decision_level s in
        if dl < n_assumptions then begin
          let a = ints.(dl) in
          match value_lit s a with
          | True ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              s.n_levels <- s.n_levels + 1;
              s.n_assump_levels <- dl + 1
          | False -> result := Some Unsat
          | Unknown ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              s.n_levels <- s.n_levels + 1;
              s.n_assump_levels <- dl + 1;
              enqueue s a (-1)
        end
        else begin
          match pick_branch_var s with
          | -1 -> result := Some (Sat (model_of s))
          | v ->
              s.trail_lim <- s.trail_size :: s.trail_lim;
              s.n_levels <- s.n_levels + 1;
              let lit = if s.polarity.(v) then 2 * v else (2 * v) + 1 in
              enqueue s lit (-1)
        end
      end
    done;
    let r = match !result with Some r -> r | None -> assert false in
    (* Keep the trail on Sat — the incremental-resume state for the next
       call. On Unsat, back out to the root: the assumption levels carry
       no reusable search state. *)
    (match r with Sat _ -> () | Unsat -> cancel_until s 0);
    r
  end

(** [randomize s ~seed] scrambles the saved phases (the polarity each
    unassigned variable will be tried with first). Model *enumeration*
    uses this between solve calls so that successive models sample
    scattered corners of the solution space instead of crawling
    lexicographically — the blocking-clause analogue of Z3's
    [:random-seed]/phase randomization. Does not affect soundness, only
    which model is found first. VSIDS activities are deliberately left
    alone: the branching order keeps its learned focus across the
    enumeration (and the heap needs no rebuild), so the scramble is O(n)
    cheap bit work on the hot path.

    Determinism: the scramble is a pure function of [seed] and the number
    of allocated variables, and the search that follows is a pure function
    of the clause database. A fixed seed sequence plus an identical
    clause-addition order therefore reproduces a bit-identical model
    sequence — the property the enumeration-determinism regression tests
    pin. *)
let randomize s ~seed =
  let state = ref (Int64.of_int (seed lxor 0x5DEECE66D)) in
  let next_bits () =
    (* splitmix64 step, as in the utility PRNG, inlined to keep this
       library's dependencies minimal. One 64-bit word seeds the phases
       of 64 variables. *)
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let word = ref 0L in
  for v = 0 to s.n_vars - 1 do
    if v land 63 = 0 then word := next_bits ();
    s.polarity.(v) <- Int64.logand !word 1L = 1L;
    word := Int64.shift_right_logical !word 1
  done

(** Search-effort statistics, cumulative over the solver's lifetime. *)
type stats = {
  propagations : int;
  conflicts : int;
  learnts_total : int;
  learnts_live : int;
  db_reductions : int;
}

let stats (s : t) =
  {
    propagations = s.propagations;
    conflicts = s.conflicts;
    learnts_total = s.learnts_total;
    learnts_live = s.learnts_live;
    db_reductions = s.db_reductions;
  }

(** Number of conflicts encountered so far (a search-effort statistic). *)
let conflicts (s : t) = s.conflicts

(** Number of variables allocated. *)
let num_vars s = s.n_vars

(** [set_max_learnts s n] lowers (or raises) the learnt-DB ceiling that
    triggers {!reduce_db}-style reduction; exposed for tests and tuning.
    The ceiling still grows 10% per reduction afterwards. *)
let set_max_learnts s n = s.max_learnts <- Stdlib.max 8 n
