(** A CDCL SAT solver in the MiniSat lineage: two-literal watches, VSIDS
    branching over a binary heap, first-UIP clause learning, phase saving
    and Luby restarts. It is the enumeration engine behind sketch search —
    the substitute for the paper's iterated Z3 queries (§4.1): solve,
    block the model, solve again.

    The solver is built for that incremental workload: clauses can be
    added at any time (the solver first backtracks to the root level),
    the learnt-clause database is bounded by activity-driven reduction,
    and clauses can be registered under a retractable {!group} — a
    selector-literal construction ([¬sel ∨ C], activated by assuming
    [sel]) that lets bucket-scoped blocking clauses be retracted without
    rebuilding the instance.

    External literals are DIMACS-like: variables are the positive integers
    returned by {!new_var}; a positive literal [v] asserts the variable,
    [-v] negates it. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) literal. *)

val add_clause : t -> int list -> unit
(** Add a permanent clause over external literals, valid at any time: if
    the previous [solve] left assumption levels on the trail, the solver
    backtracks to the root level first. Tautologies are dropped; an empty
    clause makes the instance permanently unsatisfiable. *)

(** {1 Retractable clause groups} *)

type group
(** A set of clauses guarded by one selector literal. Group clauses are
    inert unless {!group_lit} is passed among [solve]'s assumptions, and
    the whole set can be retracted with {!retire_group} — the mechanism
    behind per-bucket blocking clauses in enumeration. *)

val new_group : t -> group
(** Allocate a group (costs one selector variable). *)

val group_lit : group -> int
(** The selector literal; assume it to activate the group's clauses. *)

val add_clause_in : t -> group -> int list -> unit
(** [add_clause_in s g lits] stores [¬sel ∨ lits].
    @raise Invalid_argument on a retired group. *)

val retire_group : t -> group -> unit
(** Permanently deactivate a group: its clauses are physically deleted
    and the selector is pinned false. Learnt clauses derived from group
    clauses all contain the negated selector (it never occurs positively,
    so resolution cannot drop it), hence pinning keeps them satisfied and
    the deletion sound. Idempotent. *)

(** {1 Solving} *)

type result = Sat of bool array | Unsat
(** A model is indexed by external variable ([m.(v)]; index 0 unused).
    The array is owned by the solver and overwritten in place by the next
    [solve] on the same instance — read (or copy) it before solving
    again. Enumeration decodes each model immediately, so no caller pays
    a per-model allocation. *)

val solve : ?assumptions:int list -> t -> result
(** Decide the accumulated clauses. [assumptions] are external literals
    asserted for this call only — an [Unsat] under assumptions leaves the
    instance usable. Learnt clauses persist across calls, making repeated
    blocking-clause enumeration cheap; the learnt database is reduced
    (lowest-activity half deleted) whenever it outgrows its ceiling.

    Incremental resume: on [Sat] the whole trail is kept, so the next
    call with the same assumption list (after, say, one blocking clause)
    backtracks only as far as that clause demands and searches on from
    there instead of re-deriving every assignment. A call with a
    different assumption list first backtracks to the longest still-valid
    assumption prefix. *)

val limit_model : t -> int -> unit
(** [limit_model s v] caps the model reported by [solve] at variable [v]
    ([Sat] arrays then cover indices [1..v] only). Problems whose decision
    variables are allocated before the auxiliary encoding variables (the
    common layout) use this to skip filling model slots nobody reads. *)

val randomize : t -> seed:int -> unit
(** Scramble the branching heuristic (random activities and phases) so
    that successive models during enumeration sample scattered corners of
    the solution space instead of crawling lexicographically. Soundness is
    unaffected.

    Determinism: the scramble is a pure function of [seed] and the number
    of allocated variables. A fixed seed sequence plus an identical
    clause-addition order yields a bit-identical model sequence. *)

(** {1 Statistics} *)

type stats = {
  propagations : int;  (** trail literals processed by BCP *)
  conflicts : int;
  learnts_total : int;  (** clauses ever learnt *)
  learnts_live : int;  (** currently stored (survived reduction) *)
  db_reductions : int;  (** learnt-DB reduction passes *)
}

val stats : t -> stats
(** Search effort, cumulative over the solver's lifetime. *)

val conflicts : t -> int
(** Conflicts encountered so far — a search-effort statistic. *)

val num_vars : t -> int

val set_max_learnts : t -> int -> unit
(** Lower (or raise) the learnt-DB ceiling that triggers reduction;
    exposed for tests and tuning. Clamped below at 8; the ceiling still
    grows 10% per reduction. *)
