(** CNF encoding helpers over {!Solver}: the standard gadgets the sketch
    encoding needs. All functions add clauses to the given solver; [lits]
    are external literals. *)

val at_most_one : Solver.t -> int list -> unit
(** Pairwise encoding for short lists; above a small threshold a
    commander encoding (groups of three with commander variables,
    recursing over the commanders) keeps the clause count linear.
    Equisatisfiable with the pairwise encoding when projected onto
    [lits]. *)

val pairwise_at_most_one : Solver.t -> int list -> unit
(** The plain O(n^2) pairwise encoding, regardless of list length —
    the differential baseline for {!at_most_one}. *)

val at_least_one : Solver.t -> int list -> unit
val exactly_one : Solver.t -> int list -> unit

val implies : Solver.t -> int -> int -> unit
(** [implies s a b] — a -> b. *)

val implies_all : Solver.t -> int -> int list -> unit
(** [implies_all s a bs] — a -> b for every b. *)

val implies_clause : Solver.t -> int -> int list -> unit
(** [implies_clause s a bs] — a -> (b1 \/ ... \/ bn). *)

val define_and : Solver.t -> int list -> int
(** Fresh literal equivalent to the conjunction (Tseitin). *)

val define_or : Solver.t -> int list -> int
(** Fresh literal equivalent to the disjunction (Tseitin). *)

val at_most_k : Solver.t -> int list -> int -> unit
(** Sequential-counter cardinality constraint (Sinz 2005), O(n*k)
    clauses; used for the sketch node budget. *)

val lex_gt_implies :
  Solver.t -> under:int list -> target:int -> (int * int) list -> unit
(** [lex_gt_implies s ~under ~target digits] — [digits] are [(gt, eq)]
    literal pairs, most significant first. Whenever all of [under] hold
    and the digit sequence is lexicographically greater (some [gt_i]
    true with all earlier [eq_j] true), [target] is forced. One clause
    per digit. *)

val lex_le : Solver.t -> under:int list -> (int * int) list -> unit
(** [lex_le s ~under digits] — whenever all of [under] hold, forbid any
    lexicographically greater digit sequence: the sorted-operand
    constraint of the enumerator's symmetry-breaking circuit. The final
    digit's [eq] literal is unused. *)
