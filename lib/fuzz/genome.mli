(** Scenario genome: flat float vector over a fixed gene table, decoded
    into an extended {!Abg_netsim.Config.t}. All operators draw only
    from the {!Abg_util.Rng} streams passed in, so evolution is a pure
    function of its seed. *)

type spec = { name : string; lo : float; hi : float }

val genes : spec array
(** The gene table (append-only schema). *)

val length : int
(** Number of genes. *)

type t = float array

val random : Abg_util.Rng.t -> t
(** Uniform sample of the whole gene box. *)

val mutate : ?rate:float -> Abg_util.Rng.t -> t -> t
(** Per-gene Gaussian mutation (probability [rate], default 0.25; step
    stddev 15% of the gene range, clamped). *)

val crossover : Abg_util.Rng.t -> t -> t -> t
(** Uniform crossover. *)

val to_config : duration:float -> seed:int -> t -> Abg_netsim.Config.t
(** Decode into a scenario. [seed] comes from the fuzz spec, not the
    genome, so identical genomes share trace-store entries. *)

val encode : t -> string
(** Canonical lossless rendering (hex floats); [decode] inverts it. *)

val decode : string -> t option

val fingerprint : t -> string
(** 32-hex stable identity — what CI pins for the champion. *)

val describe : duration:float -> seed:int -> t -> string
