(** Lossless wire codec for DSL handlers.

    The DSL has a pretty-printer but no parser; the fuzzer needs one to
    ship a synthesized handler through a serialized job spec (the
    counterexample fitness scores scenarios against a *specific*
    handler). The format is a minimal s-expression: leaves are atoms
    ([cwnd], [sig:NAME], [mac:NAME], [const:HEXFLOAT], [hole:N]),
    operators are parenthesized prefix forms. Constants render in [%h]
    so the round trip is bit-exact. *)

open Abg_dsl

let rec encode_num = function
  | Expr.Cwnd -> "cwnd"
  | Expr.Signal s -> "sig:" ^ Signal.name s
  | Expr.Macro m -> "mac:" ^ Macro.name m
  | Expr.Const c -> Printf.sprintf "const:%h" c
  | Expr.Hole i -> Printf.sprintf "hole:%d" i
  | Expr.Add (a, b) -> binop "add" a b
  | Expr.Sub (a, b) -> binop "sub" a b
  | Expr.Mul (a, b) -> binop "mul" a b
  | Expr.Div (a, b) -> binop "div" a b
  | Expr.Ite (c, t, e) ->
      Printf.sprintf "(ite %s %s %s)" (encode_bool c) (encode_num t)
        (encode_num e)
  | Expr.Cube a -> Printf.sprintf "(cube %s)" (encode_num a)
  | Expr.Cbrt a -> Printf.sprintf "(cbrt %s)" (encode_num a)

and binop op a b =
  Printf.sprintf "(%s %s %s)" op (encode_num a) (encode_num b)

and encode_bool = function
  | Expr.Lt (a, b) -> binop "lt" a b
  | Expr.Gt (a, b) -> binop "gt" a b
  | Expr.Mod_eq (a, b) -> binop "modeq" a b

(* -- decoding: tokenize, then recursive descent -- *)

let tokenize s =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | ' ' | '\t' | '\n' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !tokens

exception Bad of string

let atom tok =
  match String.index_opt tok ':' with
  | None when tok = "cwnd" -> Expr.Cwnd
  | None -> raise (Bad ("unknown atom " ^ tok))
  | Some i -> (
      let head = String.sub tok 0 i in
      let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
      match head with
      | "sig" -> (
          match Signal.of_name rest with
          | Some s -> Expr.Signal s
          | None -> raise (Bad ("unknown signal " ^ rest)))
      | "mac" -> (
          match Macro.of_name rest with
          | Some m -> Expr.Macro m
          | None -> raise (Bad ("unknown macro " ^ rest)))
      | "const" -> (
          match float_of_string_opt rest with
          | Some c -> Expr.Const c
          | None -> raise (Bad ("bad const " ^ rest)))
      | "hole" -> (
          match int_of_string_opt rest with
          | Some i -> Expr.Hole i
          | None -> raise (Bad ("bad hole " ^ rest)))
      | _ -> raise (Bad ("unknown atom " ^ tok)))

let rec parse_num tokens =
  match tokens with
  | [] -> raise (Bad "unexpected end of input")
  | "(" :: op :: rest -> (
      match op with
      | "add" | "sub" | "mul" | "div" ->
          let a, rest = parse_num rest in
          let b, rest = parse_num rest in
          let rest = expect_close rest in
          let node =
            match op with
            | "add" -> Expr.Add (a, b)
            | "sub" -> Expr.Sub (a, b)
            | "mul" -> Expr.Mul (a, b)
            | _ -> Expr.Div (a, b)
          in
          (node, rest)
      | "ite" ->
          let c, rest = parse_bool rest in
          let t, rest = parse_num rest in
          let e, rest = parse_num rest in
          (Expr.Ite (c, t, e), expect_close rest)
      | "cube" ->
          let a, rest = parse_num rest in
          (Expr.Cube a, expect_close rest)
      | "cbrt" ->
          let a, rest = parse_num rest in
          (Expr.Cbrt a, expect_close rest)
      | _ -> raise (Bad ("unknown operator " ^ op)))
  | ")" :: _ -> raise (Bad "unexpected )")
  | tok :: rest -> (atom tok, rest)

and parse_bool tokens =
  match tokens with
  | "(" :: op :: rest when op = "lt" || op = "gt" || op = "modeq" ->
      let a, rest = parse_num rest in
      let b, rest = parse_num rest in
      let node =
        match op with
        | "lt" -> Expr.Lt (a, b)
        | "gt" -> Expr.Gt (a, b)
        | _ -> Expr.Mod_eq (a, b)
      in
      (node, expect_close rest)
  | _ -> raise (Bad "expected boolean form")

and expect_close = function
  | ")" :: rest -> rest
  | _ -> raise (Bad "expected )")

let decode_num s =
  match parse_num (tokenize s) with
  | e, [] -> Some e
  | _ -> None
  | exception Bad _ -> None
