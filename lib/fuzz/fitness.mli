(** Fitness functions for the adversarial search: deterministic pure
    functions of (spec, scenario config); higher = more adversarial. *)

type kind =
  | Divergence  (** DTW between two named CCAs' CWND traces *)
  | Counterexample  (** synthesized-handler-vs-ground-truth distance *)
  | Throughput  (** 1 - link utilization of the CCA flow *)

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all : kind list

type spec = {
  kind : kind;
  cca : string;
  cca_b : string option;  (** second CCA of a divergence pair *)
  handler : Abg_dsl.Expr.num option;  (** counterexample target *)
}

val evaluate : spec -> Abg_netsim.Config.t -> float
(** Score one scenario. Raises [Failure] on an incoherent spec (unknown
    CCA, missing pair/handler); batch quarantine contains it. *)
