(** Deterministic genetic search over scenario genomes. Generation [g]'s
    operator draws derive only from (seed, g); the next population is a
    pure function of (params, population, fitness) — so a run can be
    re-derived from its seed plus the persisted fitness values alone. *)

type params = {
  generations : int;
  pop : int;
  seed : int;
  tournament : int;
  elite : int;
  mutation_rate : float;
}

val default_params : params

type gen_stats = {
  gen : int;
  best : float;
  mean : float;
  best_index : int;
  best_genome : Genome.t;
}

type result = {
  champion : Genome.t;
  champion_fitness : float;
  champion_gen : int;
  history : gen_stats list;
}

val initial_population : params -> Genome.t array

val next_generation :
  params -> gen:int -> Genome.t array -> float array -> Genome.t array

val run :
  params:params ->
  evaluate:(gen:int -> Genome.t array -> float array) ->
  result
(** Evolve; [evaluate] scores whole populations (in-process or as batch
    jobs). Champion = best individual ever seen; earliest wins ties. *)
