(** The genetic search loop.

    Deterministic by construction: generation [g]'s RNG is derived only
    from (seed, g), per-individual operator draws come from child
    streams split off it in index order, and the population of
    generation [g+1] is a pure function of (params, population [g],
    fitness [g]). Because fitness values persist in the batch journals,
    *any* prefix of a run can be re-derived instantly — resume needs no
    mutable search state on disk (DESIGN.md §12). *)

open Abg_util

type params = {
  generations : int;
  pop : int;
  seed : int;
  tournament : int;  (** tournament size (default 3) *)
  elite : int;  (** individuals copied unchanged per generation *)
  mutation_rate : float;  (** per-gene mutation probability *)
}

let default_params =
  {
    generations = 8;
    pop = 16;
    seed = 42;
    tournament = 3;
    elite = 2;
    mutation_rate = 0.25;
  }

type gen_stats = {
  gen : int;
  best : float;
  mean : float;
  best_index : int;
  best_genome : Genome.t;
}

type result = {
  champion : Genome.t;
  champion_fitness : float;
  champion_gen : int;
  history : gen_stats list;  (** in generation order *)
}

let obs_improvements = Abg_obs.Obs.Counter.make "fuzz.improvements"

let obs_elite_replacements =
  Abg_obs.Obs.Counter.make "fuzz.elite_replacements"

(* Generation RNG: a splitmix-style seed mix, so streams of different
   generations (and different run seeds) never overlap. *)
let gen_rng params g =
  Rng.create ((params.seed + ((g + 1) * 0x9e3779b1)) land max_int)

let sanitize f = if Float.is_nan f then neg_infinity else f

(* Indices ranked best-first; ties broken toward the lower index so
   ranking is total and reproducible. *)
let ranked fitness =
  let idx = Array.init (Array.length fitness) Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare (sanitize fitness.(b)) (sanitize fitness.(a)) with
      | 0 -> compare a b
      | c -> c)
    idx;
  idx

let tournament_select rng params fitness =
  let n = Array.length fitness in
  let best = ref (Rng.int rng n) in
  for _ = 2 to params.tournament do
    let c = Rng.int rng n in
    if
      sanitize fitness.(c) > sanitize fitness.(!best)
      || (sanitize fitness.(c) = sanitize fitness.(!best) && c < !best)
    then best := c
  done;
  !best

let initial_population params =
  let rng = gen_rng params 0 in
  Array.init params.pop (fun _ -> Genome.random (Rng.split rng))

(** [next_generation params ~gen population fitness] — elitism plus
    tournament-selected, crossed-over, mutated offspring. [gen] is the
    generation being *built* (>= 1). *)
let next_generation params ~gen population fitness =
  let rng = gen_rng params gen in
  let order = ranked fitness in
  let elite = Stdlib.min params.elite params.pop in
  Array.init params.pop (fun i ->
      if i < elite then Array.copy population.(order.(i))
      else begin
        let child = Rng.split rng in
        let p1 = tournament_select child params fitness in
        let p2 = tournament_select child params fitness in
        Genome.mutate ~rate:params.mutation_rate child
          (Genome.crossover child population.(p1) population.(p2))
      end)

(** [run ~params ~evaluate] — evolve for [params.generations]
    generations; [evaluate ~gen genomes] scores a whole population
    (in-process or as batch jobs). The champion is the best individual
    ever evaluated, earliest (generation, index) winning ties. *)
let run ~params ~evaluate =
  let population = ref (initial_population params) in
  let history = ref [] in
  let champion = ref None in
  let prev_elite = ref [] in
  for g = 0 to params.generations - 1 do
    let fitness = evaluate ~gen:g !population in
    let order = ranked fitness in
    let best_index = order.(0) in
    let best = sanitize fitness.(best_index) in
    let finite = Array.map sanitize fitness in
    let mean =
      Array.fold_left
        (fun acc f -> acc +. Float.max f 0.0)
        0.0 finite
      /. float_of_int (Stdlib.max 1 (Array.length finite))
    in
    history :=
      {
        gen = g;
        best;
        mean;
        best_index;
        best_genome = Array.copy !population.(best_index);
      }
      :: !history;
    (match !champion with
    | Some (_, f, _) when best <= f -> ()
    | _ ->
        if !champion <> None then Abg_obs.Obs.Counter.incr obs_improvements;
        champion := Some (Array.copy !population.(best_index), best, g));
    (* Elite turnover accounting (by genome identity). *)
    let elite_n = Stdlib.min params.elite params.pop in
    let elite_now =
      List.init elite_n (fun i -> Genome.fingerprint !population.(order.(i)))
    in
    List.iter
      (fun fp ->
        if not (List.mem fp !prev_elite) then
          Abg_obs.Obs.Counter.incr obs_elite_replacements)
      elite_now;
    prev_elite := elite_now;
    if g < params.generations - 1 then
      population := next_generation params ~gen:(g + 1) !population fitness
  done;
  match !champion with
  | None -> failwith "fuzz: empty run"
  | Some (champion, champion_fitness, champion_gen) ->
      {
        champion;
        champion_fitness;
        champion_gen;
        history = List.rev !history;
      }
