(** Scenario genome: the fuzzer's search representation.

    A genome is a flat float vector, one value per gene, decoded into an
    extended {!Abg_netsim.Config.t} by {!to_config}. Several genes are
    *gated*: a value below (or above) an activation threshold switches
    the corresponding scenario feature off entirely, so the search can
    discover both that a feature matters and that it does not. Operators
    ({!random}, {!mutate}, {!crossover}) draw exclusively from the
    seeded {!Abg_util.Rng} streams handed to them — no wall clock, no
    [Stdlib.Random] — which makes a whole evolution run a pure function
    of its seed. *)

open Abg_util

type spec = { name : string; lo : float; hi : float }

(* The gene table is the genome's schema: encode/decode, mutation ranges
   and the report all derive from it. Append-only — reordering or
   resizing it changes the meaning of every persisted genome. *)
let genes =
  [|
    { name = "bandwidth_mbps"; lo = 2.0; hi = 40.0 };
    { name = "rtt_ms"; lo = 5.0; hi = 200.0 };
    { name = "queue_factor"; lo = 0.5; hi = 4.0 };
    { name = "loss_rate"; lo = 0.0; hi = 0.03 };
    { name = "ack_jitter_ms"; lo = 0.0; hi = 5.0 };
    (* Bandwidth step: at step_at x duration the link rate becomes
       step_frac x base. Fractions within 5% of 1.0 decode to "no step". *)
    { name = "step_frac"; lo = 0.25; hi = 1.5 };
    { name = "step_at"; lo = 0.1; hi = 0.9 };
    (* Cross traffic, as a fraction of the bottleneck rate; below the
       activation floor there is no cross flow. off_frac below its floor
       decodes to a constant (always-on) flow. *)
    { name = "cross_frac"; lo = 0.0; hi = 0.8 };
    { name = "cross_on_s"; lo = 0.2; hi = 5.0 };
    { name = "cross_off_frac"; lo = 0.0; hi = 1.5 };
    (* Bursty outages: Poisson rate and per-outage darkness. *)
    { name = "outages_per_s"; lo = 0.0; hi = 0.5 };
    { name = "outage_ms"; lo = 10.0; hi = 400.0 };
    (* Reordering. *)
    { name = "reorder_prob"; lo = 0.0; hi = 0.2 };
    { name = "reorder_ms"; lo = 1.0; hi = 50.0 };
    (* Queue discipline: >= 0.5 decodes to RED with max_p below. *)
    { name = "red"; lo = 0.0; hi = 1.0 };
    { name = "red_max_p"; lo = 0.02; hi = 0.3 };
  |]

let length = Array.length genes

type t = float array

let clamp (g : spec) v = Float.min g.hi (Float.max g.lo v)

let random rng : t =
  Array.map (fun g -> g.lo +. (Rng.float rng *. (g.hi -. g.lo))) genes

let obs_mutations = Abg_obs.Obs.Counter.make "fuzz.mutations"

(** Per-gene Gaussian mutation: each gene moves with probability [rate],
    by a step of stddev 15% of its range, clamped back into range. *)
let mutate ?(rate = 0.25) rng (t : t) : t =
  Array.mapi
    (fun i v ->
      if Rng.float rng < rate then begin
        Abg_obs.Obs.Counter.incr obs_mutations;
        let g = genes.(i) in
        clamp g (v +. Rng.normal rng ~mean:0.0 ~stddev:(0.15 *. (g.hi -. g.lo)))
      end
      else v)
    t

(** Uniform crossover: each gene comes from either parent with equal
    probability. *)
let crossover rng (a : t) (b : t) : t =
  Array.init length (fun i -> if Rng.bool rng then a.(i) else b.(i))

(* Activation floors for the gated genes (see the table above). *)
let cross_floor = 0.05
let off_floor = 0.05
let outage_floor = 0.02
let reorder_floor = 0.005

(** [to_config ~duration ~seed t] decodes a genome into an extended
    scenario. [seed] is fixed by the fuzz spec (not evolved), so equal
    genomes share trace-store entries across generations. *)
let to_config ~duration ~seed (t : t) =
  let g i = t.(i) in
  let bandwidth_mbps = g 0 and rtt_ms = g 1 in
  let bandwidth_bps = bandwidth_mbps *. 1e6 in
  let bdp_pkts =
    Float.max 1.0
      (Float.ceil (bandwidth_bps /. 8.0 *. (rtt_ms /. 1000.0) /. 1448.0))
  in
  let queue_capacity = Stdlib.max 8 (int_of_float (bdp_pkts *. g 2)) in
  let bandwidth_steps =
    if Float.abs (g 5 -. 1.0) < 0.05 then []
    else [ (g 6 *. duration, g 5 *. bandwidth_bps) ]
  in
  let cross =
    if g 7 < cross_floor then []
    else begin
      let rate_bps = g 7 *. bandwidth_bps in
      if g 9 < off_floor then [ Abg_netsim.Config.Constant { rate_bps } ]
      else
        [
          Abg_netsim.Config.On_off
            { rate_bps; on_s = g 8; off_s = g 9 *. g 8 };
        ]
    end
  in
  let outage_rate, outage_duration =
    if g 10 < outage_floor then (0.0, 0.0) else (g 10, g 11 /. 1000.0)
  in
  let reorder_prob, reorder_delay =
    if g 12 < reorder_floor then (0.0, 0.0) else (g 12, g 13 /. 1000.0)
  in
  let qdisc =
    if g 14 < 0.5 then Abg_netsim.Config.Droptail
    else begin
      let min_th = Stdlib.max 2 (queue_capacity / 4) in
      let max_th = Stdlib.max (min_th + 1) (queue_capacity * 3 / 4) in
      Abg_netsim.Config.Red { min_th; max_th; max_p = g 15 }
    end
  in
  Abg_netsim.Config.make ~duration ~seed ~loss_rate:(g 3)
    ~ack_jitter:(g 4 /. 1000.0) ~queue_capacity ~bandwidth_steps ~cross
    ~outage_rate ~outage_duration ~reorder_prob ~reorder_delay ~qdisc
    ~bandwidth_mbps ~rtt_ms ()

(** Canonical lossless rendering: semicolon-joined hex floats in gene
    order. Doubles as the genome's identity for job digests and
    dedup. *)
let encode (t : t) =
  String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%h") t))

let decode s =
  match String.split_on_char ';' s with
  | parts when List.length parts = length -> (
      try Some (Array.of_list (List.map float_of_string parts))
      with Failure _ -> None)
  | _ -> None

(** Stable 32-hex identity of a genome — what CI pins. *)
let fingerprint t = Digest.to_hex (Digest.string (encode t))

let describe ~duration ~seed t =
  Abg_netsim.Config.describe (to_config ~duration ~seed t)
