(** Fitness functions for the adversarial scenario search.

    All three are deterministic pure functions of (spec, genome): trace
    collection goes through the seeded simulator (and the process-wide
    trace store, so identical genomes across generations share a
    simulation), and the distance kernels are the same ones the paper's
    pipeline scores with. Higher fitness = more adversarial. *)

open Abg_netsim

type kind =
  | Divergence  (** DTW between two named CCAs' CWND traces — maximize *)
  | Counterexample
      (** distance of a synthesized handler vs its ground truth —
          maximize (the search hunts scenarios the handler gets wrong) *)
  | Throughput  (** 1 - link utilization of the CCA flow — maximize *)

let kind_name = function
  | Divergence -> "divergence"
  | Counterexample -> "counterexample"
  | Throughput -> "throughput"

let kind_of_name = function
  | "divergence" -> Some Divergence
  | "counterexample" -> Some Counterexample
  | "throughput" -> Some Throughput
  | _ -> None

let all = [ Divergence; Counterexample; Throughput ]

(** The per-evaluation inputs beyond the scenario itself. [cca] is the
    flow under test; [cca_b] names the second flow of a divergence pair;
    [handler] is the synthesized handler a counterexample search attacks. *)
type spec = {
  kind : kind;
  cca : string;
  cca_b : string option;
  handler : Abg_dsl.Expr.num option;
}

let obs_evaluations = Abg_obs.Obs.Counter.make "fuzz.evaluations"

let constructor_of cca =
  match Abg_cca.Registry.find cca with
  | Some ctor -> ctor
  | None -> failwith (Printf.sprintf "fuzz: unknown CCA %s" cca)

let collect cfg ~name =
  Abg_trace.Trace.collect_cached cfg ~name (constructor_of name)

(* A whole trace as one segment (the synthesis fallback shape): the
   counterexample fitness scores the handler over everything the
   scenario produced, not just between losses — an adversarial scenario
   is allowed to win by provoking pathological loss patterns. *)
let whole_segment (tr : Abg_trace.Trace.t) =
  {
    Abg_trace.Segmentation.cca_name = tr.Abg_trace.Trace.cca_name;
    scenario = tr.Abg_trace.Trace.scenario;
    start_time = tr.Abg_trace.Trace.records.(0).Abg_trace.Record.time;
    records = tr.Abg_trace.Trace.records;
  }

let divergence ~cca_a ~cca_b cfg =
  let ta = collect cfg ~name:cca_a in
  let tb = collect cfg ~name:cca_b in
  let _, va = Abg_trace.Trace.observed_series ta in
  let _, vb = Abg_trace.Trace.observed_series tb in
  if Array.length va < 2 || Array.length vb < 2 then 0.0
  else Abg_distance.Metric.compute Abg_distance.Metric.default ~truth:va
      ~candidate:vb

let counterexample ~cca ~handler cfg =
  let tr = collect cfg ~name:cca in
  if Array.length tr.Abg_trace.Trace.records < 2 then 0.0
  else
    let d = Abg_core.Replay.distance handler (whole_segment tr) in
    if Float.is_nan d then 0.0 else d

let starvation ~cca cfg =
  let ctor = constructor_of cca in
  let stats = Sim.run cfg (ctor ~mss:cfg.Config.mss ()) in
  let capacity = Config.capacity_bytes cfg in
  if capacity <= 0.0 then 0.0
  else
    Float.max 0.0 (1.0 -. (stats.Sim.delivered_bytes /. capacity))

(** [evaluate spec cfg] scores one decoded scenario. Raises on a spec
    that names an unknown CCA or lacks a required field — the batch
    runner's quarantine machinery contains it. *)
let evaluate (spec : spec) cfg =
  Abg_obs.Obs.Counter.incr obs_evaluations;
  match spec.kind with
  | Divergence -> (
      match spec.cca_b with
      | Some cca_b -> divergence ~cca_a:spec.cca ~cca_b cfg
      | None -> failwith "fuzz: divergence fitness needs two CCAs")
  | Counterexample -> (
      match spec.handler with
      | Some handler -> counterexample ~cca:spec.cca ~handler cfg
      | None -> failwith "fuzz: counterexample fitness needs a handler")
  | Throughput -> starvation ~cca:spec.cca cfg
