(** Lossless s-expression codec for DSL handlers, so a synthesized
    handler can travel inside a serialized fuzz job. Bit-exact round
    trip: [decode_num (encode_num e) = Some e] up to structural
    equality. *)

val encode_num : Abg_dsl.Expr.num -> string
val decode_num : string -> Abg_dsl.Expr.num option
