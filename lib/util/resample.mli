(** Time-series resampling: converting irregular per-ACK (time, value)
    traces into fixed-rate series the distance metrics can compare. *)

val linear : times:float array -> values:float array -> n:int -> float array
(** Linear interpolation onto [n] evenly spaced points spanning the time
    range. Requires [times] increasing and non-empty. *)

val hold : times:float array -> values:float array -> n:int -> float array
(** Zero-order hold — the value at [t] is the last sample at or before
    [t], matching the step-function semantics of a congestion window. *)

val hold_fn :
  time:(int -> float) -> value:(int -> float) -> len:int -> n:int -> float array
(** {!hold} over the points [(time i, value i)], [i] in [0 .. len-1],
    without materialized input arrays; bit-identical to calling {!hold}
    on copies. *)

val linear_fn_into :
  time:(int -> float) -> value:(int -> float) -> len:int -> dst:float array ->
  unit
(** {!linear} over the points [(time i, value i)], [i] in [0 .. len-1],
    written into [dst] (length = output size) with no intermediate
    allocation; bit-identical to calling {!linear} on copies. *)

val downsample : 'a array -> int -> 'a array
(** Evenly strided subset keeping first and last elements. *)
