(** Closed float intervals with an explicit NaN possibility flag — the
    abstract domain backing [Abg_analysis]. A value is described by the
    set [[lo, hi]] (endpoints may be infinite) plus a flag saying whether
    NaN is also a possible outcome.

    Soundness contract: if [contains a x] and [contains b y], then the
    concrete result of the mirrored float operation on [x] and [y] is
    contained in the result interval. The transfer functions mirror the
    DSL evaluator exactly: division is {!Floatx.safe_div} (near-zero
    denominator yields 0), cube root is {!Floatx.cbrt}, and [mod_eq] is
    the evaluator's tolerant divisibility predicate. *)

type t = private { lo : float; hi : float; nan : bool }

val v : ?nan:bool -> float -> float -> t
(** [v lo hi] is the interval [[lo, hi]]. Raises [Invalid_argument] if
    [lo > hi] or either endpoint is NaN. [nan] defaults to [false]. *)

val const : float -> t
(** Singleton interval; a NaN constant maps to {!top}. *)

val top : t
(** All floats including NaN. *)

val contains : t -> float -> bool
(** Membership; [contains i nan] is the NaN flag. *)

val contains_zero : t -> bool

val has_inf : t -> bool
(** Whether either endpoint is infinite. *)

val join : t -> t -> t
(** Least upper bound (interval hull, NaN flags or-ed). *)

val with_nan : t -> t
(** Same bounds with the NaN flag forced on. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val safe_div : t -> t -> t
(** Abstract counterpart of {!Floatx.safe_div}: the near-zero part of the
    denominator contributes exactly {0}, the sign-definite parts divide
    normally. *)

val cube : t -> t

val cbrt : t -> t
(** Abstract {!Floatx.cbrt}; endpoints widened by two ulps because libm's
    [pow] is not guaranteed correctly rounded. *)

(** Three-valued truth for abstract comparisons. *)
type verdict = True | False | Unknown

val lt : t -> t -> verdict
(** [lt a b] is [True] only when every concrete pair satisfies [x < y]
    and neither side can be NaN; [False] when no pair can (which holds
    even under possible NaN, since NaN comparisons are false). *)

val gt : t -> t -> verdict

val mod_eq : t -> t -> verdict
(** Abstract counterpart of the evaluator's tolerant [a % b = 0]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
