(** Time-series resampling.

    CWND traces are irregular in time (one sample per ACK). The distance
    metrics in [Abg_distance] compare value series; this module converts a
    (time, value) step function to a fixed-rate series by linear
    interpolation or zero-order hold, so two traces collected under
    different ACK clocks become comparable. *)

(** [linear ~times ~values ~n] resamples onto [n] evenly spaced points
    spanning [times.(0) .. times.(last)], interpolating linearly.
    Requires [times] strictly increasing and non-empty. *)
let linear ~times ~values ~n =
  let len = Array.length times in
  assert (len = Array.length values && len > 0 && n > 0);
  if len = 1 then Array.make n values.(0)
  else begin
    let t0 = times.(0) and t1 = times.(len - 1) in
    let span = t1 -. t0 in
    let out = Array.make n 0.0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let t =
        if n = 1 then t0 else t0 +. (span *. float_of_int i /. float_of_int (n - 1))
      in
      while !j < len - 2 && times.(!j + 1) < t do
        incr j
      done;
      let ta = times.(!j) and tb = times.(!j + 1) in
      let va = values.(!j) and vb = values.(!j + 1) in
      let frac = if tb = ta then 0.0 else (t -. ta) /. (tb -. ta) in
      let frac = Float.max 0.0 (Float.min 1.0 frac) in
      out.(i) <- va +. (frac *. (vb -. va))
    done;
    out
  end

(** [hold ~times ~values ~n] is like {!linear} but with zero-order hold: the
    value at time [t] is the last sample at or before [t]. This matches the
    semantics of a congestion window, which is a step function. *)
let hold ~times ~values ~n =
  let len = Array.length times in
  assert (len = Array.length values && len > 0 && n > 0);
  if len = 1 then Array.make n values.(0)
  else begin
    let t0 = times.(0) and t1 = times.(len - 1) in
    let span = t1 -. t0 in
    let out = Array.make n 0.0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let t =
        if n = 1 then t0 else t0 +. (span *. float_of_int i /. float_of_int (n - 1))
      in
      while !j < len - 1 && times.(!j + 1) <= t do
        incr j
      done;
      out.(i) <- values.(!j)
    done;
    out
  end

(** [hold_fn ~time ~value ~len ~n] is {!hold} over the points
    [(time i, value i)], [i] in [0 .. len-1], reading samples through
    accessors instead of materialized arrays. The output floats are the
    same accessor results {!hold} would read from copies, so the series is
    bit-identical — without the two [O(len)] array allocations a caller
    holding an array of records would need. *)
let hold_fn ~time ~value ~len ~n =
  assert (len > 0 && n > 0);
  if len = 1 then Array.make n (value 0)
  else begin
    let t0 = time 0 and t1 = time (len - 1) in
    let span = t1 -. t0 in
    let out = Array.make n 0.0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let t =
        if n = 1 then t0 else t0 +. (span *. float_of_int i /. float_of_int (n - 1))
      in
      while !j < len - 1 && time (!j + 1) <= t do
        incr j
      done;
      out.(i) <- value !j
    done;
    out
  end

(** [linear_fn_into ~time ~value ~len ~dst] is {!linear} over the points
    [(time i, value i)], [i] in [0 .. len-1], written into [dst] (whose
    length is the output [n]) instead of a fresh array. The float results
    are exactly the ones {!linear} computes from materialized copies, so
    the output is bit-identical — this is the zero-allocation resample
    the serving layer runs on every classification query, reading the
    sliding window's ring buffer through [value]. *)
let linear_fn_into ~time ~value ~len ~dst =
  let n = Array.length dst in
  assert (len > 0 && n > 0);
  if len = 1 then Array.fill dst 0 n (value 0)
  else begin
    let t0 = time 0 and t1 = time (len - 1) in
    let span = t1 -. t0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let t =
        if n = 1 then t0 else t0 +. (span *. float_of_int i /. float_of_int (n - 1))
      in
      while !j < len - 2 && time (!j + 1) < t do
        incr j
      done;
      let ta = time !j and tb = time (!j + 1) in
      let va = value !j and vb = value (!j + 1) in
      let frac = if tb = ta then 0.0 else (t -. ta) /. (tb -. ta) in
      let frac = Float.max 0.0 (Float.min 1.0 frac) in
      dst.(i) <- va +. (frac *. (vb -. va))
    done
  end

(** [downsample xs n] keeps [n] evenly strided elements of [xs] (always
    including the first and last). *)
let downsample xs n =
  let len = Array.length xs in
  assert (n > 0);
  if len <= n then Array.copy xs
  else
    Array.init n (fun i ->
        let idx = i * (len - 1) / (n - 1) in
        xs.(idx))
