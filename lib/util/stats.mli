(** Streaming and batch descriptive statistics (numerically careful:
    Welford updates, sorted-copy quantiles). *)

type accumulator

val accumulator : unit -> accumulator
val add : accumulator -> float -> unit
val count : accumulator -> int
val mean_of : accumulator -> float
val variance_of : accumulator -> float
(** Sample variance (n-1 denominator); 0 below two samples. *)

val stddev_of : accumulator -> float
val min_of : accumulator -> float
val max_of : accumulator -> float
val of_array : float array -> accumulator

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val quantile : float array -> float -> float
(** Linear-interpolation quantile, [q] in [0, 1]. Non-empty input. *)

val median : float array -> float

val median_fn : (int -> float) -> len:int -> float
(** [median_fn f ~len] is the median of [f 0 .. f (len-1)] without an
    intermediate caller-side array. *)

val linear_regression : float array -> float array -> float * float
(** Least-squares [(slope, intercept)]. Equal non-zero lengths. *)

val linear_regression_fn :
  (int -> float) -> (int -> float) -> lo:int -> len:int -> float * float
(** [linear_regression_fn fx fy ~lo ~len] — {!linear_regression} over the
    points [(fx i, fy i)], [i] in [lo .. lo+len-1], without materializing
    sub-arrays; bit-identical to regressing over copies. [len > 0]. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; 0 when either series is constant. *)

val ewma : float -> float array -> float array
(** [ewma alpha xs] — exponentially weighted moving average. *)

val diff : float array -> float array
(** First differences (length n-1). *)

val argmin : ('a -> float) -> 'a array -> int
