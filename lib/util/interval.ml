(* Closed float intervals with an explicit NaN possibility flag.

   This is the abstract domain backing the analysis layer: a value is
   described by the set [lo, hi] (endpoints may be infinite) plus a flag
   saying whether NaN is also a possible outcome. NaN cannot live inside
   an ordered interval, so it is tracked out of band; every transfer
   function propagates it and adds it whenever an IEEE operation on
   in-range operands could produce it (inf - inf, 0 * inf, inf / inf).

   Soundness contract: if [x ∈ a] and [y ∈ b] (in the [contains] sense,
   which includes the NaN flag), then the concrete result of the mirrored
   float operation is contained in the derived interval. The transfer
   functions mirror the evaluator's semantics exactly — in particular
   division is [Floatx.safe_div] (near-zero denominators yield 0, never
   inf) and cube root is [Floatx.cbrt] (odd extension to negatives).

   Endpoint arithmetic is exact for add/sub/mul/div/cube because IEEE
   round-to-nearest is monotone in each argument, so the extreme concrete
   results are attained exactly at endpoint combinations. [cbrt] goes
   through [Float.pow], which libm does not guarantee to be correctly
   rounded, so its endpoints are widened by a couple of ulps. *)

type t = { lo : float; hi : float; nan : bool }

let v ?(nan = false) lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.v: requires lo <= hi and non-NaN endpoints";
  { lo; hi; nan }

let const c =
  if Float.is_nan c then { lo = Float.neg_infinity; hi = Float.infinity; nan = true }
  else { lo = c; hi = c; nan = false }

let top = { lo = Float.neg_infinity; hi = Float.infinity; nan = true }

let contains i x = if Float.is_nan x then i.nan else i.lo <= x && x <= i.hi
let contains_zero i = i.lo <= 0.0 && 0.0 <= i.hi
let has_inf i = i.lo = Float.neg_infinity || i.hi = Float.infinity

let join a b =
  { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; nan = a.nan || b.nan }

let with_nan i = if i.nan then i else { i with nan = true }

let neg i = { lo = -.i.hi; hi = -.i.lo; nan = i.nan }

(* inf + (-inf) is the only NaN-producing addition; it needs one operand
   interval reaching +inf and the other -inf. The endpoint sums below are
   guarded so a NaN endpoint never leaks into the bounds: when the guard
   fires the replaced bound is a sound over-approximation (the concrete
   non-NaN sums, if any, lie inside the other bound's side). *)
let add a b =
  let lo =
    if a.lo = Float.neg_infinity || b.lo = Float.neg_infinity then
      Float.neg_infinity
    else a.lo +. b.lo
  and hi =
    if a.hi = Float.infinity || b.hi = Float.infinity then Float.infinity
    else a.hi +. b.hi
  in
  let nan =
    a.nan || b.nan
    || (a.hi = Float.infinity && b.lo = Float.neg_infinity)
    || (a.lo = Float.neg_infinity && b.hi = Float.infinity)
  in
  { lo; hi; nan }

let sub a b = add a (neg b)

(* Endpoint products, with 0 * inf endpoints (IEEE NaN) replaced by 0:
   whenever that guard fires, 0 is either an attainable product (the zero
   endpoint against any finite cofactor) or a sound widening. The NaN
   possibility itself is recorded in the flag. *)
let mul a b =
  let p x y =
    let v = x *. y in
    if Float.is_nan v then 0.0 else v
  in
  let c1 = p a.lo b.lo and c2 = p a.lo b.hi and c3 = p a.hi b.lo and c4 = p a.hi b.hi in
  let lo = Float.min (Float.min c1 c2) (Float.min c3 c4)
  and hi = Float.max (Float.max c1 c2) (Float.max c3 c4) in
  let nan =
    a.nan || b.nan
    || (contains_zero a && has_inf b)
    || (contains_zero b && has_inf a)
  in
  { lo; hi; nan }

(* [Floatx.safe_div]: denominators with |y| < eps yield exactly 0; the
   rest divide normally (and can overflow to inf, or make NaN from
   inf/inf). NaN denominators fall through safe_div's guard and produce
   NaN — covered by propagating [b.nan]. The denominator interval is
   split into its near-zero, positive and negative parts and the quotient
   sets are joined. *)
let div_eps = 1e-12

let safe_div a b =
  let acc = ref None in
  let push lo hi nan =
    let piece = { lo; hi; nan } in
    acc := Some (match !acc with None -> piece | Some i -> join i piece)
  in
  let quot_region d_lo d_hi =
    (* d is a denominator region of one sign, |d| >= eps. True division:
       endpoint candidates, dropping inf/inf NaN candidates (the real
       quotients they stand in for are covered by the other endpoints). *)
    let q x y =
      let v = x /. y in
      if Float.is_nan v then None else Some v
    in
    let cands =
      List.filter_map Fun.id
        [ q a.lo d_lo; q a.lo d_hi; q a.hi d_lo; q a.hi d_hi ]
    in
    let nan = a.nan || (has_inf a && (d_lo = Float.neg_infinity || d_hi = Float.infinity)) in
    match cands with
    | [] -> if nan then push 0.0 0.0 true (* only NaN results; keep flag *)
    | c :: rest ->
        let lo = List.fold_left Float.min c rest
        and hi = List.fold_left Float.max c rest in
        push lo hi nan
  in
  (* Near-zero part of the denominator: safe_div returns exactly 0. *)
  if b.lo < div_eps && b.hi > -.div_eps then push 0.0 0.0 false;
  if b.hi >= div_eps then quot_region (Float.max b.lo div_eps) b.hi;
  if b.lo <= -.div_eps then quot_region b.lo (Float.min b.hi (-.div_eps));
  let base =
    match !acc with
    | Some i -> i
    | None -> { lo = 0.0; hi = 0.0; nan = false } (* b empty? unreachable *)
  in
  if a.nan || b.nan then with_nan base else base

(* x^3 is odd and exactly monotone under round-to-nearest (each partial
   product is monotone for x >= 0, and (-x)*(-x)*(-x) = -(x*x*x) exactly
   by sign symmetry), so endpoints map to endpoints. *)
let cube i =
  let c x = x *. x *. x in
  { lo = c i.lo; hi = c i.hi; nan = i.nan }

(* Floatx.cbrt goes through Float.pow: faithful but not guaranteed
   correctly rounded, so widen each endpoint by two ulps to absorb any
   monotonicity wobble. *)
let cbrt i =
  let widen_down x =
    if Float.is_finite x then Float.pred (Float.pred x) else x
  and widen_up x = if Float.is_finite x then Float.succ (Float.succ x) else x in
  let c x =
    if x >= 0.0 then Float.pow x (1.0 /. 3.0)
    else -.Float.pow (-.x) (1.0 /. 3.0)
  in
  { lo = widen_down (c i.lo); hi = widen_up (c i.hi); nan = i.nan }

type verdict = True | False | Unknown

(* a < b definitely true needs every pair strictly ordered AND no NaN on
   either side (NaN comparisons are false). Definitely false only needs
   the ranges disjoint the other way: NaN also compares false, so a
   possible NaN cannot flip a False verdict. *)
let lt a b =
  if (not a.nan) && (not b.nan) && a.hi < b.lo then True
  else if a.lo >= b.hi then False
  else Unknown

let gt a b = lt b a

(* The evaluator's [a % b = 0] predicate: tolerance 0.05 * |b|, and
   |b| < 1e-9 is defined as false. NaN on either side also evaluates
   false (every comparison in its implementation fails). *)
let mod_eq a b =
  if b.hi < 1e-9 && b.lo > -1e-9 then False
  else if
    (not a.nan) && (not b.nan) && a.lo = 0.0 && a.hi = 0.0
    && (b.lo >= 1e-9 || b.hi <= -1e-9)
  then True
  else Unknown

let pp ppf i =
  Fmt.pf ppf "[%g, %g]%s" i.lo i.hi (if i.nan then " or NaN" else "")

let to_string i = Fmt.str "%a" pp i
