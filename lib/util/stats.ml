(** Streaming and batch descriptive statistics.

    The classifier features (slope constancy, convexity, pulse counting) and
    the evaluation harness both need robust summary statistics; everything
    here is numerically careful (Welford updates, sorted-copy quantiles). *)

type accumulator = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minimum : float;
  mutable maximum : float;
}

let accumulator () =
  { n = 0; mean = 0.0; m2 = 0.0; minimum = infinity; maximum = neg_infinity }

(* Welford's online update: numerically stable single-pass variance. *)
let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.minimum then acc.minimum <- x;
  if x > acc.maximum then acc.maximum <- x

let count acc = acc.n
let mean_of acc = if acc.n = 0 then nan else acc.mean

let variance_of acc =
  if acc.n < 2 then 0.0 else acc.m2 /. float_of_int (acc.n - 1)

let stddev_of acc = sqrt (variance_of acc)
let min_of acc = acc.minimum
let max_of acc = acc.maximum

let of_array xs =
  let acc = accumulator () in
  Array.iter (add acc) xs;
  acc

(** [mean xs] of a non-empty array. *)
let mean xs = mean_of (of_array xs)

let variance xs = variance_of (of_array xs)
let stddev xs = stddev_of (of_array xs)

(* In-place quickselect (Hoare partition, median-of-3 pivot): after
   [select a k], [a.(k)] holds the k-th order statistic and everything
   right of it is >= it. Order statistics are the same values however
   they are obtained, so this is bit-identical to sorting — but O(n)
   where the sort this replaced was the feature extractor's single
   biggest cost. Comparisons use [Float.compare]'s total order, so nan
   placement matches the former sort exactly. *)
let select a k =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let seed = ref (Array.length a lor 0x2545F491) in
  while !lo < !hi do
    (* Pseudo-random pivot (deterministic xorshift — pivot choice affects
       only speed, never which value each rank holds), swapped into
       a.(lo): with the pivot as the leftmost element, Hoare's partition
       is the textbook version whose scans provably stay in bounds.
       Structured pivots (first/middle/median-of-3) go quadratic on the
       oscillating RTT series this routine mostly sees. *)
    seed := !seed lxor (!seed lsl 13);
    seed := !seed lxor (!seed lsr 7);
    seed := !seed lxor (!seed lsl 17);
    let mi = !lo + (!seed land max_int) mod (!hi - !lo + 1) in
    if mi <> !lo then begin
      let t = a.(!lo) in
      a.(!lo) <- a.(mi);
      a.(mi) <- t
    end;
    let pivot = a.(!lo) in
    (* Raw float comparisons, one instruction each: [quantile] routes
       nan-containing inputs to the sort-based path, so within [select]
       the data is a total order and the CLRS bounds argument holds. *)
    let i = ref (!lo - 1) and j = ref (!hi + 1) in
    let part = ref (-1) in
    while !part < 0 do
      decr j;
      while a.(!j) > pivot do
        decr j
      done;
      incr i;
      while a.(!i) < pivot do
        incr i
      done;
      if !i < !j then begin
        let t = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- t
      end
      else part := !j
    done;
    if k <= !part then hi := !part else lo := !part + 1
  done

(* [quantile_scratch a q] destroys [a] (partially reorders it in place). *)
let quantile_scratch a q =
  let n = Array.length a in
  assert (n > 0);
  if n = 1 then a.(0)
  else begin
    let has_nan = ref false in
    for i = 0 to n - 1 do
      if a.(i) <> a.(i) then has_nan := true
    done;
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let vlo, vhi =
      if !has_nan then begin
        (* nan breaks the raw-comparison total order [select] relies on;
           fall back to the sort these order statistics came from
           historically ([Float.compare] puts nan below every float). *)
        Array.sort Float.compare a;
        (a.(lo), a.(hi))
      end
      else begin
        select a lo;
        let vlo = a.(lo) in
        let vhi =
          if hi = lo then vlo
          else begin
            (* Everything right of [lo] is >= the lo-th statistic, so
               the (lo+1)-th is that suffix's minimum. *)
            let m = ref a.(lo + 1) in
            for i = lo + 2 to n - 1 do
              if a.(i) < !m then m := a.(i)
            done;
            !m
          end
        in
        (vlo, vhi)
      end
    in
    let frac = pos -. float_of_int lo in
    vlo +. (frac *. (vhi -. vlo))
  end

(** [quantile xs q] is the linear-interpolation quantile, [q] in [0, 1]. *)
let quantile xs q = quantile_scratch (Array.copy xs) q

let median xs = quantile xs 0.5

(** [median_fn f ~len] is the median of [f 0 .. f (len-1)] without the
    caller materializing an intermediate array (one scratch allocation
    instead of map + copy). *)
let median_fn f ~len = quantile_scratch (Array.init len f) 0.5

(** [linear_regression xs ys] is [(slope, intercept)] of the least-squares
    line through the points. Requires equal non-zero lengths. *)
let linear_regression xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 0);
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  let slope = if !den = 0.0 then 0.0 else !num /. !den in
  (slope, my -. (slope *. mx))

(** [linear_regression_fn fx fy ~lo ~len] is {!linear_regression} over the
    points [(fx i, fy i)] for [i] in [lo .. lo+len-1], without
    materializing sub-arrays. Same accumulation order as the array
    version, so results are bit-identical to regressing over copies. *)
let linear_regression_fn fx fy ~lo ~len =
  assert (len > 0);
  (* Welford means, matching [mean] over a copied sub-array. *)
  let mx = ref 0.0 and my = ref 0.0 in
  for i = 0 to len - 1 do
    let k = float_of_int (i + 1) in
    mx := !mx +. ((fx (lo + i) -. !mx) /. k);
    my := !my +. ((fy (lo + i) -. !my) /. k)
  done;
  let mx = !mx and my = !my in
  let num = ref 0.0 and den = ref 0.0 in
  for i = lo to lo + len - 1 do
    let dx = fx i -. mx in
    num := !num +. (dx *. (fy i -. my));
    den := !den +. (dx *. dx)
  done;
  let slope = if !den = 0.0 then 0.0 else !num /. !den in
  (slope, my -. (slope *. mx))

(** [pearson xs ys] is the Pearson correlation coefficient, or 0 when either
    series is constant. *)
let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 1);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

(** [ewma alpha xs] is the exponentially weighted moving average series with
    smoothing factor [alpha] in (0, 1]. *)
let ewma alpha xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      out.(i) <- (alpha *. xs.(i)) +. ((1.0 -. alpha) *. out.(i - 1))
    done;
    out
  end

(** [diff xs] is the first-difference series (length [n-1]). *)
let diff xs =
  let n = Array.length xs in
  if n <= 1 then [||] else Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i))

(** [argmin f xs] is the index minimizing [f xs.(i)] over a non-empty
    array. *)
let argmin f xs =
  assert (Array.length xs > 0);
  let best = ref 0 and best_v = ref (f xs.(0)) in
  for i = 1 to Array.length xs - 1 do
    let v = f xs.(i) in
    if v < !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best
