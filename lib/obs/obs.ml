(** Low-overhead pipeline telemetry: sharded counters, gauges, duration
    histograms, and hierarchical span timers.

    The paper frames synthesis as noise-tolerant optimization, so the
    pipeline's health is quantitative — prune rates, cache hit ratios,
    early-abandon rates, pool utilization. This module gives those numbers
    one uniform home with two properties the hot paths need:

    {b No atomics on hot paths.} Every counter and float cell is sharded
    per domain: each domain owns a plain [int array]/[float array] slot
    (registered through [Domain.DLS] on first use), written with ordinary
    loads and stores. Shards are merged only at {!snapshot} time, under
    the registry mutex. A cell is written by exactly one domain, so there
    are no read-modify-write races and no contention — an increment is a
    DLS lookup, a bounds check and an array store.

    {b A global disable that costs one branch.} With [set_enabled false]
    every record operation is a single load-and-branch no-op; spans do
    not read the clock. The pipeline's *semantic* statistics (the prune
    counters behind [Refinement.result.pruned], the trace-store hit/miss
    counters) ride on this layer, so disabling telemetry also disables
    those — callers that need them keep telemetry on (the default).

    {b Determinism contract.} Counters registered without [~volatile]
    must count events whose totals are a pure function of the workload
    and seed — independent of domain count, scheduling, and timing. Their
    merged values are bit-stable across runs and machines, which is what
    the CI telemetry gate diffs. Scheduling-dependent counts (pool
    participation, job submissions that depend on machine parallelism)
    are registered [~volatile:true] and reported separately; durations
    and gauges are never part of the deterministic section. *)

(* -- Enabled flag -- *)

(* A plain bool ref read from every domain: immediate values cannot tear,
   and a stale read only delays the effect of a toggle by a few events,
   which toggling callers (benches, tests) do at quiescent points. *)
let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* -- Sharded cells --

   Cell ids are allocated process-wide (counters and histogram buckets
   share the int-cell space; float cells are separate). Each domain's
   shard holds one array per space, grown on demand; the registry keeps
   every shard ever created so counts survive domain termination (pool
   shutdown must not lose telemetry). *)

type shard = {
  slot : int;  (* registration order; stable for per-domain reporting *)
  mutable ints : int array;
  mutable floats : float array;
}

let registry_m = Mutex.create ()
let shards : shard list ref = ref []
let next_slot = ref 0
let n_int_cells = ref 0
let n_float_cells = ref 0

let shard_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock registry_m;
      let s =
        {
          slot = !next_slot;
          ints = Array.make (Stdlib.max 64 !n_int_cells) 0;
          floats = Array.make (Stdlib.max 16 !n_float_cells) 0.0;
        }
      in
      incr next_slot;
      shards := s :: !shards;
      Mutex.unlock registry_m;
      s)

(* Cells are almost always allocated at module-initialization time, before
   any parallel work, so growth after shards exist is rare; when it does
   happen the owner swaps in a grown copy, which a concurrent snapshot may
   miss by one event — snapshots are quiescent-point operations. *)
let int_add id n =
  let s = Domain.DLS.get shard_key in
  let a = s.ints in
  if id < Array.length a then a.(id) <- a.(id) + n
  else begin
    let a' = Array.make (Stdlib.max (id + 1) (2 * Array.length a)) 0 in
    Array.blit a 0 a' 0 (Array.length a);
    a'.(id) <- n;
    s.ints <- a'
  end

let float_add id v =
  let s = Domain.DLS.get shard_key in
  let a = s.floats in
  if id < Array.length a then a.(id) <- a.(id) +. v
  else begin
    let a' = Array.make (Stdlib.max (id + 1) (2 * Array.length a)) 0.0 in
    Array.blit a 0 a' 0 (Array.length a);
    a'.(id) <- v;
    s.floats <- a'
  end

(* Merged reads and resets: under the registry mutex so the shard list is
   stable; values written concurrently may lag by an in-flight event. *)
let int_sum id =
  Mutex.lock registry_m;
  let v =
    List.fold_left
      (fun acc s -> if id < Array.length s.ints then acc + s.ints.(id) else acc)
      0 !shards
  in
  Mutex.unlock registry_m;
  v

let float_sum id =
  Mutex.lock registry_m;
  let v =
    List.fold_left
      (fun acc s ->
        if id < Array.length s.floats then acc +. s.floats.(id) else acc)
      0.0 !shards
  in
  Mutex.unlock registry_m;
  v

let float_per_slot id =
  Mutex.lock registry_m;
  let v =
    List.filter_map
      (fun s ->
        if id < Array.length s.floats && s.floats.(id) <> 0.0 then
          Some (s.slot, s.floats.(id))
        else None)
      !shards
  in
  Mutex.unlock registry_m;
  List.sort compare v

let int_zero id =
  Mutex.lock registry_m;
  List.iter
    (fun s -> if id < Array.length s.ints then s.ints.(id) <- 0)
    !shards;
  Mutex.unlock registry_m

(* -- Instrument registries --

   [make] is idempotent by name: modules register their instruments at
   init time, and tests or re-entrant loads get the existing cell back
   rather than a fresh one (which would fork the count). *)

let alloc_int_cell () =
  Mutex.lock registry_m;
  let id = !n_int_cells in
  incr n_int_cells;
  Mutex.unlock registry_m;
  id

let alloc_float_cell () =
  Mutex.lock registry_m;
  let id = !n_float_cells in
  incr n_float_cells;
  Mutex.unlock registry_m;
  id

module Counter = struct
  type t = { name : string; id : int; volatile : bool }

  let registered : (string, t) Hashtbl.t = Hashtbl.create 64
  let registered_m = Mutex.create ()

  let make ?(volatile = false) name =
    Mutex.lock registered_m;
    let t =
      match Hashtbl.find_opt registered name with
      | Some t -> t
      | None ->
          let t = { name; id = alloc_int_cell (); volatile } in
          Hashtbl.add registered name t;
          t
    in
    Mutex.unlock registered_m;
    t

  let add t n = if !enabled_flag && n <> 0 then int_add t.id n
  let incr t = add t 1
  let value t = int_sum t.id
  let name t = t.name
  let reset t = int_zero t.id

  let all () =
    Mutex.lock registered_m;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registered [] in
    Mutex.unlock registered_m;
    List.sort (fun a b -> compare a.name b.name) l
end

module Gauge = struct
  (* Last-writer-wins scalar, set at quiescent points (store sizes, pool
     width); not sharded — a sum across domains has no meaning for a
     level. *)
  type t = { name : string; mutable v : float }

  let registered : (string, t) Hashtbl.t = Hashtbl.create 16
  let registered_m = Mutex.create ()

  let make name =
    Mutex.lock registered_m;
    let t =
      match Hashtbl.find_opt registered name with
      | Some t -> t
      | None ->
          let t = { name; v = 0.0 } in
          Hashtbl.add registered name t;
          t
    in
    Mutex.unlock registered_m;
    t

  let set t v = if !enabled_flag then t.v <- v
  let value t = t.v
  let name t = t.name

  let all () =
    Mutex.lock registered_m;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registered [] in
    Mutex.unlock registered_m;
    List.sort (fun a b -> compare a.name b.name) l
end

module Histogram = struct
  (* Power-of-two buckets: bucket [b] holds values [v] with
     [2^(b-1) <= v < 2^b] (bucket 0 holds v < 1, the top bucket is
     open-ended). The bucket index is the binary exponent from [frexp] —
     no logarithm, no search. One int cell per bucket per domain, plus a
     float cell for the exact sum. *)
  let buckets = 48

  type t = {
    name : string;
    base : int;  (* first of [buckets] consecutive int cells *)
    sum_id : int;  (* float cell: exact sum of observed values *)
  }

  let registered : (string, t) Hashtbl.t = Hashtbl.create 32
  let registered_m = Mutex.create ()

  let make name =
    Mutex.lock registered_m;
    let t =
      match Hashtbl.find_opt registered name with
      | Some t -> t
      | None ->
          Mutex.lock registry_m;
          let base = !n_int_cells in
          n_int_cells := !n_int_cells + buckets;
          Mutex.unlock registry_m;
          let t = { name; base; sum_id = alloc_float_cell () } in
          Hashtbl.add registered name t;
          t
    in
    Mutex.unlock registered_m;
    t

  let bucket_of v =
    if not (v >= 1.0) then 0 (* also catches nan and negatives *)
    else if not (Float.is_finite v) then buckets - 1
      (* frexp's exponent is unspecified for infinities *)
    else
      let e = snd (Float.frexp v) in
      if e >= buckets then buckets - 1 else e

  (** Lower bound of bucket [b] (inclusive); [bucket_of v = b] implies
      [lower_bound b <= v < lower_bound (b + 1)] for interior buckets. *)
  let lower_bound b = if b = 0 then 0.0 else Float.ldexp 1.0 (b - 1)

  let observe t v =
    if !enabled_flag then begin
      int_add (t.base + bucket_of v) 1;
      float_add t.sum_id v
    end

  type summary = { count : int; sum : float; nonzero : (int * int) list }

  let summary t =
    let nonzero = ref [] in
    let count = ref 0 in
    for b = buckets - 1 downto 0 do
      let n = int_sum (t.base + b) in
      if n > 0 then begin
        nonzero := (b, n) :: !nonzero;
        count := !count + n
      end
    done;
    { count = !count; sum = float_sum t.sum_id; nonzero = !nonzero }

  (* Quantile estimate from the power-of-two buckets: walk the
     cumulative counts to the target rank, then interpolate linearly
     within the bucket (the top, open-ended bucket reports its lower
     bound). Resolution is a factor of two — fine for the latency
     summaries the serve daemon prints on drain; exact percentiles come
     from raw samples (the serve bench keeps its own). *)
  let quantile s q =
    if s.count = 0 then 0.0
    else begin
      let target =
        Stdlib.max 1
          (int_of_float (Float.round (q *. float_of_int s.count)))
      in
      let rec walk cum = function
        | [] -> 0.0
        | (b, n) :: rest ->
            if cum + n >= target then begin
              let lb = lower_bound b in
              if b >= buckets - 1 then lb
              else begin
                let ub = lower_bound (b + 1) in
                let frac = float_of_int (target - cum) /. float_of_int n in
                lb +. (frac *. (ub -. lb))
              end
            end
            else walk (cum + n) rest
      in
      walk 0 s.nonzero
    end

  let name t = t.name

  let all () =
    Mutex.lock registered_m;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registered [] in
    Mutex.unlock registered_m;
    List.sort (fun a b -> compare a.name b.name) l
end

module Floatcell = struct
  (* Sharded float accumulator (per-domain busy time): each domain adds
     into its own cell; reporting offers both the total and the per-slot
     breakdown (slot = shard registration order). *)
  type t = { name : string; id : int }

  let registered : (string, t) Hashtbl.t = Hashtbl.create 16
  let registered_m = Mutex.create ()

  let make name =
    Mutex.lock registered_m;
    let t =
      match Hashtbl.find_opt registered name with
      | Some t -> t
      | None ->
          let t = { name; id = alloc_float_cell () } in
          Hashtbl.add registered name t;
          t
    in
    Mutex.unlock registered_m;
    t

  let add t v = if !enabled_flag then float_add t.id v
  let total t = float_sum t.id
  let per_domain t = float_per_slot t.id
  let name t = t.name

  let all () =
    Mutex.lock registered_m;
    let l = Hashtbl.fold (fun _ t acc -> t :: acc) registered [] in
    Mutex.unlock registered_m;
    List.sort (fun a b -> compare a.name b.name) l
end

(* -- Span timers --

   Hierarchical phase timing: [span "refine" f] records the duration of
   [f] into the histogram ["span/<path>"], where the path joins the names
   of the enclosing spans *on this domain* (each domain has its own span
   stack, so pool workers time their own phases without cross-talk). *)

let now_ns () = Unix.gettimeofday () *. 1e9

let span_stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span name f =
  if not !enabled_flag then f ()
  else begin
    let stack = Domain.DLS.get span_stack_key in
    let path =
      match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    let h = Histogram.make ("span/" ^ path) in
    stack := path :: !stack;
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        (match !stack with [] -> () | _ :: rest -> stack := rest);
        Histogram.observe h (now_ns () -. t0))
      f
  end

(* -- Snapshot -- *)

type snapshot = {
  counters : (string * int) list;
  volatile : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.summary) list;
  floatcells : (string * float * (int * float) list) list;
      (** (name, total, per-domain-slot breakdown) *)
}

let snapshot () =
  let counters, volatile =
    List.partition
      (fun (c : Counter.t) -> not c.Counter.volatile)
      (Counter.all ())
  in
  let read = List.map (fun c -> (Counter.name c, Counter.value c)) in
  {
    counters = read counters;
    volatile = read volatile;
    gauges = List.map (fun g -> (Gauge.name g, Gauge.value g)) (Gauge.all ());
    histograms =
      List.map (fun h -> (Histogram.name h, Histogram.summary h)) (Histogram.all ());
    floatcells =
      List.map
        (fun f -> (Floatcell.name f, Floatcell.total f, Floatcell.per_domain f))
        (Floatcell.all ());
  }

(** [delta_counters ~before ~after] — per-counter increments between two
    snapshots (deterministic section only), dropping zero deltas.
    Counters registered after [before] was taken count from zero. This
    is the per-job telemetry scoping the batch runner uses: snapshot
    around a job and the delta is that job's footprint — exact under
    serial dispatch; under concurrent dispatch overlapping jobs'
    work lands in whichever enclosing delta observes it. *)
let delta_counters ~before ~after =
  let base = before.counters in
  List.filter_map
    (fun (name, v) ->
      let prior =
        match List.assoc_opt name base with Some p -> p | None -> 0
      in
      if v = prior then None else Some (name, v - prior))
    after.counters

(** Zero every registered instrument (tests). Gauges reset to 0. *)
let reset () =
  List.iter Counter.reset (Counter.all ());
  List.iter (fun (g : Gauge.t) -> g.Gauge.v <- 0.0) (Gauge.all ());
  List.iter
    (fun (h : Histogram.t) ->
      for b = 0 to Histogram.buckets - 1 do
        int_zero (h.Histogram.base + b)
      done;
      Mutex.lock registry_m;
      List.iter
        (fun s ->
          if h.Histogram.sum_id < Array.length s.floats then
            s.floats.(h.Histogram.sum_id) <- 0.0)
        !shards;
      Mutex.unlock registry_m)
    (Histogram.all ());
  List.iter
    (fun (f : Floatcell.t) ->
      Mutex.lock registry_m;
      List.iter
        (fun s ->
          if f.Floatcell.id < Array.length s.floats then
            s.floats.(f.Floatcell.id) <- 0.0)
        !shards;
      Mutex.unlock registry_m)
    (Floatcell.all ())
