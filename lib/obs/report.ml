(** Machine-readable telemetry reports.

    Serializes an {!Obs.snapshot} to a stable JSON document: object keys
    appear in sorted order, integers are printed without an exponent or
    fraction, and the ["counters"] section contains only the
    deterministic counters — so for a fixed seed two runs produce
    byte-identical ["counters"] sections, and CI can diff that section
    against a committed baseline with no tolerance.

    The module also carries the reader side: a small JSON parser (for
    exactly the documents this module and the bench harness emit) and
    {!diff_counters}, the comparison the [telemetry-gate] CI job runs. *)

(* -- Writer -- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats: shortest round-trip representation, with a guard so the output
   is always a valid JSON number (no "inf"/"nan" tokens). *)
let float_str v =
  if Float.is_nan v then "null"
  else if v = Float.infinity then "1e999"
  else if v = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.17g" v in
    let shorter = Printf.sprintf "%.12g" v in
    if float_of_string shorter = v then shorter else s

let obj buf ~indent entries =
  let pad = String.make indent ' ' in
  if entries = [] then Buffer.add_string buf "{}"
  else begin
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, emit_value) ->
        Buffer.add_string buf pad;
        Buffer.add_string buf "  \"";
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit_value buf;
        if i < List.length entries - 1 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n')
      entries;
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  end

let int_entries kvs =
  List.map (fun (k, v) -> (k, fun buf -> Buffer.add_string buf (string_of_int v))) kvs

let schema = "abagnale-telemetry/1"

let to_json (s : Obs.snapshot) =
  let buf = Buffer.create 4096 in
  let histogram_value (sum : Obs.Histogram.summary) buf =
    obj buf ~indent:4
      [
        ("count", fun b -> Buffer.add_string b (string_of_int sum.Obs.Histogram.count));
        ("sum", fun b -> Buffer.add_string b (float_str sum.Obs.Histogram.sum));
        ( "buckets",
          fun b ->
            obj b ~indent:6
              (List.map
                 (fun (bk, n) ->
                   ( string_of_int bk,
                     fun b -> Buffer.add_string b (string_of_int n) ))
                 sum.Obs.Histogram.nonzero) );
      ]
  in
  let floatcell_value (total, per_domain) buf =
    obj buf ~indent:4
      (( "total", fun b -> Buffer.add_string b (float_str total) )
      :: List.map
           (fun (slot, v) ->
             ( "domain" ^ string_of_int slot,
               fun b -> Buffer.add_string b (float_str v) ))
           per_domain)
  in
  obj buf ~indent:0
    [
      ("schema", fun b -> Buffer.add_string b ("\"" ^ escape schema ^ "\""));
      ("counters", fun b -> obj b ~indent:2 (int_entries s.Obs.counters));
      ("volatile", fun b -> obj b ~indent:2 (int_entries s.Obs.volatile));
      ( "gauges",
        fun b ->
          obj b ~indent:2
            (List.map
               (fun (k, v) -> (k, fun b -> Buffer.add_string b (float_str v)))
               s.Obs.gauges) );
      ( "histograms",
        fun b ->
          obj b ~indent:2
            (List.map
               (fun (k, sum) -> (k, histogram_value sum))
               s.Obs.histograms) );
      ( "floatcells",
        fun b ->
          obj b ~indent:2
            (List.map
               (fun (k, total, per_domain) ->
                 (k, floatcell_value (total, per_domain)))
               s.Obs.floatcells) );
    ];
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** [write path] serializes a fresh snapshot to [path]. *)
let write path =
  let oc = open_out path in
  output_string oc (to_json (Obs.snapshot ()));
  close_out oc

(* -- Reader: a minimal JSON parser --

   Covers the full JSON grammar minus unicode escapes beyond \uXXXX
   (decoded as a single byte when < 0x100, '?' otherwise) — more than
   enough for the documents this module writes. Object member order is
   preserved. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  Buffer.add_char buf
                    (if code < 0x100 then Char.chr code else '?')
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

(** The ["counters"] section of a telemetry document, as written — the
    deterministic subset a CI gate may diff. *)
let counters_of_json (j : json) =
  match member "counters" j with
  | Some (Obj members) ->
      List.map
        (fun (k, v) ->
          match v with
          | Num f when Float.is_integer f -> (k, int_of_float f)
          | _ -> raise (Parse_error ("non-integer counter " ^ k)))
        members
  | _ -> raise (Parse_error "missing \"counters\" object")

type drift =
  | Missing of string * int  (** in baseline, absent from current *)
  | Unexpected of string * int  (** in current, absent from baseline *)
  | Changed of string * int * int  (** (name, baseline, current) *)

let pp_drift = function
  | Missing (k, v) -> Printf.sprintf "missing   %-40s baseline %d, now absent" k v
  | Unexpected (k, v) -> Printf.sprintf "unexpected %-40s absent from baseline, now %d" k v
  | Changed (k, b, c) -> Printf.sprintf "changed   %-40s baseline %d -> %d" k b c

(** [diff_counters ~baseline ~current] compares the deterministic counter
    sections of two telemetry documents (raw JSON strings). Returns every
    drift, sorted by counter name; [[]] means the sections agree exactly
    (same keys, same values). *)
let diff_counters ~baseline ~current =
  let b = counters_of_json (parse baseline) in
  let c = counters_of_json (parse current) in
  let drifts = ref [] in
  List.iter
    (fun (k, bv) ->
      match List.assoc_opt k c with
      | None -> drifts := Missing (k, bv) :: !drifts
      | Some cv -> if cv <> bv then drifts := Changed (k, bv, cv) :: !drifts)
    b;
  List.iter
    (fun (k, cv) ->
      if not (List.mem_assoc k b) then drifts := Unexpected (k, cv) :: !drifts)
    c;
  List.sort
    (fun a b ->
      let key = function
        | Missing (k, _) | Unexpected (k, _) | Changed (k, _, _) -> k
      in
      compare (key a) (key b))
    !drifts

(** Convenience for report consumers: the value of one deterministic
    counter in a snapshot, 0 when absent. *)
let find_counter (s : Obs.snapshot) name =
  match List.assoc_opt name s.Obs.counters with Some v -> v | None -> 0
