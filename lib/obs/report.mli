(** Machine-readable telemetry reports: stable JSON serialization of an
    {!Obs.snapshot} (sorted keys; the ["counters"] section is
    byte-identical across runs for a fixed seed), a minimal JSON reader,
    and the counter diff the CI telemetry gate runs. *)

val schema : string
(** Schema tag written into every document. *)

val to_json : Obs.snapshot -> string
(** Serialize a snapshot: ["schema"], ["counters"] (deterministic),
    ["volatile"], ["gauges"], ["histograms"], ["floatcells"]. *)

val write : string -> unit
(** [write path] serializes a fresh {!Obs.snapshot} to [path]. *)

(** Parsed JSON (reader side). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
val member : string -> json -> json option

val counters_of_json : json -> (string * int) list
(** The ["counters"] section of a telemetry document, in document order.
    Raises {!Parse_error} if absent or non-integer. *)

(** One difference between two counter sections. *)
type drift =
  | Missing of string * int  (** in baseline, absent from current *)
  | Unexpected of string * int  (** in current, absent from baseline *)
  | Changed of string * int * int  (** (name, baseline, current) *)

val pp_drift : drift -> string

val diff_counters : baseline:string -> current:string -> drift list
(** Compare the deterministic counter sections of two telemetry documents
    (raw JSON strings); [[]] means exact agreement. *)

val find_counter : Obs.snapshot -> string -> int
(** Value of one deterministic counter in a snapshot, 0 when absent. *)
