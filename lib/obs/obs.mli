(** Low-overhead pipeline telemetry: per-domain-sharded counters, gauges,
    duration histograms, and hierarchical span timers.

    Cells are plain [int]/[float] slots owned by one domain each and
    merged only at {!snapshot} time — no atomics on hot paths. A global
    disable ({!set_enabled}) turns every record operation into a single
    load-and-branch.

    Determinism contract: counters registered without [~volatile] must
    count events whose totals depend only on the workload and seed (not
    on domain count, scheduling, or timing); their merged values are
    bit-stable across runs, which is what the CI telemetry gate diffs.
    Scheduling-dependent counts are registered [~volatile:true]; gauges,
    histograms and float cells are never part of the deterministic
    section. *)

val enabled : unit -> bool
(** Whether recording is currently on (default: on). *)

val set_enabled : bool -> unit
(** Toggle all recording. Toggle only at quiescent points: a concurrent
    domain may observe the change a few events late. *)

module Counter : sig
  type t

  val make : ?volatile:bool -> string -> t
  (** Register (or look up — [make] is idempotent by name) a counter.
      [~volatile:true] marks it scheduling-dependent: reported outside
      the deterministic section. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  (** Merged total across all domain shards. *)

  val name : t -> string
  val reset : t -> unit
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  (** Last writer wins; set at quiescent points. *)

  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val buckets : int
  (** Number of power-of-two buckets. *)

  val make : string -> t

  val observe : t -> float -> unit
  (** Record one value (nanoseconds for durations; unit-agnostic). *)

  val bucket_of : float -> int
  (** Bucket index for a value: [b] holds [2^(b-1) <= v < 2^b]; bucket 0
      holds everything below 1 (including NaN and negatives); the top
      bucket is open-ended. *)

  val lower_bound : int -> float
  (** Inclusive lower bound of a bucket ([0.0] for bucket 0). *)

  type summary = {
    count : int;
    sum : float;
    nonzero : (int * int) list;  (** (bucket index, count), ascending *)
  }

  val summary : t -> summary

  val quantile : summary -> float -> float
  (** [quantile s q] ([q] in [0, 1]) estimated from the power-of-two
      buckets (linear interpolation within a bucket, so resolution is a
      factor of two; the open-ended top bucket reports its lower bound).
      [0.0] on an empty summary. *)

  val name : t -> string
end

module Floatcell : sig
  type t
  (** Sharded float accumulator (e.g. per-domain busy time). *)

  val make : string -> t
  val add : t -> float -> unit
  val total : t -> float

  val per_domain : t -> (int * float) list
  (** Nonzero cells as (domain slot, value), slot = shard registration
      order. *)

  val name : t -> string
end

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f] into the duration histogram
    ["span/<path>"], where the path joins enclosing span names on the
    current domain ([span "synth" (fun () -> span "refine" f)] records
    under ["span/synth/refine"]). Disabled mode runs [f] untimed. *)

type snapshot = {
  counters : (string * int) list;  (** deterministic, sorted by name *)
  volatile : (string * int) list;  (** scheduling-dependent counters *)
  gauges : (string * float) list;
  histograms : (string * Histogram.summary) list;
  floatcells : (string * float * (int * float) list) list;
      (** (name, total, per-domain-slot breakdown) *)
}

val snapshot : unit -> snapshot
(** Merge every registered instrument, each section sorted by name.
    Intended for quiescent points (end of a run, between phases). *)

val delta_counters :
  before:snapshot -> after:snapshot -> (string * int) list
(** Per-counter increments between two snapshots (deterministic section
    only; zero deltas dropped, unseen counters count from zero). The
    batch runner's per-job telemetry scoping: exact when jobs run
    serially, attributed to the observing scope under concurrency. *)

val reset : unit -> unit
(** Zero every registered instrument (tests). *)
