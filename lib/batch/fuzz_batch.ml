(** Batch-backed population evaluation for the fuzzer.

    Each generation becomes its own batch run directory
    ([DIR/gen-NNNN]) whose grid is one {!Job.Fuzz_eval} job per
    *distinct* genome (duplicates produced by elitism or converged
    populations share one job). Running a generation is therefore
    resumable, shardable across [--workers], and inherits the
    kill-and-resume ≡ uninterrupted byte-identical contract: a settled
    generation re-runs as a pure journal read, which is also how
    [fuzz resume] and [fuzz report] re-derive a whole search without any
    mutable search state on disk. *)

type spec = {
  fitness : Abg_fuzz.Fitness.kind;
  cca : string;
  cca_b : string option;
  handler : string option;  (** codec-encoded counterexample target *)
  duration : float;  (** simulated seconds per evaluation *)
  scenario_seed : int;  (** impairment seed shared by every scenario *)
}

let ( / ) = Filename.concat

let gen_dir dir gen = dir / Printf.sprintf "gen-%04d" gen

let job_of_genome spec genome =
  {
    Job.kind =
      Job.Fuzz_eval
        {
          fitness = Abg_fuzz.Fitness.kind_name spec.fitness;
          cca_b = spec.cca_b;
          handler = spec.handler;
          genome = Abg_fuzz.Genome.encode genome;
        };
    cca = spec.cca;
    seed = spec.scenario_seed;
    configs =
      [
        Abg_fuzz.Genome.to_config ~duration:spec.duration
          ~seed:spec.scenario_seed genome;
      ];
  }

(* Fitness of a quarantined (or missing) evaluation: the individual
   loses every tournament but the search keeps moving. *)
let failed_fitness = neg_infinity

(** [evaluate ~dir ~settings spec ~gen genomes] — score one population
    as batch jobs under [gen_dir dir gen], creating the run on first
    touch and resuming it otherwise. Returns fitness per genome, in
    population order. *)
let evaluate ~dir ~settings (spec : spec) ~gen genomes =
  let gdir = gen_dir dir gen in
  let jobs =
    Array.to_list (Array.map (job_of_genome spec) genomes)
    |> List.sort_uniq Job.compare_canonical
  in
  let summary =
    if Sys.file_exists (Runner.grid_path gdir) then
      Runner.resume ~dir:gdir ~settings ()
    else Runner.run ~dir:gdir ~settings jobs
  in
  ignore summary;
  (* Join results back to genomes through the journal family: every
     settled digest maps to its result blob's "value" field. *)
  let store = Store.open_ (Runner.store_path gdir) in
  let values = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.entry) ->
      match (e.Journal.status, e.Journal.result) with
      | Journal.Ok, Some blob -> (
          match Jsonx.parse (Store.get store blob) with
          | doc -> (
              match Jsonx.member_opt "value" doc with
              | Some v -> Hashtbl.replace values e.Journal.job (Jsonx.hex_float v)
              | None -> ())
          | exception _ -> ())
      | _ -> Hashtbl.replace values e.Journal.job failed_fitness)
    (Runner.settled_entries gdir);
  Array.map
    (fun genome ->
      match Hashtbl.find_opt values (Job.digest (job_of_genome spec genome)) with
      | Some v -> v
      | None -> failed_fitness)
    genomes
