(* Append-only fsync'd completion journal with checkpoints. See
   journal.mli. *)

type status = Ok | Quarantined

type entry = {
  job : string;
  status : status;
  attempts : int;
  result : string option;
  error : string option;
}

let status_name = function Ok -> "ok" | Quarantined -> "quarantined"

let entry_to_line entry =
  let opt = function None -> Jsonx.Null | Some s -> Jsonx.Str s in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("job", Jsonx.Str entry.job);
         ("status", Jsonx.Str (status_name entry.status));
         ("attempts", Jsonx.Num (float_of_int entry.attempts));
         ("result", opt entry.result);
         ("error", opt entry.error);
       ])

let entry_of_line line =
  let json =
    try Jsonx.parse line
    with Abg_obs.Report.Parse_error msg ->
      raise (Jsonx.Malformed ("journal line: " ^ msg))
  in
  let ctx = "journal" in
  let opt key =
    match Jsonx.member ~ctx key json with
    | Jsonx.Null -> None
    | j -> Some (Jsonx.str ~ctx:("journal." ^ key) j)
  in
  {
    job = Jsonx.str ~ctx (Jsonx.member ~ctx "job" json);
    status =
      (match Jsonx.str ~ctx (Jsonx.member ~ctx "status" json) with
      | "ok" -> Ok
      | "quarantined" -> Quarantined
      | other -> raise (Jsonx.Malformed ("journal: unknown status " ^ other)));
    attempts = Jsonx.int ~ctx (Jsonx.member ~ctx "attempts" json);
    result = opt "result";
    error = opt "error";
  }

(* -- checkpoint records --

   One line snapshotting the whole settled set: digest-sorted entries in
   a fixed-width packed string (job 32 | status 1 | attempts 4 hex |
   result 32, with 32 dashes for a missing result), quarantine errors in
   a side list, and an MD5 over both so a torn or rotted record is
   detected and the reader falls back. Fixed width is what makes
   decoding a 100k-entry snapshot a String.sub loop instead of 100k
   JSON parses. *)

let checkpoint_schema = "abagnale-checkpoint/1"
let checkpoint_prefix = "{\"checkpoint\":"
let record_width = 69
let no_result = String.make 32 '-'

let is_checkpoint_line line =
  String.length line >= String.length checkpoint_prefix
  && String.sub line 0 (String.length checkpoint_prefix) = checkpoint_prefix

let pack_entry buf e =
  if String.length e.job <> 32 then
    invalid_arg "Journal.checkpoint: job digest must be 32 chars";
  if e.attempts < 0 || e.attempts > 0xffff then
    invalid_arg "Journal.checkpoint: attempts out of range";
  Buffer.add_string buf e.job;
  Buffer.add_char buf (match e.status with Ok -> 'o' | Quarantined -> 'q');
  Buffer.add_string buf (Printf.sprintf "%04x" e.attempts);
  match e.result with
  | None -> Buffer.add_string buf no_result
  | Some r ->
      if String.length r <> 32 then
        invalid_arg "Journal.checkpoint: result digest must be 32 chars";
      Buffer.add_string buf r

let checkpoint_line entries =
  let sorted = List.sort (fun a b -> String.compare a.job b.job) entries in
  let buf = Buffer.create (record_width * List.length sorted) in
  List.iter (pack_entry buf) sorted;
  let packed = Buffer.contents buf in
  let errors =
    Jsonx.List
      (List.filter_map
         (fun e ->
           match e.error with
           | None -> None
           | Some err -> Some (Jsonx.List [ Jsonx.Str e.job; Jsonx.Str err ]))
         sorted)
  in
  let hash = Digest.to_hex (Digest.string (packed ^ Jsonx.to_string errors)) in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ( "checkpoint",
           Jsonx.Obj
             [
               ("schema", Jsonx.Str checkpoint_schema);
               ("covers", Jsonx.Num (float_of_int (List.length sorted)));
               ("packed", Jsonx.Str packed);
               ("errors", errors);
               ("hash", Jsonx.Str hash);
             ] );
       ])

(* Decode a checkpoint line; [None] on anything invalid — bad JSON,
   wrong schema, length/hash mismatch — so the reader can fall back. *)
let parse_checkpoint line =
  match
    (fun () ->
      let ctx = "checkpoint" in
      let doc = Jsonx.parse line in
      let cp = Jsonx.member ~ctx "checkpoint" doc in
      let schema = Jsonx.str ~ctx (Jsonx.member ~ctx "schema" cp) in
      if schema <> checkpoint_schema then failwith "schema mismatch";
      let covers = Jsonx.int ~ctx (Jsonx.member ~ctx "covers" cp) in
      let packed = Jsonx.str ~ctx (Jsonx.member ~ctx "packed" cp) in
      let errors_json = Jsonx.member ~ctx "errors" cp in
      let hash = Jsonx.str ~ctx (Jsonx.member ~ctx "hash" cp) in
      if
        Digest.to_hex (Digest.string (packed ^ Jsonx.to_string errors_json))
        <> hash
      then failwith "hash mismatch";
      if String.length packed <> covers * record_width then
        failwith "length mismatch";
      let errors =
        Jsonx.list ~ctx errors_json
        |> List.map (fun pair ->
               match Jsonx.list ~ctx pair with
               | [ job; err ] -> (Jsonx.str ~ctx job, Jsonx.str ~ctx err)
               | _ -> failwith "bad error pair")
      in
      List.init covers (fun i ->
          let at = i * record_width in
          let job = String.sub packed at 32 in
          let status =
            match packed.[at + 32] with
            | 'o' -> Ok
            | 'q' -> Quarantined
            | _ -> failwith "bad status"
          in
          let attempts =
            int_of_string ("0x" ^ String.sub packed (at + 33) 4)
          in
          let result =
            let r = String.sub packed (at + 37) 32 in
            if r = no_result then None else Some r
          in
          { job; status; attempts; result; error = List.assoc_opt job errors }))
      ()
  with
  | entries -> Some entries
  | exception _ -> None

type t = { fd : Unix.file_descr; m : Mutex.t }

(* A kill mid-append can leave a torn final line with no newline. It was
   never acknowledged, so it must be truncated away before appending —
   otherwise O_APPEND would glue the next entry onto the fragment,
   turning a harmless crash artifact into interior corruption. *)
let truncate_torn_tail path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let len = String.length content in
      if len > 0 && content.[len - 1] <> '\n' then begin
        let keep =
          match String.rindex_opt content '\n' with
          | Some i -> i + 1
          | None -> 0
        in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.ftruncate fd keep;
            Unix.fsync fd)
      end

let open_ path =
  truncate_torn_tail path;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  { fd; m = Mutex.create () }

(* One write syscall for the whole payload (O_APPEND keeps concurrent
   appends from interleaving), then one fsync: once this returns, every
   line in the batch survives a kill. *)
let append_lines t lines =
  if lines <> [] then begin
    let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        let n = String.length payload in
        let written = Unix.write_substring t.fd payload 0 n in
        if written <> n then failwith "Journal.append: short write";
        Unix.fsync t.fd)
  end

let append_batch t entries = append_lines t (List.map entry_to_line entries)
let append t entry = append_batch t [ entry ]
let append_checkpoint t entries = append_lines t [ checkpoint_line entries ]
let close t = Unix.close t.fd

(* Only newline-terminated lines are acknowledged; a trailing fragment
   is a torn append from a crash — dropped, so the job it described
   re-runs on resume. *)
let terminated_lines content =
  let rec terminated acc = function
    | [] | [ _ ] -> List.rev acc (* last chunk: "" if terminated, torn if not *)
    | line :: rest -> terminated (line :: acc) rest
  in
  String.split_on_char '\n' content
  |> terminated []
  |> List.filter (fun l -> String.trim l <> "")

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* First occurrence per job digest wins: a checkpoint only repeats
   outcomes already present as lines (or, post-compaction, is the only
   copy), so dedup keeps replay's result a set keyed by job. *)
let dedup entries =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.job then false
      else begin
        Hashtbl.add seen e.job ();
        true
      end)
    entries

let replay path =
  if not (Sys.file_exists path) then []
  else begin
    let lines = Array.of_list (terminated_lines (read_all path)) in
    let n = Array.length lines in
    let entries = ref [] in
    Array.iteri
      (fun i line ->
        if is_checkpoint_line line then begin
          match parse_checkpoint line with
          | Some es -> entries := List.rev_append es !entries
          | None ->
              (* A final-position invalid checkpoint is a crash artifact
                 (its outcomes are covered by the preceding lines); an
                 interior one is corruption. *)
              if i < n - 1 then
                raise (Jsonx.Malformed "journal: invalid interior checkpoint")
        end
        else entries := entry_of_line line :: !entries)
      lines;
    dedup (List.rev !entries)
  end

let replay_checkpointed path =
  if not (Sys.file_exists path) then []
  else begin
    let lines = Array.of_list (terminated_lines (read_all path)) in
    let n = Array.length lines in
    (* Last valid checkpoint, scanning backwards; an invalid one falls
       back to its predecessor. Only the prefix test touches the lines
       we skip — no JSON parsing of settled history. *)
    let rec find i =
      if i < 0 then None
      else if is_checkpoint_line lines.(i) then
        match parse_checkpoint lines.(i) with
        | Some es -> Some (i, es)
        | None -> find (i - 1)
      else find (i - 1)
    in
    let base_idx, base =
      match find (n - 1) with None -> (-1, []) | Some (i, es) -> (i, es)
    in
    let tail = ref [] in
    for i = base_idx + 1 to n - 1 do
      let line = lines.(i) in
      if not (is_checkpoint_line line) then
        tail := entry_of_line line :: !tail
    done;
    dedup (base @ List.rev !tail)
  end

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let compact path =
  if Sys.file_exists path then begin
    let entries = replay_checkpointed path in
    let tmp = path ^ ".compact" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let payload = checkpoint_line entries ^ "\n" in
        let n = String.length payload in
        let written = Unix.write_substring fd payload 0 n in
        if written <> n then failwith "Journal.compact: short write";
        Unix.fsync fd);
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  end
