(* Append-only fsync'd completion journal. See journal.mli. *)

type status = Ok | Quarantined

type entry = {
  job : string;
  status : status;
  attempts : int;
  result : string option;
  error : string option;
}

let status_name = function Ok -> "ok" | Quarantined -> "quarantined"

let entry_to_line entry =
  let opt = function None -> Jsonx.Null | Some s -> Jsonx.Str s in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("job", Jsonx.Str entry.job);
         ("status", Jsonx.Str (status_name entry.status));
         ("attempts", Jsonx.Num (float_of_int entry.attempts));
         ("result", opt entry.result);
         ("error", opt entry.error);
       ])

let entry_of_line line =
  let json =
    try Jsonx.parse line
    with Abg_obs.Report.Parse_error msg ->
      raise (Jsonx.Malformed ("journal line: " ^ msg))
  in
  let ctx = "journal" in
  let opt key =
    match Jsonx.member ~ctx key json with
    | Jsonx.Null -> None
    | j -> Some (Jsonx.str ~ctx:("journal." ^ key) j)
  in
  {
    job = Jsonx.str ~ctx (Jsonx.member ~ctx "job" json);
    status =
      (match Jsonx.str ~ctx (Jsonx.member ~ctx "status" json) with
      | "ok" -> Ok
      | "quarantined" -> Quarantined
      | other -> raise (Jsonx.Malformed ("journal: unknown status " ^ other)));
    attempts = Jsonx.int ~ctx (Jsonx.member ~ctx "attempts" json);
    result = opt "result";
    error = opt "error";
  }

type t = { fd : Unix.file_descr; m : Mutex.t }

(* A kill mid-append can leave a torn final line with no newline. It was
   never acknowledged, so it must be truncated away before appending —
   otherwise O_APPEND would glue the next entry onto the fragment,
   turning a harmless crash artifact into interior corruption. *)
let truncate_torn_tail path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let len = String.length content in
      if len > 0 && content.[len - 1] <> '\n' then begin
        let keep =
          match String.rindex_opt content '\n' with
          | Some i -> i + 1
          | None -> 0
        in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.ftruncate fd keep;
            Unix.fsync fd)
      end

let open_ path =
  truncate_torn_tail path;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  { fd; m = Mutex.create () }

(* One write syscall per line (O_APPEND keeps concurrent appends from
   interleaving), then fsync: once append returns, the completion
   survives a kill. *)
let append t entry =
  let line = entry_to_line entry ^ "\n" in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let n = String.length line in
      let written = Unix.write_substring t.fd line 0 n in
      if written <> n then failwith "Journal.append: short write";
      Unix.fsync t.fd)

let close t = Unix.close t.fd

let replay path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* Only newline-terminated lines are acknowledged completions; a
       trailing fragment is a torn append from a crash — dropped, so the
       job it described re-runs on resume. *)
    let rec terminated acc = function
      | [] | [ _ ] -> List.rev acc (* last chunk: "" if terminated, torn otherwise *)
      | line :: rest -> terminated (line :: acc) rest
    in
    String.split_on_char '\n' content
    |> terminated []
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map entry_of_line
  end
