(** Crash-safe job runner: retries, quarantine, sharding, group commit,
    resume.

    A batch run lives in a directory:
    {v
      DIR/grid.json              expanded job list (written once by run)
      DIR/journal.jsonl          completion journal (single-process runs)
      DIR/journal.wIofN.jsonl    per-worker journals (coordinator runs)
      DIR/store/                 content-addressed artifact store
    v}

    {!run} writes the grid and executes it; {!resume} replays the
    journal family and executes only the jobs without a terminal record
    — including the one a kill interrupted mid-flight, whose re-run is
    harmless because every artifact is content-addressed. The
    determinism contract: for a fixed grid and settings, a run that is
    killed at any instant and resumed produces a journal outcome set,
    report, and store byte-identical to an uninterrupted run.

    Durability goes through {!Group_commit}: the store runs in deferred
    (pack-file) mode and concurrently completing jobs share one fsync
    per flush window, with a job reported done — counters, verbose log,
    the returned completion — only after the fsync covering its journal
    line returns. Checkpoint records keep resume/status cost
    O(outstanding since the last checkpoint) regardless of history.

    Jobs dispatch onto the shared {!Abg_parallel.Pool} in canonical
    (digest) order. A job that raises is retried with exponential
    backoff up to [retries] extra attempts, then {e quarantined}: its
    error is journaled and the rest of the grid proceeds — a poisoned
    job never takes down the run. Per-job wall-clock limits are
    enforced at attempt granularity (OCaml domains cannot be killed, so
    a wedged attempt is detected when it returns; hard kills are the
    supervising process's job — SIGKILL plus [resume] is the supported
    path, and is exactly what the CI smoke job exercises).

    Two ways to partition the canonical job order by index modulo [n]:
    [--shard i/n] journals into its own run {e directory} (manual
    fan-out across machines), while [worker = (i, n)] — what the
    {!Coordinator} passes to the children it spawns — shares one run
    directory, writing [journal.wIofN.jsonl] alongside its siblings'
    journals and sharing their store. All readers ({!resume} skipping,
    {!Report}) merge the whole journal family. *)

type settings = {
  retries : int;  (** extra attempts after the first (default 2) *)
  backoff_s : float;  (** base backoff, doubled per retry (default 0.05) *)
  timeout_s : float;  (** per-attempt wall-clock limit (default: none) *)
  shard : (int * int) option;  (** [(i, n)], 0-based shard index *)
  worker : (int * int) option;
      (** coordinator worker slice [(i, n)] — same partition as [shard]
          but sharing the run directory; exclusive with [shard] *)
  max_jobs : int option;  (** stop after this many completions (smoke) *)
  num_domains : int option;  (** pool participation cap *)
  flush_window_s : float;
      (** group-commit linger before the leader flushes (default 0) *)
  flush_max_batch : int;  (** max entries per flush (default 256) *)
  checkpoint_every : int;
      (** journal lines between checkpoint records, before geometric
          spacing widens it (default 1024) *)
  refinement : Abg_core.Refinement.config;
      (** refinement knobs for synthesis jobs; the per-job seed
          overrides [refinement.seed] *)
  verbose : bool;
}

val default_settings : settings

type status = Done | Quarantined of string

type completion = {
  job : Job.t;
  digest : string;
  status : status;
  attempts : int;
  result : string option;  (** result-blob digest *)
  wall_s : float;  (** volatile; not part of any persisted artifact *)
}

type summary = {
  completions : completion list;  (** this invocation, canonical order *)
  skipped : int;  (** jobs already journaled (resume) *)
  remaining : int;  (** jobs left behind by [max_jobs] *)
  counters : (string * int) list;
      (** telemetry counter deltas over this invocation
          ({!Abg_obs.Obs.delta_counters}) — the per-run roll-up of the
          per-job instrumentation *)
}

val shard_select : i:int -> n:int -> 'a list -> 'a list
(** Deterministic shard partition: elements at index [≡ i (mod n)].
    Raises [Invalid_argument] unless [0 <= i < n]. *)

val grid_path : string -> string
(** [DIR/grid.json] — present iff the directory holds a run. *)

val store_path : string -> string
(** [DIR/store] — the run's content-addressed artifact store. *)

val journal_paths : dir:string -> string list
(** Every journal in the run directory ([journal*.jsonl]), sorted —
    one for a single-process run, one per worker after a coordinator
    run. *)

val settled_entries : ?verify:bool -> string -> Journal.entry list
(** The merged settled outcome set across the journal family. Default
    is the fast checkpointed read ({!Journal.replay_checkpointed});
    [~verify:true] parses full history ({!Journal.replay}). *)

val init : dir:string -> Job.t list -> unit
(** Create a run directory and persist the grid. Raises
    [Invalid_argument] if the directory already holds a run. *)

val jobs_of_dir : dir:string -> Job.t list
(** The persisted grid, in canonical order. *)

val run : dir:string -> settings:settings -> Job.t list -> summary
(** {!init} then execute. *)

val resume : dir:string -> settings:settings -> unit -> summary
(** Execute every job the journal family does not already settle.
    Idempotent: resuming a finished run does nothing. *)

val gc : dir:string -> Store.gc_stats
(** Offline store maintenance: mark live digests (journaled result
    blobs plus every blob reference inside their result documents),
    fold pack files into verified, fsync'd loose blobs, and sweep the
    rest. Must not run concurrently with an executing run. *)

val compact : dir:string -> unit
(** {!Journal.compact} every journal in the family. Offline only. *)

val perform :
  settings:settings -> store:Store.t -> attempt:int -> Job.t -> Jsonx.t
(** Execute one job body (no retries/journaling) and return its result
    document — exposed for tests and the report's schema. *)
