(** Crash-safe job runner: retries, quarantine, sharding, resume.

    A batch run lives in a directory:
    {v
      DIR/grid.json      expanded job list (written once by run)
      DIR/journal.jsonl  append-only completion journal (fsync'd)
      DIR/store/         content-addressed artifact store
    v}

    {!run} writes the grid and executes it; {!resume} replays the
    journal and executes only the jobs without a terminal record —
    including the one a kill interrupted mid-flight, whose re-run is
    harmless because every artifact is content-addressed. The
    determinism contract: for a fixed grid and settings, a run that is
    killed at any instant and resumed produces a journal outcome set,
    report, and store byte-identical to an uninterrupted run.

    Jobs dispatch onto the shared {!Abg_parallel.Pool} in canonical
    (digest) order. A job that raises is retried with exponential
    backoff up to [retries] extra attempts, then {e quarantined}: its
    error is journaled and the rest of the grid proceeds — a poisoned
    job never takes down the run. Per-job wall-clock limits are
    enforced at attempt granularity (OCaml domains cannot be killed, so
    a wedged attempt is detected when it returns; hard kills are the
    supervising process's job — SIGKILL plus [resume] is the supported
    path, and is exactly what the CI smoke job exercises).

    [--shard i/n] partitions the canonical job order by index modulo
    [n]: shards are disjoint, their union is the full grid, and each
    shard journals into its own run directory, so fanning a grid over
    processes or machines is [n] invocations with different [i]. *)

type settings = {
  retries : int;  (** extra attempts after the first (default 2) *)
  backoff_s : float;  (** base backoff, doubled per retry (default 0.05) *)
  timeout_s : float;  (** per-attempt wall-clock limit (default: none) *)
  shard : (int * int) option;  (** [(i, n)], 0-based shard index *)
  max_jobs : int option;  (** stop after this many completions (smoke) *)
  num_domains : int option;  (** pool participation cap *)
  refinement : Abg_core.Refinement.config;
      (** refinement knobs for synthesis jobs; the per-job seed
          overrides [refinement.seed] *)
  verbose : bool;
}

val default_settings : settings

type status = Done | Quarantined of string

type completion = {
  job : Job.t;
  digest : string;
  status : status;
  attempts : int;
  result : string option;  (** result-blob digest *)
  wall_s : float;  (** volatile; not part of any persisted artifact *)
}

type summary = {
  completions : completion list;  (** this invocation, canonical order *)
  skipped : int;  (** jobs already journaled (resume) *)
  remaining : int;  (** jobs left behind by [max_jobs] *)
  counters : (string * int) list;
      (** telemetry counter deltas over this invocation
          ({!Abg_obs.Obs.delta_counters}) — the per-run roll-up of the
          per-job instrumentation *)
}

val shard_select : i:int -> n:int -> 'a list -> 'a list
(** Deterministic shard partition: elements at index [≡ i (mod n)].
    Raises [Invalid_argument] unless [0 <= i < n]. *)

val init : dir:string -> Job.t list -> unit
(** Create a run directory and persist the grid. Raises
    [Invalid_argument] if the directory already holds a run. *)

val jobs_of_dir : dir:string -> Job.t list
(** The persisted grid, in canonical order. *)

val run : dir:string -> settings:settings -> Job.t list -> summary
(** {!init} then execute. *)

val resume : dir:string -> settings:settings -> unit -> summary
(** Execute every job the journal does not already settle. Idempotent:
    resuming a finished run does nothing. *)

val perform :
  settings:settings -> store:Store.t -> attempt:int -> Job.t -> Jsonx.t
(** Execute one job body (no retries/journaling) and return its result
    document — exposed for tests and the report's schema. *)
