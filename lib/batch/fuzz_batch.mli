(** Batch-backed population evaluation: one run directory per
    generation, one {!Job.Fuzz_eval} job per distinct genome. Settled
    generations re-run as pure journal reads, which is how resume and
    report re-derive a search with no mutable state on disk. *)

type spec = {
  fitness : Abg_fuzz.Fitness.kind;
  cca : string;
  cca_b : string option;
  handler : string option;  (** codec-encoded counterexample target *)
  duration : float;
  scenario_seed : int;
}

val gen_dir : string -> int -> string
(** [gen_dir dir g] = [DIR/gen-000g]. *)

val job_of_genome : spec -> Abg_fuzz.Genome.t -> Job.t

val evaluate :
  dir:string ->
  settings:Runner.settings ->
  spec ->
  gen:int ->
  Abg_fuzz.Genome.t array ->
  float array
(** Score one population (create the generation run or resume it);
    fitness per genome in population order, [neg_infinity] for
    quarantined evaluations. *)
