(* Leader/follower group commit. See group_commit.mli. *)

let obs_coalesced =
  Abg_obs.Obs.Counter.make ~volatile:true "batch.fsync_coalesced"

let obs_checkpoint =
  Abg_obs.Obs.Counter.make ~volatile:true "batch.checkpoint_written"

type t = {
  store : Store.t;
  journal : Journal.t;
  window_s : float;
  max_batch : int;
  checkpoint_every : int;
  m : Mutex.t;
  flushed_cond : Condition.t;
  (* Tickets: the i-th committed entry (1-based) waits for [flushed >=
     i]. [pending] holds enqueued-but-unflushed entries newest-first,
     so pending tickets are the contiguous range
     (flushed+1 .. flushed+|pending|] once a leader drains in order. *)
  mutable next : int;
  mutable flushed : int;
  mutable pending : Journal.entry list;
  mutable flushing : bool;
  (* Full settled set of the journal file (initial + flushed), for
     checkpoint snapshots; [since] counts entries since the last one. *)
  mutable settled : Journal.entry list;
  mutable settled_count : int;
  mutable since : int;
}

let create ?(window_s = 0.) ?(max_batch = 256) ?(checkpoint_every = 1024)
    ~store ~journal ~initial () =
  if max_batch < 1 then invalid_arg "Group_commit.create: max_batch < 1";
  {
    store;
    journal;
    window_s;
    max_batch;
    checkpoint_every;
    m = Mutex.create ();
    flushed_cond = Condition.create ();
    next = 0;
    flushed = 0;
    pending = [];
    flushing = false;
    settled = initial;
    settled_count = List.length initial;
    since = 0;
  }

let rec take k = function
  | [] -> ([], [])
  | x :: rest when k > 0 ->
      let kept, dropped = take (k - 1) rest in
      (x :: kept, dropped)
  | rest -> ([], rest)

(* Geometric spacing: a checkpoint is worth its O(settled) bytes only
   once enough new lines have accrued to matter, so total checkpoint
   bytes stay linear in history instead of quadratic. *)
let checkpoint_due t =
  t.since >= max t.checkpoint_every (t.settled_count / 2)

let write_checkpoint t =
  Journal.append_checkpoint t.journal t.settled;
  t.since <- 0;
  Abg_obs.Obs.Counter.incr obs_checkpoint

(* Caller holds [t.m]; leader has set [t.flushing]. Drains up to
   max_batch of the oldest pending entries, flushes with the lock
   released, then publishes the new flushed ticket. *)
let flush_as_leader t =
  if t.window_s > 0. && List.length t.pending < t.max_batch then begin
    (* Linger with the lock released so more completions can queue. *)
    Mutex.unlock t.m;
    Unix.sleepf t.window_s;
    Mutex.lock t.m
  end;
  let batch, rest = take t.max_batch (List.rev t.pending) in
  t.pending <- List.rev rest;
  let batch_len = List.length batch in
  let batch_hi = t.flushed + batch_len in
  Mutex.unlock t.m;
  (* The durability-window ordering: blobs' pack fsync strictly before
     the journal write+fsync, so any journal line that survives a crash
     references only durable blobs. *)
  ignore (Store.flush_staged t.store);
  Journal.append_batch t.journal batch;
  Mutex.lock t.m;
  t.flushed <- batch_hi;
  t.settled <- List.rev_append batch t.settled;
  t.settled_count <- t.settled_count + batch_len;
  t.since <- t.since + batch_len;
  if batch_len > 1 then Abg_obs.Obs.Counter.add obs_coalesced (batch_len - 1);
  if checkpoint_due t then write_checkpoint t;
  t.flushing <- false;
  Condition.broadcast t.flushed_cond

let commit t entry =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      t.next <- t.next + 1;
      let my = t.next in
      t.pending <- entry :: t.pending;
      while t.flushed < my do
        if t.flushing then Condition.wait t.flushed_cond t.m
        else begin
          t.flushing <- true;
          flush_as_leader t
        end
      done)

let close t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      while t.pending <> [] do
        if t.flushing then Condition.wait t.flushed_cond t.m
        else begin
          t.flushing <- true;
          flush_as_leader t
        end
      done;
      if t.since >= t.checkpoint_every then write_checkpoint t)
