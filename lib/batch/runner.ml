(* Crash-safe batch runner. See runner.mli for the contract. *)

type settings = {
  retries : int;
  backoff_s : float;
  timeout_s : float;
  shard : (int * int) option;
  worker : (int * int) option;
  max_jobs : int option;
  num_domains : int option;
  flush_window_s : float;
  flush_max_batch : int;
  checkpoint_every : int;
  refinement : Abg_core.Refinement.config;
  verbose : bool;
}

let default_settings =
  {
    retries = 2;
    backoff_s = 0.05;
    timeout_s = infinity;
    shard = None;
    worker = None;
    max_jobs = None;
    num_domains = None;
    flush_window_s = 0.;
    flush_max_batch = 256;
    checkpoint_every = 1024;
    refinement = Abg_core.Refinement.default_config;
    verbose = false;
  }

type status = Done | Quarantined of string

type completion = {
  job : Job.t;
  digest : string;
  status : status;
  attempts : int;
  result : string option;
  wall_s : float;
}

type summary = {
  completions : completion list;
  skipped : int;
  remaining : int;
  counters : (string * int) list;
}

(* All batch counters are volatile: their totals depend on how a run was
   interrupted and resumed, not only on workload and seed, so they must
   stay out of the deterministic telemetry section the CI gate diffs. *)
let obs_ok = Abg_obs.Obs.Counter.make ~volatile:true "batch.jobs.ok"

let obs_quarantined =
  Abg_obs.Obs.Counter.make ~volatile:true "batch.jobs.quarantined"

let obs_attempts = Abg_obs.Obs.Counter.make ~volatile:true "batch.attempts"
let obs_retries = Abg_obs.Obs.Counter.make ~volatile:true "batch.retries"

let ( / ) = Filename.concat

let grid_path dir = dir / "grid.json"
let store_path dir = dir / "store"

(* Each coordinator worker journals into its own file so workers never
   contend on one fd; every reader merges the whole family. *)
let journal_path ?worker dir =
  match worker with
  | None -> dir / "journal.jsonl"
  | Some (i, n) -> dir / Printf.sprintf "journal.w%dof%d.jsonl" i n

let journal_paths ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.length n >= 7
             && String.sub n 0 7 = "journal"
             && Filename.check_suffix n ".jsonl")
      |> List.sort String.compare
      |> List.map (fun n -> dir / n)

let settled_entries ?(verify = false) dir =
  let replay = if verify then Journal.replay else Journal.replay_checkpointed in
  List.concat_map replay (journal_paths ~dir)

(* -- job bodies -- *)

let constructor_of cca =
  match Abg_cca.Registry.find cca with
  | Some ctor -> ctor
  | None -> failwith (Printf.sprintf "unknown CCA %s" cca)

let result_header kind cca =
  [
    ("schema", Jsonx.Str "abagnale-result/1");
    ("kind", Jsonx.Str kind);
    ("cca", Jsonx.Str cca);
  ]

let perform_collect ~store (job : Job.t) =
  let ctor = constructor_of job.Job.cca in
  let traces =
    Abg_trace.Trace.collect_configs ~name:job.Job.cca ctor job.Job.configs
  in
  let rows =
    List.map2
      (fun cfg trace ->
        let blob = Store.put store (Abg_trace.Io.to_string trace) in
        Jsonx.Obj
          [
            ("scenario", Jsonx.Str trace.Abg_trace.Trace.scenario);
            ("config", Jsonx.Str (Abg_netsim.Config.digest cfg));
            ("records", Jsonx.Num (float_of_int (Abg_trace.Trace.length trace)));
            ("losses",
             Jsonx.Num
               (float_of_int
                  (Array.length trace.Abg_trace.Trace.loss_times)));
            ("blob", Jsonx.Str blob);
          ])
      job.Job.configs traces
  in
  Jsonx.Obj (result_header "collect" job.Job.cca @ [ ("traces", Jsonx.List rows) ])

let dsl_of_name name =
  match Abg_dsl.Catalog.find name with
  | Some d -> d
  | None -> failwith (Printf.sprintf "unknown DSL %s" name)

let synthesis_fields (outcome : Abg_core.Synthesis.outcome option) =
  match outcome with
  | None -> [ ("found", Jsonx.Bool false) ]
  | Some o ->
      let r = o.Abg_core.Synthesis.refinement in
      [
        ("found", Jsonx.Bool true);
        ("dsl", Jsonx.Str o.Abg_core.Synthesis.dsl_name);
        ("handler", Jsonx.Str o.Abg_core.Synthesis.pretty);
        (* Machine-readable handler: the pretty form is for humans, the
           codec form round-trips losslessly (fuzz counterexample runs
           feed it back into scenario evaluation). *)
        ("handler_code",
         Jsonx.Str (Abg_fuzz.Codec.encode_num o.Abg_core.Synthesis.handler));
        ("distance", Jsonx.hex o.Abg_core.Synthesis.distance);
        ("segments", Jsonx.Num (float_of_int o.Abg_core.Synthesis.segments_used));
        ("sketches",
         Jsonx.Num
           (float_of_int r.Abg_core.Refinement.total_sketches_scored));
        ("handlers",
         Jsonx.Num
           (float_of_int r.Abg_core.Refinement.total_handlers_scored));
        ("prune_rate", Jsonx.hex r.Abg_core.Refinement.prune_rate);
      ]

let perform_synth ~settings (job : Job.t) ~dsl =
  let ctor = constructor_of job.Job.cca in
  let dsl = Option.map dsl_of_name dsl in
  let config =
    { settings.refinement with Abg_core.Refinement.seed = job.Job.seed }
  in
  let outcome =
    Abg_core.Synthesis.run_configs ~config ?dsl ~configs:job.Job.configs
      ~name:job.Job.cca ctor
  in
  Jsonx.Obj (result_header "synth" job.Job.cca @ synthesis_fields outcome)

let perform_classify ~store (job : Job.t) =
  let ctor = constructor_of job.Job.cca in
  let traces =
    Abg_trace.Trace.collect_configs ~name:job.Job.cca ctor job.Job.configs
  in
  let gordon = Abg_classifier.Gordon.classify traces in
  let cc = Abg_classifier.Ccanalyzer.classify traces in
  let features = Abg_classifier.Features.extract traces in
  let vector = Abg_classifier.Features.to_vector features in
  let features_blob =
    Store.put store
      (String.concat "\n"
         (Array.to_list (Array.map (Printf.sprintf "%h") vector))
      ^ "\n")
  in
  let closest =
    List.filteri (fun i _ -> i < 5) cc.Abg_classifier.Ccanalyzer.closest
    |> List.map (fun (name, d) ->
           Jsonx.List [ Jsonx.Str name; Jsonx.hex d ])
  in
  Jsonx.Obj
    (result_header "classify" job.Job.cca
    @ [
        ("gordon",
         Jsonx.Str (Abg_classifier.Gordon.verdict_to_string gordon));
        ("ccanalyzer",
         Jsonx.Str
           (Abg_classifier.Gordon.verdict_to_string
              cc.Abg_classifier.Ccanalyzer.verdict));
        ("closest", Jsonx.List closest);
        ("features", Jsonx.Str features_blob);
      ])

let perform_noise ~settings (job : Job.t) ~stddev ~keep =
  let ctor = constructor_of job.Job.cca in
  let clean =
    Abg_trace.Trace.collect_configs ~name:job.Job.cca ctor job.Job.configs
  in
  (* One RNG threaded through the whole suite, in trace order: the noisy
     suite is a pure function of (clean suite, stddev, keep, seed). *)
  let rng = Abg_util.Rng.create job.Job.seed in
  let corrupt trace =
    Abg_trace.Noise.subsample rng ~keep
      (Abg_trace.Noise.observation_noise rng ~stddev trace)
  in
  let config =
    { settings.refinement with Abg_core.Refinement.seed = job.Job.seed }
  in
  let outcome =
    Abg_core.Synthesis.run ~config ~name:job.Job.cca (List.map corrupt clean)
  in
  let clean_fields =
    match outcome with
    | None -> []
    | Some o ->
        [
          ("distance_clean",
           Jsonx.hex
             (Abg_core.Abagnale.handler_distance
                ~handler:o.Abg_core.Synthesis.handler clean));
        ]
  in
  Jsonx.Obj
    (result_header "noise" job.Job.cca
    @ [ ("stddev", Jsonx.hex stddev); ("keep", Jsonx.hex keep) ]
    @ synthesis_fields outcome
    @ clean_fields)

let perform_probe ~attempt (job : Job.t) ~fail_attempts ~sleep_ms =
  if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.0);
  if attempt <= fail_attempts then failwith "probe: injected failure";
  (* A trivial deterministic payload so the blob exercises the store. *)
  let checksum =
    List.fold_left ( + ) (job.Job.seed * 31) (List.map Char.code
      (List.init (String.length job.Job.cca) (String.get job.Job.cca)))
  in
  Jsonx.Obj
    (result_header "probe" job.Job.cca
    @ [ ("payload", Jsonx.Str "ok"); ("checksum", Jsonx.Num (float_of_int checksum)) ])

(* One fitness evaluation of one scenario genome. The job's single
   config *is* the decoded scenario; the genome string rides along as
   the individual's identity so reports and the search can join results
   back to genomes without re-decoding. *)
let perform_fuzz_eval (job : Job.t) ~fitness ~cca_b ~handler ~genome =
  let kind =
    match Abg_fuzz.Fitness.kind_of_name fitness with
    | Some k -> k
    | None -> failwith (Printf.sprintf "unknown fuzz fitness %s" fitness)
  in
  let handler =
    Option.map
      (fun h ->
        match Abg_fuzz.Codec.decode_num h with
        | Some e -> e
        | None -> failwith (Printf.sprintf "undecodable fuzz handler %S" h))
      handler
  in
  let cfg =
    match job.Job.configs with
    | [ cfg ] -> cfg
    | l ->
        failwith
          (Printf.sprintf "fuzz job wants exactly one config, got %d"
             (List.length l))
  in
  let spec = { Abg_fuzz.Fitness.kind; cca = job.Job.cca; cca_b; handler } in
  let value = Abg_fuzz.Fitness.evaluate spec cfg in
  Jsonx.Obj
    (result_header "fuzz" job.Job.cca
    @ [
        ("fitness", Jsonx.Str fitness);
        ("genome", Jsonx.Str genome);
        ("config", Jsonx.Str (Abg_netsim.Config.digest cfg));
        ("value", Jsonx.hex value);
      ])

let perform ~settings ~store ~attempt (job : Job.t) =
  match job.Job.kind with
  | Job.Collect -> perform_collect ~store job
  | Job.Synthesize { dsl } -> perform_synth ~settings job ~dsl
  | Job.Classify -> perform_classify ~store job
  | Job.Noise { stddev; keep } -> perform_noise ~settings job ~stddev ~keep
  | Job.Probe { fail_attempts; sleep_ms } ->
      perform_probe ~attempt job ~fail_attempts ~sleep_ms
  | Job.Fuzz_eval { fitness; cca_b; handler; genome } ->
      perform_fuzz_eval job ~fitness ~cca_b ~handler ~genome

(* -- retry loop -- *)

let log settings fmt =
  if settings.verbose then Printf.eprintf fmt else Printf.ifprintf stderr fmt

(* Run one job to a terminal outcome: Ok (attempts, result blob) or a
   quarantine. Every exception is contained here — a poisoned job must
   not take down the dispatch loop. Timeout errors carry the limit, not
   the measured elapsed time, so quarantine records stay deterministic. *)
let run_one ~settings ~store ~commit (digest, (job : Job.t)) =
  Abg_obs.Obs.span "batch/job" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let max_attempts = settings.retries + 1 in
  let rec attempt_loop attempt =
    if attempt > 1 then begin
      Abg_obs.Obs.Counter.incr obs_retries;
      let pause = settings.backoff_s *. (2.0 ** float_of_int (attempt - 2)) in
      if pause > 0.0 then Unix.sleepf pause
    end;
    Abg_obs.Obs.Counter.incr obs_attempts;
    let t_attempt = Unix.gettimeofday () in
    let outcome =
      match perform ~settings ~store ~attempt job with
      | result ->
          let elapsed = Unix.gettimeofday () -. t_attempt in
          if elapsed > settings.timeout_s then
            Error
              (Printf.sprintf "exceeded %gs wall-clock limit"
                 settings.timeout_s)
          else Ok result
      | exception e -> Error (Printexc.to_string e)
    in
    match outcome with
    | Ok result -> (attempt, Ok (Store.put store (Jsonx.to_string result)))
    | Error err ->
        log settings "[batch] %s attempt %d/%d failed: %s\n%!"
          (Job.describe job) attempt max_attempts err;
        if attempt < max_attempts then attempt_loop (attempt + 1)
        else (attempt, Error err)
  in
  let attempts, outcome = attempt_loop 1 in
  let entry, status, result =
    match outcome with
    | Ok blob ->
        ( {
            Journal.job = digest;
            status = Journal.Ok;
            attempts;
            result = Some blob;
            error = None;
          },
          Done,
          Some blob )
    | Error err ->
        ( {
            Journal.job = digest;
            status = Journal.Quarantined;
            attempts;
            result = None;
            error = Some err;
          },
          Quarantined err,
          None )
  in
  (* The durability gate: commit blocks until the fsync covering this
     entry's journal line (and, before it, the pack fsync covering its
     blobs) has returned. Only then may the job be reported done —
     counters, logs, and the returned completion all sit after it. *)
  Group_commit.commit commit entry;
  (match status with
  | Done -> Abg_obs.Obs.Counter.incr obs_ok
  | Quarantined _ -> Abg_obs.Obs.Counter.incr obs_quarantined);
  log settings "[batch] %s: %s after %d attempt(s)\n%!" (Job.describe job)
    (match status with Done -> "ok" | Quarantined _ -> "QUARANTINED")
    attempts;
  {
    job;
    digest;
    status;
    attempts;
    result;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* -- run directories -- *)

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Sys.mkdir path 0o755
      with Sys_error _ when Sys.file_exists path -> ()
    end
  in
  go path

let init ~dir jobs =
  mkdir_p dir;
  let path = grid_path dir in
  if Sys.file_exists path then
    invalid_arg
      (Printf.sprintf
         "Runner.init: %s already contains a batch run; use resume" dir);
  ignore (Store.open_ (store_path dir));
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.Str "abagnale-grid/1");
        ("jobs", Jsonx.List (List.map Job.to_json jobs));
      ]
  in
  (* Atomic, durable grid write: resume must never see a torn job list. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Jsonx.to_string doc);
  output_string oc "\n";
  close_out oc;
  Sys.rename tmp path

let jobs_of_dir ~dir =
  let path = grid_path dir in
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = Jsonx.parse content in
  Jsonx.list ~ctx:"grid.jobs" (Jsonx.member ~ctx:"grid" "jobs" doc)
  |> List.map Job.of_json
  |> List.sort Job.compare_canonical

let shard_select ~i ~n xs =
  if n <= 0 || i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Runner.shard_select: bad shard %d/%d" i n);
  List.filteri (fun idx _ -> idx mod n = i) xs

let rec take k = function
  | [] -> ([], [])
  | x :: rest when k > 0 ->
      let kept, dropped = take (k - 1) rest in
      (x :: kept, dropped)
  | rest -> ([], rest)

let execute ~dir ~settings =
  (match (settings.shard, settings.worker) with
  | Some _, Some _ ->
      invalid_arg "Runner.execute: --shard and --worker are exclusive"
  | _ -> ());
  let jobs = jobs_of_dir ~dir in
  (* Resume skips anything settled by *any* journal in the family —
     including lines a crashed run persisted but never acknowledged:
     the flush ordering guarantees their blobs are durable, so
     re-running them would only append duplicate lines. *)
  let settled =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.entry) -> Hashtbl.replace tbl e.Journal.job ())
      (settled_entries dir);
    tbl
  in
  let store = Store.open_ ~deferred:true (store_path dir) in
  let mine =
    let keyed = List.map (fun j -> (Job.digest j, j)) jobs in
    match (settings.shard, settings.worker) with
    | Some (i, n), _ | _, Some (i, n) -> shard_select ~i ~n keyed
    | None, None -> keyed
  in
  let pending =
    List.filter (fun (d, _) -> not (Hashtbl.mem settled d)) mine
  in
  let skipped = List.length mine - List.length pending in
  let pending, dropped =
    match settings.max_jobs with
    | None -> (pending, [])
    | Some k -> take k pending
  in
  log settings "[batch] %d job(s) pending, %d already journaled\n%!"
    (List.length pending) skipped;
  let my_journal = journal_path ?worker:settings.worker dir in
  let journal = Journal.open_ my_journal in
  let commit =
    Group_commit.create ~window_s:settings.flush_window_s
      ~max_batch:settings.flush_max_batch
      ~checkpoint_every:settings.checkpoint_every ~store ~journal
      ~initial:(Journal.replay_checkpointed my_journal)
      ()
  in
  let before = Abg_obs.Obs.snapshot () in
  let completions =
    Fun.protect
      ~finally:(fun () ->
        Group_commit.close commit;
        Journal.close journal;
        Store.close store)
      (fun () ->
        Abg_parallel.Pool.map_list ?num_domains:settings.num_domains
          (run_one ~settings ~store ~commit)
          pending)
  in
  let after = Abg_obs.Obs.snapshot () in
  {
    completions;
    skipped;
    remaining = List.length dropped;
    counters = Abg_obs.Obs.delta_counters ~before ~after;
  }

let run ~dir ~settings jobs =
  init ~dir jobs;
  execute ~dir ~settings

let resume ~dir ~settings () = execute ~dir ~settings

(* -- offline maintenance -- *)

let is_hex32 s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

(* Result documents reference blobs as bare 32-hex strings ("blob",
   "features", ...); treating every such string as a reference is the
   conservative over-approximation that keeps GC safe as result schemas
   grow new fields. *)
let rec add_refs tbl = function
  | Jsonx.Str s when is_hex32 s -> Hashtbl.replace tbl s ()
  | Jsonx.List l -> List.iter (add_refs tbl) l
  | Jsonx.Obj fields -> List.iter (fun (_, v) -> add_refs tbl v) fields
  | _ -> ()

let gc ~dir =
  let store = Store.open_ (store_path dir) in
  let live = Hashtbl.create 256 in
  List.iter
    (fun (e : Journal.entry) ->
      match (e.Journal.status, e.Journal.result) with
      | Journal.Ok, Some blob -> (
          Hashtbl.replace live blob ();
          match Store.get store blob with
          | content -> (
              match Jsonx.parse content with
              | doc -> add_refs live doc
              | exception _ -> ())
          | exception Not_found -> ())
      | _ -> ())
    (settled_entries ~verify:true dir);
  Store.gc store ~live:(Hashtbl.mem live)

let compact ~dir = List.iter Journal.compact (journal_paths ~dir)
