(** Append-only, fsync'd journal of job completions, with checkpoints.

    One line per terminal job outcome, in canonical JSON
    ({!Jsonx.to_string}), flushed and fsync'd before {!append} (or
    {!append_batch}, which pays one write and one fsync for a whole
    batch — the group-commit primitive) returns — after a crash the
    journal holds every completion that was acknowledged, plus at most
    one torn final line, which replay discards (the interrupted job
    simply re-runs on resume; its artifacts are content-addressed, so
    re-running cannot change the store).

    The journal records {e outcomes}, not progress: a job appears once,
    as [Ok] (with its result-blob digest) or [Quarantined] (with its
    error and attempt count). Resume = replay the journal, skip every
    job that has a line.

    {2 Checkpoints}

    Interleaved with outcome lines the journal may carry {e checkpoint
    records}: one canonical-JSON line snapshotting the whole settled
    outcome set at that point, digest-sorted, in a fixed-width packed
    encoding guarded by its own integrity hash. {!replay_checkpointed}
    locates the last valid checkpoint by scanning line prefixes from
    the end and parses only it plus the outcome lines after it, so
    resume/status cost is proportional to the work outstanding since
    the last checkpoint, not to the run's history. An invalid (torn or
    corrupted) checkpoint record makes the reader fall back to the
    previous checkpoint — checkpoints are a cache of the outcome lines,
    never the only copy of an acknowledged completion, except after
    {!compact} has rewritten the file. *)

type status = Ok | Quarantined

type entry = {
  job : string;  (** job digest ({!Job.digest}) *)
  status : status;
  attempts : int;  (** attempts consumed in the run that completed it *)
  result : string option;  (** result-blob digest ([Ok] entries) *)
  error : string option;  (** last error ([Quarantined] entries) *)
}

val entry_to_line : entry -> string
(** Canonical one-line rendering (no newline). *)

val entry_of_line : string -> entry
(** Raises {!Jsonx.Malformed} on anything but a canonical line. *)

type t

val open_ : string -> t
(** Open (creating if absent) for appending. A torn final line left by a
    crash is truncated away first, so new appends never glue onto it. *)

val append : t -> entry -> unit
(** Serialize, write, fsync. Safe from concurrent domains. *)

val append_batch : t -> entry list -> unit
(** All lines in one [write] syscall, then one fsync: the per-entry
    durability cost is amortized over the batch. [[]] is a no-op. Safe
    from concurrent domains. *)

val append_checkpoint : t -> entry list -> unit
(** Append a checkpoint record snapshotting [entries] — the {e full}
    settled outcome set of this journal file, any order (the record is
    digest-sorted internally). One write, one fsync. Raises
    [Invalid_argument] if an entry does not fit the packed encoding
    (job/result digests must be 32 chars; attempts < 65536). *)

val close : t -> unit

val replay : string -> entry list
(** Parse a whole journal file: every outcome line plus every valid
    checkpoint record, deduplicated by job digest (first occurrence
    wins — a checkpoint only ever repeats lines already seen, except in
    a compacted journal where it is the only copy). A missing file is
    an empty journal; a torn final line (crash mid-append) is
    discarded, as is an invalid final checkpoint record; a malformed
    {e interior} line — outcome or checkpoint — raises
    {!Jsonx.Malformed}: that is corruption, not a crash artifact. *)

val replay_checkpointed : string -> entry list
(** Same outcome set as {!replay}, but O(outstanding): scan backwards
    for the last valid checkpoint record, decode its packed snapshot,
    and parse only the outcome lines after it. An invalid checkpoint
    (torn, truncated, or failing its integrity hash) falls back to the
    previous one; with no valid checkpoint this is a full replay.
    Unlike {!replay}, interior corruption among the {e skipped} prefix
    goes unnoticed — this is the fast path, {!replay} the verifying
    one. *)

val compact : string -> unit
(** Rewrite the journal as a single checkpoint record covering its
    whole outcome set, via write-temp, fsync, rename — interrupting it
    at any instant leaves either the old or the new journal, never a
    torn one. A missing file is left missing. Offline only: must not
    run concurrently with a writer holding the journal open. *)
