(** Append-only, fsync'd journal of job completions.

    One line per terminal job outcome, in canonical JSON
    ({!Jsonx.to_string}), each line flushed and fsync'd before
    {!append} returns — after a crash the journal holds every
    completion that was acknowledged, plus at most one torn final line,
    which {!replay} discards (the interrupted job simply re-runs on
    resume; its artifacts are content-addressed, so re-running cannot
    change the store).

    The journal records {e outcomes}, not progress: a job appears once,
    as [Ok] (with its result-blob digest) or [Quarantined] (with its
    error and attempt count). Resume = replay the journal, skip every
    job that has a line. *)

type status = Ok | Quarantined

type entry = {
  job : string;  (** job digest ({!Job.digest}) *)
  status : status;
  attempts : int;  (** attempts consumed in the run that completed it *)
  result : string option;  (** result-blob digest ([Ok] entries) *)
  error : string option;  (** last error ([Quarantined] entries) *)
}

val entry_to_line : entry -> string
(** Canonical one-line rendering (no newline). *)

val entry_of_line : string -> entry
(** Raises {!Jsonx.Malformed} on anything but a canonical line. *)

type t

val open_ : string -> t
(** Open (creating if absent) for appending. A torn final line left by a
    crash is truncated away first, so new appends never glue onto it. *)

val append : t -> entry -> unit
(** Serialize, write, fsync. Safe from concurrent domains. *)

val close : t -> unit

val replay : string -> entry list
(** Parse a journal file, in order. A missing file is an empty journal;
    a torn final line (crash mid-append) is discarded; a malformed
    {e interior} line raises {!Jsonx.Malformed} — that is corruption,
    not a crash artifact. *)
