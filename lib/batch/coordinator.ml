(* Worker supervision for multi-process batch runs. See
   coordinator.mli. *)

type outcome = {
  quarantined : bool;
  respawns : int;
  failed : (int * string) list;
}

type slot = { worker : int; mutable spawned : int }

(* OCaml's Unix module numbers signals by its own internal scheme
   (Sys.sigkill = -7); translate the ones a supervisor actually sees. *)
let signal_name sg =
  if sg = Sys.sigkill then "SIGKILL"
  else if sg = Sys.sigterm then "SIGTERM"
  else if sg = Sys.sigint then "SIGINT"
  else if sg = Sys.sigsegv then "SIGSEGV"
  else if sg = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" sg

let describe_status = function
  | Unix.WEXITED code -> Printf.sprintf "exited %d" code
  | Unix.WSIGNALED sg -> Printf.sprintf "killed by %s" (signal_name sg)
  | Unix.WSTOPPED sg -> Printf.sprintf "stopped by %s" (signal_name sg)

let spawn argv =
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr

let rec wait_any () =
  match Unix.wait () with
  | pid, status -> (pid, status)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_any ()

let supervise ?(max_respawns = 10) ?(respawn_backoff_s = 0.2) ~argv ~workers ()
    =
  if workers < 1 then invalid_arg "Coordinator.supervise: workers < 1";
  let live = Hashtbl.create workers in
  let quarantined = ref false in
  let respawns = ref 0 in
  let failed = ref [] in
  for i = 0 to workers - 1 do
    Hashtbl.replace live (spawn (argv i)) { worker = i; spawned = 1 }
  done;
  while Hashtbl.length live > 0 do
    let pid, status = wait_any () in
    match Hashtbl.find_opt live pid with
    | None -> () (* not one of ours (reaped a stray child) *)
    | Some slot -> (
        Hashtbl.remove live pid;
        match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED 2 -> quarantined := true
        | status ->
            (* Crash or kill: the worker's journal already holds every
               completion it acknowledged, so a respawn with the same
               argv resumes rather than restarts. *)
            if slot.spawned > max_respawns then
              failed := (slot.worker, describe_status status) :: !failed
            else begin
              Printf.eprintf
                "[batch] worker %d %s; respawning (attempt %d/%d)\n%!"
                slot.worker (describe_status status) slot.spawned max_respawns;
              incr respawns;
              if respawn_backoff_s > 0. then
                Unix.sleepf (respawn_backoff_s *. float_of_int slot.spawned);
              slot.spawned <- slot.spawned + 1;
              Hashtbl.replace live (spawn (argv slot.worker)) slot
            end)
  done;
  {
    quarantined = !quarantined;
    respawns = !respawns;
    failed = List.sort compare !failed;
  }
