(** Canonical JSON for batch artifacts.

    Every byte the orchestrator persists — job specs, journal lines,
    result blobs — goes through this writer, whose output is a pure
    function of the value: fixed key order (the caller's), no
    whitespace variation, integers printed as integers, and bit-exact
    floats carried as hex-notation strings ({!hex}/{!hex_float}). That
    is what makes "kill, resume, diff" a byte-level comparison.

    The parsed representation is shared with {!Abg_obs.Report.json} so
    the reader comes for free. *)

type t = Abg_obs.Report.json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string
(** Raised by the accessors below on shape mismatches (the message names
    the field). {!parse} errors surface as
    {!Abg_obs.Report.Parse_error}. *)

val to_string : t -> string
(** Compact canonical rendering, no trailing newline. [Num] values that
    are exact integers print as integers; other floats print with
    enough digits to round-trip ([%.17g]). *)

val parse : string -> t

val hex : float -> t
(** A float as a bit-exact hex-notation JSON string (["0x1.8p+3"]). *)

val hex_float : t -> float
(** Inverse of {!hex}. *)

(** Accessors; all raise {!Malformed} with [ctx] in the message. *)

val member : ctx:string -> string -> t -> t
val member_opt : string -> t -> t option
val str : ctx:string -> t -> string
val int : ctx:string -> t -> int
val list : ctx:string -> t -> t list
