(** Multi-process shard coordinator: spawn n workers, supervise them,
    resume the killed ones.

    Each worker is a full child process (its own runtime, domains, and
    store pack file) running one shard of the grid; because resume is
    idempotent — settled jobs are skipped, artifacts are
    content-addressed — a worker that dies from a signal or an abnormal
    exit is simply {e respawned with the same argv} and picks up where
    its journal left off. Clean exits (0, or 2 = completed with
    quarantined jobs, mirroring the CLI convention) retire the worker.

    The coordinator itself holds no run state: killing it and re-running
    the same command is the same resume story one level up. *)

type outcome = {
  quarantined : bool;  (** some worker exited 2 (quarantines present) *)
  respawns : int;  (** total respawns across all workers *)
  failed : (int * string) list;
      (** workers abandoned after [max_respawns], with a description of
          their last death *)
}

val supervise :
  ?max_respawns:int ->
  ?respawn_backoff_s:float ->
  argv:(int -> string array) ->
  workers:int ->
  unit ->
  outcome
(** Spawn workers [0 .. workers-1] with [argv i] (element 0 is the
    program path) and wait for all of them to retire. A worker killed
    by a signal or exiting with a code other than 0/2 is respawned —
    after a linear backoff — up to [max_respawns] times (default 10,
    backoff 0.2s); beyond that it is abandoned and reported in
    [failed]. Respawns are logged to stderr. *)
