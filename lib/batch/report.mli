(** Deterministic run reports.

    Both entry points are pure functions of the run directory's
    persisted state — the grid, the journal's settled outcomes, and the
    store — never of this process's timing, so a killed-and-resumed run
    reports byte-identically to an uninterrupted one. *)

val status : dir:string -> string
(** One-screen progress summary: jobs total / done / quarantined /
    pending, per-kind breakdown, store blob count. *)

val render : dir:string -> string
(** The full Table-2-style report: one section per job kind
    (synthesis, noise robustness, classification, collection, probes),
    rows in canonical job order, then quarantined jobs with their
    errors, then totals. Raises [Failure] if the run directory has no
    grid. *)
