(** Deterministic run reports.

    Both entry points are pure functions of the run directory's
    persisted state — the grid, the journal family's settled outcomes,
    and the store — never of this process's timing, so a
    killed-and-resumed run reports byte-identically to an uninterrupted
    one, and a coordinator run (several worker journals) byte-identically
    to a single-process one.

    By default both read the fast path: the last checkpoint plus the
    outcome lines after it ({!Runner.settled_entries}), and blob reads
    skip content re-hashing ({!Store.get_unverified} — skips are
    counted in [batch.verify_skipped]). [~verify:true] opts back into
    full-history replay and re-hashed blob reads: same output, plus an
    exception if any journal line, checkpoint, or blob is corrupt. *)

val status : ?verify:bool -> string -> string
(** One-screen progress summary: jobs total / done / quarantined /
    pending, per-kind breakdown, store blob count. *)

val render : ?verify:bool -> string -> string
(** The full Table-2-style report: one section per job kind
    (synthesis, noise robustness, classification, collection, probes),
    rows in canonical job order, then quarantined jobs with their
    errors, then totals. Raises [Failure] if the run directory has no
    grid. *)
