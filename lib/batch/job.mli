(** Declarative, serializable experiment jobs.

    Every row of the paper's evaluation grid becomes one {!t}: a job
    kind (trace collection, synthesis, classification, noise
    robustness), a ground-truth CCA, an explicit list of testbed
    scenario configs, and a seed. Jobs serialize canonically
    ({!to_json} has a fixed key order, lossless hex floats, configs as
    {!Abg_netsim.Config.digest} strings), and {!digest} of that
    rendering is the job's stable identity — the journal key the
    crash-safe runner replays against, and the sharding key.

    [Probe] is a self-test kind (CI smoke, fault-containment tests): it
    does a trivial deterministic computation, optionally sleeping and
    optionally failing its first [fail_attempts] attempts. *)

type kind =
  | Collect
  | Synthesize of { dsl : string option }
  | Classify
  | Noise of { stddev : float; keep : float }
      (** observation noise then subsampling, both seeded by the job *)
  | Probe of { fail_attempts : int; sleep_ms : int }
  | Fuzz_eval of {
      fitness : string;  (** {!Abg_fuzz.Fitness.kind_name} token *)
      cca_b : string option;  (** divergence pair's second CCA *)
      handler : string option;  (** {!Abg_fuzz.Codec}-encoded handler *)
      genome : string;  (** {!Abg_fuzz.Genome.encode} of the individual *)
    }
      (** one fitness evaluation of one scenario genome; the decoded
          scenario is the job's single config *)

type t = {
  kind : kind;
  cca : string;
  seed : int;
  configs : Abg_netsim.Config.t list;
}

(** A grid description, expanded to [kinds x ccas x seeds] jobs (each
    over the same [scenarios]-point testbed grid). Seed-insensitive
    kinds ([Collect], [Classify]) expand once per CCA, with the first
    seed. *)
type grid = {
  kinds : kind list;
  ccas : string list;
  scenarios : int;
  duration : float;
  ack_jitter : float;
  seeds : int list;
}

val expand : grid -> t list
(** Raises [Invalid_argument] on an empty [kinds]/[ccas]/[seeds]. *)

val kind_name : kind -> string
(** ["collect"], ["synth"], ["classify"], ["noise"], ["probe"],
    ["fuzz"]. *)

val kind_of_token : string -> (kind, string) result
(** Parse a CLI kind token: ["collect"], ["synth"], ["synth:DSL"],
    ["classify"], ["noise:STDDEV:KEEP"], ["probe:FAILS:SLEEP_MS"]. *)

val describe : t -> string
(** Human one-liner: kind, cca, scenario count, seed. *)

val to_json : t -> Jsonx.t
val of_json : Jsonx.t -> t
(** Raises {!Jsonx.Malformed} on shape errors. *)

val digest : t -> string
(** MD5 hex of the canonical serialization: two jobs share a digest iff
    every parameter — kind, kind arguments, CCA, seed, and every config
    field including [ack_jitter] and the per-scenario RNG seeds — is
    identical. *)

val compare_canonical : t -> t -> int
(** Order by {!digest}: the runner's dispatch and report order. *)
