(** Group commit: one fsync per bounded window, not per job.

    Sits between concurrently completing jobs and the durable pair
    ({!Store} pack + {!Journal}). {!commit} enqueues a completion and
    blocks until an fsync {e covering that entry's journal line} has
    returned — the caller may then report the job done (pool, counters,
    CLI) knowing it survives any crash. Entries queued while a flush is
    in progress ride the next one, so n concurrent completions cost
    O(1) fsyncs, not n; the [batch.fsync_coalesced] counter records how
    many fsyncs the batching saved.

    Each flush is one leader doing, in order: {!Store.flush_staged}
    (pack append + fsync — every staged blob, and in particular every
    blob referenced by the batch's entries, becomes durable), then
    {!Journal.append_batch} (one write + one fsync). The ordering is
    the durability-window invariant: a journal line can only exist on
    disk if the blobs it references are already durable, so a crash at
    any instant leaves the journal describing only retrievable results.

    The flush window is bounded in both dimensions: at most [max_batch]
    entries per flush, and an optional [window_s] linger lets
    concurrent completions coalesce before the leader flushes (zero —
    the default — flushes whatever has queued by the time the leader
    runs, which under concurrency is already a batch).

    Flushes also drive {e checkpointing}: after a flush, if the number
    of entries journaled since the last checkpoint reaches
    [max checkpoint_every (settled/2)], the leader appends a checkpoint
    record snapshotting the full settled set (the geometric [settled/2]
    term keeps total checkpoint bytes linear in history). Counted by
    [batch.checkpoint_written]. *)

type t

val create :
  ?window_s:float ->
  ?max_batch:int ->
  ?checkpoint_every:int ->
  store:Store.t ->
  journal:Journal.t ->
  initial:Journal.entry list ->
  unit ->
  t
(** [initial] is the journal file's already-settled outcome set (from
    replay at resume) — needed so checkpoint records snapshot the whole
    file, not just this session's entries. Defaults: [window_s = 0.],
    [max_batch = 256], [checkpoint_every = 1024]. *)

val commit : t -> Journal.entry -> unit
(** Enqueue and block until a flush covering this entry returns. Safe
    from concurrent domains; one caller becomes the flush leader,
    the rest ride its fsync. *)

val close : t -> unit
(** Flush anything still queued (defensive — {!commit} does not return
    before its entry is flushed, so a quiesced pool leaves nothing),
    then append a final checkpoint if enough has accumulated since the
    last one. Does not close the store or journal. *)
