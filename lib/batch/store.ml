(* Content-addressed artifact store. See store.mli for the contract. *)

type t = { root : string; mutable counter : int; m : Mutex.t }

exception Corrupt of string

let schema = "abagnale-store/1"
let manifest_content = "{\"schema\":\"" ^ schema ^ "\"}\n"

let ( / ) = Filename.concat

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Sys.mkdir path 0o755
      with Sys_error _ when Sys.file_exists path -> ()
    end
  in
  go path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Durable write: all bytes down, fsync'd, before the caller renames the
   file into its content-addressed slot. *)
let write_file_sync path content =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length content in
      let written = Unix.write_substring fd content 0 n in
      if written <> n then failwith "Store: short write";
      Unix.fsync fd)

(* Make a rename durable: fsync the containing directory so the new
   directory entry itself survives a crash. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let blobs_dir t = t.root / "blobs"
let tmp_dir t = t.root / "tmp"
let manifest_path root = root / "manifest.json"

let open_ root =
  mkdir_p root;
  let t = { root; counter = 0; m = Mutex.create () } in
  mkdir_p (blobs_dir t);
  mkdir_p (tmp_dir t);
  (* Sweep crash leftovers: a kill mid-put leaves a tmp file that would
     otherwise make this store's bytes differ from a clean run's. *)
  Array.iter
    (fun name -> try Sys.remove (tmp_dir t / name) with Sys_error _ -> ())
    (Sys.readdir (tmp_dir t));
  let manifest = manifest_path root in
  if Sys.file_exists manifest then begin
    let found = read_file manifest in
    if found <> manifest_content then
      raise
        (Corrupt
           (Printf.sprintf "store manifest mismatch at %s: %S" manifest
              (String.trim found)))
  end
  else begin
    let tmp = tmp_dir t / "manifest" in
    write_file_sync tmp manifest_content;
    Sys.rename tmp manifest;
    fsync_dir root
  end;
  t

let dir t = t.root

let digest_hex content = Digest.to_hex (Digest.string content)

let blob_path t digest = blobs_dir t / String.sub digest 0 2 / digest

let put t content =
  let digest = digest_hex content in
  let path = blob_path t digest in
  if not (Sys.file_exists path) then begin
    Mutex.lock t.m;
    t.counter <- t.counter + 1;
    let seq = t.counter in
    Mutex.unlock t.m;
    let tmp =
      tmp_dir t / Printf.sprintf "blob.%d.%d" (Unix.getpid ()) seq
    in
    write_file_sync tmp content;
    mkdir_p (Filename.dirname path);
    (* Concurrent puts of the same content race benignly: both rename
       identical bytes onto the same path, and rename is atomic. *)
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  end;
  digest

let get t digest =
  let path = blob_path t digest in
  if not (Sys.file_exists path) then raise Not_found;
  let content = read_file path in
  let found = digest_hex content in
  if found <> digest then
    raise
      (Corrupt
         (Printf.sprintf "blob %s corrupt: content hashes to %s" digest found));
  content

let mem t digest = Sys.file_exists (blob_path t digest)

let list t =
  let subs = try Sys.readdir (blobs_dir t) with Sys_error _ -> [||] in
  Array.to_list subs
  |> List.concat_map (fun sub ->
         match Sys.readdir (blobs_dir t / sub) with
         | exception Sys_error _ -> []
         | names -> Array.to_list names)
  |> List.sort String.compare
