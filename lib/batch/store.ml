(* Content-addressed artifact store with a pack-file group-commit write
   path. See store.mli for the contract.

   Layout:
     DIR/manifest.json          versioned schema marker
     DIR/blobs/<d0d1>/<digest>  loose blobs — the canonical listing
     DIR/tmp/                   in-flight writes (pid-tagged)
     DIR/pack/<pid>.pack        per-process append-only packs

   A pack is a sequence of self-delimiting records:

     {"blob":"<digest>","bytes":N}\n<N content bytes>\n

   Deferred puts stage in memory; [flush_staged] appends the whole
   batch to the pack with one write and one fsync — that fsync is the
   durability point for every blob in the batch. Loose copies are
   materialized (unsynced) at [close], and [open_] re-materializes any
   pack-covered blob that is missing or mis-sized, so the loose tree is
   complete after any crash. A torn pack tail (kill mid-append) simply
   ends the scan: the torn record's blob was never acknowledged. *)

type pack_record = { offset : int; bytes : int }

type t = {
  root : string;
  deferred : bool;
  mutable counter : int;
  m : Mutex.t;
  (* Deferred-mode state, all under [m]: blobs staged since the last
     flush (insertion order), a digest->content view of them for reads,
     and a digest->pack-extent index of records this process flushed
     but has not yet materialized. *)
  mutable staged : (string * string) list;
  staged_tbl : (string, string) Hashtbl.t;
  packed : (string, pack_record) Hashtbl.t;
  mutable pack_fd : Unix.file_descr option;
  mutable pack_len : int;
}

exception Corrupt of string

let schema = "abagnale-store/2"
let manifest_content = "{\"schema\":\"" ^ schema ^ "\"}\n"

(* Skipped-verification reads and GC sweeps depend on CLI flags and
   crash history, not on workload alone — volatile, like the other
   batch counters. *)
let obs_verify_skipped =
  Abg_obs.Obs.Counter.make ~volatile:true "batch.verify_skipped"

let obs_gc_swept = Abg_obs.Obs.Counter.make ~volatile:true "batch.gc_swept"

let ( / ) = Filename.concat

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Sys.mkdir path 0o755
      with Sys_error _ when Sys.file_exists path -> ()
    end
  in
  go path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Unsynced write — for loose copies whose durable twin is a fsync'd
   pack record. A kill mid-write leaves a short file, which the next
   open's size check catches and rewrites. *)
let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* Durable write: all bytes down, fsync'd, before the caller renames the
   file into its content-addressed slot. *)
let write_file_sync path content =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length content in
      let written = Unix.write_substring fd content 0 n in
      if written <> n then failwith "Store: short write";
      Unix.fsync fd)

(* Make a rename durable: fsync the containing directory so the new
   directory entry itself survives a crash. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> Unix.fsync fd)

let blobs_dir t = t.root / "blobs"
let tmp_dir t = t.root / "tmp"
let pack_dir t = t.root / "pack"
let manifest_path root = root / "manifest.json"
let own_pack_path t = pack_dir t / Printf.sprintf "%d.pack" (Unix.getpid ())

let digest_hex content = Digest.to_hex (Digest.string content)
let blob_path t digest = blobs_dir t / String.sub digest 0 2 / digest

let file_size path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> None
  | st -> if st.Unix.st_kind = Unix.S_REG then Some st.Unix.st_size else None

(* -- pack scanning --

   Stream a pack file record by record, calling [f digest bytes ic]
   with the channel positioned at the content (f may read it; position
   is restored from the header afterwards). Returns the byte length of
   the valid prefix — anything past it is a torn tail from a kill
   mid-append, whose blob was never acknowledged. *)
let scan_pack path ~f =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let total = in_channel_length ic in
          let valid = ref 0 in
          (try
             while pos_in ic < total do
               let header = input_line ic in
               let json = Jsonx.parse header in
               let ctx = "pack" in
               let digest = Jsonx.str ~ctx (Jsonx.member ~ctx "blob" json) in
               let bytes = Jsonx.int ~ctx (Jsonx.member ~ctx "bytes" json) in
               if bytes < 0 || String.length digest <> 32 then raise Exit;
               let content_pos = pos_in ic in
               if content_pos + bytes + 1 > total then raise Exit;
               f digest bytes ic;
               seek_in ic (content_pos + bytes);
               if input_char ic <> '\n' then raise Exit;
               valid := pos_in ic
             done
           with
          | End_of_file | Exit | Jsonx.Malformed _ | Failure _ -> ()
          | Abg_obs.Report.Parse_error _ -> ());
          !valid)

(* -- open-time recovery -- *)

let next_tmp t =
  Mutex.lock t.m;
  t.counter <- t.counter + 1;
  let seq = t.counter in
  Mutex.unlock t.m;
  tmp_dir t / Printf.sprintf "blob.%d.%d" (Unix.getpid ()) seq

(* Loose copy of a pack-covered blob: unsynced write, atomic rename.
   Concurrent materializations of the same digest race benignly — both
   rename identical bytes onto the same path. *)
let materialize t digest content =
  let tmp = next_tmp t in
  write_file tmp content;
  let path = blob_path t digest in
  mkdir_p (Filename.dirname path);
  Sys.rename tmp path

(* Re-materialize every pack-covered blob whose loose copy is missing
   or mis-sized. Packs — including live siblings' in a coordinator run,
   whose in-progress tails just end the scan early — only ever describe
   content also covered by their own fsync, so rewriting is safe. *)
let recover_packs t =
  match Sys.readdir (pack_dir t) with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".pack" then
            ignore
              (scan_pack (pack_dir t / name) ~f:(fun digest bytes ic ->
                   match file_size (blob_path t digest) with
                   | Some size when size = bytes -> ()
                   | _ -> materialize t digest (really_input_string ic bytes))))
        names

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true

(* tmp files are pid-tagged ("blob.<pid>.<seq>", "manifest.<pid>").
   Coordinator workers share one store, so only leftovers whose writer
   is dead (or is us, re-opening) may be swept — a sibling's in-flight
   tmp file is live state, not garbage. *)
let tmp_owner name =
  match String.split_on_char '.' name with
  | _ :: pid :: _ -> int_of_string_opt pid
  | _ -> None

let sweep_tmp ?(all = false) t =
  let self = Unix.getpid () in
  let swept = ref 0 in
  (match Sys.readdir (tmp_dir t) with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          let dead =
            all
            ||
            match tmp_owner name with
            | Some pid -> pid = self || not (pid_alive pid)
            | None -> true
          in
          if dead then begin
            (try Sys.remove (tmp_dir t / name) with Sys_error _ -> ());
            incr swept
          end)
        names);
  !swept

(* Reopening under a recycled pid must not append after a torn tail —
   truncate the pack to its valid prefix first. *)
let open_own_pack t =
  let path = own_pack_path t in
  let valid = scan_pack path ~f:(fun _ _ _ -> ()) in
  (match file_size path with
  | Some size when size > valid ->
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd valid;
          Unix.fsync fd)
  | _ -> ());
  t.pack_fd <-
    Some
      (Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644);
  t.pack_len <- valid

let open_ ?(deferred = false) root =
  mkdir_p root;
  let t =
    {
      root;
      deferred;
      counter = 0;
      m = Mutex.create ();
      staged = [];
      staged_tbl = Hashtbl.create 64;
      packed = Hashtbl.create 64;
      pack_fd = None;
      pack_len = 0;
    }
  in
  mkdir_p (blobs_dir t);
  mkdir_p (tmp_dir t);
  mkdir_p (pack_dir t);
  recover_packs t;
  ignore (sweep_tmp t);
  let manifest = manifest_path root in
  if Sys.file_exists manifest then begin
    let found = read_file manifest in
    if found <> manifest_content then
      raise
        (Corrupt
           (Printf.sprintf "store manifest mismatch at %s: %S" manifest
              (String.trim found)))
  end
  else begin
    let tmp = tmp_dir t / Printf.sprintf "manifest.%d" (Unix.getpid ()) in
    write_file_sync tmp manifest_content;
    Sys.rename tmp manifest;
    fsync_dir root
  end;
  if deferred then open_own_pack t;
  t

let dir t = t.root

(* -- writes -- *)

let put_immediate t digest content =
  let path = blob_path t digest in
  if not (Sys.file_exists path) then begin
    let tmp = next_tmp t in
    write_file_sync tmp content;
    mkdir_p (Filename.dirname path);
    (* Concurrent puts of the same content race benignly: both rename
       identical bytes onto the same path, and rename is atomic. *)
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  end

let put t content =
  let digest = digest_hex content in
  if t.deferred then begin
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        if
          (not (Hashtbl.mem t.staged_tbl digest))
          && (not (Hashtbl.mem t.packed digest))
          && not (Sys.file_exists (blob_path t digest))
        then begin
          Hashtbl.add t.staged_tbl digest content;
          t.staged <- (digest, content) :: t.staged
        end)
  end
  else put_immediate t digest content;
  digest

let flush_staged t =
  if not t.deferred then 0
  else begin
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        match (t.staged, t.pack_fd) with
        | [], _ | _, None -> 0
        | staged, Some fd ->
            let batch = List.rev staged in
            let buf = Buffer.create 4096 in
            let extents =
              List.map
                (fun (digest, content) ->
                  let header =
                    Printf.sprintf "{\"blob\":\"%s\",\"bytes\":%d}\n" digest
                      (String.length content)
                  in
                  let offset =
                    t.pack_len + Buffer.length buf + String.length header
                  in
                  Buffer.add_string buf header;
                  Buffer.add_string buf content;
                  Buffer.add_char buf '\n';
                  (digest, { offset; bytes = String.length content }))
                batch
            in
            let payload = Buffer.contents buf in
            let n = String.length payload in
            let written = Unix.write_substring fd payload 0 n in
            if written <> n then failwith "Store.flush_staged: short write";
            Unix.fsync fd;
            (* Durability point: every blob in the batch is now covered
               by its pack record. Content can leave memory. *)
            t.pack_len <- t.pack_len + n;
            List.iter
              (fun (digest, extent) ->
                Hashtbl.replace t.packed digest extent;
                Hashtbl.remove t.staged_tbl digest)
              extents;
            t.staged <- [];
            List.length batch)
  end

let close t =
  ignore (flush_staged t);
  match t.pack_fd with
  | None -> ()
  | Some fd ->
      Unix.close fd;
      t.pack_fd <- None;
      (* Materialize this run's loose copies from the pack — identical
         to what open-time recovery would do after a crash, just paid
         here instead of by the next reader. *)
      ignore
        (scan_pack (own_pack_path t) ~f:(fun digest bytes ic ->
             match file_size (blob_path t digest) with
             | Some size when size = bytes -> ()
             | _ -> materialize t digest (really_input_string ic bytes)));
      Hashtbl.reset t.packed

(* -- reads -- *)

let read_packed path { offset; bytes } =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic offset;
      really_input_string ic bytes)

(* Deferred blobs not yet loose: staged content lives in memory, flushed
   content in this process's own pack. *)
let read_unmaterialized t digest =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match Hashtbl.find_opt t.staged_tbl digest with
      | Some content -> Some content
      | None -> (
          match Hashtbl.find_opt t.packed digest with
          | Some extent -> Some (read_packed (own_pack_path t) extent)
          | None -> None))

let get_raw t digest =
  let path = blob_path t digest in
  if Sys.file_exists path then read_file path
  else
    match read_unmaterialized t digest with
    | Some content -> content
    | None -> raise Not_found

let get t digest =
  let content = get_raw t digest in
  let found = digest_hex content in
  if found <> digest then
    raise
      (Corrupt
         (Printf.sprintf "blob %s corrupt: content hashes to %s" digest found));
  content

let get_unverified t digest =
  Abg_obs.Obs.Counter.incr obs_verify_skipped;
  get_raw t digest

let mem t digest =
  Sys.file_exists (blob_path t digest)
  ||
  (t.deferred
  &&
  (Mutex.lock t.m;
   Fun.protect
     ~finally:(fun () -> Mutex.unlock t.m)
     (fun () ->
       Hashtbl.mem t.staged_tbl digest || Hashtbl.mem t.packed digest)))

let list t =
  let subs = try Sys.readdir (blobs_dir t) with Sys_error _ -> [||] in
  Array.to_list subs
  |> List.concat_map (fun sub ->
         match Sys.readdir (blobs_dir t / sub) with
         | exception Sys_error _ -> []
         | names -> Array.to_list names)
  |> List.sort String.compare

(* -- gc -- *)

type gc_stats = {
  kept : int;
  swept : int;
  tmp_swept : int;
  packs_folded : int;
  dirs_pruned : int;
}

(* Fold one pack into the loose tree: hash-verify each covered loose
   blob (a mis-sized or rotted copy is rewritten from the pack — the
   pack fsync made it the authoritative bytes), fsync it, and only then
   is the pack deletable. *)
let fold_pack t path =
  ignore
    (scan_pack path ~f:(fun digest bytes ic ->
         let content = really_input_string ic bytes in
         let loose = blob_path t digest in
         let valid =
           match file_size loose with
           | Some size when size = bytes ->
               digest_hex (read_file loose) = digest
           | _ -> false
         in
         if not valid then materialize t digest content;
         fsync_path loose;
         fsync_dir (Filename.dirname loose)));
  Sys.remove path

let gc t ~live =
  if t.deferred then invalid_arg "Store.gc: offline only (deferred store)";
  let packs_folded = ref 0 in
  (match Sys.readdir (pack_dir t) with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".pack" then begin
            fold_pack t (pack_dir t / name);
            incr packs_folded
          end)
        names);
  if !packs_folded > 0 then fsync_dir (pack_dir t);
  let kept = ref 0 and swept = ref 0 and dirs_pruned = ref 0 in
  let subs = try Sys.readdir (blobs_dir t) with Sys_error _ -> [||] in
  Array.iter
    (fun sub ->
      let sub_dir = blobs_dir t / sub in
      (match Sys.readdir sub_dir with
      | exception Sys_error _ -> ()
      | names ->
          Array.iter
            (fun digest ->
              if live digest then incr kept
              else begin
                (try Sys.remove (sub_dir / digest) with Sys_error _ -> ());
                incr swept
              end)
            names);
      match Sys.readdir sub_dir with
      | exception Sys_error _ -> ()
      | [||] ->
          (try Sys.rmdir sub_dir with Sys_error _ -> ());
          incr dirs_pruned
      | _ -> ())
    subs;
  if !swept > 0 || !dirs_pruned > 0 then fsync_dir (blobs_dir t);
  (* Offline contract: no concurrent writers, so every tmp leftover is
     garbage regardless of whose pid it carries. *)
  let tmp_swept = sweep_tmp ~all:true t in
  Abg_obs.Obs.Counter.add obs_gc_swept (!swept + tmp_swept);
  {
    kept = !kept;
    swept = !swept;
    tmp_swept;
    packs_folded = !packs_folded;
    dirs_pruned = !dirs_pruned;
  }
