(* Job specs: serializable descriptions of every experiment in the
   evaluation grid. See job.mli. *)

type kind =
  | Collect
  | Synthesize of { dsl : string option }
  | Classify
  | Noise of { stddev : float; keep : float }
  | Probe of { fail_attempts : int; sleep_ms : int }
  | Fuzz_eval of {
      fitness : string;
      cca_b : string option;
      handler : string option;
      genome : string;
    }

type t = {
  kind : kind;
  cca : string;
  seed : int;
  configs : Abg_netsim.Config.t list;
}

type grid = {
  kinds : kind list;
  ccas : string list;
  scenarios : int;
  duration : float;
  ack_jitter : float;
  seeds : int list;
}

let kind_name = function
  | Collect -> "collect"
  | Synthesize _ -> "synth"
  | Classify -> "classify"
  | Noise _ -> "noise"
  | Probe _ -> "probe"
  | Fuzz_eval _ -> "fuzz"

let kind_of_token token =
  match String.split_on_char ':' token with
  | [ "collect" ] -> Ok Collect
  | [ "synth" ] -> Ok (Synthesize { dsl = None })
  | [ "synth"; dsl ] -> Ok (Synthesize { dsl = Some dsl })
  | [ "classify" ] -> Ok Classify
  | [ "noise"; stddev; keep ] -> (
      match (float_of_string_opt stddev, float_of_string_opt keep) with
      | Some stddev, Some keep -> Ok (Noise { stddev; keep })
      | _ -> Error (Printf.sprintf "bad noise parameters in %S" token))
  | [ "probe"; fails; sleep ] -> (
      match (int_of_string_opt fails, int_of_string_opt sleep) with
      | Some fail_attempts, Some sleep_ms ->
          Ok (Probe { fail_attempts; sleep_ms })
      | _ -> Error (Printf.sprintf "bad probe parameters in %S" token))
  | _ ->
      Error
        (Printf.sprintf
           "unknown job kind %S (want collect, synth[:DSL], classify, \
            noise:STDDEV:KEEP, or probe:FAILS:SLEEP_MS; fuzz jobs are \
            built by `abagnale fuzz`, not grid tokens)"
           token)

(* Collect and Classify results do not depend on the job seed (the
   scenario configs carry their own simulation seeds), so expanding them
   per seed would only duplicate report rows; they get the first seed. *)
let seed_sensitive = function
  | Collect | Classify -> false
  | Synthesize _ | Noise _ | Probe _ | Fuzz_eval _ -> true

let expand grid =
  if grid.kinds = [] then invalid_arg "Job.expand: no kinds";
  if grid.ccas = [] then invalid_arg "Job.expand: no ccas";
  if grid.seeds = [] then invalid_arg "Job.expand: no seeds";
  let configs =
    Abg_netsim.Config.testbed_grid ~duration:grid.duration
      ~ack_jitter:grid.ack_jitter ~n:grid.scenarios ()
  in
  List.concat_map
    (fun kind ->
      let seeds =
        if seed_sensitive kind then grid.seeds else [ List.hd grid.seeds ]
      in
      let configs = match kind with Probe _ -> [] | _ -> configs in
      List.concat_map
        (fun cca -> List.map (fun seed -> { kind; cca; seed; configs }) seeds)
        grid.ccas)
    grid.kinds

let describe job =
  Printf.sprintf "%s/%s (%d scenario%s, seed %d)" (kind_name job.kind) job.cca
    (List.length job.configs)
    (if List.length job.configs = 1 then "" else "s")
    job.seed

(* Canonical serialization: fixed key order, kind parameters inline,
   configs as lossless Config.digest strings. [digest] hashes these
   bytes, so any representational change here renames every job —
   version the schema tag if the format must evolve. *)
let to_json job =
  let kind_fields =
    match job.kind with
    | Collect | Classify -> []
    | Synthesize { dsl } ->
        [ ("dsl", match dsl with None -> Jsonx.Null | Some d -> Jsonx.Str d) ]
    | Noise { stddev; keep } ->
        [ ("stddev", Jsonx.hex stddev); ("keep", Jsonx.hex keep) ]
    | Probe { fail_attempts; sleep_ms } ->
        [
          ("fail_attempts", Jsonx.Num (float_of_int fail_attempts));
          ("sleep_ms", Jsonx.Num (float_of_int sleep_ms));
        ]
    | Fuzz_eval { fitness; cca_b; handler; genome } ->
        [
          ("fitness", Jsonx.Str fitness);
          ("cca_b", match cca_b with None -> Jsonx.Null | Some c -> Jsonx.Str c);
          ("fn", match handler with None -> Jsonx.Null | Some h -> Jsonx.Str h);
          ("genome", Jsonx.Str genome);
        ]
  in
  Jsonx.Obj
    ([
       ("schema", Jsonx.Str "abagnale-job/1");
       ("kind", Jsonx.Str (kind_name job.kind));
     ]
    @ kind_fields
    @ [
        ("cca", Jsonx.Str job.cca);
        ("seed", Jsonx.Num (float_of_int job.seed));
        ("configs",
         Jsonx.List
           (List.map
              (fun cfg -> Jsonx.Str (Abg_netsim.Config.digest cfg))
              job.configs));
      ])

let of_json json =
  let ctx = "job" in
  let kind =
    match Jsonx.str ~ctx (Jsonx.member ~ctx "kind" json) with
    | "collect" -> Collect
    | "classify" -> Classify
    | "synth" ->
        Synthesize
          {
            dsl =
              (match Jsonx.member ~ctx "dsl" json with
              | Jsonx.Null -> None
              | j -> Some (Jsonx.str ~ctx:"job.dsl" j));
          }
    | "noise" ->
        Noise
          {
            stddev = Jsonx.hex_float (Jsonx.member ~ctx "stddev" json);
            keep = Jsonx.hex_float (Jsonx.member ~ctx "keep" json);
          }
    | "probe" ->
        Probe
          {
            fail_attempts =
              Jsonx.int ~ctx (Jsonx.member ~ctx "fail_attempts" json);
            sleep_ms = Jsonx.int ~ctx (Jsonx.member ~ctx "sleep_ms" json);
          }
    | "fuzz" ->
        Fuzz_eval
          {
            fitness = Jsonx.str ~ctx (Jsonx.member ~ctx "fitness" json);
            cca_b =
              (match Jsonx.member ~ctx "cca_b" json with
              | Jsonx.Null -> None
              | j -> Some (Jsonx.str ~ctx:"job.cca_b" j));
            handler =
              (match Jsonx.member ~ctx "fn" json with
              | Jsonx.Null -> None
              | j -> Some (Jsonx.str ~ctx:"job.fn" j));
            genome = Jsonx.str ~ctx:"job.genome" (Jsonx.member ~ctx "genome" json);
          }
    | other -> raise (Jsonx.Malformed ("job: unknown kind " ^ other))
  in
  let configs =
    Jsonx.list ~ctx (Jsonx.member ~ctx "configs" json)
    |> List.map (fun j ->
           let s = Jsonx.str ~ctx:"job.configs" j in
           match Abg_netsim.Config.of_digest s with
           | Some cfg -> cfg
           | None -> raise (Jsonx.Malformed ("job: bad config digest " ^ s)))
  in
  {
    kind;
    cca = Jsonx.str ~ctx:"job.cca" (Jsonx.member ~ctx "cca" json);
    seed = Jsonx.int ~ctx:"job.seed" (Jsonx.member ~ctx "seed" json);
    configs;
  }

let digest job = Digest.to_hex (Digest.string (Jsonx.to_string (to_json job)))

let compare_canonical a b = String.compare (digest a) (digest b)
