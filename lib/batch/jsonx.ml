(* Canonical JSON writer over the parsed representation of
   Abg_obs.Report (which also supplies the reader). See jsonx.mli for
   the determinism contract. *)

type t = Abg_obs.Report.json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Malformed of string

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Exact integers (the common case: counts, seeds) print as integers so
   the output is stable and readable; everything else gets %.17g, which
   round-trips any finite double. *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%d" (int_of_float f)
  else Printf.sprintf "%.17g" f

let to_string json =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            emit (Str k);
            Buffer.add_char buf ':';
            emit v)
          fields;
        Buffer.add_char buf '}'
  in
  emit json;
  Buffer.contents buf

let parse = Abg_obs.Report.parse

let hex f = Str (Printf.sprintf "%h" f)

let hex_float = function
  | Str s -> (
      try float_of_string s
      with Failure _ -> raise (Malformed ("not a hex float: " ^ s)))
  | _ -> raise (Malformed "hex float field is not a string")

let member_opt = Abg_obs.Report.member

let member ~ctx key json =
  match member_opt key json with
  | Some v -> v
  | None -> raise (Malformed (ctx ^ ": missing field " ^ key))

let str ~ctx = function
  | Str s -> s
  | _ -> raise (Malformed (ctx ^ ": expected string"))

let int ~ctx = function
  | Num f when Float.is_integer f -> int_of_float f
  | _ -> raise (Malformed (ctx ^ ": expected integer"))

let list ~ctx = function
  | List items -> items
  | _ -> raise (Malformed (ctx ^ ": expected list"))
