(* Deterministic run reports. See report.mli.

   Nothing rendered here may depend on the run directory's path, wall
   clock, or scheduling order — the CI kill-and-resume smoke job diffs
   the reports of two different run directories byte-for-byte. *)

let ( / ) = Filename.concat

type row = {
  job : Job.t;
  digest : string;
  entry : Journal.entry option;  (** [None] = still pending *)
}

let load ~verify dir =
  let jobs = Runner.jobs_of_dir ~dir in
  let settled = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.entry) -> Hashtbl.replace settled e.Journal.job e)
    (Runner.settled_entries ~verify dir);
  List.map
    (fun job ->
      let digest = Job.digest job in
      { job; digest; entry = Hashtbl.find_opt settled digest })
    jobs

(* Verification is opt-in here: a report touches every blob in the run,
   and re-hashing them all on each invocation is exactly the O(history)
   cost this layer exists to avoid. *)
let result_doc ~verify store (row : row) =
  match row.entry with
  | Some { Journal.status = Journal.Ok; result = Some blob; _ } ->
      let read = if verify then Store.get else Store.get_unverified in
      Some (Jsonx.parse (read store blob))
  | _ -> None

(* -- field accessors over result documents -- *)

let str_field doc key =
  match Jsonx.member_opt key doc with
  | Some (Jsonx.Str s) -> Some s
  | _ -> None

let num_field doc key =
  match Jsonx.member_opt key doc with
  | Some (Jsonx.Num n) -> Some n
  | _ -> None

let hex_field doc key =
  match Jsonx.member_opt key doc with
  | Some (Jsonx.Str _ as j) -> Some (Jsonx.hex_float j)
  | _ -> None

let found doc =
  match Jsonx.member_opt "found" doc with
  | Some (Jsonx.Bool b) -> b
  | _ -> false

let fmt_dist = Printf.sprintf "%.4f"
let fmt_opt f = function Some v -> f v | None -> "-"

(* -- sections -- *)

let buf_section buf title rows render_row =
  if rows <> [] then begin
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (String.length title) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun r ->
        Buffer.add_string buf (render_row r);
        Buffer.add_char buf '\n')
      rows;
    Buffer.add_char buf '\n'
  end

let synth_row doc_of (row : row) =
  match doc_of row with
  | None -> Printf.sprintf "  %-12s seed=%-6d PENDING" row.job.Job.cca row.job.Job.seed
  | Some doc ->
      if not (found doc) then
        Printf.sprintf "  %-12s seed=%-6d no finite-distance candidate"
          row.job.Job.cca row.job.Job.seed
      else
        Printf.sprintf "  %-12s seed=%-6d dsl=%-10s dist=%-10s %s"
          row.job.Job.cca row.job.Job.seed
          (fmt_opt Fun.id (str_field doc "dsl"))
          (fmt_opt fmt_dist (hex_field doc "distance"))
          (fmt_opt Fun.id (str_field doc "handler"))

let noise_row doc_of (row : row) =
  let params =
    match row.job.Job.kind with
    | Job.Noise { stddev; keep } ->
        Printf.sprintf "stddev=%g keep=%g" stddev keep
    | _ -> ""
  in
  match doc_of row with
  | None ->
      Printf.sprintf "  %-12s seed=%-6d %-24s PENDING" row.job.Job.cca
        row.job.Job.seed params
  | Some doc ->
      if not (found doc) then
        Printf.sprintf "  %-12s seed=%-6d %-24s no candidate" row.job.Job.cca
          row.job.Job.seed params
      else
        Printf.sprintf "  %-12s seed=%-6d %-24s dist=%-10s clean=%-10s %s"
          row.job.Job.cca row.job.Job.seed params
          (fmt_opt fmt_dist (hex_field doc "distance"))
          (fmt_opt fmt_dist (hex_field doc "distance_clean"))
          (fmt_opt Fun.id (str_field doc "dsl"))

let classify_row doc_of (row : row) =
  match doc_of row with
  | None -> Printf.sprintf "  %-12s PENDING" row.job.Job.cca
  | Some doc ->
      Printf.sprintf "  %-12s gordon=%-20s ccanalyzer=%s" row.job.Job.cca
        (fmt_opt Fun.id (str_field doc "gordon"))
        (fmt_opt Fun.id (str_field doc "ccanalyzer"))

let collect_row doc_of (row : row) =
  match doc_of row with
  | None -> Printf.sprintf "  %-12s PENDING" row.job.Job.cca
  | Some doc ->
      let traces =
        match Jsonx.member_opt "traces" doc with
        | Some (Jsonx.List l) -> l
        | _ -> []
      in
      let records =
        List.fold_left
          (fun acc t ->
            acc + int_of_float (Option.value ~default:0.0 (num_field t "records")))
          0 traces
      in
      Printf.sprintf "  %-12s %d trace(s), %d record(s)" row.job.Job.cca
        (List.length traces) records

let probe_row doc_of (row : row) =
  match doc_of row with
  | None -> Printf.sprintf "  %-12s seed=%-6d PENDING" row.job.Job.cca row.job.Job.seed
  | Some doc ->
      Printf.sprintf "  %-12s seed=%-6d %s checksum=%s" row.job.Job.cca
        row.job.Job.seed
        (fmt_opt Fun.id (str_field doc "payload"))
        (fmt_opt (fun n -> string_of_int (int_of_float n)) (num_field doc "checksum"))

let fuzz_row doc_of (row : row) =
  let fitness =
    match row.job.Job.kind with
    | Job.Fuzz_eval { fitness; _ } -> fitness
    | _ -> ""
  in
  match doc_of row with
  | None ->
      Printf.sprintf "  %-12s %-14s PENDING" row.job.Job.cca fitness
  | Some doc ->
      Printf.sprintf "  %-12s %-14s value=%-12s %s" row.job.Job.cca fitness
        (fmt_opt fmt_dist (hex_field doc "value"))
        (fmt_opt Fun.id (str_field doc "config"))

let quarantined_row (row : row) =
  match row.entry with
  | Some { Journal.status = Journal.Quarantined; attempts; error; _ } ->
      Some
        (Printf.sprintf "  %-40s attempts=%d  %s" (Job.describe row.job)
           attempts
           (Option.value ~default:"(no error recorded)" error))
  | _ -> None

let is_kind k (row : row) = String.equal (Job.kind_name row.job.Job.kind) k

let is_ok (row : row) =
  match row.entry with
  | Some { Journal.status = Journal.Ok; _ } -> true
  | _ -> false

let is_quarantined (row : row) =
  match row.entry with
  | Some { Journal.status = Journal.Quarantined; _ } -> true
  | _ -> false

let render ?(verify = false) dir =
  let rows = load ~verify dir in
  let store = Store.open_ (dir / "store") in
  let doc_of = result_doc ~verify store in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "Batch report: %d job(s)\n\n" (List.length rows));
  let section title kind render_row =
    buf_section buf title
      (List.filter (fun r -> is_kind kind r && not (is_quarantined r)) rows)
      render_row
  in
  section "Synthesis" "synth" (synth_row doc_of);
  section "Noise robustness" "noise" (noise_row doc_of);
  section "Classification" "classify" (classify_row doc_of);
  section "Collection" "collect" (collect_row doc_of);
  section "Probes" "probe" (probe_row doc_of);
  section "Fuzz evaluations" "fuzz" (fuzz_row doc_of);
  buf_section buf "Quarantined" (List.filter_map quarantined_row rows) Fun.id;
  let done_ = List.length (List.filter is_ok rows) in
  let quarantined = List.length (List.filter is_quarantined rows) in
  Buffer.add_string buf
    (Printf.sprintf "Totals: %d ok, %d quarantined, %d pending, %d blob(s)\n"
       done_ quarantined
       (List.length rows - done_ - quarantined)
       (List.length (Store.list store)));
  Buffer.contents buf

let status ?(verify = false) dir =
  let rows = load ~verify dir in
  let store = Store.open_ (dir / "store") in
  let buf = Buffer.create 512 in
  let done_ = List.length (List.filter is_ok rows) in
  let quarantined = List.length (List.filter is_quarantined rows) in
  Buffer.add_string buf
    (Printf.sprintf "jobs: %d total, %d ok, %d quarantined, %d pending\n"
       (List.length rows) done_ quarantined
       (List.length rows - done_ - quarantined));
  let kinds = [ "collect"; "synth"; "classify"; "noise"; "probe"; "fuzz" ] in
  List.iter
    (fun kind ->
      let of_kind = List.filter (is_kind kind) rows in
      if of_kind <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %d/%d done\n" kind
             (List.length (List.filter is_ok of_kind))
             (List.length of_kind)))
    kinds;
  Buffer.add_string buf
    (Printf.sprintf "store: %d blob(s)\n" (List.length (Store.list store)));
  Buffer.contents buf
