(** Content-addressed, crash-safe artifact store with a group-commit
    write path.

    Blobs — serialized traces, feature vectors, per-job result JSON —
    are keyed by the MD5 hex digest of their content and live under
    [DIR/blobs/<d0d1>/<digest>] ("loose" blobs). Two write paths:

    {b Immediate} (the default): content goes to a unique file under
    [DIR/tmp/], is fsync'd, then renamed into place — a crash at any
    instant leaves either no blob or a complete one, never a torn one.
    One blob, two fsyncs.

    {b Deferred} ([open_ ~deferred:true]): {!put} only buffers the
    content and {!flush_staged} appends every buffered blob to this
    process's {e pack file} ([DIR/pack/<pid>.pack]) with a single write
    and a single fsync — the whole batch becomes durable at the
    amortized cost of one fsync. Loose copies are materialized (without
    fsync) by {!close}, and {!open_} re-materializes any loose blob a
    pack covers that is missing or the wrong size, so a run killed at
    any instant still presents the complete blob set after reopen. The
    pack is the durable copy until {!gc} verifies and fsyncs the loose
    blobs and folds the packs away; until then a store directory may
    hold both, at the cost of disk, never of correctness.

    Re-putting existing content is a no-op in both modes (same digest,
    same bytes), which is what makes a resumed run's store
    byte-identical to an uninterrupted one. A versioned manifest
    ([DIR/manifest.json]) is written on first open and checked
    afterwards; {!get} re-hashes content and raises {!Corrupt} on
    mismatch, so disk rot is detected at read time. *)

type t

exception Corrupt of string
(** Manifest mismatch on open, or content whose hash does not match its
    digest key on read. *)

val open_ : ?deferred:bool -> string -> t
(** Create (or re-open) a store rooted at the given directory.
    Recovers loose blobs from any pack files left by crashed or
    unfinished runs, and sweeps [tmp/] leftovers whose writing process
    is dead; raises {!Corrupt} if an existing manifest carries a
    different schema. [~deferred:true] selects the group-commit write
    path described above. *)

val dir : t -> string

val digest_hex : string -> string
(** The content digest {!put} would assign (MD5 hex). *)

val put : t -> string -> string
(** [put t content] stores a blob, returning its digest. Atomic and
    durable in immediate mode; in deferred mode the blob is only
    buffered until the next {!flush_staged} covers it. Idempotent for
    existing content. Safe from concurrent domains. *)

val flush_staged : t -> int
(** Make every blob buffered since the last flush durable: one pack
    append, one fsync. Returns the number of blobs flushed (0 in
    immediate mode or when nothing is staged). Safe from concurrent
    domains; concurrent {!put}s simply land in the next flush. *)

val close : t -> unit
(** Flush anything staged, then materialize loose copies of every blob
    this process's pack covers. Idempotent; a no-op for immediate-mode
    stores. The pack file is kept — it is the fsync'd copy until {!gc}
    folds it. *)

val get : t -> string -> string
(** [get t digest] reads a blob back, verifying its content hash.
    Raises [Not_found] if absent, {!Corrupt} on a hash mismatch. *)

val get_unverified : t -> string -> string
(** {!get} without the re-hash — for bulk readers (report rendering)
    where per-blob verification is opt-in. Each call counts into the
    [batch.verify_skipped] counter so skipped verification is visible
    in telemetry. *)

val mem : t -> string -> bool

val list : t -> string list
(** All loose blob digests, sorted — the store's canonical content
    listing (what the kill-and-resume CI job compares across runs). *)

type gc_stats = {
  kept : int;  (** live loose blobs retained *)
  swept : int;  (** dead loose blobs deleted *)
  tmp_swept : int;  (** [tmp/] leftovers deleted *)
  packs_folded : int;  (** pack files verified into loose blobs and deleted *)
  dirs_pruned : int;  (** emptied [blobs/<d0d1>/] fan-out dirs removed *)
}

val gc : t -> live:(string -> bool) -> gc_stats
(** Mark-and-sweep maintenance, offline only (no concurrent writers):
    verify every pack-covered loose blob against its content hash
    (rewriting it from the pack on mismatch), fsync it, delete the
    packs; then delete every loose blob for which [live] is false,
    sweep [tmp/], and prune empty fan-out directories so {!list} and
    the CI store diff stay canonical. Sweep counts land in the
    [batch.gc_swept] counter. *)
