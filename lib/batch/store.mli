(** Content-addressed, crash-safe artifact store.

    Blobs — serialized traces, feature vectors, per-job result JSON —
    are keyed by the MD5 hex digest of their content and live under
    [DIR/blobs/<d0d1>/<digest>]. Writes are atomic: content goes to a
    unique file under [DIR/tmp/], is fsync'd, then renamed into place —
    a crash at any instant leaves either no blob or a complete one,
    never a torn one, and {!open_} sweeps [tmp/] so an interrupted run's
    leftovers cannot make two stores differ. Re-putting existing content
    is a no-op (same digest, same path), which is what makes a resumed
    run's store byte-identical to an uninterrupted one.

    A versioned manifest ([DIR/manifest.json]) is written on first open
    and checked afterwards; {!get} re-hashes content and raises
    {!Corrupt} on mismatch, so disk rot is detected at read time. *)

type t

exception Corrupt of string
(** Manifest mismatch on open, or content whose hash does not match its
    digest key on read. *)

val open_ : string -> t
(** Create (or re-open) a store rooted at the given directory. Clears
    crash leftovers in [tmp/]; raises {!Corrupt} if an existing
    manifest carries a different schema. *)

val dir : t -> string

val digest_hex : string -> string
(** The content digest {!put} would assign (MD5 hex). *)

val put : t -> string -> string
(** [put t content] stores a blob, returning its digest. Atomic;
    idempotent for existing content. Safe from concurrent domains. *)

val get : t -> string -> string
(** [get t digest] reads a blob back, verifying its content hash.
    Raises [Not_found] if absent, {!Corrupt} on a hash mismatch. *)

val mem : t -> string -> bool

val list : t -> string list
(** All blob digests, sorted — the store's canonical content listing
    (what the kill-and-resume CI job compares across runs). *)
