(* Relational abstract interpretation: a zone (difference-bound) domain
   over the DSL's environment variables, layered on the interval domain
   of [Absint].

   [Absint] is non-relational: it bounds every leaf independently, so a
   fact that holds only *between* signals — min-rtt <= rtt <= max-rtt —
   is invisible, and a guard like Student 5's [{vegas-diff / min-rtt <
   0}] (vacuous because vegas-diff's numerator rtt - min-rtt is
   physically nonnegative) stays Unknown. This is exactly the paper's
   §5.6 limitation. The zone domain closes it for difference-shaped
   facts: a closed matrix [d] of bounds [x_i - x_j <= d.(i).(j)] over
   {cwnd} ∪ signals ∪ {a virtual zero variable}, seeded from the
   interval contracts (via the zero row/column) plus the cross-signal
   invariants, and refined by guard assumptions ([assume]).

   Precision/compatibility contract: on expressions whose atoms carry no
   relational edge (e.g. every reno-DSL sketch — its leaves are cwnd,
   mss, acked-bytes, time-since-loss and holes), every [num] interval
   and [boolean] verdict below is *identical* to [Absint]'s. The
   difference-path bound through the zero variable is [hi_i -. lo_j],
   which is bit-for-bit [Interval.sub]'s upper endpoint, and the
   difference-based comparison verdict coincides with [Interval.lt]
   because the sign of an IEEE subtraction is exact ([a -. b < 0 <=> a <
   b] for non-NaN operands). The enumerator therefore gains relational
   pruning on the delay/vegas DSLs without perturbing the reno stream
   the CI fingerprint pins.

   The deliberate omission: [acked_bytes <= cwnd] is NOT seeded. The
   [Env.cwnd] a handler reads is the *candidate's own* simulated window,
   not the window the trace's sender used when the ACK was recorded, so
   the inequality can be violated mid-replay (a candidate that shrinks
   its window below the acked burst). Seeding it would make pruning
   unsound; see DESIGN.md §6. *)

open Abg_util
open Abg_dsl

(* Variable layout: 0 = cwnd, 1 + k = List.nth Signal.all k, and a last
   virtual variable fixed at 0 that encodes interval bounds as
   difference bounds. *)
let signals = Array.of_list Signal.all
let nvars = 2 + Array.length signals
let zero = nvars - 1
let var_cwnd = 0

let var_of_signal s =
  let rec go i =
    if i = Array.length signals then invalid_arg "Relint.var_of_signal"
    else if Signal.equal signals.(i) s then i + 1
    else go (i + 1)
  in
  go 0

type t = {
  d : float array array;
      (** closed difference-bound matrix: [x_i - x_j <= d.(i).(j)] *)
  hole : Interval.t;  (** range of constant holes, as in [Absint.box] *)
}

(* Floyd–Warshall closure. Entries are finite or +infinity; the seeds
   below never produce -infinity, so [a +. b] needs no special-casing. *)
let close d =
  let n = Array.length d in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < Float.infinity then
        for j = 0 to n - 1 do
          let via = dik +. d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done

let feasible d =
  let n = Array.length d in
  let ok = ref true in
  for i = 0 to n - 1 do
    if d.(i).(i) < 0.0 then ok := false
  done;
  !ok

let interval_of t i = Interval.v (-.t.d.(zero).(i)) t.d.(i).(zero)
let cwnd_iv t = interval_of t var_cwnd
let signal_iv t s = interval_of t (var_of_signal s)
let hole t = t.hole

let of_box (box : Absint.box) =
  let d = Array.make_matrix nvars nvars Float.infinity in
  for i = 0 to nvars - 1 do
    d.(i).(i) <- 0.0
  done;
  let seed_iv i (iv : Interval.t) =
    d.(i).(zero) <- iv.Interval.hi;
    d.(zero).(i) <- -.iv.Interval.lo
  in
  seed_iv var_cwnd box.Absint.cwnd;
  Array.iteri (fun k s -> seed_iv (k + 1) (box.Absint.signal s)) signals;
  (* Cross-signal physical invariants: the trace substrate maintains
     min-rtt <= rtt <= max-rtt by construction. *)
  let vr = var_of_signal Signal.Rtt
  and vmin = var_of_signal Signal.Min_rtt
  and vmax = var_of_signal Signal.Max_rtt in
  d.(vmin).(vr) <- 0.0;
  d.(vr).(vmax) <- 0.0;
  d.(vmin).(vmax) <- 0.0;
  close d;
  { d; hole = box.Absint.hole }

let default () = of_box (Absint.default_box ())
let for_dsl dsl = of_box (Absint.box_for dsl)

let box t =
  {
    Absint.cwnd = cwnd_iv t;
    hole = t.hole;
    signal = (fun s -> signal_iv t s);
  }

(* The DBM variable denoted by an expression, when it is one. *)
let var_of = function
  | Expr.Cwnd -> Some var_cwnd
  | Expr.Signal s -> Some (var_of_signal s)
  | _ -> None

(* Refined interval of [a - b]: the interval-domain difference
   intersected with the zone bounds when both operands are environment
   variables. With no relational edge between the two, the closed zone
   bound through the zero variable equals [Interval.sub]'s endpoint
   exactly, so the intersection is the interval difference — [Absint]
   compatibility falls out by construction. *)
let rec diff t a b =
  let base = Interval.sub (num t a) (num t b) in
  match (var_of a, var_of b) with
  | Some i, Some j ->
      let hi = Float.min base.Interval.hi t.d.(i).(j)
      and lo = Float.max base.Interval.lo (-.t.d.(j).(i)) in
      if lo > hi then base else Interval.v ~nan:base.Interval.nan lo hi
  | _ -> base

and rdiff t s1 s2 = diff t (Expr.Signal s1) (Expr.Signal s2)

(* Macro transfer, mirroring [Absint.macro] operand-for-operand (which
   itself mirrors [Macro.eval]) — except that rtt - min-rtt difference
   goes through the zone, giving vegas-diff and htcp-diff their
   physically-correct nonnegative lower bound. *)
and macro t m =
  let s x = signal_iv t x in
  let open Interval in
  match m with
  | Macro.Reno_inc ->
      safe_div (mul (s Signal.Acked_bytes) (s Signal.Mss)) (cwnd_iv t)
  | Macro.Vegas_diff ->
      safe_div
        (mul (rdiff t Signal.Rtt Signal.Min_rtt) (s Signal.Ack_rate))
        (s Signal.Mss)
  | Macro.Htcp_diff ->
      safe_div (rdiff t Signal.Rtt Signal.Min_rtt) (s Signal.Max_rtt)
  | Macro.Rtts_since_loss ->
      safe_div (s Signal.Time_since_loss) (s Signal.Rtt)

and num t (e : Expr.num) : Interval.t =
  match e with
  | Expr.Cwnd -> cwnd_iv t
  | Expr.Signal s -> signal_iv t s
  | Expr.Macro m -> macro t m
  | Expr.Const c -> Interval.const c
  | Expr.Hole _ -> t.hole
  | Expr.Add (a, b) -> Interval.add (num t a) (num t b)
  | Expr.Sub (a, b) -> diff t a b
  | Expr.Mul (a, b) -> Interval.mul (num t a) (num t b)
  | Expr.Div (a, b) -> Interval.safe_div (num t a) (num t b)
  | Expr.Ite (c, th, el) -> begin
      match boolean t c with
      | Interval.True -> num t th
      | Interval.False -> num t el
      | Interval.Unknown -> Interval.join (num t th) (num t el)
    end
  | Expr.Cube a -> Interval.cube (num t a)
  | Expr.Cbrt a -> Interval.cbrt (num t a)

(* Comparison through the difference: the sign of an IEEE subtraction is
   exact, so [a -. b < 0 <=> a < b] whenever neither operand is NaN (the
   interval's nan flag covers operand NaN; the inf - inf NaN cases all
   have a = b = ±inf, where a < b is false anyway, so the False arm is
   sound even under a set nan flag). *)
and verdict_of_diff (d : Interval.t) : Interval.verdict =
  if (not d.Interval.nan) && d.Interval.hi < 0.0 then Interval.True
  else if d.Interval.lo >= 0.0 then Interval.False
  else Interval.Unknown

and boolean t (b : Expr.boolean) : Interval.verdict =
  match b with
  | Expr.Lt (x, y) -> begin
      match Interval.lt (num t x) (num t y) with
      | Interval.Unknown -> verdict_of_diff (diff t x y)
      | v -> v
    end
  | Expr.Gt (x, y) -> begin
      match Interval.gt (num t x) (num t y) with
      | Interval.Unknown -> verdict_of_diff (diff t y x)
      | v -> v
    end
  | Expr.Mod_eq (x, y) -> Interval.mod_eq (num t x) (num t y)

(* Evidence interval for a decided guard: the refined difference whose
   sign proves the verdict (for Mod_eq, the modulus interval). *)
let guard_witness t = function
  | Expr.Lt (a, b) -> diff t a b
  | Expr.Gt (a, b) -> diff t b a
  | Expr.Mod_eq (_, b) -> num t b

(* -- Assumptions -- *)

let copy t = { t with d = Array.map Array.copy t.d }

let tighten d i j bound = if bound < d.(i).(j) then d.(i).(j) <- bound

(* [assume t g truth] refines the zone with guard [g] held at [truth]
   (strict bounds relaxed to non-strict — sound). Only comparisons whose
   operands are environment variables or constants tighten anything;
   everything else is a no-op. [None] means the zone became empty: no
   environment of [t] gives [g] that truth value. *)
let assume t (g : Expr.boolean) truth =
  (* a <= b, as a difference edge or a zero-edge. *)
  let le d a b =
    match (var_of a, var_of b, a, b) with
    | Some i, Some j, _, _ -> tighten d i j 0.0
    | Some i, None, _, Expr.Const c ->
        if Float.is_nan c then () else tighten d i zero c
    | None, Some j, Expr.Const c, _ ->
        if Float.is_nan c then () else tighten d zero j (-.c)
    | _ -> ()
  in
  let lt_pair a b truth = if truth then `Le (a, b) else `Le (b, a) in
  let edge =
    match g with
    | Expr.Lt (a, b) -> Some (lt_pair a b truth)
    | Expr.Gt (a, b) -> Some (lt_pair b a truth)
    | Expr.Mod_eq _ -> None
  in
  match edge with
  | None -> Some t
  | Some (`Le (a, b)) ->
      if var_of a = None && var_of b = None then Some t
      else begin
        let t' = copy t in
        le t'.d a b;
        close t'.d;
        if feasible t'.d then Some t' else None
      end

(* Interval refinements for the branch-and-prune client ([Equiv]). *)
let refine_var t i (iv : Interval.t) =
  let t' = copy t in
  tighten t'.d i zero iv.Interval.hi;
  tighten t'.d zero i (-.iv.Interval.lo);
  close t'.d;
  if feasible t'.d then Some t' else None

let refine_signal t s iv = refine_var t (var_of_signal s) iv
let refine_cwnd t iv = refine_var t var_cwnd iv

(* -- Deterministic sampling -- *)

(* A draw inside an interval, log-uniform across wide positive ranges so
   huge physical ranges (cwnd up to 1e12) still produce small values. *)
let draw rng (iv : Interval.t) =
  let lo = Float.max iv.Interval.lo (-1e12)
  and hi = Float.min iv.Interval.hi 1e12 in
  if lo >= hi then lo
  else if lo > 0.0 && hi /. lo > 1e4 then
    Float.exp (Rng.uniform rng (Float.log lo) (Float.log hi))
  else Rng.uniform rng lo hi

(* An environment consistent with the zone's interval bounds and the
   rtt-ordering invariant (min-rtt <= rtt <= max-rtt). *)
let sample_env t rng : Env.t =
  let s x = signal_iv t x in
  let rtt_iv = s Signal.Rtt in
  let rtt = draw rng rtt_iv in
  let min_iv = s Signal.Min_rtt in
  let min_rtt =
    draw rng
      (Interval.v min_iv.Interval.lo
         (Float.max min_iv.Interval.lo (Float.min min_iv.Interval.hi rtt)))
  in
  let max_iv = s Signal.Max_rtt in
  let max_rtt =
    draw rng
      (Interval.v
         (Float.min max_iv.Interval.hi (Float.max max_iv.Interval.lo rtt))
         max_iv.Interval.hi)
  in
  {
    Env.cwnd = draw rng (cwnd_iv t);
    mss = draw rng (s Signal.Mss);
    acked_bytes = draw rng (s Signal.Acked_bytes);
    time_since_loss = draw rng (s Signal.Time_since_loss);
    rtt;
    min_rtt;
    max_rtt;
    ack_rate = draw rng (s Signal.Ack_rate);
    rtt_gradient = draw rng (s Signal.Rtt_gradient);
    delay_gradient = draw rng (s Signal.Delay_gradient);
    wmax = draw rng (s Signal.Wmax);
  }

(* -- Simplify integration -- *)

let facts t : Simplify.facts =
 fun b ->
  match boolean t b with
  | Interval.True -> `True
  | Interval.False -> `False
  | Interval.Unknown -> `Unknown

(* The sound oracle: bounds come from the zone, and branch rewrites run
   under the refining assumption of the dominating guard. ([assume]
   returning [None] means the branch is unreachable; [pass_bool] resolves
   such guards via [facts] before [assuming] is ever consulted, so the
   fallback arm is academic.) *)
let rec oracle t : Simplify.oracle =
  {
    Simplify.facts = facts t;
    bound = (fun e -> num t e);
    assuming =
      (fun g truth ->
        match assume t g truth with Some t' -> oracle t' | None -> oracle t);
  }

let simplify t e = Simplify.simplify ~oracle:(oracle t) e
let is_simplifiable t e = Simplify.is_simplifiable ~oracle:(oracle t) e
