(* Lint diagnostics for DSL handlers, built on the abstract interpreter.

   Each rule reports (rule id, offending subexpression, reason, interval
   witness). Errors are handlers the search itself would prune as dead on
   arrival; warnings flag behavior that is legal but almost certainly not
   what the handler's author intended (a window that can silently
   overflow to the one-MSS floor, a denominator that can cross zero);
   infos flag redundant structure. *)

open Abg_util
open Abg_dsl

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  rule : string;
  severity : severity;
  expr : Expr.num;  (** the offending (sub)expression *)
  message : string;
  witness : Interval.t option;
}

let diag ?witness rule severity expr message =
  { rule; severity; expr; message; witness }

let div_eps = 1e-12

let rec sub_diags box (e : Expr.num) acc =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
      acc
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) ->
      sub_diags box a (sub_diags box b acc)
  | Expr.Div (a, b) ->
      let di = Absint.num box b in
      let acc =
        if (not di.Interval.nan) && di.Interval.hi < div_eps
           && di.Interval.lo > -.div_eps
        then
          diag ~witness:di "zero-denominator" Error e
            "denominator is provably inside the safe-division guard; the \
             quotient is identically 0"
          :: acc
        else if di.Interval.lo < div_eps && di.Interval.hi > -.div_eps then
          diag ~witness:di "possible-zero-denominator" Warning e
            "denominator can enter the safe-division guard, silently \
             zeroing the quotient"
          :: acc
        else acc
      in
      sub_diags box a (sub_diags box b acc)
  | Expr.Ite (c, t, el) ->
      let acc =
        match Absint.boolean box c with
        | Interval.True ->
            diag "dead-guard" Warning e
              "guard is true over the whole input box; the else-branch is \
               unreachable"
            :: acc
        | Interval.False ->
            diag "dead-guard" Warning e
              "guard is false over the whole input box; the then-branch \
               is unreachable"
            :: acc
        | Interval.Unknown -> acc
      in
      let acc =
        match c with
        | Expr.Lt (a, b) | Expr.Gt (a, b) | Expr.Mod_eq (a, b) ->
            sub_diags box a (sub_diags box b acc)
      in
      sub_diags box t (sub_diags box el acc)
  | Expr.Cube a | Expr.Cbrt a -> sub_diags box a acc

(** [check ?box e] is every diagnostic the analysis can prove about
    handler [e], outermost rules first. *)
let check ?box (e : Expr.num) : diag list =
  let box = match box with Some b -> b | None -> Absint.default_box () in
  let i = Absint.num box e in
  let root = [] in
  let root =
    if i.Interval.hi <= 0.0 then
      diag ~witness:i "collapses-to-floor" Error e
        "window is provably <= 0 everywhere; the handler replays as the \
         constant one-MSS floor"
      :: root
    else if i.Interval.lo = Float.infinity then
      diag ~witness:i "always-nonfinite" Error e
        "window is provably non-finite everywhere; the handler replays \
         as the constant one-MSS floor"
      :: root
    else if i.Interval.hi = Float.infinity then
      diag ~witness:i "unbounded-window" Warning e
        "window can overflow to non-finite, which the evaluator maps to \
         the one-MSS floor"
      :: root
    else root
  in
  let root =
    if i.Interval.nan && i.Interval.lo <> Float.infinity && i.Interval.hi > 0.0
    then
      diag ~witness:i "possible-nan" Warning e
        "some input produces NaN, which the evaluator maps to the \
         one-MSS floor"
      :: root
    else root
  in
  let structural = List.rev (sub_diags box e []) in
  let redundancy =
    let simp =
      if Absint.is_simplifiable box e then
        [ diag "simplifiable" Info e
            "rewriting strictly reduces the node count; an equivalent \
             smaller handler exists" ]
      else []
    in
    let canon =
      if not (Expr.equal_num e (Canonical.normalize e)) then
        [ diag "non-canonical" Info e
            "operands of a commutative operator are not in canonical \
             order" ]
      else []
    in
    simp @ canon
  in
  List.rev root @ structural @ redundancy

(** Named degenerate handlers demonstrating every rule — living
    documentation for [abagnale lint], and fixtures for the tests and the
    CI smoke run. *)
let showcase : (string * Expr.num) list =
  let open Expr in
  [ ("collapse", Sub (Const 0.0, Cwnd));
    ("overflow", Cube (Cube (Cube Cwnd)));
    ( "nonfinite",
      Cube (Cube (Cube (Cube (Mul (Const 1e10, Cwnd))))) );
    ( "nan-window",
      Sub (Cube (Cube (Cube Cwnd)), Cube (Cube (Cube (Mul (Cwnd, Cwnd))))) );
    ( "dead-guard",
      Ite (Gt (Signal Signal.Rtt, Const 200.0), Mul (Const 2.0, Cwnd), Cwnd)
    );
    ("zero-div", Div (Macro Macro.Reno_inc, Const 0.0));
    ("gradient-div", Div (Cwnd, Signal Signal.Delay_gradient));
    ("unsorted", Add (Signal Signal.Mss, Cwnd)) ]

let pp_diag ppf d =
  let witness =
    match d.witness with
    | None -> ""
    | Some w -> Fmt.str " (witness %a)" Interval.pp w
  in
  Fmt.pf ppf "%s[%s]: %s: %s%s" (severity_name d.severity) d.rule
    (Pretty.num d.expr) d.message witness
