(* Lint diagnostics for DSL handlers, built on the abstract interpreter
   and the relational layer.

   Each rule reports (rule id, offending subexpression, reason, interval
   witness). Errors are handlers the search itself would prune as dead on
   arrival; warnings flag behavior that is legal but almost certainly not
   what the handler's author intended (a window that can silently
   overflow to the one-MSS floor, a denominator that can cross zero, a
   conditional that can never change anything); infos flag redundant
   structure.

   The relational rules close the paper's §5.6 gap: [vacuous-guard] fires
   when the zone domain decides a guard the interval domain cannot
   (Student 5's conditional relating two signals), [guard-implied] when a
   nested guard is decided by the assumptions of its enclosing guards,
   and [branch-equivalent] when the two branches are provably the same
   function. Every vacuous/implied verdict is cross-checked by replaying
   sampled zone-consistent environments through [Eval] before the
   diagnostic is emitted — interval evidence alone is never reported. *)

open Abg_util
open Abg_dsl

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  rule : string;
  severity : severity;
  expr : Expr.num;  (** the offending (sub)expression *)
  message : string;
  witness : Interval.t option;
}

let diag ?witness rule severity expr message =
  { rule; severity; expr; message; witness }

let div_eps = 1e-12

let rec sub_diags box (e : Expr.num) acc =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
      acc
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) ->
      sub_diags box a (sub_diags box b acc)
  | Expr.Div (a, b) ->
      let di = Absint.num box b in
      let acc =
        if (not di.Interval.nan) && di.Interval.hi < div_eps
           && di.Interval.lo > -.div_eps
        then
          diag ~witness:di "zero-denominator" Error e
            "denominator is provably inside the safe-division guard; the \
             quotient is identically 0"
          :: acc
        else if di.Interval.lo < div_eps && di.Interval.hi > -.div_eps then
          diag ~witness:di "possible-zero-denominator" Warning e
            "denominator can enter the safe-division guard, silently \
             zeroing the quotient"
          :: acc
        else acc
      in
      sub_diags box a (sub_diags box b acc)
  | Expr.Ite (c, t, el) ->
      let acc =
        match Absint.boolean box c with
        | Interval.True ->
            diag "dead-guard" Warning e
              "guard is true over the whole input box; the else-branch is \
               unreachable"
            :: acc
        | Interval.False ->
            diag "dead-guard" Warning e
              "guard is false over the whole input box; the then-branch \
               is unreachable"
            :: acc
        | Interval.Unknown -> acc
      in
      let acc =
        match c with
        | Expr.Lt (a, b) | Expr.Gt (a, b) | Expr.Mod_eq (a, b) ->
            sub_diags box a (sub_diags box b acc)
      in
      sub_diags box t (sub_diags box el acc)
  | Expr.Cube a | Expr.Cbrt a -> sub_diags box a acc

(* Replay cross-check for a relationally-decided guard: sample
   zone-consistent environments and confirm [Eval.boolean] agrees with
   the verdict on every one. The analysis is sound, so this can only
   fail on an analysis bug — in which case the diagnostic is suppressed
   rather than reported as a false positive. Holes are filled with the
   hole interval's midpoint for the replay. *)
let replay_confirms rel (g : Expr.boolean) expected =
  let fill =
    let iv = Relint.hole rel in
    let lo = Float.max iv.Interval.lo (-1e6)
    and hi = Float.min iv.Interval.hi 1e6 in
    let mid = lo +. ((hi -. lo) /. 2.0) in
    fun _ -> mid
  in
  let g =
    match g with
    | Expr.Lt (a, b) -> Expr.Lt (Expr.fill a fill, Expr.fill b fill)
    | Expr.Gt (a, b) -> Expr.Gt (Expr.fill a fill, Expr.fill b fill)
    | Expr.Mod_eq (a, b) -> Expr.Mod_eq (Expr.fill a fill, Expr.fill b fill)
  in
  let rng = Rng.create 0x11A7 in
  let rec go k =
    k = 0
    ||
    let env = Relint.sample_env rel rng in
    Eval.boolean env g = expected && go (k - 1)
  in
  go 64

(* The relational rules. [base] is the unrefined zone; [rel] carries the
   assumptions of the enclosing guards. A guard already decided by the
   interval domain is [sub_diags]'s dead-guard, not ours. *)
let rec rel_diags box base rel (e : Expr.num) acc =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
      acc
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      rel_diags box base rel a (rel_diags box base rel b acc)
  | Expr.Cube a | Expr.Cbrt a -> rel_diags box base rel a acc
  | Expr.Ite (c, t, el) ->
      let interval_verdict = Absint.boolean box c in
      let base_verdict = Relint.boolean base c in
      let ctx_verdict = Relint.boolean rel c in
      let acc =
        match (interval_verdict, base_verdict, ctx_verdict) with
        | Interval.Unknown, (Interval.True | Interval.False), _
          when replay_confirms base c (base_verdict = Interval.True) ->
            let branch =
              if base_verdict = Interval.True then "else" else "then"
            in
            diag ~witness:(Relint.guard_witness base c) "vacuous-guard"
              Warning e
              (Fmt.str
                 "guard is %s for every physically-consistent environment \
                  (a cross-signal relation the interval domain cannot \
                  see); the %s-branch is unreachable"
                 (if base_verdict = Interval.True then "true" else "false")
                 branch)
            :: acc
        | Interval.Unknown, Interval.Unknown, (Interval.True | Interval.False)
          when replay_confirms rel c (ctx_verdict = Interval.True) ->
            diag ~witness:(Relint.guard_witness rel c) "guard-implied"
              Warning e
              (Fmt.str
                 "guard is %s whenever this branch is reached (implied by \
                  the enclosing guards); the %s-branch is unreachable here"
                 (if ctx_verdict = Interval.True then "true" else "false")
                 (if ctx_verdict = Interval.True then "else" else "then"))
            :: acc
        | _ -> acc
      in
      let acc =
        (* Equal branches make the conditional redundant regardless of
           the guard. Only worth deciding when the guard is open. *)
        match ctx_verdict with
        | Interval.Unknown -> begin
            match Equiv.decide ~draws:64 ~icp_budget:64 rel t el with
            | Equiv.Equal ->
                diag "branch-equivalent" Info e
                  "both branches are provably the same function; the \
                   conditional is redundant"
                :: acc
            | Equiv.Distinct _ | Equiv.Unknown _ -> acc
          end
        | _ -> acc
      in
      let rel_t =
        match Relint.assume rel c true with Some r -> r | None -> rel
      in
      let rel_f =
        match Relint.assume rel c false with Some r -> r | None -> rel
      in
      let acc =
        match c with
        | Expr.Lt (a, b) | Expr.Gt (a, b) | Expr.Mod_eq (a, b) ->
            rel_diags box base rel a (rel_diags box base rel b acc)
      in
      rel_diags box base rel_t t (rel_diags box base rel_f el acc)

(** [check ?box e] is every diagnostic the analysis can prove about
    handler [e], outermost rules first. *)
let check ?box (e : Expr.num) : diag list =
  let box = match box with Some b -> b | None -> Absint.default_box () in
  let i = Absint.num box e in
  let root = [] in
  let root =
    if i.Interval.hi <= 0.0 then
      diag ~witness:i "collapses-to-floor" Error e
        "window is provably <= 0 everywhere; the handler replays as the \
         constant one-MSS floor"
      :: root
    else if i.Interval.lo = Float.infinity then
      diag ~witness:i "always-nonfinite" Error e
        "window is provably non-finite everywhere; the handler replays \
         as the constant one-MSS floor"
      :: root
    else if i.Interval.hi = Float.infinity then
      diag ~witness:i "unbounded-window" Warning e
        "window can overflow to non-finite, which the evaluator maps to \
         the one-MSS floor"
      :: root
    else root
  in
  let root =
    if i.Interval.nan && i.Interval.lo <> Float.infinity && i.Interval.hi > 0.0
    then
      diag ~witness:i "possible-nan" Warning e
        "some input produces NaN, which the evaluator maps to the \
         one-MSS floor"
      :: root
    else root
  in
  let structural = List.rev (sub_diags box e []) in
  let relational =
    let rel = Relint.of_box box in
    List.rev (rel_diags box rel rel e [])
  in
  let redundancy =
    let simp =
      if Absint.is_simplifiable box e then
        [ diag "simplifiable" Info e
            "rewriting strictly reduces the node count; an equivalent \
             smaller handler exists" ]
      else []
    in
    let canon =
      if not (Expr.equal_num e (Canonical.normalize e)) then
        [ diag "non-canonical" Info e
            "operands of a commutative operator are not in canonical \
             order" ]
      else []
    in
    simp @ canon
  in
  List.rev root @ structural @ relational @ redundancy

(** Named degenerate handlers demonstrating every rule — living
    documentation for [abagnale lint], and fixtures for the tests and the
    CI smoke run. *)
let showcase : (string * Expr.num) list =
  let open Expr in
  [ ("collapse", Sub (Const 0.0, Cwnd));
    ("overflow", Cube (Cube (Cube Cwnd)));
    ( "nonfinite",
      Cube (Cube (Cube (Cube (Mul (Const 1e10, Cwnd))))) );
    ( "nan-window",
      Sub (Cube (Cube (Cube Cwnd)), Cube (Cube (Cube (Mul (Cwnd, Cwnd))))) );
    ( "dead-guard",
      Ite (Gt (Signal Signal.Rtt, Const 200.0), Mul (Const 2.0, Cwnd), Cwnd)
    );
    ("zero-div", Div (Macro Macro.Reno_inc, Const 0.0));
    ("gradient-div", Div (Cwnd, Signal Signal.Delay_gradient));
    ("unsorted", Add (Signal Signal.Mss, Cwnd));
    ( "vacuous-guard",
      (* Student 5's shape: rtt < min-rtt relates two signals, so the
         interval domain cannot decide it, but the zone's rtt ordering
         invariant proves it false. *)
      Ite
        ( Lt (Signal Signal.Rtt, Signal Signal.Min_rtt),
          Mul (Const 2.0, Cwnd),
          Cwnd ) );
    ( "guard-implied",
      Ite
        ( Gt (Signal Signal.Rtt, Const 1.0),
          Ite
            ( Gt (Signal Signal.Rtt, Const 0.5),
              Mul (Const 2.0, Cwnd),
              Cwnd ),
          Cwnd ) );
    ( "branch-equivalent",
      Ite
        ( Gt (Signal Signal.Rtt, Const 0.05),
          Add (Cwnd, Signal Signal.Mss),
          Add (Signal Signal.Mss, Cwnd) ) ) ]

let pp_diag ppf d =
  let witness =
    match d.witness with
    | None -> ""
    | Some w -> Fmt.str " (witness %a)" Interval.pp w
  in
  Fmt.pf ppf "%s[%s]: %s: %s%s" (severity_name d.severity) d.rule
    (Pretty.num d.expr) d.message witness
