(** Commutative normal form + hash-consed keys for DSL expressions.

    The SAT enumerator has no symmetry-breaking over operand order, so
    [a + b] and [b + a] are emitted as distinct sketches. IEEE [+]/[*]
    are exactly commutative, so both denote the same function;
    {!normalize} maps them to one representative. *)

open Abg_dsl

val compare_num : Expr.num -> Expr.num -> int
(** Total preorder used for operand ordering: leaves before compounds,
    [Cwnd] first, holes interchangeable (they compare equal regardless of
    index). *)

val normalize : Expr.num -> Expr.num
(** Commutative normal form: operands of [Add]/[Mul] sorted under
    {!compare_num}, holes renumbered left-to-right. Semantically
    identical to the input, idempotent, and equal for any two expressions
    differing only in commutative operand order or hole numbering. *)

val equal : Expr.num -> Expr.num -> bool
(** Equality of normal forms. *)

(** Hash-consing table assigning dense ids to distinct normal forms. *)
module Tbl : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val intern : t -> Expr.num -> int * bool
  (** [intern t e] is [(id, fresh)]: the dense id of [normalize e], and
      whether this is the first expression interned with that normal
      form. *)
end
