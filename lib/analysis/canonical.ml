(* Commutative normal form for DSL expressions.

   The SAT enumerator has no symmetry-breaking over operand order: for
   every sketch containing [a + b] it also emits the model with [b + a],
   and both survive the simplifiability filter because neither is
   *smaller* than the other. IEEE float [+] and [*] are exactly
   commutative, so the two denote the same function and scoring both is
   pure waste. [normalize] orders the operands of every [Add]/[Mul] under
   a total order (leaves before compounds, CWND first, holes
   interchangeable) and renumbers the constant holes left-to-right, so
   any two sketches equal modulo commutativity-and-hole-naming map to the
   same tree; [Tbl.intern] then assigns each distinct normal form a dense
   hash-consed id, giving the enumerator an O(1) seen-before test. *)

open Abg_dsl
open Expr

let rank = function
  | Cwnd -> 0
  | Signal _ -> 1
  | Macro _ -> 2
  | Const _ -> 3
  | Hole _ -> 4
  | Add _ -> 5
  | Sub _ -> 6
  | Mul _ -> 7
  | Div _ -> 8
  | Ite _ -> 9
  | Cube _ -> 10
  | Cbrt _ -> 11

(* Total preorder on expressions used only to pick operand order. Holes
   compare equal regardless of index: hole names are arbitrary (they are
   renumbered after sorting), and making the order blind to them keeps
   normalization deterministic for alpha-equivalent sketches. *)
let rec compare_num a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c
  else
    match (a, b) with
    | Cwnd, Cwnd -> 0
    | Signal s, Signal s' -> Signal.compare s s'
    | Macro m, Macro m' -> Macro.compare m m'
    | Const x, Const x' -> Float.compare x x'
    | Hole _, Hole _ -> 0
    | Add (x, y), Add (x', y')
    | Sub (x, y), Sub (x', y')
    | Mul (x, y), Mul (x', y')
    | Div (x, y), Div (x', y') ->
        let c = compare_num x x' in
        if c <> 0 then c else compare_num y y'
    | Ite (g, t, e), Ite (g', t', e') ->
        let c = compare_bool g g' in
        if c <> 0 then c
        else begin
          let c = compare_num t t' in
          if c <> 0 then c else compare_num e e'
        end
    | Cube x, Cube x' | Cbrt x, Cbrt x' -> compare_num x x'
    | _ -> assert false (* equal ranks imply equal constructors *)

and compare_bool a b =
  let brank = function Lt _ -> 0 | Gt _ -> 1 | Mod_eq _ -> 2 in
  let c = Int.compare (brank a) (brank b) in
  if c <> 0 then c
  else
    match (a, b) with
    | Lt (x, y), Lt (x', y')
    | Gt (x, y), Gt (x', y')
    | Mod_eq (x, y), Mod_eq (x', y') ->
        let c = compare_num x x' in
        if c <> 0 then c else compare_num y y'
    | _ -> assert false

let rec sort_comm e =
  match e with
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> e
  | Add (a, b) ->
      let a' = sort_comm a and b' = sort_comm b in
      if compare_num a' b' <= 0 then Add (a', b') else Add (b', a')
  | Mul (a, b) ->
      let a' = sort_comm a and b' = sort_comm b in
      if compare_num a' b' <= 0 then Mul (a', b') else Mul (b', a')
  | Sub (a, b) ->
      let a' = sort_comm a in
      Sub (a', sort_comm b)
  | Div (a, b) ->
      let a' = sort_comm a in
      Div (a', sort_comm b)
  | Ite (c, t, el) ->
      let c' = sort_comm_bool c in
      let t' = sort_comm t in
      Ite (c', t', sort_comm el)
  | Cube a -> Cube (sort_comm a)
  | Cbrt a -> Cbrt (sort_comm a)

and sort_comm_bool = function
  | Lt (a, b) ->
      let a' = sort_comm a in
      Lt (a', sort_comm b)
  | Gt (a, b) ->
      let a' = sort_comm a in
      Gt (a', sort_comm b)
  | Mod_eq (a, b) ->
      let a' = sort_comm a in
      Mod_eq (a', sort_comm b)

(* Renumber holes 0, 1, ... in left-to-right order of the (already
   sorted) tree. Constructor argument evaluation order is unspecified in
   OCaml, so children are rebuilt under explicit lets. *)
let renumber e =
  let next = ref 0 in
  let rec num e =
    match e with
    | Cwnd | Signal _ | Macro _ | Const _ -> e
    | Hole _ ->
        let i = !next in
        incr next;
        Hole i
    | Add (a, b) ->
        let a' = num a in
        Add (a', num b)
    | Sub (a, b) ->
        let a' = num a in
        Sub (a', num b)
    | Mul (a, b) ->
        let a' = num a in
        Mul (a', num b)
    | Div (a, b) ->
        let a' = num a in
        Div (a', num b)
    | Ite (c, t, el) ->
        let c' = boolean c in
        let t' = num t in
        Ite (c', t', num el)
    | Cube a -> Cube (num a)
    | Cbrt a -> Cbrt (num a)
  and boolean = function
    | Lt (a, b) ->
        let a' = num a in
        Lt (a', num b)
    | Gt (a, b) ->
        let a' = num a in
        Gt (a', num b)
    | Mod_eq (a, b) ->
        let a' = num a in
        Mod_eq (a', num b)
  in
  num e

(** [normalize e] is the commutative normal form of [e]: semantically
    identical to [e] (IEEE [+]/[*] are exactly commutative and hole names
    are arbitrary), idempotent, and equal for any two expressions that
    differ only in commutative operand order or hole numbering. *)
let normalize e = renumber (sort_comm e)

let equal a b = equal_num (normalize a) (normalize b)

(** Hash-consing table: dense ids for distinct normal forms. *)
module Tbl = struct
  type t = { ids : (Expr.num, int) Hashtbl.t }

  let create ?(size = 256) () = { ids = Hashtbl.create size }
  let length t = Hashtbl.length t.ids

  (** [intern t e] normalizes [e] and returns [(id, fresh)]: a dense id
      for the normal form, and whether this is its first appearance. *)
  let intern t e =
    let n = normalize e in
    match Hashtbl.find_opt t.ids n with
    | Some id -> (id, false)
    | None ->
        let id = Hashtbl.length t.ids in
        Hashtbl.add t.ids n id;
        (id, true)
end
