(** Semantic equivalence of handler pairs — the refutation engine behind
    semantic-subsumption pruning, the relational lint rules and
    [Simplify] translation validation.

    Verdict semantics, over the zone of the given {!Relint.t} (and every
    hole filling for the structural provers):

    - [Equal] — a *bit-exact* proof: relational normal forms coincide
      canonically, or the SAT-enumerated guard skeleton specializes both
      sides to the same canonical form on every reachable guard-truth
      combination. No rounding tolerance is involved; [2 * x] vs
      [x + x] is deliberately not provable.
    - [Distinct env] — [env] is a concrete zone-consistent environment on
      which the two sides were *replayed through [Eval]* and produced
      different raw values. Interval evidence alone never yields
      [Distinct].
    - [Unknown reason] — budget exhausted (sampling draws and the ICP
      branch-and-prune node budget).

    Holes are treated as interchangeable placeholders by the structural
    provers (exactly {!Canonical}'s convention) and filled with the hole
    interval's midpoint by the numeric engines; real clients pass
    hole-free handlers.

    Obs counters: [analysis.equiv_checks/_equal/_distinct/_unknown]. *)

open Abg_dsl

type verdict = Equal | Distinct of Env.t | Unknown of string

val rnorm : Relint.t -> Expr.num -> Expr.num
(** Relational normal form: guards the zone decides (including under the
    refining assumptions of enclosing guards) are folded, branches with
    equal normal forms collapsed. Bit-exact: evaluates identically to
    the input on every environment of the zone. *)

val decide :
  ?draws:int -> ?icp_budget:int -> Relint.t -> Expr.num -> Expr.num -> verdict
(** [decide rel a b] — see the verdict semantics above. [draws] bounds
    the sampling stage (default 256), [icp_budget] the branch-and-prune
    sub-zone evaluations (default 512). *)

type validation = [ `Proved | `Sampled of int ]

val validate_rewrite :
  ?draws:int ->
  Relint.t ->
  original:Expr.num ->
  rewritten:Expr.num ->
  (validation, Env.t) result
(** Translation validation for the simplifier. [`Proved] is a bit-exact
    structural or SAT-path proof; [`Sampled n] means [n] non-degenerate
    zone-consistent draws agreed within a rounding tolerance scaled by
    the largest intermediate magnitude (the cancellation rules are
    algebraic identities, exact only up to rounding of the cancelled
    intermediates). [Error env] is a replayed environment disagreeing
    beyond tolerance — a simplifier bug. *)
