(* Semantic equivalence of handler pairs: [equal | distinct (witness) |
   unknown (budget)].

   Three cooperating engines, in increasing cost order:

   - a *bit-exact structural prover*: both sides are put in relational
     normal form ([rnorm] — guards decidable under the zone are folded,
     branches rewritten under the refining assumption of their dominating
     guard, equal branches collapsed) and compared under the commutative
     canonical form. Success means the two evaluate bit-identically on
     every environment of the zone.

   - a *SAT-backed guard-skeleton prover* (the in-house [Abg_sat]'s
     second client): the boolean skeleton over the distinct guard atoms
     of both sides is constrained by unit clauses (atoms the zone
     decides) and pairwise implications (atom_i => atom_j derived by
     assuming one atom and re-deciding the other), every satisfying
     assignment is enumerated with blocking clauses, and under each
     assignment both sides are specialized (each conditional replaced by
     the branch the assignment selects) and compared canonically. If
     every reachable guard combination specializes both sides to the
     same canonical form, the pair is equal — this catches equality that
     holds only because differing branch *structure* selects identical
     expressions, which no normal form sees.

   - a *refutation engine*: deterministic sampling over zone-consistent
     environments, then an interval-constraint-propagation
     branch-and-prune over the signal box — bisect the widest input
     dimension, propagate [Relint] intervals of the difference a - b
     through each half, and descend into sub-boxes until one proves the
     difference sign-definite (0 outside the interval of a - b), whose
     every point is then a witness. Every [Distinct] verdict carries a
     concrete environment that has been replayed through [Eval] — a
     witness is *never* trusted on interval evidence alone.

   Holes: the structural provers treat holes as [Canonical] does
   (interchangeable placeholders — the enumerator's own equivalence);
   the numeric engines fill every hole with the midpoint of the zone's
   hole interval. Real clients (lint, simplify validation, subsumption
   accounting) pass hole-free handlers. *)

open Abg_util
open Abg_dsl

let obs_checks = Abg_obs.Obs.Counter.make "analysis.equiv_checks"
let obs_equal = Abg_obs.Obs.Counter.make "analysis.equiv_equal"
let obs_distinct = Abg_obs.Obs.Counter.make "analysis.equiv_distinct"
let obs_unknown = Abg_obs.Obs.Counter.make "analysis.equiv_unknown"

type verdict = Equal | Distinct of Env.t | Unknown of string

(* -- Relational normal form -- *)

let rec rnorm rel (e : Expr.num) : Expr.num =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ -> e
  | Expr.Add (a, b) -> Expr.Add (rnorm rel a, rnorm rel b)
  | Expr.Sub (a, b) -> Expr.Sub (rnorm rel a, rnorm rel b)
  | Expr.Mul (a, b) -> Expr.Mul (rnorm rel a, rnorm rel b)
  | Expr.Div (a, b) -> Expr.Div (rnorm rel a, rnorm rel b)
  | Expr.Cube a -> Expr.Cube (rnorm rel a)
  | Expr.Cbrt a -> Expr.Cbrt (rnorm rel a)
  | Expr.Ite (g, t, el) -> begin
      let g = rnorm_bool rel g in
      match Relint.boolean rel g with
      | Interval.True -> rnorm rel t
      | Interval.False -> rnorm rel el
      | Interval.Unknown -> begin
          (* An empty refined zone means the guard cannot take that truth
             value on any environment — the branch is unreachable. *)
          match (Relint.assume rel g true, Relint.assume rel g false) with
          | None, _ -> rnorm rel el
          | _, None -> rnorm rel t
          | Some rt, Some rf ->
              let t' = rnorm rt t and el' = rnorm rf el in
              if Simplify.equal_mod_comm t' el' then t'
              else Expr.Ite (g, t', el')
        end
    end

and rnorm_bool rel (g : Expr.boolean) : Expr.boolean =
  match g with
  | Expr.Lt (a, b) -> Expr.Lt (rnorm rel a, rnorm rel b)
  | Expr.Gt (a, b) -> Expr.Gt (rnorm rel a, rnorm rel b)
  | Expr.Mod_eq (a, b) -> Expr.Mod_eq (rnorm rel a, rnorm rel b)

(* -- Guard atoms and SAT skeleton -- *)

(* Gt(a, b) and Lt(b, a) are the same predicate on every float pair, so
   atoms are keyed on the Lt orientation. *)
let atom_key = function
  | Expr.Gt (a, b) -> Expr.Lt (b, a)
  | g -> g

let equal_atom a b = Simplify.equal_bool_mod_comm (atom_key a) (atom_key b)

let collect_atoms e acc =
  let add acc g = if List.exists (equal_atom g) acc then acc else g :: acc in
  let rec go acc = function
    | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
        acc
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
        go (go acc a) b
    | Expr.Cube a | Expr.Cbrt a -> go acc a
    | Expr.Ite (g, t, el) ->
        let acc = add acc g in
        go (go (go_bool acc g) t) el
  and go_bool acc = function
    | Expr.Lt (a, b) | Expr.Gt (a, b) | Expr.Mod_eq (a, b) -> go (go acc a) b
  in
  go acc e

(* Replace every conditional by the branch the assignment selects.
   [truth g] must be total over the collected atoms. *)
let rec specialize truth (e : Expr.num) : Expr.num =
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ -> e
  | Expr.Add (a, b) -> Expr.Add (specialize truth a, specialize truth b)
  | Expr.Sub (a, b) -> Expr.Sub (specialize truth a, specialize truth b)
  | Expr.Mul (a, b) -> Expr.Mul (specialize truth a, specialize truth b)
  | Expr.Div (a, b) -> Expr.Div (specialize truth a, specialize truth b)
  | Expr.Cube a -> Expr.Cube (specialize truth a)
  | Expr.Cbrt a -> Expr.Cbrt (specialize truth a)
  | Expr.Ite (g, t, el) ->
      if truth g then specialize truth t else specialize truth el

(* [sat_skeleton_equal rel a b] — [Some true] when every guard-truth
   combination consistent with the zone specializes both sides to the
   same canonical form; [None] when the skeleton is too large or the
   model cap is hit (abstain). Soundness: for any concrete environment,
   its exact atom-truth vector satisfies every clause below (unit
   clauses and implications are derived from sound zone verdicts), so it
   appears among the enumerated assignments, under which both sides
   evaluate bit-identically to their specializations. *)
let sat_skeleton_equal ?(atoms_max = 8) ?(models_max = 64) rel a b =
  let atoms = List.rev (collect_atoms b (collect_atoms a [])) in
  let n = List.length atoms in
  if n = 0 || n > atoms_max then None
  else begin
    let atoms = Array.of_list atoms in
    let solver = Abg_sat.Solver.create () in
    let vars = Array.map (fun _ -> Abg_sat.Solver.new_var solver) atoms in
    (* Unit clauses: atoms the zone decides outright. *)
    Array.iteri
      (fun i g ->
        match Relint.boolean rel g with
        | Interval.True -> Abg_sat.Solver.add_clause solver [ vars.(i) ]
        | Interval.False -> Abg_sat.Solver.add_clause solver [ -vars.(i) ]
        | Interval.Unknown -> ())
      atoms;
    (* Pairwise implications: assume atom i at a truth value, re-decide
       atom j on the refined zone. *)
    for i = 0 to n - 1 do
      List.iter
        (fun truth_i ->
          let lit_i = if truth_i then vars.(i) else -vars.(i) in
          match Relint.assume rel atoms.(i) truth_i with
          | None -> Abg_sat.Solver.add_clause solver [ -lit_i ]
          | Some ri ->
              for j = 0 to n - 1 do
                if j <> i then begin
                  match Relint.boolean ri atoms.(j) with
                  | Interval.True ->
                      Abg_sat.Solver.add_clause solver [ -lit_i; vars.(j) ]
                  | Interval.False ->
                      Abg_sat.Solver.add_clause solver [ -lit_i; -vars.(j) ]
                  | Interval.Unknown -> ()
                end
              done)
        [ true; false ]
    done;
    (* Enumerate assignments; check the specializations under each. *)
    let truth_of model g =
      let rec find i =
        if i = n then
          (* every Ite guard was collected, so this is unreachable *)
          invalid_arg "Equiv.sat_skeleton_equal: unknown atom"
        else if equal_atom g atoms.(i) then model.(vars.(i))
        else find (i + 1)
      in
      find 0
    in
    let rec loop k =
      if k = 0 then None (* model cap: abstain *)
      else begin
        match Abg_sat.Solver.solve solver with
        | Abg_sat.Solver.Unsat -> Some true
        | Abg_sat.Solver.Sat model ->
            let truth = truth_of model in
            let ok =
              Canonical.equal (specialize truth a) (specialize truth b)
            in
            if not ok then Some false
            else begin
              (* Block exactly this atom assignment. *)
              let blocking =
                Array.to_list
                  (Array.map
                     (fun v -> if model.(v) then -v else v)
                     vars)
              in
              Abg_sat.Solver.add_clause solver blocking;
              loop (k - 1)
            end
      end
    in
    loop models_max
  end

(* -- Numeric refutation -- *)

(* Hole filling for the numeric engines: the midpoint of the zone's hole
   interval (clamped finite). *)
let hole_fill rel =
  let iv = Relint.hole rel in
  let lo = Float.max iv.Interval.lo (-1e6)
  and hi = Float.min iv.Interval.hi 1e6 in
  let mid = lo +. ((hi -. lo) /. 2.0) in
  fun (_ : int) -> mid

let differs va vb = not (Float.equal va vb)

(* [Some env] when the two sides evaluate to different raw values on a
   zone-consistent sample — the Eval replay is the sampling itself. *)
let sample_search ?(draws = 256) rel a b =
  let rng = Rng.create 0x5EED5 in
  let rec loop k =
    if k = 0 then None
    else begin
      let env = Relint.sample_env rel rng in
      if differs (Eval.num env a) (Eval.num env b) then Some env
      else loop (k - 1)
    end
  in
  loop draws

(* Branch-and-prune: bisect input dimensions, propagate the interval of
   a - b through each sub-zone, and when a sub-zone proves the
   difference sign-definite, sample it and replay. The budget counts
   sub-zone evaluations. *)
let icp_search ?(budget = 512) rel a b =
  let rng = Rng.create 0x1C9B2 in
  let dims =
    let sigs =
      List.sort_uniq Signal.compare (Expr.signals a @ Expr.signals b)
    in
    `Cwnd :: List.map (fun s -> `Signal s) sigs
  in
  let iv_of rel = function
    | `Cwnd -> Relint.cwnd_iv rel
    | `Signal s -> Relint.signal_iv rel s
  in
  let refine rel dim iv =
    match dim with
    | `Cwnd -> Relint.refine_cwnd rel iv
    | `Signal s -> Relint.refine_signal rel s iv
  in
  let width (iv : Interval.t) =
    let lo = Float.max iv.Interval.lo (-1e12)
    and hi = Float.min iv.Interval.hi 1e12 in
    (hi -. lo) /. (1.0 +. Float.abs lo)
  in
  let spent = ref 0 in
  let rec visit rel depth =
    if !spent >= budget then None
    else begin
      incr spent;
      let d = Interval.sub (Relint.num rel a) (Relint.num rel b) in
      let sign_definite =
        (not d.Interval.nan)
        && (d.Interval.hi < 0.0 || d.Interval.lo > 0.0)
      in
      if sign_definite then begin
        (* Every point of this sub-zone is a witness; replay to be sure. *)
        let rec sample k =
          if k = 0 then None
          else begin
            let env = Relint.sample_env rel rng in
            if differs (Eval.num env a) (Eval.num env b) then Some env
            else sample (k - 1)
          end
        in
        sample 8
      end
      else if depth = 0 then None
      else begin
        (* Split the relatively-widest dimension. *)
        let dim, iv =
          List.fold_left
            (fun (bd, biv) dm ->
              let iv = iv_of rel dm in
              if width iv > width biv then (dm, iv) else (bd, biv))
            (`Cwnd, Relint.cwnd_iv rel)
            dims
        in
        let lo = Float.max iv.Interval.lo (-1e12)
        and hi = Float.min iv.Interval.hi 1e12 in
        if hi -. lo <= 1e-9 *. (1.0 +. Float.abs lo) then None
        else begin
          let mid = lo +. ((hi -. lo) /. 2.0) in
          let halves =
            List.filter_map
              (fun (l, h) -> refine rel dim (Interval.v ~nan:false l h))
              [ (lo, mid); (mid, hi) ]
          in
          List.fold_left
            (fun found half ->
              match found with
              | Some _ -> found
              | None -> visit half (depth - 1))
            None halves
        end
      end
    end
  in
  visit rel 24

(* -- Public verdicts -- *)

let decide ?(draws = 256) ?(icp_budget = 512) rel a b =
  Abg_obs.Obs.Counter.incr obs_checks;
  let fill = hole_fill rel in
  let filled e =
    match Expr.holes e with [] -> e | _ -> Expr.fill e fill
  in
  let verdict =
    if Canonical.equal (rnorm rel a) (rnorm rel b) then Equal
    else begin
      match sat_skeleton_equal rel a b with
      | Some true -> Equal
      | _ -> begin
          let a' = filled a and b' = filled b in
          match sample_search ~draws rel a' b' with
          | Some env -> Distinct env
          | None -> begin
              match icp_search ~budget:icp_budget rel a' b' with
              | Some env -> Distinct env
              | None -> Unknown "budget"
            end
        end
    end
  in
  (match verdict with
  | Equal -> Abg_obs.Obs.Counter.incr obs_equal
  | Distinct _ -> Abg_obs.Obs.Counter.incr obs_distinct
  | Unknown _ -> Abg_obs.Obs.Counter.incr obs_unknown);
  verdict

(* -- Translation validation for Simplify -- *)

(* Max intermediate magnitude of an evaluation, or [None] when any
   intermediate is non-finite, a divisor/modulus sits within 1e-9 of
   its guard, or an Add/Sub cancels catastrophically (result many
   orders of magnitude below its operands — such a value is dominated
   by the operands' roundoff, and a cancelling rewrite may legally
   move it beyond any result-scaled tolerance) — the draws on which
   rounding-tolerant comparison is not meaningful (mirrors the
   property-test hypothesis in test_analysis.ml). *)
let audit env e =
  let ok = ref true in
  let mx = ref 0.0 in
  let note v =
    if Float.is_finite v then begin
      if Float.abs v > !mx then mx := Float.abs v;
      v
    end
    else begin
      ok := false;
      v
    end
  in
  let rec go e =
    match e with
    | Expr.Cwnd -> note env.Env.cwnd
    | Expr.Signal s -> note (Env.signal env s)
    | Expr.Macro m -> note (Macro.eval env m)
    | Expr.Const c -> note c
    | Expr.Hole _ -> invalid_arg "Equiv.audit: unfilled hole"
    | Expr.Add (a, b) ->
        let va = go a and vb = go b in
        let r = va +. vb in
        if Float.abs r < 1e-3 *. Float.max (Float.abs va) (Float.abs vb)
        then ok := false;
        note r
    | Expr.Sub (a, b) ->
        let va = go a and vb = go b in
        let r = va -. vb in
        if Float.abs r < 1e-3 *. Float.max (Float.abs va) (Float.abs vb)
        then ok := false;
        note r
    | Expr.Mul (a, b) -> note (go a *. go b)
    | Expr.Div (a, b) ->
        let n = go a and d = go b in
        if Float.abs d < 1e-9 then ok := false;
        note (Floatx.safe_div n d)
    | Expr.Ite (c, t, el) -> if go_bool c then go t else go el
    | Expr.Cube a ->
        let v = go a in
        note (v *. v *. v)
    | Expr.Cbrt a -> note (Floatx.cbrt (go a))
  and go_bool g =
    match g with
    | Expr.Lt (a, b) -> go a < go b
    | Expr.Gt (a, b) -> go a > go b
    | Expr.Mod_eq (a, b) ->
        let a_v = go a and b_v = go b in
        if Float.abs b_v < 1e-9 then ok := false;
        if Float.abs b_v < 1e-9 then false
        else begin
          let r = Floatx.fmod a_v b_v in
          let tol = 0.05 *. Float.abs b_v in
          r <= tol || Float.abs b_v -. r <= tol
        end
  in
  let _ = go e in
  if !ok then Some !mx else None

type validation = [ `Proved | `Sampled of int ]

(* [validate_rewrite rel ~original ~rewritten] — translation validation
   for the simplifier. [`Proved] is a bit-exact structural or SAT-path
   proof; [`Sampled n] means [n] zone-consistent draws agreed within a
   rounding tolerance scaled by the largest intermediate magnitude
   (cancellation rules are algebraic identities, exact only up to
   rounding of the cancelled intermediates). [Error env] carries a
   replayed environment on which the two disagree beyond tolerance. *)
let validate_rewrite ?(draws = 512) rel ~original ~rewritten =
  if Expr.equal_num original rewritten then Ok `Proved
  else if Canonical.equal (rnorm rel original) (rnorm rel rewritten) then
    Ok `Proved
  else begin
    match sat_skeleton_equal rel original rewritten with
    | Some true -> Ok `Proved
    | _ ->
        let fill = hole_fill rel in
        let filled e =
          match Expr.holes e with [] -> e | _ -> Expr.fill e fill
        in
        let o = filled original and r = filled rewritten in
        let rng = Rng.create 0x7A11 in
        let rec loop k sampled =
          if k = 0 then Ok (`Sampled sampled)
          else begin
            let env = Relint.sample_env rel rng in
            match (audit env o, audit env r) with
            | Some m1, Some m2 ->
                let va = Eval.num env o and vb = Eval.num env r in
                let eps = 1e-9 *. (1.0 +. Float.max m1 m2) in
                if Float.abs (va -. vb) <= eps then loop (k - 1) (sampled + 1)
                else Error env
            | _ -> loop (k - 1) sampled (* degenerate draw: no evidence *)
          end
        in
        loop draws 0
  end
