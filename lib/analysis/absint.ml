(* Abstract interpretation of DSL expressions over an interval domain.

   Every leaf of an expression is bounded by its physical contract — the
   signal ranges published by [Abg_dsl.Signal.range], the replay clamp on
   cwnd, and the concretization pool for constant holes — and the
   transfer functions of [Abg_util.Interval] mirror the evaluator's float
   semantics exactly (safe division, sign-aware cube root, NaN
   propagation). The derived interval therefore contains every value
   [Eval.num] can produce on any in-range environment; that containment
   is the soundness property qcheck exercises in test_analysis.ml.

   On top of the interpreter sit the prune rules: a handler is dead on
   arrival when its interval proves the replayed window can never differ
   from the floor the evaluator would impose anyway (provably <= 0 or
   provably non-finite, both of which [Eval.handler] maps to one MSS), or
   when a subterm makes the whole sketch semantically equal to a sketch
   the enumerator emits elsewhere at smaller size (a division whose
   denominator is provably inside the safe-div guard, a conditional whose
   guard is constant over the whole box). Pruning one of these never
   loses behavior: the surviving space still contains an equivalent
   handler. *)

open Abg_util
open Abg_dsl

type box = {
  cwnd : Interval.t;
  hole : Interval.t;
  signal : Signal.t -> Interval.t;
}

let signal_interval s =
  let lo, hi = Signal.range s in
  Interval.v lo hi

(* The replay loop clamps the window to [1e12] and the handler floors it
   at one MSS, but the *input* cwnd of the very first record is the
   observed one, so the lower bound is kept at a conservative 1. *)
let cwnd_interval = Interval.v 1.0 1e12

let pool_interval pool =
  if Array.length pool = 0 then Interval.v Float.neg_infinity Float.infinity
  else begin
    let lo = Array.fold_left Float.min pool.(0) pool
    and hi = Array.fold_left Float.max pool.(0) pool in
    Interval.v lo hi
  end

let default_box ?hole () =
  let hole =
    match hole with
    | Some h -> h
    | None -> Interval.v Float.neg_infinity Float.infinity
  in
  { cwnd = cwnd_interval; hole; signal = signal_interval }

let box_for (dsl : Catalog.t) =
  default_box ~hole:(pool_interval dsl.Catalog.constant_pool) ()

let macro box m =
  let s x = box.signal x in
  let open Interval in
  match m with
  | Macro.Reno_inc ->
      safe_div (mul (s Signal.Acked_bytes) (s Signal.Mss)) box.cwnd
  | Macro.Vegas_diff ->
      safe_div
        (mul (sub (s Signal.Rtt) (s Signal.Min_rtt)) (s Signal.Ack_rate))
        (s Signal.Mss)
  | Macro.Htcp_diff ->
      safe_div (sub (s Signal.Rtt) (s Signal.Min_rtt)) (s Signal.Max_rtt)
  | Macro.Rtts_since_loss ->
      safe_div (s Signal.Time_since_loss) (s Signal.Rtt)

let rec num box (e : Expr.num) : Interval.t =
  match e with
  | Expr.Cwnd -> box.cwnd
  | Expr.Signal s -> box.signal s
  | Expr.Macro m -> macro box m
  | Expr.Const c -> Interval.const c
  | Expr.Hole _ -> box.hole
  | Expr.Add (a, b) -> Interval.add (num box a) (num box b)
  | Expr.Sub (a, b) -> Interval.sub (num box a) (num box b)
  | Expr.Mul (a, b) -> Interval.mul (num box a) (num box b)
  | Expr.Div (a, b) -> Interval.safe_div (num box a) (num box b)
  | Expr.Ite (c, t, e) -> begin
      match boolean box c with
      | Interval.True -> num box t
      | Interval.False -> num box e
      | Interval.Unknown -> Interval.join (num box t) (num box e)
    end
  | Expr.Cube a -> Interval.cube (num box a)
  | Expr.Cbrt a -> Interval.cbrt (num box a)

and boolean box (b : Expr.boolean) : Interval.verdict =
  match b with
  | Expr.Lt (a, b) -> Interval.lt (num box a) (num box b)
  | Expr.Gt (a, b) -> Interval.gt (num box a) (num box b)
  | Expr.Mod_eq (a, b) -> Interval.mod_eq (num box a) (num box b)

(* Guard oracle for [Simplify.simplify ~facts]. *)
let facts box : Simplify.facts =
 fun b ->
  match boolean box b with
  | Interval.True -> `True
  | Interval.False -> `False
  | Interval.Unknown -> `Unknown

let simplify box e = Simplify.simplify ~facts:(facts box) e
let is_simplifiable box e = Simplify.is_simplifiable ~facts:(facts box) e

type reason =
  | Collapses_to_floor
  | Always_nonfinite
  | Zero_denominator
  | Dead_guard

let all_reasons =
  [ Collapses_to_floor; Always_nonfinite; Zero_denominator; Dead_guard ]

let reason_name = function
  | Collapses_to_floor -> "collapses-to-floor"
  | Always_nonfinite -> "always-nonfinite"
  | Zero_denominator -> "zero-denominator"
  | Dead_guard -> "dead-guard"

(* Near-zero divisor threshold of [Floatx.safe_div]. *)
let div_eps = 1e-12

let provably_near_zero (i : Interval.t) =
  (not i.Interval.nan) && i.Interval.hi < div_eps && i.Interval.lo > -.div_eps

(* First structural witness of a subterm-level dead pattern: a division
   whose denominator the evaluator is guaranteed to guard to 0, or a
   conditional whose guard is constant over the whole box. Either way the
   expression is semantically equal to a strictly smaller one, which the
   enumerator emits in some (possibly different) bucket. *)
let rec dead_subterm box (e : Expr.num) : (reason * Interval.t) option =
  let first a b = match a with Some _ -> a | None -> b () in
  match e with
  | Expr.Cwnd | Expr.Signal _ | Expr.Macro _ | Expr.Const _ | Expr.Hole _ ->
      None
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) ->
      first (dead_subterm box a) (fun () -> dead_subterm box b)
  | Expr.Div (a, b) ->
      let di = num box b in
      if provably_near_zero di then Some (Zero_denominator, di)
      else
        first (dead_subterm box a) (fun () -> dead_subterm box b)
  | Expr.Ite (c, t, e) -> begin
      match boolean box c with
      | Interval.True | Interval.False ->
          (* Witness: the interval of the guard's left-hand side, which
             together with the right-hand side's proves the verdict. *)
          let lhs =
            match c with
            | Expr.Lt (a, _) | Expr.Gt (a, _) | Expr.Mod_eq (a, _) -> num box a
          in
          Some (Dead_guard, lhs)
      | Interval.Unknown ->
          first (dead_bool box c) (fun () ->
              first (dead_subterm box t) (fun () -> dead_subterm box e))
    end
  | Expr.Cube a | Expr.Cbrt a -> dead_subterm box a

and dead_bool box (b : Expr.boolean) =
  let first a b = match a with Some _ -> a | None -> b () in
  match b with
  | Expr.Lt (a, b) | Expr.Gt (a, b) | Expr.Mod_eq (a, b) ->
      first (dead_subterm box a) (fun () -> dead_subterm box b)

(** [prune box e] is [Some (reason, witness)] when the interval analysis
    proves [e] dead on arrival: every environment in [box] (and every
    hole filling from the pool) replays identically to a handler the
    search retains anyway — the constant floor for [Collapses_to_floor]
    and [Always_nonfinite] (cf. [Eval.handler]'s non-finite/minimum
    guard), a strictly smaller equivalent sketch for [Zero_denominator]
    and [Dead_guard]. *)
let prune box (e : Expr.num) : (reason * Interval.t) option =
  let i = num box e in
  if i.Interval.hi <= 0.0 then Some (Collapses_to_floor, i)
  else if i.Interval.lo = Float.infinity then Some (Always_nonfinite, i)
  else dead_subterm box e
