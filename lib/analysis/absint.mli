(** Abstract interpretation of DSL expressions over the interval domain
    of {!Abg_util.Interval}.

    Leaves are bounded by their physical contracts ({!Abg_dsl.Signal.range},
    the replay clamp on cwnd, the concretization pool for holes); transfer
    functions mirror the evaluator exactly. Soundness: for every
    environment inside the box (and every hole filling from the hole
    interval), the concrete [Eval.num] result is contained in the derived
    interval. *)

open Abg_util
open Abg_dsl

type box = {
  cwnd : Interval.t;
  hole : Interval.t;  (** range of every constant hole *)
  signal : Signal.t -> Interval.t;
}

val signal_interval : Signal.t -> Interval.t
(** {!Abg_dsl.Signal.range} as an interval. *)

val cwnd_interval : Interval.t
(** [[1, 1e12]]: the replay clamp above, a conservative floor below. *)

val pool_interval : float array -> Interval.t
(** Hull of a concretization pool. *)

val default_box : ?hole:Interval.t -> unit -> box
(** Physical signal ranges and the cwnd clamp; [hole] defaults to all
    finite floats (sound for any pool). *)

val box_for : Catalog.t -> box
(** {!default_box} with the hole interval tightened to the sub-DSL's
    constant pool. *)

val num : box -> Expr.num -> Interval.t
(** Derived interval of an expression (holes allowed). *)

val boolean : box -> Expr.boolean -> Interval.verdict
(** Three-valued abstract truth of a guard over the whole box. *)

val facts : box -> Simplify.facts
(** The interval-fact oracle for [Simplify.simplify ~facts]. *)

val simplify : box -> Expr.num -> Expr.num
(** [Simplify.simplify] with this box's guard oracle plugged in. *)

val is_simplifiable : box -> Expr.num -> bool

(** Why a sketch was proven dead on arrival. *)
type reason =
  | Collapses_to_floor
      (** window provably <= 0 everywhere: replays as the constant
          one-MSS floor ([Eval.handler] clamps from below) *)
  | Always_nonfinite
      (** provably +inf everywhere: replays as the floor too
          ([Eval.handler] maps non-finite to one MSS) *)
  | Zero_denominator
      (** some division's denominator provably sits inside the
          [Floatx.safe_div] guard: the quotient is identically 0 and a
          strictly smaller equivalent sketch exists *)
  | Dead_guard
      (** some conditional's guard is constant over the whole box: one
          branch is unreachable *)

val all_reasons : reason list
val reason_name : reason -> string

val prune : box -> Expr.num -> (reason * Interval.t) option
(** [prune box e] is [Some (reason, witness)] when [e] is provably dead
    on arrival; the witness interval is the fact that proves it (the
    expression's own interval, a denominator's, or a dead guard's
    left-hand side's). Sound: a pruned sketch replays identically to a
    handler the search retains anyway. *)
