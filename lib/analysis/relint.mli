(** Relational abstract interpretation: a zone (difference-bound) domain
    over {cwnd} ∪ signals, seeded from the {!Abg_dsl.Signal.range}
    physical contracts plus cross-signal invariants (min-rtt <= rtt <=
    max-rtt) and refined by guard assumptions.

    Closes the relational half of the paper's §5.6 simplification gap:
    guards that are vacuous only because of a relation *between* signals
    (Student 5's conditional) are decided here, where {!Absint} must
    answer Unknown.

    Compatibility contract: on expressions whose atoms carry no
    relational edge — every reno-DSL sketch — {!num} and {!boolean} are
    bit-for-bit identical to {!Absint}'s (the zone bound through the
    virtual zero variable equals [Interval.sub]'s endpoint exactly, and
    IEEE subtraction is sign-exact), so relational pruning cannot perturb
    the fingerprint-pinned reno enumeration stream.

    Soundness mirrors {!Absint}'s qcheck contract: for every environment
    satisfying the zone (interval bounds plus the rtt ordering), the
    concrete [Eval] result lies in the derived interval, and a non-Unknown
    {!boolean} verdict matches [Eval.boolean]. *)

open Abg_util
open Abg_dsl

type t

val of_box : Absint.box -> t
(** Seed the zone from an interval box (signal ranges, cwnd clamp, hole
    interval) plus the built-in cross-signal invariants. *)

val default : unit -> t
(** [of_box (Absint.default_box ())]. *)

val for_dsl : Catalog.t -> t
(** [of_box (Absint.box_for dsl)] — hole interval from the constant
    pool. *)

val box : t -> Absint.box
(** The zone's interval projection as an [Absint] box (signal bounds
    possibly tightened by assumptions). *)

val cwnd_iv : t -> Interval.t
val signal_iv : t -> Signal.t -> Interval.t
val hole : t -> Interval.t

val num : t -> Expr.num -> Interval.t
(** Derived interval (holes allowed); differences of environment
    variables are intersected with the zone bounds. *)

val diff : t -> Expr.num -> Expr.num -> Interval.t
(** Refined interval of [a - b] (the comparison residual). *)

val boolean : t -> Expr.boolean -> Interval.verdict
(** Three-valued truth over the zone; strictly more precise than
    {!Absint.boolean} on relational guards, identical elsewhere. *)

val guard_witness : t -> Expr.boolean -> Interval.t
(** Evidence for a decided guard: the refined difference interval whose
    sign proves the verdict (the modulus interval for [Mod_eq]). *)

val assume : t -> Expr.boolean -> bool -> t option
(** [assume t g truth] — the zone refined by guard [g] held at [truth]
    (strict bounds relaxed to non-strict, so the result always contains
    every environment of [t] satisfying the assumption). [None] when the
    refined zone is empty: no environment gives [g] that truth value. *)

val refine_signal : t -> Signal.t -> Interval.t -> t option
(** Intersect one signal's bounds (branch-and-prune splitting); [None]
    when the zone becomes empty. *)

val refine_cwnd : t -> Interval.t -> t option

val sample_env : t -> Rng.t -> Env.t
(** A deterministic environment sample consistent with the zone's
    interval bounds and the rtt ordering invariant (log-uniform across
    wide positive ranges). *)

val facts : t -> Simplify.facts
(** Relational guard oracle for [Simplify.simplify ~facts]. *)

val oracle : t -> Simplify.oracle
(** The sound rewrite oracle: subterm bounds from the zone, branch
    rewrites under the dominating guard's assumption. With this oracle,
    [Simplify]'s cancellation rules fire only when their side conditions
    (divisor clear of the safe-division guard, finite intermediates) are
    proven — on the branch's own refined zone. *)

val simplify : t -> Expr.num -> Expr.num
(** [Simplify.simplify] under {!oracle} — sound simplification. *)

val is_simplifiable : t -> Expr.num -> bool
