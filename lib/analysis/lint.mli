(** Lint diagnostics for DSL handlers, built on {!Absint} and the
    relational layer ({!Relint}/{!Equiv}).

    Errors are handlers the search itself prunes as dead on arrival;
    warnings flag legal-but-suspicious behavior (silent overflow or NaN
    to the one-MSS floor, a denominator crossing zero, a guard no
    physically-consistent environment can flip); infos flag redundant
    structure.

    Relational rules (each vacuous/implied verdict is replay-confirmed
    through [Eval] on sampled zone-consistent environments before being
    reported):
    - [vacuous-guard] (warning): the zone domain decides a guard the
      interval domain cannot — a cross-signal relation such as Student
      5's [vegas-diff / min-rtt < 0].
    - [guard-implied] (warning): a nested guard is decided by the
      assumptions of its enclosing guards.
    - [branch-equivalent] (info): both branches of an open conditional
      are provably the same function ({!Equiv.decide} = [Equal]). *)

open Abg_util
open Abg_dsl

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  rule : string;
  severity : severity;
  expr : Expr.num;  (** the offending (sub)expression *)
  message : string;
  witness : Interval.t option;
}

val check : ?box:Absint.box -> Expr.num -> diag list
(** Every diagnostic the analysis can prove about a handler, root rules
    first, then structural (per-subterm) rules in syntactic order, then
    relational rules, then redundancy infos. [box] defaults to
    {!Absint.default_box}. *)

val showcase : (string * Expr.num) list
(** Named degenerate handlers demonstrating every rule — living
    documentation for [abagnale lint] and fixtures for tests/CI. *)

val pp_diag : Format.formatter -> diag -> unit
(** ["severity[rule]: expr: message (witness [lo, hi])"]. *)
