(** Lint diagnostics for DSL handlers, built on {!Absint}.

    Errors are handlers the search itself prunes as dead on arrival;
    warnings flag legal-but-suspicious behavior (silent overflow or NaN
    to the one-MSS floor, a denominator crossing zero); infos flag
    redundant structure. *)

open Abg_util
open Abg_dsl

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  rule : string;
  severity : severity;
  expr : Expr.num;  (** the offending (sub)expression *)
  message : string;
  witness : Interval.t option;
}

val check : ?box:Absint.box -> Expr.num -> diag list
(** Every diagnostic the analysis can prove about a handler, root rules
    first, then structural (per-subterm) rules in syntactic order, then
    redundancy infos. [box] defaults to {!Absint.default_box}. *)

val showcase : (string * Expr.num) list
(** Named degenerate handlers demonstrating every rule — living
    documentation for [abagnale lint] and fixtures for tests/CI. *)

val pp_diag : Format.formatter -> diag -> unit
(** ["severity[rule]: expr: message (witness [lo, hi])"]. *)
