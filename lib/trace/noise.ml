(** Measurement-noise injection (§2.2, §3.1).

    Real traces differ from what the sender's CCA computed: the vantage
    point sees a delayed, jittered, sometimes lossy view. These transforms
    corrupt a clean collected trace the way the paper's threat model
    describes, and are what the noise-robustness experiments (and the
    Mister880 comparison) feed the synthesizer. *)

open Abg_util

(** [observation_noise rng ~stddev trace] multiplies every visible-window
    sample by a lognormal-ish factor [1 + N(0, stddev)] (clamped positive),
    modeling imprecise in-flight estimation at the vantage point. *)
let observation_noise rng ~stddev (trace : Trace.t) =
  let records =
    Array.map
      (fun r ->
        let factor = Float.max 0.1 (1.0 +. Rng.normal rng ~mean:0.0 ~stddev) in
        { r with Record.in_flight = r.Record.in_flight *. factor })
      trace.Trace.records
  in
  { trace with Trace.records }

(** [subsample rng ~keep trace] drops each record independently with
    probability [1 - keep]: lost measurement samples. *)
let subsample rng ~keep (trace : Trace.t) =
  let kept =
    Array.to_list trace.Trace.records
    |> List.filter (fun _ -> Rng.float rng < keep)
  in
  { trace with Trace.records = Array.of_list kept }

(** [time_jitter rng ~stddev trace] perturbs timestamps with Gaussian
    noise while preserving ordering (cumulative-max repair). *)
let time_jitter rng ~stddev (trace : Trace.t) =
  let records = Array.copy trace.Trace.records in
  let last = ref neg_infinity in
  for i = 0 to Array.length records - 1 do
    let r = records.(i) in
    let t = r.Record.time +. Rng.normal rng ~mean:0.0 ~stddev in
    let t = Float.max !last t in
    last := t;
    records.(i) <- { r with Record.time = t }
  done;
  { trace with Trace.records }

(** [spurious_losses rng ~rate trace] injects loss timestamps that the
    sender never saw — unobserved-event noise for segmentation. *)
let spurious_losses rng ~rate (trace : Trace.t) =
  let extra =
    Array.to_list trace.Trace.records
    |> List.filter_map (fun r ->
           if Rng.float rng < rate then Some r.Record.time else None)
  in
  let loss_times =
    Array.append trace.Trace.loss_times (Array.of_list extra)
  in
  Array.sort Float.compare loss_times;
  { trace with Trace.loss_times }
