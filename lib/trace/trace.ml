(** Trace collection: run a ground-truth CCA through the simulated testbed
    and derive the full congestion-signal record stream (§3.2).

    The derived signals mirror what a measurement tool computes from a raw
    packet capture: running min/max RTT, an EWMA delivery rate, smoothed
    RTT and queueing-delay gradients, time since the last loss event, and
    the window at that loss. *)

open Abg_netsim

type t = {
  cca_name : string;
  scenario : string;
  config : Config.t;
  records : Record.t array;
  loss_times : float array;
}

let length trace = Array.length trace.records

(** [collect cfg ~name constructor] simulates one flow and returns its
    trace. *)
let collect cfg ~name (constructor : Abg_cca.Cca_sig.constructor) =
  let records = ref [] in
  let losses = ref [] in
  let n_records = ref 0 in
  let min_rtt = ref infinity in
  let max_rtt = ref 0.0 in
  let ack_rate = ref 0.0 in
  let prev_rtt = ref nan in
  let prev_time = ref nan in
  let rtt_gradient = ref 0.0 in
  let delay_gradient = ref 0.0 in
  let last_loss = ref 0.0 in
  let wmax = ref 0.0 in
  let last_cwnd = ref 0.0 in
  let mss = cfg.Config.mss in
  (* Rate and gradient estimation over >= 5 ms windows: per-ACK
     instantaneous samples are meaningless under ACK-path jitter (two
     coalesced arrivals yield a near-zero dt), and a real measurement tool
     aggregates exactly this way. *)
  let window_start = ref nan in
  let window_bytes = ref 0.0 in
  let window_first_rtt = ref nan in
  let window_tainted = ref false in
  let on_ack_obs (obs : Sim.ack_observation) =
    let rtt = obs.Sim.rtt_sample in
    if rtt > 0.0 then begin
      min_rtt := Float.min !min_rtt rtt;
      max_rtt := Float.max !max_rtt rtt
    end;
    (if Float.is_nan !window_start then begin
       window_start := obs.Sim.time;
       window_first_rtt := rtt
     end
     else begin
       (* Cumulative jumps out of loss recovery are not delivery-rate
          evidence; a window containing one is discarded. *)
       if obs.Sim.acked_bytes > 1.5 *. mss then window_tainted := true
       else window_bytes := !window_bytes +. obs.Sim.acked_bytes;
       let span = obs.Sim.time -. !window_start in
       let min_span =
         if Float.is_finite !min_rtt then Float.max 0.005 !min_rtt else 0.005
       in
       if span >= min_span && not !window_tainted then begin
         let rate_sample = !window_bytes /. span in
         ack_rate :=
           if !ack_rate = 0.0 then rate_sample
           else (0.7 *. !ack_rate) +. (0.3 *. rate_sample);
         let grad_sample = (rtt -. !window_first_rtt) /. span in
         rtt_gradient := (0.7 *. !rtt_gradient) +. (0.3 *. grad_sample);
         (* Queueing-delay gradient, normalized by the base RTT so it is
            dimensionless and comparable across scenarios. *)
         let dg_sample =
           (rtt -. !window_first_rtt) /. span *. 1.0
           /. Float.max 1e-4 !min_rtt *. 0.005
         in
         delay_gradient := (0.7 *. !delay_gradient) +. (0.3 *. dg_sample);
         window_start := obs.Sim.time;
         window_bytes := 0.0;
         window_first_rtt := rtt
       end
       else if !window_tainted && span >= min_span then begin
         window_start := obs.Sim.time;
         window_bytes := 0.0;
         window_first_rtt := rtt;
         window_tainted := false
       end
     end);
    prev_rtt := rtt;
    prev_time := obs.Sim.time;
    last_cwnd := obs.Sim.in_flight;
    let record =
      {
        Record.time = obs.Sim.time;
        cwnd = obs.Sim.cwnd;
        in_flight = obs.Sim.in_flight;
        acked_bytes = obs.Sim.acked_bytes;
        rtt;
        min_rtt = (if Float.is_finite !min_rtt then !min_rtt else rtt);
        max_rtt = (if !max_rtt > 0.0 then !max_rtt else rtt);
        ack_rate = (if !ack_rate > 0.0 then !ack_rate else obs.Sim.acked_bytes /. Float.max 1e-3 rtt);
        rtt_gradient = !rtt_gradient;
        delay_gradient = !delay_gradient;
        time_since_loss = obs.Sim.time -. !last_loss;
        wmax = (if !wmax > 0.0 then !wmax else obs.Sim.in_flight);
        mss;
      }
    in
    records := record :: !records;
    incr n_records
  in
  let on_loss_obs ~time =
    last_loss := time;
    wmax := !last_cwnd;
    losses := time :: !losses
  in
  let cca = constructor ~mss () in
  let _stats = Sim.run ~observer:{ Sim.on_ack_obs; on_loss_obs } cfg cca in
  {
    cca_name = name;
    scenario = Config.describe cfg;
    config = cfg;
    records = Array.of_list (List.rev !records);
    loss_times = Array.of_list (List.rev !losses);
  }

(* -- Process-wide trace store --

   Collection is deterministic: a trace is a pure function of (CCA name,
   config) — the simulator's RNG is seeded from the config — so identical
   requests from the bench sections, figures, examples and tests can share
   one simulation. Keys are the CCA name plus {!Config.digest} (which
   covers every field including the seed). The store trusts the name: two
   different constructors registered under the same name in one process
   would collide, so anonymous/ad-hoc CCAs should use {!collect} or a
   unique name. *)

let store : (string, t) Hashtbl.t = Hashtbl.create 256
let store_mutex = Mutex.create ()

(* Hit/miss counters live on the telemetry layer (sharded per domain, so
   concurrent pool workers pay a plain store, not an atomic). For a
   deterministic workload the totals are deterministic: the store is
   keyed by (name, config digest) and the suite grids request distinct
   keys, so which domain serves a request never changes hit/miss
   accounting. *)
let store_hits = Abg_obs.Obs.Counter.make "trace.store.hits"
let store_misses = Abg_obs.Obs.Counter.make "trace.store.misses"
let store_size = Abg_obs.Obs.Gauge.make "trace.store.size"

let store_key ~name cfg = name ^ "|" ^ Config.digest cfg

(** [collect_cached cfg ~name constructor] is {!collect} memoized in the
    process-wide trace store: the first call per (name, config digest)
    simulates, later calls return the stored trace. Safe to call
    concurrently from pool workers (a race re-simulates; the first insert
    wins, so all callers see the same physical trace). *)
let collect_cached cfg ~name constructor =
  let key = store_key ~name cfg in
  Mutex.lock store_mutex;
  let cached = Hashtbl.find_opt store key in
  Mutex.unlock store_mutex;
  match cached with
  | Some t ->
      Abg_obs.Obs.Counter.incr store_hits;
      t
  | None ->
      Abg_obs.Obs.Counter.incr store_misses;
      let t = collect cfg ~name constructor in
      Mutex.lock store_mutex;
      let t =
        match Hashtbl.find_opt store key with
        | Some existing -> existing
        | None ->
            Hashtbl.replace store key t;
            t
      in
      Abg_obs.Obs.Gauge.set store_size (float_of_int (Hashtbl.length store));
      Mutex.unlock store_mutex;
      t

(** [(hits, misses)] of the trace store since start (or {!store_clear}).
    Counts ride on the telemetry layer: all zero while telemetry is
    disabled ({!Abg_obs.Obs.set_enabled}). *)
let store_stats () =
  (Abg_obs.Obs.Counter.value store_hits, Abg_obs.Obs.Counter.value store_misses)

(** Empty the trace store and reset its counters (tests). *)
let store_clear () =
  Mutex.lock store_mutex;
  Hashtbl.reset store;
  Mutex.unlock store_mutex;
  Abg_obs.Obs.Counter.reset store_hits;
  Abg_obs.Obs.Counter.reset store_misses;
  Abg_obs.Obs.Gauge.set store_size 0.0

(** [collect_configs ?cache ~name constructor configs] collects one trace
    per explicit scenario config, in parallel over the domain pool and
    keyed by the process-wide trace store (unless [~cache:false]). Each
    config carries its own RNG seed, so the result is bit-identical to a
    sequential pass regardless of scheduling. This is the batch
    orchestrator's entry point: a job spec names its exact
    {!Config.t} list, and identical configs across jobs share one
    simulation through the store. *)
let collect_configs ?(cache = true) ~name constructor configs =
  Abg_obs.Obs.span "collect-suite" @@ fun () ->
  let grab = if cache then collect_cached else collect in
  Abg_parallel.Pool.map_list (fun cfg -> grab cfg ~name constructor) configs

(** [collect_suite ?duration ?ack_jitter ?cache ~n ~name constructor]
    collects traces for a diverse scenario grid (§3.2's RTT x bandwidth
    ranges) — {!collect_configs} over {!Config.testbed_grid}. *)
let collect_suite ?(duration = 30.0) ?ack_jitter ?(cache = true) ~n ~name
    constructor =
  collect_configs ~cache ~name constructor
    (Config.testbed_grid ~duration ?ack_jitter ~n ())

(** Observed (visible) CWND series and its timestamps. *)
let observed_series trace =
  let n = Array.length trace.records in
  let times = Array.make n 0.0 in
  let values = Array.make n 0.0 in
  Array.iteri
    (fun i r ->
      times.(i) <- r.Record.time;
      values.(i) <- Record.observed_cwnd r)
    trace.records;
  (times, values)
