(** Trace segmentation: split flow traces at loss events (§3.2).

    The paper evaluates candidate handlers on *segments* between losses,
    because the cwnd-ack handler being synthesized only governs behavior
    between losses (the loss response is a separate handler outside
    Abagnale's §3 scope). Losses are inferred from triple-duplicate-ACK
    signatures; in this reproduction the collection substrate also knows
    the true loss times, and segmentation accepts either source. *)

type segment = {
  cca_name : string;
  scenario : string;
  start_time : float;
  records : Record.t array;
}

let length seg = Array.length seg.records

(** Visible-CWND value series of a segment. *)
let observed seg = Array.map Record.observed_cwnd seg.records

(** Timestamps of a segment, shifted to start at 0. *)
let times seg =
  Array.map (fun r -> r.Record.time -. seg.start_time) seg.records

(** [infer_loss_times trace] detects loss events from the observable
    record stream the way a passive analyzer would: a drop of the visible
    window by more than 20% between consecutive ACKs marks the
    triple-dup-ACK retransmission point. *)
let infer_loss_times (trace : Trace.t) =
  let records = trace.Trace.records in
  let losses = ref [] in
  for i = 1 to Array.length records - 1 do
    let prev = Record.observed_cwnd records.(i - 1) in
    let cur = Record.observed_cwnd records.(i) in
    if prev > 0.0 && cur < 0.8 *. prev then
      losses := records.(i).Record.time :: !losses
  done;
  Array.of_list (List.rev !losses)

(** [split ?min_length ?skip_initial ?loss_times trace] cuts the trace at
    loss events. Segments shorter than [min_length] records are discarded
    (they carry too little window evolution to score against). With
    [skip_initial] (and at least one loss in the trace), the segment
    before the first loss — the flow's initial slow start, which is
    governed by a different handler than the cwnd-ack handler being
    synthesized — is dropped. Defaults to the collection-time loss
    timestamps; pass [~loss_times] (e.g. from {!infer_loss_times}) to use
    passively inferred events instead. *)
let split ?(min_length = 30) ?(skip_initial = false) ?loss_times
    (trace : Trace.t) =
  let cuts =
    match loss_times with Some l -> l | None -> trace.Trace.loss_times
  in
  let records = trace.Trace.records in
  let n = Array.length records in
  let segments = ref [] in
  let start = ref 0 in
  let cut_idx = ref 0 in
  (* A segment's head still shows the previous loss's recovery transient
     (in-flight inflated by retransmissions); that part is governed by the
     loss-recovery machinery, not the cwnd-ack handler being synthesized.
     Start each segment at the observed-window minimum within its first
     half, where the post-loss window is established. *)
  (* Scans [records.(lo .. lo+len-1)] directly and returns the offset to
     trim, so [flush] copies the segment once instead of sub-then-sub. *)
  let trim_head lo len =
    let probe = Stdlib.max 1 (len / 2) in
    let arg = ref lo in
    for i = lo + 1 to lo + probe - 1 do
      if Record.observed_cwnd records.(i) < Record.observed_cwnd records.(!arg)
      then arg := i
    done;
    !arg - lo
  in
  let flush stop =
    if stop - !start >= min_length then begin
      let len = stop - !start in
      let skip = trim_head !start len in
      let seg_records = Array.sub records (!start + skip) (len - skip) in
      if Array.length seg_records >= min_length then
        segments :=
          {
            cca_name = trace.Trace.cca_name;
            scenario = trace.Trace.scenario;
            start_time = seg_records.(0).Record.time;
            records = seg_records;
          }
          :: !segments
    end;
    start := stop
  in
  for i = 0 to n - 1 do
    if !cut_idx < Array.length cuts && records.(i).Record.time >= cuts.(!cut_idx)
    then begin
      flush i;
      incr cut_idx;
      (* Skip any further cut points that fall before the next record. *)
      while
        !cut_idx < Array.length cuts
        && records.(i).Record.time >= cuts.(!cut_idx)
      do
        incr cut_idx
      done
    end
  done;
  flush n;
  let result = List.rev !segments in
  match result with
  | first :: (_ :: _ as rest)
    when skip_initial && Array.length cuts > 0
         && first.records.(0).Record.time < cuts.(0) ->
      rest
  | _ -> result

(** [split_all ?min_length ?skip_initial traces] segments a whole trace
    suite. *)
let split_all ?min_length ?skip_initial traces =
  List.concat_map (fun t -> split ?min_length ?skip_initial t) traces

(** [thin ~max_records seg] reduces a segment to at most [max_records]
    records by striding, *aggregating* the ACKed bytes across each stride
    so that a stateful handler replayed on the thinned segment still sees
    the full volume of acknowledged data (and therefore evolves its window
    at the true per-RTT rate). Instantaneous signals keep the values of
    the retained record. Without the aggregation, thinning would silently
    slow every handler's growth by the stride factor. *)
let thin ~max_records seg =
  let records = seg.records in
  let n = Array.length records in
  if n <= max_records then seg
  else begin
    let stride = (n + max_records - 1) / max_records in
    let kept = ref [] in
    let acked_acc = ref 0.0 in
    for i = 0 to n - 1 do
      acked_acc := !acked_acc +. records.(i).Record.acked_bytes;
      if i mod stride = stride - 1 || i = n - 1 then begin
        kept := { records.(i) with Record.acked_bytes = !acked_acc } :: !kept;
        acked_acc := 0.0
      end
    done;
    { seg with records = Array.of_list (List.rev !kept) }
  end
