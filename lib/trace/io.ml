(** Trace serialization: a line-oriented TSV with a [#]-comment header.

    The format is intentionally trivial so traces can be produced or
    consumed by external tools (tcpdump post-processors, plotting
    scripts). One record per line, columns in the order of
    {!Record.t}. Floats are written with ["%.17g"], enough digits that
    save/load round-trips every finite value exactly (and [nan]/[inf]
    literally) — the batch artifact store serializes traces through this
    path and its determinism contract needs byte-stable content.

    The reader is liberal in what it accepts: CRLF line endings and
    blank (or whitespace-only) lines anywhere in the file are tolerated;
    malformed data lines are rejected with their 1-based line number. *)

let header = "# abagnale-trace v1"

let columns =
  [ "time"; "cwnd"; "in_flight"; "acked_bytes"; "rtt"; "min_rtt"; "max_rtt";
    "ack_rate"; "rtt_gradient"; "delay_gradient"; "time_since_loss"; "wmax";
    "mss" ]

let float_to_string = Printf.sprintf "%.17g"

let record_to_line (r : Record.t) =
  String.concat "\t"
    (List.map float_to_string
       [ r.Record.time; r.cwnd; r.in_flight; r.acked_bytes; r.rtt; r.min_rtt;
         r.max_rtt; r.ack_rate; r.rtt_gradient; r.delay_gradient;
         r.time_since_loss; r.wmax; r.mss ])

(* [?lineno] is the 1-based source line for error reporting ({!load}
   threads it); without it the message carries only the offending line. *)
let record_of_line ?lineno line =
  let where =
    match lineno with
    | Some n -> Printf.sprintf "line %d: " n
    | None -> ""
  in
  let malformed () =
    invalid_arg
      (Printf.sprintf "Io.record_of_line: %smalformed line: %s" where line)
  in
  let fields =
    try String.split_on_char '\t' line |> List.map float_of_string
    with Failure _ -> malformed ()
  in
  match fields with
  | [ time; cwnd; in_flight; acked_bytes; rtt; min_rtt; max_rtt; ack_rate;
      rtt_gradient; delay_gradient; time_since_loss; wmax; mss ] ->
      {
        Record.time; cwnd; in_flight; acked_bytes; rtt; min_rtt; max_rtt;
        ack_rate; rtt_gradient; delay_gradient; time_since_loss; wmax; mss;
      }
  | _ -> malformed ()

let write_channel oc (trace : Trace.t) =
  output_string oc (header ^ "\n");
  Printf.fprintf oc "# cca: %s\n" trace.Trace.cca_name;
  Printf.fprintf oc "# scenario: %s\n" trace.Trace.scenario;
  Printf.fprintf oc "# losses: %s\n"
    (String.concat ","
       (Array.to_list (Array.map float_to_string trace.Trace.loss_times)));
  Printf.fprintf oc "# columns: %s\n" (String.concat "\t" columns);
  Array.iter
    (fun r -> output_string oc (record_to_line r ^ "\n"))
    trace.Trace.records

(** [to_string trace] is the serialized file content as one string (what
    {!save} writes) — the batch store's blob payload for traces. *)
let to_string trace =
  let buf = Buffer.create 4096 in
  let record r =
    Buffer.add_string buf (record_to_line r);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (Printf.sprintf "# cca: %s\n" trace.Trace.cca_name);
  Buffer.add_string buf (Printf.sprintf "# scenario: %s\n" trace.Trace.scenario);
  Buffer.add_string buf
    (Printf.sprintf "# losses: %s\n"
       (String.concat ","
          (Array.to_list (Array.map float_to_string trace.Trace.loss_times))));
  Buffer.add_string buf
    (Printf.sprintf "# columns: %s\n" (String.concat "\t" columns));
  Array.iter record trace.Trace.records;
  Buffer.contents buf

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc trace)

let parse_meta lines key =
  let prefix = "# " ^ key ^ ": " in
  List.find_map
    (fun (_, line) ->
      if String.length line >= String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then Some (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
      else None)
    lines

(* Strip one trailing CR: files written on (or piped through) Windows
   tooling arrive with CRLF endings, and the payload is identical. *)
let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_lines lines =
  let meta, data =
    List.partition
      (fun (_, l) -> String.length l > 0 && l.[0] = '#')
      lines
  in
  let cca_name = Option.value ~default:"unknown" (parse_meta meta "cca") in
  let scenario = Option.value ~default:"unknown" (parse_meta meta "scenario") in
  let loss_times =
    match parse_meta meta "losses" with
    | None | Some "" -> [||]
    | Some s ->
        String.split_on_char ',' s |> List.map float_of_string |> Array.of_list
  in
  let records =
    data
    |> List.filter (fun (_, l) -> String.trim l <> "")
    |> List.map (fun (lineno, l) -> record_of_line ~lineno l)
    |> Array.of_list
  in
  {
    Trace.cca_name;
    scenario;
    config = Abg_netsim.Config.default;
    records;
    loss_times;
  }

let read_channel ic =
  let lines = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       lines := (!lineno, strip_cr line) :: !lines
     done
   with End_of_file -> ());
  parse_lines (List.rev !lines)

(** [of_string s] parses serialized trace content ({!to_string}'s
    inverse). Line numbers in errors are 1-based positions in [s]. *)
let of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, strip_cr l))
  |> parse_lines

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

(** Incremental newline framing for the serving layer: socket reads
    arrive as arbitrary chunks, and a logical line may span several of
    them (or one chunk may carry many). [Lines] buffers the partial tail
    and emits complete lines with the same liberal-reader semantics as
    {!load} — CRs stripped, 1-based numbering. *)
module Lines = struct
  type t = { buf : Buffer.t; mutable lineno : int }

  let create () = { buf = Buffer.create 256; lineno = 0 }

  (** [feed t chunk emit] appends [chunk] and calls [emit lineno line]
      for every newline-terminated line completed by it, in order. *)
  let feed t chunk emit =
    let n = String.length chunk in
    let start = ref 0 in
    for i = 0 to n - 1 do
      if chunk.[i] = '\n' then begin
        Buffer.add_substring t.buf chunk !start (i - !start);
        start := i + 1;
        t.lineno <- t.lineno + 1;
        let line = strip_cr (Buffer.contents t.buf) in
        Buffer.clear t.buf;
        emit t.lineno line
      end
    done;
    Buffer.add_substring t.buf chunk !start (n - !start)

  (** [flush t emit] emits the unterminated final line, if any — call at
      EOF so a stream without a trailing newline loses nothing. *)
  let flush t emit =
    if Buffer.length t.buf > 0 then begin
      t.lineno <- t.lineno + 1;
      let line = strip_cr (Buffer.contents t.buf) in
      Buffer.clear t.buf;
      emit t.lineno line
    end

  let pending t = Buffer.length t.buf > 0
end

(** Incremental trace parsing: the serving layer's per-session reader.
    A [Stream.t] accepts trace-format lines one at a time — exactly the
    lines {!load} would read from a file, so a client can forward a
    trace file verbatim — and parses data lines eagerly, so malformed
    input is rejected at arrival with its 1-based position in the
    session's stream (the error the daemon echoes back). Meta comments
    accumulate and {!Stream.to_trace} materializes everything received
    so far, which is what escalation hands to synthesis. *)
module Stream = struct
  type t = {
    mutable lineno : int;  (* 1-based count of lines pushed *)
    mutable meta : (int * string) list;  (* comment lines, newest first *)
    mutable rev_records : Record.t list;  (* newest first *)
    mutable count : int;
  }

  let create () = { lineno = 0; meta = []; rev_records = []; count = 0 }

  (** [push t line] consumes one logical line (CR tolerated). Returns
      the parsed record for data lines, [None] for comments and blanks.
      Raises [Invalid_argument] with the line's 1-based stream position
      for malformed data. *)
  let push t line =
    t.lineno <- t.lineno + 1;
    let line = strip_cr line in
    if String.length line > 0 && line.[0] = '#' then begin
      t.meta <- (t.lineno, line) :: t.meta;
      None
    end
    else if String.trim line = "" then None
    else begin
      let r = record_of_line ~lineno:t.lineno line in
      t.rev_records <- r :: t.rev_records;
      t.count <- t.count + 1;
      Some r
    end

  let count t = t.count

  (** Claimed CCA name from a [# cca:] comment, if one has arrived. *)
  let cca_name t = parse_meta (List.rev t.meta) "cca"

  (** [to_trace t] is the trace streamed so far — same result as parsing
      the pushed lines with {!of_string}. *)
  let to_trace t =
    let meta = List.rev t.meta in
    let cca_name = Option.value ~default:"unknown" (parse_meta meta "cca") in
    let scenario =
      Option.value ~default:"unknown" (parse_meta meta "scenario")
    in
    let loss_times =
      match parse_meta meta "losses" with
      | None | Some "" -> [||]
      | Some s ->
          String.split_on_char ',' s
          |> List.map float_of_string
          |> Array.of_list
    in
    {
      Trace.cca_name;
      scenario;
      config = Abg_netsim.Config.default;
      records = Array.of_list (List.rev t.rev_records);
      loss_times;
    }
end
