(** Dynamic Time Warping distance (Berndt & Clifford, KDD '94) — the
    paper's primary metric (§4.3).

    DTW finds the minimum-cost monotone alignment between two series, so
    it forgives temporal shifts — exactly the tolerance needed when a
    candidate handler reproduces the right window *shape* slightly out of
    phase with the measured trace (Figure 4's discussion). Cost of a
    matched pair is |a - b|; the total is the sum along the optimal
    warping path.

    The optional Sakoe–Chiba [band] constrains |i - j| <= band, cutting
    cost from O(nm) to O(n*band) and preventing degenerate alignments;
    [band = None] computes the exact unconstrained distance.

    [?cutoff] enables early abandonment for the scoring loop's
    best-so-far threshold: every warping path visits at least one cell of
    each row, and cumulative costs are nondecreasing along a path, so the
    final distance is bounded below by each row's minimum. As soon as a
    row's minimum (strictly) exceeds the cutoff the candidate is known
    worse than the incumbent and the scan stops, returning [infinity].
    Whenever the true distance is <= cutoff the result is exact. *)

(* Telemetry: calls, DP cells evaluated, and early-abandon hits. Cells
   are accumulated in a local int (one add per row, noise next to the
   row's float work) and published once per call; all three counts are
   deterministic — the band depends only on the lengths and the abandon
   row only on the incumbent cutoff, which the scoring loop threads
   deterministically. *)
let obs_calls = Abg_obs.Obs.Counter.make "distance.dtw.calls"
let obs_cells = Abg_obs.Obs.Counter.make "distance.dtw.cells"
let obs_abandoned = Abg_obs.Obs.Counter.make "distance.dtw.abandoned"

let distance ?band ?(cutoff = infinity) a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then infinity
  else begin
    let w =
      match band with
      | None -> Stdlib.max n m
      | Some w -> Stdlib.max w (abs (n - m))
    in
    (* Rolling two-row DP over the (n+1) x (m+1) cost lattice. Rows are
       swapped, not copied, so each iteration touches only the band plus
       one sentinel on either side: the band shifts by at most one cell
       per row, hence reads never escape [lo-1 .. hi+1] of either row. *)
    let prev = ref (Array.make (m + 1) infinity) in
    let cur = ref (Array.make (m + 1) infinity) in
    !prev.(0) <- 0.0;
    let abandoned = ref false in
    let cells = ref 0 in
    let i = ref 1 in
    while (not !abandoned) && !i <= n do
      let p = !prev and c = !cur in
      let lo = Stdlib.max 1 (!i - w) and hi = Stdlib.min m (!i + w) in
      cells := !cells + (hi - lo + 1);
      (* Sentinels: stale cells from two rows ago must read as +inf. *)
      c.(lo - 1) <- infinity;
      if hi < m then c.(hi + 1) <- infinity;
      let ai = a.(!i - 1) in
      let row_min = ref infinity in
      (* [left] carries c.(j - 1) across iterations — the value the
         previous iteration just wrote — so the hot loop reads each array
         once. Indices are in range by construction (1 <= lo <= j <= hi
         <= m against rows of length m + 1 and b of length m), so the
         accesses are unchecked: this loop is the process's single
         hottest path when the serving layer is scoring windows. *)
      let left = ref (Array.unsafe_get c (lo - 1)) in
      for j = lo to hi do
        let cost = Float.abs (ai -. Array.unsafe_get b (j - 1)) in
        let pj = Array.unsafe_get p j in
        let pd = Array.unsafe_get p (j - 1) in
        let b1 = if pj < !left then pj else !left in
        let best = if b1 < pd then b1 else pd in
        let v = cost +. best in
        Array.unsafe_set c j v;
        left := v;
        if v < !row_min then row_min := v
      done;
      if !row_min > cutoff then abandoned := true
      else begin
        prev := c;
        cur := p
      end;
      incr i
    done;
    Abg_obs.Obs.Counter.incr obs_calls;
    Abg_obs.Obs.Counter.add obs_cells !cells;
    if !abandoned then begin
      Abg_obs.Obs.Counter.incr obs_abandoned;
      infinity
    end
    else !prev.(m)
  end

(** [path a b] additionally returns the optimal warping path as (i, j)
    index pairs — useful for visualizing which parts of two traces were
    aligned. Quadratic memory; intended for inspection, not scoring. *)
let path a b =
  let n = Array.length a and m = Array.length b in
  assert (n > 0 && m > 0);
  let dp = Array.make_matrix (n + 1) (m + 1) infinity in
  dp.(0).(0) <- 0.0;
  for i = 1 to n do
    for j = 1 to m do
      let cost = Float.abs (a.(i - 1) -. b.(j - 1)) in
      dp.(i).(j) <-
        cost
        +. Float.min dp.(i - 1).(j)
             (Float.min dp.(i).(j - 1) dp.(i - 1).(j - 1))
    done
  done;
  let rec walk i j acc =
    if i = 1 && j = 1 then (i - 1, j - 1) :: acc
    else begin
      let candidates =
        List.filter
          (fun (i', j') -> i' >= 1 && j' >= 1)
          [ (i - 1, j - 1); (i - 1, j); (i, j - 1) ]
      in
      let i', j' =
        List.fold_left
          (fun (bi, bj) (ci, cj) ->
            if dp.(ci).(cj) < dp.(bi).(bj) then (ci, cj) else (bi, bj))
          (List.hd candidates) (List.tl candidates)
      in
      walk i' j' ((i - 1, j - 1) :: acc)
    end
  in
  (dp.(n).(m), walk n m [])
