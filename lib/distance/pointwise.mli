(** Point-to-point distances: cheap but phase-sensitive (the weakness
    Figure 3 quantifies against DTW). Both require equal-length series —
    use {!Series.prepare}. With [?cutoff], a distance that provably
    (strictly) exceeds the cutoff is reported as [infinity] without
    finishing the scan; results at or below the cutoff are exact. *)

val euclidean : ?cutoff:float -> float array -> float array -> float
(** L2 distance. Empty input yields [infinity]. *)

val manhattan : ?cutoff:float -> float array -> float array -> float
(** L1 distance. Empty input yields [infinity]. *)
