(** Point-to-point distances: Euclidean and Manhattan.

    Both compare series position-by-position (no temporal alignment), so
    they are cheap but sensitive to phase shifts — the weakness Figure 3
    quantifies against DTW. Series must have equal lengths (use
    {!Series.prepare}).

    [?cutoff] abandons early once the partial sum already proves the
    distance (strictly) exceeds the cutoff, returning [infinity]; results
    at or below the cutoff are exact. For Euclidean the comparison is
    done on the squared sum against [cutoff *. cutoff], avoiding a sqrt
    per check. *)

(* Telemetry: deterministic call and early-abandon counts per metric. *)
let obs_calls = Abg_obs.Obs.Counter.make "distance.pointwise.calls"

let obs_abandoned =
  Abg_obs.Obs.Counter.make "distance.pointwise.abandoned"

let euclidean ?(cutoff = infinity) a b =
  let n = Array.length a in
  assert (n = Array.length b);
  if n = 0 then infinity
  else begin
    let cut2 = if cutoff = infinity then infinity else cutoff *. cutoff in
    let acc = ref 0.0 in
    let i = ref 0 in
    while !acc <= cut2 && !i < n do
      let d = a.(!i) -. b.(!i) in
      acc := !acc +. (d *. d);
      incr i
    done;
    Abg_obs.Obs.Counter.incr obs_calls;
    if !acc > cut2 then begin
      Abg_obs.Obs.Counter.incr obs_abandoned;
      infinity
    end
    else sqrt !acc
  end

let manhattan ?(cutoff = infinity) a b =
  let n = Array.length a in
  assert (n = Array.length b);
  if n = 0 then infinity
  else begin
    let acc = ref 0.0 in
    let i = ref 0 in
    while !acc <= cutoff && !i < n do
      acc := !acc +. Float.abs (a.(!i) -. b.(!i));
      incr i
    done;
    Abg_obs.Obs.Counter.incr obs_calls;
    if !acc > cutoff then begin
      Abg_obs.Obs.Counter.incr obs_abandoned;
      infinity
    end
    else !acc
  end
