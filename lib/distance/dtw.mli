(** Dynamic Time Warping distance (Berndt & Clifford, KDD '94) — the
    paper's primary trace-comparison metric (§4.3). *)

val distance : ?band:int -> ?cutoff:float -> float array -> float array -> float
(** [distance ?band ?cutoff a b] is the minimum total cost of a monotone
    alignment between the two series, with pairwise cost [|a.(i) - b.(j)|].
    [band] is an optional Sakoe–Chiba constraint [|i - j| <= band] (it is
    widened automatically to at least the length difference); omitting it
    computes the exact unconstrained distance. Empty input yields
    [infinity].

    [cutoff] enables early abandonment: if the distance provably
    (strictly) exceeds [cutoff], the scan stops and the result is
    [infinity]. Whenever the true distance is at or below [cutoff], the
    result is exact — so folding with a best-so-far cutoff selects the
    same winner as cutoff-free scoring. *)

val path : float array -> float array -> float * (int * int) list
(** [path a b] is the exact distance together with the optimal warping
    path as (i, j) index pairs from (0, 0) to (n-1, m-1). Quadratic
    memory; intended for inspection rather than scoring. Requires both
    series non-empty. *)
