(** Discrete Fréchet distance (the "dog-leash" distance).

    Like DTW it aligns the two series monotonically, but the cost is the
    *maximum* pointwise gap along the best alignment instead of the sum —
    one bad excursion dominates the score. Included as the fourth metric
    of the Figure 3 comparison. Computed with a rolling-row DP (rows
    swapped, not copied), O(nm) time, O(m) space.

    The optional Sakoe–Chiba [band] constrains the alignment to
    |i - j| <= band, cutting cost from O(nm) to O(n*band) exactly as for
    DTW — the constrained optimum upper-bounds the unconstrained one, and
    a band covering the whole lattice reproduces it exactly. [band = None]
    computes the exact unconstrained distance.

    [?cutoff]: reach values are nondecreasing along any alignment and
    every alignment visits each row, so the final distance is bounded
    below by each row's minimum reach; a row whose minimum (strictly)
    exceeds the cutoff abandons the scan with [infinity]. Results at or
    below the cutoff are exact. *)

(* Telemetry, mirroring Dtw: deterministic call/cell/abandon counts,
   published once per call. *)
let obs_calls = Abg_obs.Obs.Counter.make "distance.frechet.calls"
let obs_cells = Abg_obs.Obs.Counter.make "distance.frechet.cells"
let obs_abandoned = Abg_obs.Obs.Counter.make "distance.frechet.abandoned"

let distance ?band ?(cutoff = infinity) a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then infinity
  else begin
    let w =
      match band with
      | None -> Stdlib.max n m
      | Some w -> Stdlib.max w (abs (n - m))
    in
    (* Rolling two-row DP over a bordered (n+1) x (m+1) reach lattice,
       restricted to the band — same layout as DTW, so the inner loop is
       branch-free. Border cells hold +inf (unreachable) except the
       corner prev.(0) = -inf, which makes the (1,1) recurrence
       max(d, min(.., -inf, ..)) = d without a special case. Rows are
       swapped, not copied; the band shifts by at most one cell per row,
       so reads never escape [lo-1 .. hi+1] of either row — those edge
       cells are reset to +inf (sentinels) before each row so stale
       values from two rows ago read as unreachable. *)
    let prev = ref (Array.make (m + 1) infinity) in
    let cur = ref (Array.make (m + 1) infinity) in
    !prev.(0) <- neg_infinity;
    let abandoned = ref false in
    let cells = ref 0 in
    let i = ref 1 in
    while (not !abandoned) && !i <= n do
      let p = !prev and c = !cur in
      let lo = Stdlib.max 1 (!i - w) and hi = Stdlib.min m (!i + w) in
      cells := !cells + (hi - lo + 1);
      c.(lo - 1) <- infinity;
      if hi < m then c.(hi + 1) <- infinity;
      let ai = a.(!i - 1) in
      let row_min = ref infinity in
      for j = lo to hi do
        let d = Float.abs (ai -. b.(j - 1)) in
        let best =
          let pj = p.(j) and cl = c.(j - 1) in
          let b1 = if pj < cl then pj else cl in
          let pd = p.(j - 1) in
          if b1 < pd then b1 else pd
        in
        let reach = if d > best then d else best in
        c.(j) <- reach;
        if reach < !row_min then row_min := reach
      done;
      if !row_min > cutoff then abandoned := true
      else begin
        prev := c;
        cur := p
      end;
      incr i
    done;
    Abg_obs.Obs.Counter.incr obs_calls;
    Abg_obs.Obs.Counter.add obs_cells !cells;
    if !abandoned then begin
      Abg_obs.Obs.Counter.incr obs_abandoned;
      infinity
    end
    else !prev.(m)
  end
