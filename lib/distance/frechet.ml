(** Discrete Fréchet distance (the "dog-leash" distance).

    Like DTW it aligns the two series monotonically, but the cost is the
    *maximum* pointwise gap along the best alignment instead of the sum —
    one bad excursion dominates the score. Included as the fourth metric
    of the Figure 3 comparison. Computed with a rolling-row DP (rows
    swapped, not copied), O(nm) time, O(m) space.

    [?cutoff]: reach values are nondecreasing along any alignment and
    every alignment visits each row, so the final distance is bounded
    below by each row's minimum reach; a row whose minimum (strictly)
    exceeds the cutoff abandons the scan with [infinity]. Results at or
    below the cutoff are exact. *)

let distance ?(cutoff = infinity) a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then infinity
  else begin
    let prev = ref (Array.make m infinity) in
    let cur = ref (Array.make m infinity) in
    let abandoned = ref false in
    let i = ref 0 in
    while (not !abandoned) && !i < n do
      let p = !prev and c = !cur in
      let ai = a.(!i) in
      let row_min = ref infinity in
      for j = 0 to m - 1 do
        let d = Float.abs (ai -. b.(j)) in
        let reach =
          if !i = 0 && j = 0 then d
          else begin
            let best = ref infinity in
            if !i > 0 then best := Float.min !best p.(j);
            if j > 0 then best := Float.min !best c.(j - 1);
            if !i > 0 && j > 0 then best := Float.min !best p.(j - 1);
            Float.max d !best
          end
        in
        c.(j) <- reach;
        if reach < !row_min then row_min := reach
      done;
      if !row_min > cutoff then abandoned := true
      else begin
        prev := c;
        cur := p
      end;
      incr i
    done;
    if !abandoned then infinity else !prev.(m - 1)
  end
