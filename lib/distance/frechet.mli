(** Discrete Fréchet ("dog-leash") distance: like DTW it aligns the
    series monotonically, but the cost is the *maximum* pointwise gap
    along the best alignment — one bad excursion dominates. *)

val distance : ?cutoff:float -> float array -> float array -> float
(** [distance ?cutoff a b]. Empty input yields [infinity]. With
    [?cutoff], a distance that provably (strictly) exceeds the cutoff is
    reported as [infinity] early; results at or below the cutoff are
    exact. *)
