(** Discrete Fréchet ("dog-leash") distance: like DTW it aligns the
    series monotonically, but the cost is the *maximum* pointwise gap
    along the best alignment — one bad excursion dominates. *)

val distance : ?band:int -> ?cutoff:float -> float array -> float array -> float
(** [distance ?band ?cutoff a b]. Empty input yields [infinity]. The
    Sakoe–Chiba [band] restricts the alignment to [|i - j| <= band]
    (widened to [|n - m|] if smaller, so a path always exists), cutting
    cost from O(nm) to O(n*band); the banded optimum upper-bounds the
    exact one and matches it when the band covers the lattice. With
    [?cutoff], a distance that provably (strictly) exceeds the cutoff is
    reported as [infinity] early; results at or below the cutoff are
    exact. *)
