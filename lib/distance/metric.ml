(** Unified distance-metric dispatch (§4.3).

    All metrics consume raw (unequal-length) value series; preparation —
    resampling to a common length and normalizing by the ground truth's
    mean — happens here so every call site gets identical semantics. DTW
    is the default; the paper selects it for its tolerance to constant
    error (Figure 3) and accepts its extra cost.

    The ground-truth side of that preparation is identical for every
    candidate scored against a segment, so it is cached: {!prepare} does
    the truth-side resample + normalize once, and {!compute_prepared}
    scores any number of candidates against it. A {!prepared} value is
    immutable and safe to share across domains. *)

type kind = Dtw | Euclidean | Manhattan | Frechet

let all = [ Dtw; Euclidean; Manhattan; Frechet ]

let name = function
  | Dtw -> "dtw"
  | Euclidean -> "euclidean"
  | Manhattan -> "manhattan"
  | Frechet -> "frechet"

let of_name s =
  List.find_opt (fun k -> String.equal (name k) s) all

(* Sakoe-Chiba band for the warping metrics (DTW, Fréchet): 10% of the
   series length, the standard default. *)
let dtw_band length = Stdlib.max 2 (length / 10)

type prepared = {
  kind : kind;
  length : int;
  reference : float array;  (* truth, resampled to [length] and normalized *)
  scale : float;  (* multiplier that maps candidates into the same space *)
}

(** [prepare ?length kind ~truth] does the truth-side preparation once,
    for reuse across every candidate scored against this segment. *)
let prepare ?(length = Series.default_length) kind ~truth =
  let reference, scale = Series.prepare_truth ~length truth in
  { kind; length; reference; scale }

(** [compute_prepared ?cutoff prepared ~candidate] is the distance of a
    candidate series against a prepared ground truth. With [?cutoff],
    the metric abandons early once the distance provably (strictly)
    exceeds it and returns [infinity]; results at or below the cutoff
    are exact, so a best-so-far fold keeps the same winner. *)
let compute_prepared ?cutoff { kind; length; reference; scale } ~candidate =
  let candidate' = Series.prepare_candidate ~length ~scale candidate in
  match kind with
  | Dtw -> Dtw.distance ~band:(dtw_band length) ?cutoff reference candidate'
  | Euclidean -> Pointwise.euclidean ?cutoff reference candidate'
  | Manhattan -> Pointwise.manhattan ?cutoff reference candidate'
  | Frechet -> Frechet.distance ~band:(dtw_band length) ?cutoff reference candidate'

(** [compute kind ~truth ~candidate] is the distance between the
    ground-truth and candidate visible-CWND value series. Lower is a
    better match. One-shot form of {!prepare} + {!compute_prepared}. *)
let compute ?(length = Series.default_length) ?cutoff kind ~truth ~candidate =
  compute_prepared ?cutoff (prepare ~length kind ~truth) ~candidate

(** Default metric used by the synthesis pipeline. *)
let default = Dtw
