(** Unified distance-metric dispatch (§4.3).

    All metrics consume raw (unequal-length) value series; preparation —
    resampling to a common length and normalizing by the ground truth's
    mean — happens here so every call site gets identical semantics. DTW
    is the default; the paper selects it for its tolerance to constant
    error (Figure 3) and accepts its extra cost.

    The ground-truth side of that preparation is identical for every
    candidate scored against a segment, so it is cached: {!prepare} does
    the truth-side resample + normalize once, and {!compute_prepared}
    scores any number of candidates against it. A {!prepared} value is
    immutable and safe to share across domains. *)

type kind = Dtw | Euclidean | Manhattan | Frechet

let all = [ Dtw; Euclidean; Manhattan; Frechet ]

let name = function
  | Dtw -> "dtw"
  | Euclidean -> "euclidean"
  | Manhattan -> "manhattan"
  | Frechet -> "frechet"

let of_name s =
  List.find_opt (fun k -> String.equal (name k) s) all

(* Sakoe-Chiba band for the warping metrics (DTW, Fréchet): 10% of the
   series length, the standard default. *)
let dtw_band length = Stdlib.max 2 (length / 10)

type prepared = {
  kind : kind;
  length : int;
  reference : float array;  (* truth, resampled to [length] and normalized *)
  scale : float;  (* multiplier that maps candidates into the same space *)
  env_lo : float array;  (* DTW only: banded min-envelope of [reference] *)
  env_hi : float array;  (* DTW only: banded max-envelope; else [||] *)
}

(* Sakoe-Chiba envelopes of the reference: [env_lo.(i)]/[env_hi.(i)]
   bound every reference value a banded warping path may match against
   candidate position [i]. O(length * band) once per prepare. *)
let envelopes ~band reference =
  let n = Array.length reference in
  let lo = Array.make n infinity and hi = Array.make n neg_infinity in
  for i = 0 to n - 1 do
    for j = Stdlib.max 0 (i - band) to Stdlib.min (n - 1) (i + band) do
      let v = reference.(j) in
      if v < lo.(i) then lo.(i) <- v;
      if v > hi.(i) then hi.(i) <- v
    done
  done;
  (lo, hi)

(** [prepare ?length kind ~truth] does the truth-side preparation once,
    for reuse across every candidate scored against this segment. *)
let prepare ?(length = Series.default_length) kind ~truth =
  let reference, scale = Series.prepare_truth ~length truth in
  let env_lo, env_hi =
    match kind with
    | Dtw -> envelopes ~band:(dtw_band length) reference
    | Euclidean | Manhattan | Frechet -> ([||], [||])
  in
  { kind; length; reference; scale; env_lo; env_hi }

(* LB_Keogh lower bound (Keogh & Ratanamahatana, KAIS '05) for the L1
   banded DTW: every warping path matches candidate position [i] against
   some reference value inside the band, contributing at least the
   candidate's distance to the envelope there; the row sums are
   independent, so their total bounds the true distance from below. A
   candidate whose bound already exceeds the cutoff is rejected in
   O(length) without touching the O(length * band) DP lattice — on the
   serving layer's scoring loop (hundreds of references per query, most
   hopeless) this prunes the bulk of the work. NaN samples contribute
   nothing, which only weakens the bound — never a wrong prune. *)
let obs_lb_pruned = Abg_obs.Obs.Counter.make "distance.dtw.lb_pruned"

let lb_keogh ~env_lo ~env_hi candidate =
  let acc = ref 0.0 in
  for i = 0 to Array.length candidate - 1 do
    let v = candidate.(i) in
    if v > env_hi.(i) then acc := !acc +. (v -. env_hi.(i))
    else if v < env_lo.(i) then acc := !acc +. (env_lo.(i) -. v)
  done;
  !acc

(* Kernel dispatch shared by the materialized and windowed entry points:
   [candidate'] is already resampled and scaled into the prepared truth's
   normalized space. *)
let dispatch ?cutoff { kind; length; reference; env_lo; env_hi; _ } candidate'
    =
  match kind with
  | Dtw -> (
      match cutoff with
      | Some c
        when Array.length env_lo > 0
             && Array.length candidate' = Array.length env_lo
             && lb_keogh ~env_lo ~env_hi candidate' > c ->
          Abg_obs.Obs.Counter.incr obs_lb_pruned;
          infinity
      | _ -> Dtw.distance ~band:(dtw_band length) ?cutoff reference candidate')
  | Euclidean -> Pointwise.euclidean ?cutoff reference candidate'
  | Manhattan -> Pointwise.manhattan ?cutoff reference candidate'
  | Frechet ->
      Frechet.distance ~band:(dtw_band length) ?cutoff reference candidate'

(** [compute_prepared ?cutoff prepared ~candidate] is the distance of a
    candidate series against a prepared ground truth. With [?cutoff],
    the metric abandons early once the distance provably (strictly)
    exceeds it and returns [infinity]; results at or below the cutoff
    are exact, so a best-so-far fold keeps the same winner. *)
let compute_prepared ?cutoff ({ length; scale; _ } as prepared) ~candidate =
  dispatch ?cutoff prepared (Series.prepare_candidate ~length ~scale candidate)

(** [compute_prepared_window ?cutoff ?scratch ?scale prepared ~get ~len]
    is {!compute_prepared} for a candidate read through an accessor — the
    serving layer's windowed kernel, scoring a per-flow sliding window
    directly out of its ring buffer ([get i] is the i-th value of the
    window, oldest first). [scratch] (length [prepared.length]) is
    overwritten with the resampled candidate and reused across calls, so
    steady-state scoring allocates nothing.

    [scale] overrides the truth-derived candidate scale (default
    [prepared.scale]). Synthesis scoring must keep the default — a
    candidate shrinking its error by inflating its output is the exact
    gaming the shared scale prevents — but classification of a {e
    measured} flow window is shape matching between different scenarios,
    where the query self-normalizes (pass [1 /. window_mean]) to be
    comparable against a unit-mean reference.

    Same early-abandon contract as {!compute_prepared}: with [?cutoff]
    the result is [infinity] once the distance provably exceeds it,
    exact at or below. With the default scale, bit-identical to
    [compute_prepared prepared ~candidate:(Array.init len get)]. *)
let compute_prepared_window ?cutoff ?scratch ?scale prepared ~get ~len =
  let dst =
    match scratch with
    | Some a when Array.length a = prepared.length -> a
    | Some _ | None -> Array.make prepared.length 0.0
  in
  let scale = Option.value ~default:prepared.scale scale in
  Series.prepare_candidate_into ~get ~len ~scale dst;
  dispatch ?cutoff prepared dst

(** [compute_resampled ?cutoff prepared ~candidate] scores a candidate
    that is {e already} in the prepared space — resampled to
    [prepared.length] and scaled (e.g. by {!Series.prepare_candidate_into}).
    The serving layer's scoring loop compares one query window against
    hundreds of same-length references; resampling once and dispatching
    here, instead of calling {!compute_prepared_window} per reference,
    removes the redundant per-reference resample. Raises
    [Invalid_argument] on a length mismatch — a misprepared candidate
    would otherwise score garbage silently. *)
let compute_resampled ?cutoff prepared ~candidate =
  if Array.length candidate <> prepared.length then
    invalid_arg
      (Printf.sprintf "Metric.compute_resampled: candidate length %d <> %d"
         (Array.length candidate) prepared.length);
  dispatch ?cutoff prepared candidate

(** [compute kind ~truth ~candidate] is the distance between the
    ground-truth and candidate visible-CWND value series. Lower is a
    better match. One-shot form of {!prepare} + {!compute_prepared}. *)
let compute ?(length = Series.default_length) ?cutoff kind ~truth ~candidate =
  compute_prepared ?cutoff (prepare ~length kind ~truth) ~candidate

(** Default metric used by the synthesis pipeline. *)
let default = Dtw
