(** Preparation of CWND series for distance computation.

    Distances compare a ground-truth visible-CWND series against a
    synthesized one. Both are resampled to a fixed length and normalized to
    a common scale so that a distance of "10" means comparable things
    across scenarios with different bandwidths. Normalization divides by
    the ground-truth series' mean (never by the candidate's: a candidate
    must not be able to shrink its own error by inflating its output).

    The truth side of this work is identical for every candidate scored
    against a segment, so it is split out: {!prepare_truth} runs once per
    segment and its result (the prepared reference plus the scale it
    implies) is reused by {!prepare_candidate} for each candidate. *)

let default_length = 128

let resample ~length xs =
  let n = Array.length xs in
  if n = length then Array.copy xs
  else if n = 0 then Array.make length 0.0
  else begin
    (* Index-based linear interpolation handles both up- and
       down-sampling. *)
    let times = Array.init n float_of_int in
    Abg_util.Resample.linear ~times ~values:xs ~n:length
  end

(** [normalize ~reference xs] scales both series by the reference mean. *)
let normalize ~reference xs =
  let n = Array.length reference in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 reference /. float_of_int n in
  let scale = if mean > 1e-9 then 1.0 /. mean else 1.0 in
  (Array.map (fun v -> v *. scale) reference, Array.map (fun v -> v *. scale) xs)

(** [prepare_truth ?length truth] resamples and normalizes the
    ground-truth series once, returning [(reference, scale)] where
    [scale] is the multiplier candidates must be scaled by to live in the
    same normalized space. *)
let prepare_truth ?(length = default_length) truth =
  let reference = resample ~length truth in
  let n = Array.length reference in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 reference /. float_of_int n in
  let scale = if mean > 1e-9 then 1.0 /. mean else 1.0 in
  (Array.map (fun v -> v *. scale) reference, scale)

(** [prepare_candidate ?length ~scale candidate] resamples a candidate
    series and scales it by a truth-derived [scale]. *)
let prepare_candidate ?(length = default_length) ~scale candidate =
  Array.map (fun v -> v *. scale) (resample ~length candidate)

(** [prepare_candidate_into ~get ~len ~scale dst] is {!prepare_candidate}
    reading the candidate through an accessor ([get i], [i] in
    [0 .. len-1]) and writing into [dst] (whose length is the prepared
    length) — the windowed, zero-allocation variant the serving layer
    uses to score a sliding window's ring buffer without materializing
    it. Bit-identical to [prepare_candidate ~length:(Array.length dst)
    ~scale (Array.init len get)]. *)
let prepare_candidate_into ~get ~len ~scale dst =
  let n = Array.length dst in
  if len = n then
    for i = 0 to n - 1 do
      dst.(i) <- get i *. scale
    done
  else if len = 0 then Array.fill dst 0 n 0.0
  else begin
    Abg_util.Resample.linear_fn_into ~time:float_of_int ~value:get ~len ~dst;
    for i = 0 to n - 1 do
      dst.(i) <- dst.(i) *. scale
    done
  end

(** [prepare ?length ~truth ~candidate ()] resamples both value series to
    [length] points and normalizes by the truth's mean, returning
    [(truth', candidate')]. *)
let prepare ?(length = default_length) ~truth ~candidate () =
  let reference, scale = prepare_truth ~length truth in
  (reference, prepare_candidate ~length ~scale candidate)
