(** Unified distance-metric dispatch (§4.3).

    All metrics consume raw (possibly unequal-length) value series;
    resampling to a common length and normalization by the ground truth's
    mean happen inside {!compute}, so every call site gets identical
    semantics. The truth-side half of that preparation can be cached with
    {!prepare} and reused across every candidate scored against the same
    segment ({!compute_prepared}). *)

type kind = Dtw | Euclidean | Manhattan | Frechet

val all : kind list
val name : kind -> string
val of_name : string -> kind option

val dtw_band : int -> int
(** [dtw_band length] — the Sakoe–Chiba band used for series of the given
    length (10%, minimum 2). *)

type prepared
(** A ground-truth series resampled and normalized once, plus the metric
    and scale needed to score candidates against it. Immutable — safe to
    share across domains. *)

val prepare : ?length:int -> kind -> truth:float array -> prepared
(** [prepare kind ~truth] caches the truth-side preparation (resample to
    [length], default {!Series.default_length}, and normalize by the
    truth's mean) for reuse across candidates. *)

val compute_prepared :
  ?cutoff:float -> prepared -> candidate:float array -> float
(** [compute_prepared prepared ~candidate] is the distance of a candidate
    series against a prepared truth; equals
    [compute kind ~truth ~candidate] for the prepared truth and kind.
    [cutoff] abandons early with [infinity] once the distance provably
    (strictly) exceeds it; results at or below the cutoff are exact. *)

val compute_prepared_window :
  ?cutoff:float ->
  ?scratch:float array ->
  ?scale:float ->
  prepared ->
  get:(int -> float) ->
  len:int ->
  float
(** [compute_prepared_window prepared ~get ~len] is {!compute_prepared}
    for a candidate read through an accessor ([get i], [i] in
    [0 .. len-1], oldest first) — the windowed kernel for scoring a
    sliding window straight out of its ring buffer. [scratch] (length =
    the prepared length) is overwritten and reusable across calls, making
    steady-state scoring allocation-free. [scale] overrides the
    truth-derived candidate scale: synthesis scoring must keep the
    default (anti-gaming), but classification of a measured flow window
    passes its own [1 /. mean] to shape-match a unit-mean reference.
    Same [?cutoff] early-abandon contract; with the default scale,
    bit-identical to materializing the window and calling
    {!compute_prepared}. *)

val compute_resampled :
  ?cutoff:float -> prepared -> candidate:float array -> float
(** [compute_resampled prepared ~candidate] scores a candidate already in
    the prepared space (resampled to the prepared length and scaled —
    e.g. by {!Series.prepare_candidate_into}). Lets a scoring loop that
    compares one query against many same-length references resample
    once instead of once per reference. Raises [Invalid_argument] on a
    length mismatch. Same [?cutoff] contract as {!compute_prepared}. *)

val compute :
  ?length:int ->
  ?cutoff:float ->
  kind ->
  truth:float array ->
  candidate:float array ->
  float
(** [compute kind ~truth ~candidate] is the distance between a
    ground-truth and a candidate visible-CWND series, after resampling
    both to [length] points (default {!Series.default_length}) and
    normalizing by the truth's mean. Lower is a better match. See
    {!compute_prepared} for [cutoff]. *)

val default : kind
(** The metric the synthesis pipeline uses unless told otherwise: DTW,
    per the paper's Figure 3 error-tolerance comparison. *)
