(** Preparation of CWND series for distance computation: resampling to a
    fixed length and normalization by the ground-truth mean, so a
    candidate cannot shrink its own error by inflating its output. The
    truth-side work is exposed separately ({!prepare_truth}) so it can be
    done once per segment and shared across all candidates. *)

val default_length : int
(** Points per prepared series (128). *)

val resample : length:int -> float array -> float array
(** [resample ~length xs] — [xs] linearly interpolated to [length]
    points (a copy when already that length, zeros when empty). *)

val normalize :
  reference:float array -> float array -> float array * float array
(** [normalize ~reference xs] scales both series by the reference's mean;
    returns [(reference', xs')]. *)

val prepare_truth : ?length:int -> float array -> float array * float
(** [prepare_truth truth] resamples and normalizes the ground-truth
    series, returning [(reference, scale)]. [scale] is the multiplier a
    candidate series must be scaled by to be comparable to [reference];
    feed it to {!prepare_candidate}. *)

val prepare_candidate :
  ?length:int -> scale:float -> float array -> float array
(** [prepare_candidate ~scale candidate] resamples a candidate series and
    scales it into the normalized space of the truth that produced
    [scale]. *)

val prepare_candidate_into :
  get:(int -> float) -> len:int -> scale:float -> float array -> unit
(** [prepare_candidate_into ~get ~len ~scale dst] is {!prepare_candidate}
    reading the candidate through [get] (indices [0 .. len-1]) and
    writing into [dst] (length = prepared length) with no intermediate
    allocation — the windowed variant for scoring a ring buffer.
    Bit-identical to [prepare_candidate ~length:(Array.length dst) ~scale
    (Array.init len get)]. *)

val prepare :
  ?length:int ->
  truth:float array ->
  candidate:float array ->
  unit ->
  float array * float array
(** [prepare ~truth ~candidate ()] resamples both value series to
    [length] points (index-based linear interpolation) and normalizes by
    the truth's mean. Equivalent to {!prepare_truth} + {!prepare_candidate}. *)
