(** A Gordon-style CCA classifier (Mishra et al., SIGMETRICS '20).

    Gordon probes a server and matches the visible-CWND evolution against
    its set of known CCAs. This substitute is passive and works from
    collected traces: it generates reference traces for each known CCA on
    a small scenario grid, extracts the feature vector of {!Features}, and
    classifies a query by nearest centroid with a confidence threshold —
    beyond the threshold the verdict is "Unknown", with the closest match
    reported in parentheses as the paper's Table 3 does. *)

(** Gordon's known-CCA set (§5.1). *)
let known_set =
  [ "bbr"; "cubic"; "bic"; "htcp"; "scalable"; "yeah"; "vegas"; "veno";
    "reno"; "illinois"; "westwood" ]

type verdict =
  | Known of string
  | Unknown of string option  (** closest known CCA, if any stands out *)

let verdict_to_string = function
  | Known name -> name
  | Unknown (Some close) -> Printf.sprintf "Unknown (%s)" close
  | Unknown None -> "Unknown"

(* Gordon actively probes the server through its own bottleneck settings,
   so references live on the same RTT x bandwidth grid the tool probes
   with — but with different seeds and durations than any query run, so a
   classification is never a comparison of two identical simulations. *)
let reference_scenarios () =
  [ Abg_netsim.Config.make ~bandwidth_mbps:5.0 ~rtt_ms:10.0 ~duration:15.0
      ~ack_jitter:0.001 ~seed:201 ();
    Abg_netsim.Config.make ~bandwidth_mbps:10.0 ~rtt_ms:25.0 ~duration:15.0
      ~ack_jitter:0.001 ~seed:202 ();
    Abg_netsim.Config.make ~bandwidth_mbps:12.0 ~rtt_ms:50.0 ~duration:15.0
      ~ack_jitter:0.001 ~seed:203 ();
    Abg_netsim.Config.make ~bandwidth_mbps:15.0 ~rtt_ms:75.0 ~duration:15.0
      ~ack_jitter:0.001 ~seed:204 () ]

(* Reference feature vectors are deterministic; computed once per run. *)
let references = lazy (
  List.filter_map
    (fun name ->
      match Abg_cca.Registry.find name with
      | None -> None
      | Some ctor ->
          let traces =
            Abg_parallel.Pool.map_list
              (fun cfg -> Abg_trace.Trace.collect_cached cfg ~name ctor)
              (reference_scenarios ())
          in
          Some (name, Features.to_vector (Features.extract traces)))
    known_set)

let vector_distance a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(** [rank traces] — known CCAs ordered by feature distance to the query
    traces, closest first. *)
let rank traces =
  let query = Features.to_vector (Features.extract traces) in
  Lazy.force references
  |> List.map (fun (name, v) -> (name, vector_distance query v))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* Confidence thresholds, calibrated on the reference grid: a match is
   confident when clearly closer than the typical inter-CCA gap. *)
let match_threshold = 0.5
let closest_report_threshold = 6.0

(** [classify traces] — the Table 3 verdict for a suite of traces from one
    (possibly unknown) CCA. *)
let classify traces =
  match rank traces with
  | [] -> Unknown None
  | (best, d) :: _ ->
      if d <= match_threshold then Known best
      else if d <= closest_report_threshold then Unknown (Some best)
      else Unknown None
