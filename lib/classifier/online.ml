(** Online CCA classification for the serving layer.

    The offline classifier ({!Ccanalyzer}) re-prepares the reference
    side of every DTW comparison on each query; a long-lived daemon
    scoring thousands of flow windows per second cannot afford that.
    [Online] hoists the per-reference work to construction time: each
    reference trace's observed-CWND series is resampled and normalized
    once ({!Abg_distance.Metric.prepare}), and a query window is then
    scored straight out of its ring buffer with
    {!Abg_distance.Metric.compute_prepared_window} through one reused
    scratch buffer, so steady-state classification allocates almost
    nothing. A fixed cutoff lets hopeless references abandon early,
    bounding worst-case query latency.

    Verdicts are a pure function of the window contents — reference
    preparation is deterministic (same simulations as the offline
    classifiers) and no wall-clock time enters the decision path, so a
    replayed stream yields byte-identical verdicts. *)

(* A window shorter than this carries too little shape to say anything;
   the daemon answers "Unknown" rather than guessing from noise. *)
let min_points = 16

(* Distance thresholds, calibrated on windows of the reference grid's
   own flows: a confident match scores a mean well under
   [match_threshold]; at [report_threshold] every per-window distance
   saturates (it doubles as the DTW early-abandon cutoff), so a mean
   there means "nothing even resembles this". *)
let match_threshold = 6.0
let report_threshold = 16.0

type result = {
  verdict : Gordon.verdict;
  closest : (string * float) list;
      (** known CCAs by mean windowed DTW distance (each per-window
          term capped at [report_threshold]), closest first *)
}

type t = {
  refs : (string * Abg_distance.Metric.prepared array) array;
  scratch : float array;
}

(* A live query is a {e window} — the last W records of a flow — so the
   reference side must be windows too: scoring a 512-record suffix
   against a whole 15-second reference trace (slow start, every loss
   epoch, resampled together) compares different things and ranks every
   CCA by its global envelope instead of its steady-state shape. Each
   reference trace therefore contributes [windows_per_ref] record
   windows of the same width as the query's sliding window: evenly
   spaced, starting past the first fifth of the trace (slow start is
   governed by a different handler and would pollute every CCA's
   references with the same exponential ramp). *)
let windows_per_ref = 4

let reference_windows ~window values =
  let n = Array.length values in
  if n = 0 then []
  else if n <= window then [ values ]
  else begin
    let last = n - window in
    let first = Stdlib.min last (n / 5) in
    List.init windows_per_ref (fun i ->
        let pos = first + ((last - first) * i / (windows_per_ref - 1)) in
        Array.sub values pos window)
    |> List.sort_uniq compare
  end

(** [create ()] prepares windowed references from the
    {!Ccanalyzer.reference_traces} set (simulating the traces on first
    use; cached process-wide). [window] must match the serving layer's
    sliding-window capacity so reference and query windows cover
    comparable spans. The result holds a mutable scratch buffer, so each
    [t] must be scored from one domain at a time — the serve event loop
    owns one. *)
let create ?(metric = Abg_distance.Metric.default)
    ?(length = Abg_distance.Series.default_length) ?(window = 512) () =
  let refs =
    Lazy.force Ccanalyzer.reference_traces
    |> List.map (fun (name, traces) ->
           let prepared =
             traces
             |> List.concat_map (fun tr ->
                    let _, v = Abg_trace.Trace.observed_series tr in
                    reference_windows ~window v)
             |> List.map (fun w ->
                    Abg_distance.Metric.prepare ~length metric ~truth:w)
             |> Array.of_list
           in
           (name, prepared))
    |> List.filter (fun (_, ps) -> Array.length ps > 0)
    |> Array.of_list
  in
  { refs; scratch = Array.make length 0.0 }

(* A measured window self-normalizes to unit mean before scoring, so a
   flow's absolute bandwidth cannot dominate the shape comparison
   against unit-mean references (the truth-scale rule exists to stop
   synthesis candidates gaming their error; a query window is not a
   candidate). Non-finite samples are excluded from the mean — one nan
   must not erase the whole window's scale. *)
let window_scale ~get ~len =
  let sum = ref 0.0 in
  let n = ref 0 in
  for i = 0 to len - 1 do
    let v = get i in
    if Float.is_finite v then begin
      sum := !sum +. v;
      incr n
    end
  done;
  if !n = 0 then 1.0
  else begin
    let mean = !sum /. float_of_int !n in
    if mean > 1e-9 then 1.0 /. mean else 1.0
  end

(** [classify t ~get ~len] is the verdict for a flow window read through
    an accessor ([get i], [i] in [0 .. len-1], oldest first — the serve
    layer's ring buffer). Each CCA scores as the mean distance over its
    reference windows, saturated at [report_threshold]; ties break
    alphabetically so the ranking is total and deterministic. *)
let classify t ~get ~len =
  if len < min_points then { verdict = Gordon.Unknown None; closest = [] }
  else begin
    (* Every reference shares the prepared length and the query's scale,
       so the resampled-and-scaled query is identical across the whole
       scoring loop: prepare it once into the scratch buffer and score
       with {!Abg_distance.Metric.compute_resampled}, not once per
       reference. *)
    let scale = window_scale ~get ~len in
    Abg_distance.Series.prepare_candidate_into ~get ~len ~scale t.scratch;
    let n = Array.length t.refs in
    let out = Array.make n ("", infinity) in
    for i = 0 to n - 1 do
      let name, prepared = t.refs.(i) in
      (* Mean over the CCA's reference windows, not min: a degenerate
         query (a flat loss-free stretch) matches {e some} window of
         almost every CCA at ~0, but only the right CCA looks similar
         from every window. Distances are capped at [report_threshold] —
         which also serves as the DTW early-abandon cutoff, bounding
         worst-case latency — so one hopeless window saturates rather
         than poisons the mean. *)
      let sum = ref 0.0 in
      Array.iter
        (fun p ->
          let dist =
            Abg_distance.Metric.compute_resampled ~cutoff:report_threshold p
              ~candidate:t.scratch
          in
          sum := !sum +. Float.min dist report_threshold)
        prepared;
      out.(i) <- (name, !sum /. float_of_int (Array.length prepared))
    done;
    let closest =
      Array.to_list out
      |> List.sort (fun (na, a) (nb, b) ->
             match compare (a : float) b with
             | 0 -> String.compare na nb
             | c -> c)
    in
    let verdict =
      match closest with
      | (best, d) :: _ when d <= match_threshold -> Gordon.Known best
      | (best, d) :: _ when d < report_threshold -> Gordon.Unknown (Some best)
      | _ -> Gordon.Unknown None
    in
    { verdict; closest }
  end

(** [classify_array t values] is {!classify} over a materialized window
    (tests, one-shot callers). *)
let classify_array t values =
  classify t ~get:(Array.get values) ~len:(Array.length values)
