(** A CCAnalyzer-style distance classifier (Ware et al., SIGCOMM '24).

    CCAnalyzer compares the measured window evolution directly against
    reference traces of known CCAs with a time-series distance, and
    reports "Unknown" plus the closest known algorithms when nothing
    matches well — the behavior the paper relies on for the student CCA
    dataset (§5.1, Table 3). This substitute uses the same DTW metric as
    the rest of the pipeline over per-scenario reference traces. *)

type result = {
  verdict : Gordon.verdict;
  closest : (string * float) list;  (** all known CCAs, closest first *)
}

let reference_traces = lazy (
  List.filter_map
    (fun name ->
      match Abg_cca.Registry.find name with
      | None -> None
      | Some ctor ->
          let traces =
            Abg_parallel.Pool.map_list
              (fun cfg -> Abg_trace.Trace.collect_cached cfg ~name ctor)
              (Gordon.reference_scenarios ())
          in
          Some (name, traces))
    ("cdg" :: "nv" :: Gordon.known_set))

let trace_distance a b =
  let _, va = Abg_trace.Trace.observed_series a in
  let _, vb = Abg_trace.Trace.observed_series b in
  if Array.length va = 0 || Array.length vb = 0 then infinity
  else Abg_distance.Metric.compute Abg_distance.Metric.Dtw ~truth:va ~candidate:vb

(* Mean distance between a query suite and one reference suite, pairing
   scenario-wise when possible. *)
let suite_distance queries references =
  let ds =
    List.concat_map
      (fun q -> List.map (fun r -> trace_distance q r) references)
      queries
  in
  match ds with
  | [] -> infinity
  | _ -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)

let match_threshold = 4.0

(** [classify traces] ranks every known CCA by DTW distance to the query
    suite. *)
let classify traces =
  let ranked =
    Lazy.force reference_traces
    |> List.map (fun (name, refs) -> (name, suite_distance traces refs))
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let verdict =
    match ranked with
    | (best, d) :: _ when d <= match_threshold -> Gordon.Known best
    | (best, _) :: _ -> Gordon.Unknown (Some best)
    | [] -> Gordon.Unknown None
  in
  { verdict; closest = ranked }

(** The two closest known CCAs, as the paper reports for the student
    dataset ("Unknown (CDG, Vegas)"). *)
let closest_two result =
  match result.closest with
  | (a, _) :: (b, _) :: _ -> Some (a, b)
  | _ -> None
