(** Trace features for CCA classification.

    The quantities a classifier in the Gordon [51] family derives from the
    visible-CWND time series: growth shape between losses, loss response,
    delay sensitivity, and oscillation structure. All features are
    scale-normalized (per-MSS or per-BDP) so they transfer across
    scenarios. *)

open Abg_util

type t = {
  (* Growth shape within loss-free segments. *)
  growth_slope : float;  (** median window growth, MSS per RTT *)
  convexity : float;
      (** late-third slope minus early-third slope, normalized: > 0 convex
          (accelerating, BIC/HTCP probing), < 0 concave (Cubic approach,
          Illinois), ~0 linear (Reno family) *)
  flatness : float;  (** fraction of time with negligible window change *)
  (* Loss response. *)
  decrease_factor : float;  (** median cwnd_after / cwnd_before at losses *)
  loss_rate : float;  (** loss events per second *)
  (* Delay coupling. *)
  rtt_growth_correlation : float;
      (** Pearson correlation between per-record growth and RTT *)
  (* Oscillation. *)
  pulse_score : float;
      (** short-period up-down alternation intensity (BBR's PROBE_BW) *)
  mean_cwnd_mss : float;  (** mean window in segments *)
}

let segment_slopes (seg : Abg_trace.Segmentation.segment) =
  let records = seg.Abg_trace.Segmentation.records in
  let n = Array.length records in
  if n < 6 then None
  else begin
    let mss = records.(0).Abg_trace.Record.mss in
    let rtt = Stats.median_fn (fun i -> records.(i).Abg_trace.Record.rtt) ~len:n in
    let third = n / 3 in
    (* Regress directly over record index ranges — no [Array.sub]/[map]
       copies per slope; results are bit-identical to regressing over
       copies. *)
    let time i = records.(i).Abg_trace.Record.time in
    let cwnd i = Abg_trace.Record.observed_cwnd records.(i) in
    let slope_of lo len =
      let slope, _ = Stats.linear_regression_fn time cwnd ~lo ~len in
      (* bytes/s -> MSS per RTT *)
      slope *. rtt /. mss
    in
    let early = slope_of 0 third in
    let late = slope_of (n - third) third in
    let overall = slope_of 0 n in
    Some (early, late, overall)
  end

(** [extract traces] aggregates features over a trace suite (multiple
    network scenarios of the same CCA). *)
let extract (traces : Abg_trace.Trace.t list) =
  (* Slow start is governed by a different handler and would dominate the
     slope statistics; skip each trace's pre-first-loss segment. *)
  let segments =
    Abg_trace.Segmentation.split_all ~min_length:20 ~skip_initial:true traces
  in
  let earlies = ref [] and lates = ref [] and overalls = ref [] in
  List.iter
    (fun seg ->
      match segment_slopes seg with
      | Some (e, l, o) ->
          earlies := e :: !earlies;
          lates := l :: !lates;
          overalls := o :: !overalls
      | None -> ())
    segments;
  let median_of lst = if lst = [] then 0.0 else Stats.median (Array.of_list lst) in
  let growth_slope = median_of !overalls in
  let convexity =
    match (!earlies, !lates) with
    | [], _ | _, [] -> 0.0
    | es, ls ->
        let e = median_of es and l = median_of ls in
        let scale = Float.max 1.0 (Float.abs e +. Float.abs l) in
        (l -. e) /. scale
  in
  (* Loss response: the window just before a loss vs the *post-recovery
     minimum* shortly after it. Reading the window immediately after the
     loss would still see the pre-loss flight draining out. Records and
     loss times are both time-sorted, so one merged sweep per trace
     suffices: a cursor tracks the first record at-or-after each loss,
     advancing monotonically across losses, and only the <= 0.6 s
     post-loss window is rescanned — O(records + losses * window) instead
     of the former O(losses * records) full rescan per loss. *)
  let decreases = ref [] in
  let losses = ref 0 in
  let duration = ref 0.0 in
  List.iter
    (fun tr ->
      let records = tr.Abg_trace.Trace.records in
      let n = Array.length records in
      if n > 1 then begin
        duration :=
          !duration
          +. records.(n - 1).Abg_trace.Record.time
          -. records.(0).Abg_trace.Record.time;
        let cursor = ref 0 in
        Array.iter
          (fun loss_t ->
            incr losses;
            while
              !cursor < n
              && records.(!cursor).Abg_trace.Record.time < loss_t
            do
              incr cursor
            done;
            if !cursor > 0 then begin
              let before =
                Abg_trace.Record.observed_cwnd records.(!cursor - 1)
              in
              let after = ref infinity in
              let j = ref !cursor in
              while
                !j < n
                && records.(!j).Abg_trace.Record.time <= loss_t +. 0.6
              do
                after :=
                  Float.min !after
                    (Abg_trace.Record.observed_cwnd records.(!j));
                incr j
              done;
              if Float.is_finite !after && before > 0.0 then
                decreases := (!after /. before) :: !decreases
            end)
          tr.Abg_trace.Trace.loss_times
      end)
    traces;
  let decrease_factor =
    if !decreases = [] then 1.0 else Stats.median (Array.of_list !decreases)
  in
  let loss_rate =
    if !duration > 0.0 then float_of_int !losses /. !duration else 0.0
  in
  (* Per-record growth vs RTT correlation, and time-resampled flatness and
     pulse structure. The growth/RTT pairs are written into preallocated
     arrays (their total count is known up front) instead of list-cons +
     [Array.of_list]; they are filled back-to-front to reproduce the cons
     order, so the Pearson accumulation — and thus the feature — stays
     bit-identical to the list-based implementation. *)
  let total_pairs =
    List.fold_left
      (fun acc tr ->
        acc + Stdlib.max 0 (Array.length tr.Abg_trace.Trace.records - 1))
      0 traces
  in
  let all_growth = Array.make total_pairs 0.0 in
  let all_rtt = Array.make total_pairs 0.0 in
  let pair_idx = ref total_pairs in
  let flat = ref 0 and total = ref 0 in
  let reversals = ref 0.0 in
  let cwnd_sum = ref 0.0 and cwnd_n = ref 0 in
  List.iter
    (fun tr ->
      let records = tr.Abg_trace.Trace.records in
      let n = Array.length records in
      let prev = ref (if n > 0 then Abg_trace.Record.observed_cwnd records.(0) else 0.0) in
      for i = 1 to n - 1 do
        let cur = Abg_trace.Record.observed_cwnd records.(i) in
        let mss = records.(i).Abg_trace.Record.mss in
        decr pair_idx;
        all_growth.(!pair_idx) <- (cur -. !prev) /. mss;
        all_rtt.(!pair_idx) <- records.(i).Abg_trace.Record.rtt;
        cwnd_sum := !cwnd_sum +. (cur /. mss);
        incr cwnd_n;
        prev := cur
      done;
      if n > 10 then begin
        (* Resample the visible window to a 20 Hz step series so the
           following shape features are invariant to the ACK rate. *)
        let span =
          records.(n - 1).Abg_trace.Record.time
          -. records.(0).Abg_trace.Record.time
        in
        let steps = Stdlib.max 10 (int_of_float (span *. 20.0)) in
        let series =
          Abg_util.Resample.hold_fn
            ~time:(fun i -> records.(i).Abg_trace.Record.time)
            ~value:(fun i -> Abg_trace.Record.observed_cwnd records.(i))
            ~len:n ~n:steps
        in
        (* Flatness: fraction of ~0.5 s windows whose relative span is
           under 1%. A Vegas-style hold is dead flat; any additive
           increase drifts past the threshold. *)
        let fwindow = 10 in
        let i = ref 0 in
        while !i + fwindow <= steps do
          let lo = ref infinity and hi = ref neg_infinity in
          for j = !i to !i + fwindow - 1 do
            if series.(j) < !lo then lo := series.(j);
            if series.(j) > !hi then hi := series.(j)
          done;
          incr total;
          if !hi -. !lo < 0.01 *. Float.max 1.0 !lo then incr flat;
          i := !i + fwindow
        done;
        (* Pulse score: significant direction reversals per second. BBR's
           PROBE_BW cycle reverses every few hundred milliseconds; an
           AIMD sawtooth reverses once per loss epoch. *)
        let last_dir = ref 0 in
        let count = ref 0 in
        for j = 1 to steps - 1 do
          let delta = series.(j) -. series.(j - 1) in
          if Float.abs delta > 0.02 *. Float.max 1.0 series.(j - 1) then begin
            let dir = if delta > 0.0 then 1 else -1 in
            if !last_dir <> 0 && dir <> !last_dir then incr count;
            last_dir := dir
          end
        done;
        if span > 0.0 then reversals := !reversals +. (float_of_int !count /. span)
      end)
    traces;
  let pulse_score =
    if traces = [] then 0.0
    else !reversals /. float_of_int (List.length traces)
  in
  let flatness =
    if !total = 0 then 0.0 else float_of_int !flat /. float_of_int !total
  in
  let rtt_growth_correlation =
    if total_pairs > 2 then Stats.pearson all_growth all_rtt else 0.0
  in
  let mean_cwnd_mss =
    if !cwnd_n = 0 then 0.0 else !cwnd_sum /. float_of_int !cwnd_n
  in
  {
    growth_slope; convexity; flatness; decrease_factor; loss_rate;
    rtt_growth_correlation; pulse_score; mean_cwnd_mss;
  }

let to_string f =
  Printf.sprintf
    "slope=%.2f convex=%.2f flat=%.2f dec=%.2f loss/s=%.2f rtt-corr=%.2f \
     pulse=%.2f mean=%.0f"
    f.growth_slope f.convexity f.flatness f.decrease_factor f.loss_rate
    f.rtt_growth_correlation f.pulse_score f.mean_cwnd_mss

(** Feature vector for distance-based comparison (each component roughly
    unit-scaled). *)
let to_vector f =
  [| f.growth_slope /. 5.0; f.convexity; f.flatness; f.decrease_factor;
     Float.min 2.0 (f.loss_rate /. 2.0); f.rtt_growth_correlation;
     f.pulse_score; f.mean_cwnd_mss /. 100.0 |]
