(** Congestion signals available to DSL expressions (Listing 1).

    A signal is a per-ACK measurement that the trace-collection substrate
    records and that a synthesized handler may read. Signals carry units for
    the dimensional-analysis constraint of §4.1. *)

open Abg_util

type t =
  | Mss  (** maximum segment size, bytes *)
  | Acked_bytes  (** bytes newly acknowledged by this ACK *)
  | Time_since_loss  (** seconds since the last inferred loss event *)
  | Rtt  (** smoothed round-trip time sample, seconds *)
  | Min_rtt  (** minimum RTT observed on the connection, seconds *)
  | Max_rtt  (** maximum RTT observed on the connection, seconds *)
  | Ack_rate  (** delivery rate estimate, bytes per second *)
  | Rtt_gradient  (** d(RTT)/dt, dimensionless (s/s) *)
  | Delay_gradient  (** smoothed queueing-delay gradient, dimensionless *)
  | Wmax  (** window at the time of the last loss, bytes (Cubic-DSL) *)

let all =
  [ Mss; Acked_bytes; Time_since_loss; Rtt; Min_rtt; Max_rtt; Ack_rate;
    Rtt_gradient; Delay_gradient; Wmax ]

let name = function
  | Mss -> "mss"
  | Acked_bytes -> "acked"
  | Time_since_loss -> "time-since-loss"
  | Rtt -> "rtt"
  | Min_rtt -> "min-rtt"
  | Max_rtt -> "max-rtt"
  | Ack_rate -> "ack-rate"
  | Rtt_gradient -> "rtt-gradient"
  | Delay_gradient -> "delay-gradient"
  | Wmax -> "wmax"

let of_name s =
  List.find_opt (fun sig_ -> String.equal (name sig_) s) all

let unit_of = function
  | Mss | Acked_bytes | Wmax -> Units.bytes
  | Time_since_loss | Rtt | Min_rtt | Max_rtt -> Units.seconds
  | Ack_rate -> Units.rate
  | Rtt_gradient | Delay_gradient -> Units.dimensionless

(* Physical range contract for each signal: every value the trace
   substrate can record falls inside these bounds, by construction of the
   recorder. They are deliberately generous — looseness only weakens
   abstract-interpretation pruning, never its soundness — but each bound
   is justified:
   - [Mss]: IPv4 minimum-reassembly floor to 64 KiB jumbo frames.
   - [Acked_bytes]: one thinning window of deliveries; 1e9 B covers any
     window at the simulator's bandwidth grid with orders to spare.
   - [Time_since_loss]: bounded by trace duration; 1e6 s ~ 11 days.
   - RTTs: clamped positive by the recorder (samples <= 0 are dropped);
     100 s dwarfs any simulated path.
   - [Ack_rate]: an EWMA of window_bytes/span, span >= 5 ms; 1e12 B/s is
     ~8 Tbit/s.
   - Gradients: samples are d(rtt)/span with span >= 5 ms and rtt bounded
     by the RTT range, so |sample| <= 100/0.005 = 2e4; the EWMA never
     exceeds the largest sample. The delay gradient rescales by at most
     0.005/min_rtt <= 50. 1e6 bounds both with margin.
   - [Wmax]: a recorded cwnd, bounded by the replay clamp (1e12). *)
let range = function
  | Mss -> (400.0, 65536.0)
  | Acked_bytes -> (0.0, 1e9)
  | Time_since_loss -> (0.0, 1e6)
  | Rtt | Min_rtt | Max_rtt -> (1e-6, 100.0)
  | Ack_rate -> (0.0, 1e12)
  | Rtt_gradient | Delay_gradient -> (-1e6, 1e6)
  | Wmax -> (0.0, 1e12)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp fmt s = Format.pp_print_string fmt (name s)
