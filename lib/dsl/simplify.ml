(** Algebraic simplification — the sympy substitute (§4.1).

    The enumerator rejects sketches that are "arithmetically simplifiable":
    a sketch whose rewritten form has fewer nodes carries redundant
    structure, and some smaller sketch in the space denotes the same
    function. The rewriter below implements the local rules that matter
    for this DSL, plus an optional [facts] oracle through which a caller
    (in practice [Abg_analysis.Absint]) can resolve guards that interval
    reasoning proves constant over the whole input box.

    What remains of the §5.6 gap: the oracle is non-relational, so facts
    that hold only *between* signals — min-rtt <= rtt <= max-rtt, acked
    bounded by cwnd — are not representable, and a guard like Student 5's
    [{vegas-diff / min-rtt < 5}] that is vacuous only because of such a
    relation stays open, exactly as in the paper.

    Caveat on the cancellation rules: [x / x -> 1], [x % x = 0 -> true],
    [(a * b) / a -> b] and friends are algebraic identities, exact except
    when the cancelled divisor lands inside [Floatx.safe_div]'s near-zero
    guard (where the quotient is 0, not the identity) or the modulus
    inside the divisibility epsilon. The paper's sympy filter has the
    same blind spot; the enumeration accepts the (measure-zero-ish)
    over-pruning, and the property test states the hypothesis exactly:
    preservation holds whenever no intermediate is non-finite and no
    divisor or modulus is guard-adjacent. *)

open Expr

let is_const = function Const _ -> true | _ -> false

(* Structural equality modulo commutativity of [Add] and [Mul]. IEEE
   addition and multiplication are exactly commutative, so terms equal
   under this relation evaluate bit-identically and every rewrite guarded
   by it is as sound as one guarded by [equal_num]. This is what catches
   the "guard compares an expression to itself" conditionals the seed
   rewriter missed when the two copies order their operands differently. *)
let rec equal_mod_comm a b =
  match (a, b) with
  | Add (x, y), Add (x', y') | Mul (x, y), Mul (x', y') ->
      (equal_mod_comm x x' && equal_mod_comm y y')
      || (equal_mod_comm x y' && equal_mod_comm y x')
  | Sub (x, y), Sub (x', y') | Div (x, y), Div (x', y') ->
      equal_mod_comm x x' && equal_mod_comm y y'
  | Ite (c, t, e), Ite (c', t', e') ->
      equal_bool_mod_comm c c' && equal_mod_comm t t' && equal_mod_comm e e'
  | Cube x, Cube x' | Cbrt x, Cbrt x' -> equal_mod_comm x x'
  | a, b -> equal_num a b

and equal_bool_mod_comm a b =
  match (a, b) with
  | Lt (x, y), Lt (x', y') | Gt (x, y), Gt (x', y') | Mod_eq (x, y), Mod_eq (x', y') ->
      equal_mod_comm x x' && equal_mod_comm y y'
  | _ -> false

(* Near-zero divisor threshold of [Floatx.safe_div]; the rewriter must
   mirror the evaluator exactly or rewriting would change semantics. *)
let div_eps = 1e-12

(* The evaluator's tolerant divisibility predicate, mirrored for constant
   folding (the seed folded [Mod_eq] with a strict epsilon and disagreed
   with [Eval.boolean] on e.g. 2.05 % 2). *)
let mod_eq_const x y =
  if Float.abs y < 1e-9 then false
  else begin
    let r = Abg_util.Floatx.fmod x y in
    let tol = 0.05 *. Float.abs y in
    r <= tol || Float.abs y -. r <= tol
  end

type facts = Expr.boolean -> [ `True | `False | `Unknown ]

let no_facts : facts = fun _ -> `Unknown

(* One bottom-up rewriting pass. *)
let rec pass facts e =
  match e with
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> e
  | Add (a, b) -> begin
      match (pass facts a, pass facts b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      (* a + (b - a) = b, in either operand order. *)
      | a', Sub (x, y) when equal_mod_comm a' y -> x
      | Sub (x, y), b' when equal_mod_comm b' y -> x
      | a', b' -> Add (a', b')
    end
  | Sub (a, b) -> begin
      match (pass facts a, pass facts b) with
      | Const x, Const y -> Const (x -. y)
      | a', Const 0.0 -> a'
      | a', b' when equal_mod_comm a' b' -> Const 0.0
      (* (a + b) - a = b; a - (a - c) = c; a - (a + c) = -... (left out:
         negative results are rarely sketches' intent and -1 * c is not
         smaller). *)
      | Add (x, y), b' when equal_mod_comm x b' -> y
      | Add (x, y), b' when equal_mod_comm y b' -> x
      | a', Sub (x, c) when equal_mod_comm a' x -> c
      | a', b' -> Sub (a', b')
    end
  | Mul (a, b) -> begin
      match (pass facts a, pass facts b) with
      | Const x, Const y -> Const (x *. y)
      | Const 0.0, _ | _, Const 0.0 -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      (* a * (b / a) = b, in either operand order. *)
      | a', Div (x, y) when equal_mod_comm a' y -> x
      | Div (x, y), b' when equal_mod_comm b' y -> x
      | a', b' -> Mul (a', b')
    end
  | Div (a, b) -> begin
      match (pass facts a, pass facts b) with
      (* Constant folding mirrors [Floatx.safe_div]: a near-zero divisor
         yields 0, never an infinity (the seed folded to [x /. y]). *)
      | Const x, Const y -> Const (Abg_util.Floatx.safe_div x y)
      | Const 0.0, _ -> Const 0.0
      | _, Const y when Float.abs y < div_eps -> Const 0.0
      | a', Const 1.0 -> a'
      | a', b' when equal_mod_comm a' b' && not (is_const a') -> Const 1.0
      (* Cancellation through a nested quotient/product: a / (a / c) = c,
         (a * b) / a = b. These are the identity composites the enumerator
         would otherwise emit to smuggle CWND through a bigger tree. *)
      | a', Div (x, c) when equal_mod_comm a' x -> c
      | Mul (x, y), b' when equal_mod_comm x b' -> y
      | Mul (x, y), b' when equal_mod_comm y b' -> x
      | a', b' -> Div (a', b')
    end
  | Ite (c, t, el) -> begin
      let t' = pass facts t and el' = pass facts el in
      match pass_bool facts c with
      | `Known true -> t'
      | `Known false -> el'
      | `Open c' -> if equal_mod_comm t' el' then t' else Ite (c', t', el')
    end
  | Cube a -> begin
      match pass facts a with
      | Const x -> Const (x *. x *. x)
      | Cbrt inner -> inner
      | a' -> Cube a'
    end
  | Cbrt a -> begin
      match pass facts a with
      | Const x -> Const (Abg_util.Floatx.cbrt x)
      | Cube inner -> inner
      | a' -> Cbrt a'
    end

and pass_bool facts b =
  (* Structural/constant resolution first, then the caller's interval
     facts on whatever guard is left open. *)
  let resolve b' =
    match facts b' with
    | `True -> `Known true
    | `False -> `Known false
    | `Unknown -> `Open b'
  in
  let fold cmp a b =
    match (pass facts a, pass facts b) with
    | Const x, Const y -> `Known (cmp x y)
    | a', b' when equal_mod_comm a' b' -> `Known false
    | a', b' -> `Open (a', b')
  in
  match b with
  | Lt (a, b) -> begin
      match fold ( < ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> resolve (Lt (a', b'))
    end
  | Gt (a, b) -> begin
      match fold ( > ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> resolve (Gt (a', b'))
    end
  | Mod_eq (a, b) -> begin
      (* x % x = 0 is always true (for |x| >= the evaluator's epsilon);
         constants fold through the evaluator's own tolerant predicate. *)
      match (pass facts a, pass facts b) with
      | Const x, Const y -> `Known (mod_eq_const x y)
      | a', b' when equal_mod_comm a' b' -> `Known true
      | a', b' -> resolve (Mod_eq (a', b'))
    end

(** [simplify ?facts e] rewrites to a fixpoint (bounded; each pass shrinks
    or preserves size, so the bound is generous). *)
let simplify ?(facts = no_facts) e =
  let rec go e fuel =
    if fuel = 0 then e
    else begin
      let e' = pass facts e in
      if equal_num e' e then e else go e' (fuel - 1)
    end
  in
  go e 32

(** [is_simplifiable ?facts e] — the §4.1 enumeration filter: [e] is
    redundant if rewriting strictly reduces its node count. *)
let is_simplifiable ?facts e = size (simplify ?facts e) < size e
