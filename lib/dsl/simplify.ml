(** Algebraic simplification — the sympy substitute (§4.1).

    The enumerator rejects sketches that are "arithmetically simplifiable":
    a sketch whose rewritten form has fewer nodes carries redundant
    structure, and some smaller sketch in the space denotes the same
    function. The rewriter below implements the local rules that matter
    for this DSL, plus two oracle hooks through which a caller (in
    practice [Abg_analysis]) can inject interval reasoning: a [facts]
    guard oracle resolving conditionals that are constant over the whole
    input box, and a full [oracle] that additionally bounds subterms and
    threads guard assumptions into conditional branches (see
    [Abg_analysis.Relint.oracle]).

    The relational part of the §5.6 gap — facts that hold only *between*
    signals, like min-rtt <= rtt, under which a guard such as Student 5's
    [{vegas-diff / min-rtt < 0}] is vacuous — is not representable in the
    non-relational [facts] oracle; it is exactly what the [oracle]'s
    [assuming]/[bound] hooks exist for.

    Cancellation-rule soundness: [x / x -> 1], [x % x = 0 -> true],
    [(a * b) / a -> b] and friends are algebraic identities, exact except
    when the cancelled divisor lands inside [Floatx.safe_div]'s near-zero
    guard (where the quotient is 0, not the identity), the modulus inside
    the divisibility epsilon, or an intermediate overflows. Under the
    default {!permissive} oracle these rules fire unconditionally — the
    paper's sympy filter has the same blind spot, the enumeration accepts
    the (measure-zero-ish) over-pruning, and the property test states the
    hypothesis exactly: preservation holds whenever no intermediate is
    non-finite and no divisor or modulus is guard-adjacent. Under a sound
    oracle each such rule fires only when the oracle's interval bound
    proves its side condition (divisor clear of the guard, intermediates
    finite) — on *that oracle's box*, including any guard assumptions in
    force at the rewrite site. *)

open Expr

let is_const = function Const _ -> true | _ -> false

(* Structural equality modulo commutativity of [Add] and [Mul]. IEEE
   addition and multiplication are exactly commutative, so terms equal
   under this relation evaluate bit-identically and every rewrite guarded
   by it is as sound as one guarded by [equal_num]. This is what catches
   the "guard compares an expression to itself" conditionals the seed
   rewriter missed when the two copies order their operands differently. *)
let rec equal_mod_comm a b =
  match (a, b) with
  | Add (x, y), Add (x', y') | Mul (x, y), Mul (x', y') ->
      (equal_mod_comm x x' && equal_mod_comm y y')
      || (equal_mod_comm x y' && equal_mod_comm y x')
  | Sub (x, y), Sub (x', y') | Div (x, y), Div (x', y') ->
      equal_mod_comm x x' && equal_mod_comm y y'
  | Ite (c, t, e), Ite (c', t', e') ->
      equal_bool_mod_comm c c' && equal_mod_comm t t' && equal_mod_comm e e'
  | Cube x, Cube x' | Cbrt x, Cbrt x' -> equal_mod_comm x x'
  | a, b -> equal_num a b

and equal_bool_mod_comm a b =
  match (a, b) with
  | Lt (x, y), Lt (x', y') | Gt (x, y), Gt (x', y') | Mod_eq (x, y), Mod_eq (x', y') ->
      equal_mod_comm x x' && equal_mod_comm y y'
  | _ -> false

(* Near-zero divisor threshold of [Floatx.safe_div]; the rewriter must
   mirror the evaluator exactly or rewriting would change semantics. *)
let div_eps = 1e-12

(* The evaluator's tolerant divisibility threshold for [Mod_eq]. *)
let mod_eps = 1e-9

(* The evaluator's tolerant divisibility predicate, mirrored for constant
   folding (the seed folded [Mod_eq] with a strict epsilon and disagreed
   with [Eval.boolean] on e.g. 2.05 % 2). *)
let mod_eq_const x y =
  if Float.abs y < mod_eps then false
  else begin
    let r = Abg_util.Floatx.fmod x y in
    let tol = 0.05 *. Float.abs y in
    r <= tol || Float.abs y -. r <= tol
  end

type facts = Expr.boolean -> [ `True | `False | `Unknown ]

let no_facts : facts = fun _ -> `Unknown

type oracle = {
  facts : facts;
  bound : Expr.num -> Abg_util.Interval.t;
  assuming : Expr.boolean -> bool -> oracle;
}

(* The permissive oracle reports every subterm as the singleton {1} —
   finite, NaN-free and clear of both the safe-division guard and the
   divisibility epsilon — so every side-condition gate below passes and
   the rewriter behaves exactly as the historical unconditional one. *)
let rec permissive =
  {
    facts = no_facts;
    bound = (fun _ -> Abg_util.Interval.const 1.0);
    assuming = (fun _ _ -> permissive);
  }

let oracle_of_facts facts = { permissive with facts }

(* Side-condition gates, all phrased over the oracle's interval bound.
   [finite o e]: no environment of the oracle's box makes [e] non-finite
   or NaN. [clear o ~eps e]: additionally, |e| >= eps everywhere — the
   cancelled divisor cannot land inside the evaluator's guard. *)
let finite o e =
  let i = o.bound e in
  (not i.Abg_util.Interval.nan) && not (Abg_util.Interval.has_inf i)

let clear o ~eps e =
  let i = o.bound e in
  (not i.Abg_util.Interval.nan)
  && (not (Abg_util.Interval.has_inf i))
  && (i.Abg_util.Interval.lo >= eps || i.Abg_util.Interval.hi <= -.eps)

let no_nan o e = not (o.bound e).Abg_util.Interval.nan

(* One bottom-up rewriting pass under oracle [o].

   [sm] ("strict mode") and [strict] protect comparison operands from
   the rules that preserve the value only up to rounding (the composite
   cancellations like a + (b - a) = b and the cbrt/cube inverse pair,
   which routes through libm [pow]). In a numeric context an ulp-level
   perturbation is harmless, but a comparison discretizes it: the
   tolerant divisibility predicate computes fmod of a possibly huge
   numerator by the rewritten term, and an Lt/Gt whose sides became
   structurally equal folds to a constant the real evaluation is one
   ulp away from contradicting. Either way a guard flips and the
   conditional's value is off by an unbounded amount. Under a sound
   oracle ([sm] = true, set when the caller passed [?oracle]) the
   operands of every comparison are therefore rewritten in [strict]
   mode, where only bit-exact rules fire (constant folding through the
   evaluator's own semantics, identities, annihilators, x - x, x / x).
   The permissive/facts path keeps the historical behavior: it feeds the
   §4.1 simplifiability *filter*, which matches sympy and must keep
   accepting/rejecting the same sketch set. *)
let rec pass ~sm ~strict o e =
  let pass_n = pass ~sm ~strict in
  match e with
  | Cwnd | Signal _ | Macro _ | Const _ | Hole _ -> e
  | Add (a, b) -> begin
      match (pass_n o a, pass_n o b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      (* a + (b - a) = b, in either operand order (exact up to rounding;
         gated on finite intermediates). *)
      | a', (Sub (x, y) as s) when
          (not strict) && equal_mod_comm a' y && finite o (Add (a', s))
        -> x
      | (Sub (x, y) as s), b' when
          (not strict) && equal_mod_comm b' y && finite o (Add (s, b'))
        -> x
      | a', b' -> Add (a', b')
    end
  | Sub (a, b) -> begin
      match (pass_n o a, pass_n o b) with
      | Const x, Const y -> Const (x -. y)
      | a', Const 0.0 -> a'
      (* x - x = 0 is exact for finite x (and only then: inf - inf is
         NaN, which the evaluator maps to the floor, not 0). *)
      | a', b' when equal_mod_comm a' b' && finite o a' -> Const 0.0
      (* (a + b) - a = b; a - (a - c) = c; a - (a + c) = -... (left out:
         negative results are rarely sketches' intent and -1 * c is not
         smaller). *)
      | (Add (x, y) as s), b' when
          (not strict) && equal_mod_comm x b' && finite o (Sub (s, b'))
        -> y
      | (Add (x, y) as s), b' when
          (not strict) && equal_mod_comm y b' && finite o (Sub (s, b'))
        -> x
      | a', (Sub (x, c) as s) when
          (not strict) && equal_mod_comm a' x && finite o (Sub (a', s))
        -> c
      | a', b' -> Sub (a', b')
    end
  | Mul (a, b) -> begin
      match (pass_n o a, pass_n o b) with
      | Const x, Const y -> Const (x *. y)
      (* 0 * x = 0 needs x finite (0 * inf is NaN) and non-NaN. *)
      | Const 0.0, b' when finite o b' -> Const 0.0
      | a', Const 0.0 when finite o a' -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      (* a * (b / a) = b, in either operand order; the cancelled divisor
         must sit clear of the safe-division guard or the quotient is
         identically 0 and the product 0, not b. *)
      | a', (Div (x, y) as q) when
          (not strict) && equal_mod_comm a' y && clear o ~eps:div_eps a'
          && finite o (Mul (a', q)) -> x
      | (Div (x, y) as q), b' when
          (not strict) && equal_mod_comm b' y && clear o ~eps:div_eps b'
          && finite o (Mul (q, b')) -> x
      | a', b' -> Mul (a', b')
    end
  | Div (a, b) -> begin
      match (pass_n o a, pass_n o b) with
      (* Constant folding mirrors [Floatx.safe_div]: a near-zero divisor
         yields 0, never an infinity (the seed folded to [x /. y]). *)
      | Const x, Const y -> Const (Abg_util.Floatx.safe_div x y)
      (* 0 / x = 0 unless x is NaN (safe_div passes NaN through). *)
      | Const 0.0, b' when no_nan o b' -> Const 0.0
      | _, Const y when Float.abs y < div_eps -> Const 0.0
      | a', Const 1.0 -> a'
      | a', b' when
          equal_mod_comm a' b' && not (is_const a')
          && clear o ~eps:div_eps a' -> Const 1.0
      (* Cancellation through a nested quotient/product: a / (a / c) = c,
         (a * b) / a = b. These are the identity composites the enumerator
         would otherwise emit to smuggle CWND through a bigger tree. *)
      | a', (Div (x, c) as q) when
          (not strict) && equal_mod_comm a' x && clear o ~eps:div_eps q
          && finite o (Div (a', q)) -> c
      | (Mul (x, y) as p), b' when
          (not strict) && equal_mod_comm x b' && clear o ~eps:div_eps b'
          && finite o (Div (p, b')) -> y
      | (Mul (x, y) as p), b' when
          (not strict) && equal_mod_comm y b' && clear o ~eps:div_eps b'
          && finite o (Div (p, b')) -> x
      | a', b' -> Div (a', b')
    end
  | Ite (c, t, el) -> begin
      match pass_bool ~sm ~strict o c with
      | `Known true -> pass_n o t
      | `Known false -> pass_n o el
      | `Open c' ->
          (* Branches are rewritten under the guard assumption in force
             on their side — a branch-local cancellation is sound exactly
             when the guard cannot steer evaluation into the region that
             violates its side condition. *)
          let t' = pass ~sm ~strict (o.assuming c' true) t in
          let el' = pass ~sm ~strict (o.assuming c' false) el in
          if equal_mod_comm t' el' then t' else Ite (c', t', el')
    end
  | Cube a -> begin
      match pass_n o a with
      | Const x -> Const (x *. x *. x)
      (* cube/cbrt inverse cancellation goes through libm [pow], which is
         not correctly rounded — exact only in real arithmetic. *)
      | Cbrt inner when not strict -> inner
      | a' -> Cube a'
    end
  | Cbrt a -> begin
      match pass_n o a with
      | Const x -> Const (Abg_util.Floatx.cbrt x)
      | Cube inner when not strict -> inner
      | a' -> Cbrt a'
    end

and pass_bool ~sm ~strict o b =
  (* Structural/constant resolution first, then the caller's interval
     facts on whatever guard is left open.

     Under a sound oracle every comparison operand is rewritten in
     strict mode, not just [Mod_eq]'s: an up-to-rounding cancellation
     can manufacture structural equality between the two sides (e.g.
     cbrt(x)^3 < x becomes x < x), which the fold below then resolves
     to a constant — turning an ulp-sized perturbation into a flipped
     guard and an arbitrarily wrong branch. *)
  let strict = strict || sm in
  let resolve b' =
    match o.facts b' with
    | `True -> `Known true
    | `False -> `Known false
    | `Unknown -> `Open b'
  in
  let fold cmp a b =
    match (pass ~sm ~strict o a, pass ~sm ~strict o b) with
    | Const x, Const y -> `Known (cmp x y)
    (* x < x and x > x are false for every float, NaN included. *)
    | a', b' when equal_mod_comm a' b' -> `Known false
    | a', b' -> `Open (a', b')
  in
  match b with
  | Lt (a, b) -> begin
      match fold ( < ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> resolve (Lt (a', b'))
    end
  | Gt (a, b) -> begin
      match fold ( > ) a b with
      | `Known k -> `Known k
      | `Open (a', b') -> resolve (Gt (a', b'))
    end
  | Mod_eq (a, b) -> begin
      (* x % x = 0 is always true for |x| >= the evaluator's epsilon
         (below it the predicate is defined false, and a non-finite x
         makes fmod NaN); constants fold through the evaluator's own
         tolerant predicate. *)
      match (pass ~sm ~strict o a, pass ~sm ~strict o b) with
      | Const x, Const y -> `Known (mod_eq_const x y)
      | a', b' when equal_mod_comm a' b' && clear o ~eps:mod_eps a' ->
          `Known true
      | a', b' -> resolve (Mod_eq (a', b'))
    end

(** [simplify ?facts ?oracle e] rewrites to a fixpoint (bounded; each
    pass shrinks or preserves size, so the bound is generous). [oracle]
    supersedes [facts] when both are given. *)
let simplify ?facts ?oracle e =
  let o =
    match (oracle, facts) with
    | Some o, _ -> o
    | None, Some f -> oracle_of_facts f
    | None, None -> permissive
  in
  (* A caller-supplied full oracle asks for semantic preservation (the
     translation-validated path); the permissive/facts path is the §4.1
     sympy-parity filter, which keeps its historical behavior inside
     [Mod_eq] operands too. *)
  let sm = Option.is_some oracle in
  let rec go e fuel =
    if fuel = 0 then e
    else begin
      let e' = pass ~sm ~strict:false o e in
      if equal_num e' e then e else go e' (fuel - 1)
    end
  in
  go e 32

(** [is_simplifiable ?facts ?oracle e] — the §4.1 enumeration filter: [e]
    is redundant if rewriting strictly reduces its node count. *)
let is_simplifiable ?facts ?oracle e = size (simplify ?facts ?oracle e) < size e
