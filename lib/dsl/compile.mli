(** Staged compilation of DSL expressions into OCaml closures.

    Compiling once moves all AST dispatch out of the per-record replay
    loop: constant subexpressions are folded at compile time (with exactly
    {!Eval}'s arithmetic, so results are bit-identical), and a binary node
    with a constant operand captures the float directly in its closure.
    {!Eval} remains the reference interpreter; the property
    [Compile.num e env = Eval.num e env] is tested over random
    expressions and environments. *)

val num : Expr.num -> Env.t -> float
(** [num e] compiles [e]; the returned closure agrees with
    [Eval.num env e] on every environment. Applying the closure to an
    expression with an unfilled hole raises {!Eval.Unfilled_hole}. *)

val boolean : Expr.boolean -> Env.t -> bool
(** [boolean b] compiles a predicate; agrees with [Eval.boolean]. *)

val handler : Expr.num -> Env.t -> float
(** [handler e] compiles [e] with {!Eval.handler}'s guard: the result is
    finite and at least one MSS. One compilation amortizes over a whole
    segment replay. *)
