(** Congestion signals available to DSL expressions (Listing 1): per-ACK
    measurements recorded by trace collection and readable by synthesized
    handlers. Signals carry units for the §4.1 dimensional-analysis
    constraint. *)

type t =
  | Mss  (** maximum segment size, bytes *)
  | Acked_bytes  (** bytes newly acknowledged by this ACK *)
  | Time_since_loss  (** seconds since the last inferred loss event *)
  | Rtt  (** round-trip-time sample, seconds *)
  | Min_rtt  (** minimum RTT observed on the connection, seconds *)
  | Max_rtt  (** maximum RTT observed on the connection, seconds *)
  | Ack_rate  (** delivery-rate estimate, bytes per second *)
  | Rtt_gradient  (** d(RTT)/dt, dimensionless *)
  | Delay_gradient  (** smoothed queueing-delay gradient, dimensionless *)
  | Wmax  (** window at the time of the last loss, bytes (Cubic-DSL) *)

val all : t list
val name : t -> string
val of_name : string -> t option
val unit_of : t -> Abg_util.Units.t

val range : t -> float * float
(** [range s] is the physical [(lo, hi)] contract for [s]: every value
    the trace substrate can record falls inside it. Deliberately
    generous; the single source of truth for the interval boxes used by
    [Simplify] and the [Abg_analysis] abstract interpreter. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
