(** Staged compilation of DSL expressions into OCaml closures.

    {!Eval} walks the AST once per record; during replay that dispatch is
    paid for every ACK of every segment of every candidate. Compiling an
    expression once into a closure [Env.t -> float] moves all constructor
    matching to compile time: the per-record call is straight-line float
    code through a handful of closure applications.

    Three staging tiers do the work, cheapest first:

    - constant subexpressions collapse to a single float at compile time
      ([K] below), using exactly the arithmetic {!Eval} would have used,
      so folding never changes a result;
    - a binary node with a constant or [CWND] operand captures the float
      (or the field read) directly in its closure, skipping one closure
      application per operand;
    - the affine-increase family [CWND + c * macro] / [CWND + macro] —
      the shape of nearly every classical CCA handler (Reno, Westwood,
      Scalable, LP, Illinois, ...) — compiles to a single closure with
      the macro body and, for {!handler}, the finiteness/MSS guard
      inlined: zero internal applications per record.

    Hot closures avoid [Stdlib.Float] helpers that are not compiler
    primitives ([Float.min]/[max]/[is_finite] are out-of-line calls on a
    non-flambda compiler); the branchy replacements below are
    value-equivalent, including for NaN and infinities.

    {!Eval} remains the reference interpreter; [test/test_dsl.ml] checks
    closure ≡ interpreter over random expressions and environments. *)

(* Staged numeric value: a compile-time constant or a residual closure.
   [K] constants are produced with Eval's own operations so that
   [compile e = eval e] holds bit-for-bit. *)
type staged = K of float | F of (Env.t -> float)

(* Staged boolean: conditions over constants are decided at compile time,
   turning the whole [Ite] into its taken branch. *)
type staged_bool = B of bool | Fb of (Env.t -> bool)

(* Floatx.safe_div, locally: a direct call to a small same-module function
   is inlined by the classic (non-flambda) inliner; Float.abs is the
   "%abs_float" primitive and free. Must mirror Floatx.safe_div exactly. *)
let sdiv a b = if Float.abs b < 1e-12 then 0.0 else a /. b

let signal_reader s : Env.t -> float =
  match s with
  | Signal.Mss -> fun env -> env.Env.mss
  | Signal.Acked_bytes -> fun env -> env.Env.acked_bytes
  | Signal.Time_since_loss -> fun env -> env.Env.time_since_loss
  | Signal.Rtt -> fun env -> env.Env.rtt
  | Signal.Min_rtt -> fun env -> env.Env.min_rtt
  | Signal.Max_rtt -> fun env -> env.Env.max_rtt
  | Signal.Ack_rate -> fun env -> env.Env.ack_rate
  | Signal.Rtt_gradient -> fun env -> env.Env.rtt_gradient
  | Signal.Delay_gradient -> fun env -> env.Env.delay_gradient
  | Signal.Wmax -> fun env -> env.Env.wmax

let macro_reader m : Env.t -> float =
  match m with
  | Macro.Reno_inc ->
      fun env -> sdiv (env.Env.acked_bytes *. env.Env.mss) env.Env.cwnd
  | Macro.Vegas_diff ->
      fun env ->
        sdiv ((env.Env.rtt -. env.Env.min_rtt) *. env.Env.ack_rate) env.Env.mss
  | Macro.Htcp_diff ->
      fun env -> sdiv (env.Env.rtt -. env.Env.min_rtt) env.Env.max_rtt
  | Macro.Rtts_since_loss -> fun env -> sdiv env.Env.time_since_loss env.Env.rtt

(* [CWND + k * macro] as one closure, macro body inlined. [k *. x] is
   bit-exact for [k = 1.0], so the mul-free form shares these. *)
let affine_body k m : Env.t -> float =
  match m with
  | Macro.Reno_inc ->
      fun env ->
        env.Env.cwnd +. (k *. sdiv (env.Env.acked_bytes *. env.Env.mss) env.Env.cwnd)
  | Macro.Vegas_diff ->
      fun env ->
        env.Env.cwnd
        +. (k *. sdiv ((env.Env.rtt -. env.Env.min_rtt) *. env.Env.ack_rate) env.Env.mss)
  | Macro.Htcp_diff ->
      fun env ->
        env.Env.cwnd +. (k *. sdiv (env.Env.rtt -. env.Env.min_rtt) env.Env.max_rtt)
  | Macro.Rtts_since_loss ->
      fun env -> env.Env.cwnd +. (k *. sdiv env.Env.time_since_loss env.Env.rtt)

(* Same family with Eval.handler's guard fused in: value-equivalent to
   [if not (Float.is_finite v) then mss else Float.max mss v] — NaN and
   -inf fail [v >= mss], +inf fails [v < infinity]. *)
let affine_handler k m : Env.t -> float =
  match m with
  | Macro.Reno_inc ->
      fun env ->
        let v =
          env.Env.cwnd +. (k *. sdiv (env.Env.acked_bytes *. env.Env.mss) env.Env.cwnd)
        in
        if v >= env.Env.mss && v < infinity then v else env.Env.mss
  | Macro.Vegas_diff ->
      fun env ->
        let v =
          env.Env.cwnd
          +. (k *. sdiv ((env.Env.rtt -. env.Env.min_rtt) *. env.Env.ack_rate) env.Env.mss)
        in
        if v >= env.Env.mss && v < infinity then v else env.Env.mss
  | Macro.Htcp_diff ->
      fun env ->
        let v =
          env.Env.cwnd +. (k *. sdiv (env.Env.rtt -. env.Env.min_rtt) env.Env.max_rtt)
        in
        if v >= env.Env.mss && v < infinity then v else env.Env.mss
  | Macro.Rtts_since_loss ->
      fun env ->
        let v = env.Env.cwnd +. (k *. sdiv env.Env.time_since_loss env.Env.rtt) in
        if v >= env.Env.mss && v < infinity then v else env.Env.mss

(* [n1 % n2 = 0] with Eval's tolerance, on already-evaluated operands. *)
let mod_eq_v a_v b_v =
  if Float.abs b_v < 1e-9 then false
  else begin
    let r = Abg_util.Floatx.fmod a_v b_v in
    let tol = 0.05 *. Float.abs b_v in
    r <= tol || Float.abs b_v -. r <= tol
  end

let rec stage (e : Expr.num) : staged =
  match e with
  | Expr.Cwnd -> F (fun env -> env.Env.cwnd)
  | Expr.Signal s -> F (signal_reader s)
  | Expr.Macro m -> F (macro_reader m)
  | Expr.Const c -> K c
  | Expr.Hole i -> F (fun _ -> raise (Eval.Unfilled_hole i))
  | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Const k, Expr.Macro m)) ->
      F (affine_body k m)
  | Expr.Add (Expr.Cwnd, Expr.Macro m) -> F (affine_body 1.0 m)
  | Expr.Add (Expr.Cwnd, b) -> (
      match stage b with
      | K y -> F (fun env -> env.Env.cwnd +. y)
      | F fb -> F (fun env -> env.Env.cwnd +. fb env))
  | Expr.Add (a, Expr.Cwnd) -> (
      match stage a with
      | K x -> F (fun env -> x +. env.Env.cwnd)
      | F fa -> F (fun env -> fa env +. env.Env.cwnd))
  | Expr.Add (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> K (x +. y)
      | K x, F fb -> F (fun env -> x +. fb env)
      | F fa, K y -> F (fun env -> fa env +. y)
      | F fa, F fb -> F (fun env -> fa env +. fb env))
  | Expr.Sub (Expr.Cwnd, b) -> (
      match stage b with
      | K y -> F (fun env -> env.Env.cwnd -. y)
      | F fb -> F (fun env -> env.Env.cwnd -. fb env))
  | Expr.Sub (a, Expr.Cwnd) -> (
      match stage a with
      | K x -> F (fun env -> x -. env.Env.cwnd)
      | F fa -> F (fun env -> fa env -. env.Env.cwnd))
  | Expr.Sub (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> K (x -. y)
      | K x, F fb -> F (fun env -> x -. fb env)
      | F fa, K y -> F (fun env -> fa env -. y)
      | F fa, F fb -> F (fun env -> fa env -. fb env))
  | Expr.Mul (Expr.Cwnd, b) -> (
      match stage b with
      | K y -> F (fun env -> env.Env.cwnd *. y)
      | F fb -> F (fun env -> env.Env.cwnd *. fb env))
  | Expr.Mul (a, Expr.Cwnd) -> (
      match stage a with
      | K x -> F (fun env -> x *. env.Env.cwnd)
      | F fa -> F (fun env -> fa env *. env.Env.cwnd))
  | Expr.Mul (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> K (x *. y)
      | K x, F fb -> F (fun env -> x *. fb env)
      | F fa, K y -> F (fun env -> fa env *. y)
      | F fa, F fb -> F (fun env -> fa env *. fb env))
  | Expr.Div (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> K (sdiv x y)
      | K x, F fb -> F (fun env -> sdiv x (fb env))
      (* A constant divisor's zero-guard is decided at compile time. *)
      | F fa, K y -> if Float.abs y < 1e-12 then K 0.0 else F (fun env -> fa env /. y)
      | F fa, F fb -> F (fun env -> sdiv (fa env) (fb env)))
  | Expr.Ite (c, t, e) -> (
      match stage_bool c with
      | B true -> stage t
      | B false -> stage e
      | Fb fc -> (
          match (stage t, stage e) with
          | K t, K e -> F (fun env -> if fc env then t else e)
          | K t, F fe -> F (fun env -> if fc env then t else fe env)
          | F ft, K e -> F (fun env -> if fc env then ft env else e)
          | F ft, F fe -> F (fun env -> if fc env then ft env else fe env)))
  | Expr.Cube a -> (
      match stage a with
      | K a -> K (a *. a *. a)
      | F fa ->
          F
            (fun env ->
              let v = fa env in
              v *. v *. v))
  | Expr.Cbrt a -> (
      match stage a with
      | K a -> K (Abg_util.Floatx.cbrt a)
      | F fa -> F (fun env -> Abg_util.Floatx.cbrt (fa env)))

and stage_bool (b : Expr.boolean) : staged_bool =
  match b with
  | Expr.Lt (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> B (x < y)
      | K x, F fb -> Fb (fun env -> x < fb env)
      | F fa, K y -> Fb (fun env -> fa env < y)
      | F fa, F fb -> Fb (fun env -> fa env < fb env))
  | Expr.Gt (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> B (x > y)
      | K x, F fb -> Fb (fun env -> x > fb env)
      | F fa, K y -> Fb (fun env -> fa env > y)
      | F fa, F fb -> Fb (fun env -> fa env > fb env))
  | Expr.Mod_eq (a, b) -> (
      match (stage a, stage b) with
      | K x, K y -> B (mod_eq_v x y)
      | K x, F fb -> Fb (fun env -> mod_eq_v x (fb env))
      | F fa, K y -> Fb (fun env -> mod_eq_v (fa env) y)
      | F fa, F fb -> Fb (fun env -> mod_eq_v (fa env) (fb env)))

let num e : Env.t -> float =
  match stage e with K c -> (fun _ -> c) | F f -> f

let boolean b : Env.t -> bool =
  match stage_bool b with B v -> (fun _ -> v) | Fb f -> f

let handler e : Env.t -> float =
  match e with
  (* The affine-increase family gets evaluation + guard in one closure. *)
  | Expr.Add (Expr.Cwnd, Expr.Mul (Expr.Const k, Expr.Macro m)) ->
      affine_handler k m
  | Expr.Add (Expr.Cwnd, Expr.Macro m) -> affine_handler 1.0 m
  | _ -> (
      match stage e with
      | K c ->
          if Float.is_finite c then
            fun env -> if c >= env.Env.mss then c else env.Env.mss
          else fun env -> env.Env.mss
      | F f ->
          fun env ->
            let v = f env in
            if v >= env.Env.mss && v < infinity then v else env.Env.mss)
