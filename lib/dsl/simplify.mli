(** Algebraic simplification — the sympy substitute (§4.1). Local
    rewriting (constant folding through the evaluator's own semantics,
    identities, cancellation through nested products/quotients, trivial
    conditionals — including guards whose two sides are equal modulo
    commutativity), plus oracle hooks for interval reasoning: a [facts]
    guard oracle for conditionals that are constant over the whole input
    box, and a full {!oracle} that also bounds subterms (gating the
    cancellation rules' side conditions) and threads guard assumptions
    into conditional branches. The *relational* part of the §5.6 gap —
    facts that hold only between signals (min-rtt <= rtt), under which
    Student-5-style conditionals are vacuous — is what
    [Abg_analysis.Relint.oracle] plugs in here. *)

type facts = Expr.boolean -> [ `True | `False | `Unknown ]
(** A guard oracle: [`True]/[`False] assert the guard is constant over
    every environment of interest (see [Abg_analysis.Absint.facts]). *)

val no_facts : facts
(** The trivial oracle: every guard is [`Unknown]. *)

type oracle = {
  facts : facts;  (** guard resolution, as above *)
  bound : Expr.num -> Abg_util.Interval.t;
      (** sound interval bound of a subterm over the oracle's box; gates
          the cancellation rules' side conditions (divisor clear of the
          safe-division guard, intermediates finite) *)
  assuming : Expr.boolean -> bool -> oracle;
      (** the same oracle refined by a guard assumption — applied to
          conditional branches, so a branch-local rewrite may rely on the
          guard that dominates it *)
}

val permissive : oracle
(** The historical unconditional behavior: every bound is the singleton
    {1}, so every cancellation side condition passes and [assuming] is
    the identity. [simplify] with no oracle uses exactly this. *)

val equal_mod_comm : Expr.num -> Expr.num -> bool
(** Structural equality modulo commutativity of [Add]/[Mul]. IEEE [+] and
    [*] are exactly commutative, so related terms evaluate
    bit-identically. *)

val equal_bool_mod_comm : Expr.boolean -> Expr.boolean -> bool
(** {!equal_mod_comm} on the operands of same-constructor comparisons. *)

val simplify : ?facts:facts -> ?oracle:oracle -> Expr.num -> Expr.num
(** Rewrite to a fixpoint ([oracle] supersedes [facts] when both are
    given). Never grows the tree. Under the default {!permissive} oracle
    it preserves the evaluated value on finite, non-degenerate inputs
    (the x/x = 1 and x*0 = 0 rules assume the evaluator's safe-division
    guard and infinities do not fire, as §4.1's sympy filtering does);
    under a sound oracle each such rule fires only when the oracle's
    bound proves its side condition on that oracle's box, and comparison
    operands are additionally restricted to bit-exact rules — a
    comparison discretizes the ulp-level perturbation of an
    up-to-rounding cancellation (or of the libm-backed cbrt/cube inverse
    pair) into a flipped guard and an arbitrarily different branch. *)

val is_simplifiable : ?facts:facts -> ?oracle:oracle -> Expr.num -> bool
(** The §4.1 enumeration filter: true when rewriting strictly reduces the
    node count (the sketch carries redundant structure). *)
