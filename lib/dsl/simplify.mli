(** Algebraic simplification — the sympy substitute (§4.1). Local
    rewriting (constant folding through the evaluator's own semantics,
    identities, cancellation through nested products/quotients, trivial
    conditionals — including guards whose two sides are equal modulo
    commutativity), plus an optional oracle for guards that interval
    reasoning proves constant. What remains of the §5.6 gap is the
    *relational* part: facts that hold only between signals (min-rtt <=
    rtt) are not representable, so Student-5-style vacuous conditionals
    stay open. *)

type facts = Expr.boolean -> [ `True | `False | `Unknown ]
(** A guard oracle: [`True]/[`False] assert the guard is constant over
    every environment of interest (see [Abg_analysis.Absint.facts]). *)

val no_facts : facts
(** The trivial oracle: every guard is [`Unknown]. *)

val equal_mod_comm : Expr.num -> Expr.num -> bool
(** Structural equality modulo commutativity of [Add]/[Mul]. IEEE [+] and
    [*] are exactly commutative, so related terms evaluate
    bit-identically. *)

val simplify : ?facts:facts -> Expr.num -> Expr.num
(** Rewrite to a fixpoint. Never grows the tree; preserves the evaluated
    value on finite, non-degenerate inputs (the x/x = 1 and x*0 = 0 rules
    assume the evaluator's safe-division guard and infinities do not
    fire, as §4.1's sympy filtering does). *)

val is_simplifiable : ?facts:facts -> Expr.num -> bool
(** The §4.1 enumeration filter: true when rewriting strictly reduces the
    node count (the sketch carries redundant structure). *)
