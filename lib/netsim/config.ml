(** Network scenario configuration.

    Matches the paper's trace-collection testbed (§3.2): a single
    bottleneck with RTTs between 10 and 100 ms and bandwidth between 5 and
    15 Mbit/s, a DropTail queue, and one bulk flow. Optional impairments
    (iid random loss, ACK-path jitter) model measurement noise. *)

type t = {
  bandwidth_bps : float;  (** bottleneck rate, bits per second *)
  rtt_prop : float;  (** two-way propagation delay, seconds *)
  queue_capacity : int;  (** DropTail buffer, packets *)
  mss : float;  (** segment size, bytes *)
  duration : float;  (** simulated seconds *)
  seed : int;  (** PRNG seed for impairments *)
  loss_rate : float;  (** iid packet drop probability at the queue *)
  ack_jitter : float;  (** stddev of Gaussian ACK-path jitter, seconds *)
}

let default =
  {
    bandwidth_bps = 10e6;
    rtt_prop = 0.05;
    queue_capacity = 60;
    mss = 1448.0;
    duration = 30.0;
    seed = 42;
    loss_rate = 0.0;
    ack_jitter = 0.0;
  }

(** Bandwidth-delay product in bytes. *)
let bdp cfg = cfg.bandwidth_bps /. 8.0 *. cfg.rtt_prop

(** Receive-window clamp, bytes: no sender can have more than this
    outstanding regardless of its congestion window — as with any real TCP
    peer's advertised window. Set to 4x the path capacity (BDP plus
    buffer), generous enough never to bind for a sane CCA while bounding
    the damage a runaway window estimate can do. *)
let rwnd cfg =
  4.0 *. (bdp cfg +. (float_of_int cfg.queue_capacity *. cfg.mss))

(** [make ~bandwidth_mbps ~rtt_ms ()] builds a scenario with a queue sized
    to 1.75x the BDP. Deep enough that BBR's PROBE_BW pulses (inflight up
    to 2.5x BDP at the probing gain) show up as *window* excursions rather
    than being clipped into loss storms — matching the clean pulse traces
    of the paper's Figure 4 — while still shallow enough that loss-based
    CCAs see regular congestion signals. *)
let make ?(duration = 30.0) ?(seed = 42) ?(loss_rate = 0.0)
    ?(ack_jitter = 0.0) ?queue_capacity ~bandwidth_mbps ~rtt_ms () =
  let bandwidth_bps = bandwidth_mbps *. 1e6 in
  let rtt_prop = rtt_ms /. 1000.0 in
  let bdp_pkts =
    int_of_float (Float.ceil (bandwidth_bps /. 8.0 *. rtt_prop /. 1448.0))
  in
  let queue_capacity =
    match queue_capacity with
    | Some q -> q
    | None -> Stdlib.max 12 (bdp_pkts * 7 / 4)
  in
  {
    bandwidth_bps;
    rtt_prop;
    queue_capacity;
    mss = 1448.0;
    duration;
    seed;
    loss_rate;
    ack_jitter;
  }

(** The diversity grid of §3.2: RTT x bandwidth combinations spanning the
    testbed ranges. [n] picks roughly [n] scenarios from the grid.

    The default 1 ms ACK-path jitter models the measurement noise any real
    vantage point exhibits; it is load-bearing for synthesis quality: with
    perfectly clean signals, "echo" handlers that reconstruct the window
    from instantaneous rate x delay fit every trace perfectly and drown
    out the structural handlers the search is after. *)
let testbed_grid ?(duration = 30.0) ?(ack_jitter = 0.001) ~n () =
  let rtts = [ 10.0; 25.0; 50.0; 75.0; 100.0 ] in
  let bws = [ 5.0; 8.0; 10.0; 12.0; 15.0 ] in
  let all =
    List.concat_map
      (fun rtt_ms ->
        List.map (fun bandwidth_mbps ->
            make ~duration ~ack_jitter
              ~seed:(int_of_float (rtt_ms +. (bandwidth_mbps *. 1000.0)))
              ~bandwidth_mbps ~rtt_ms ())
          bws)
      rtts
  in
  let total = List.length all in
  let keep = Stdlib.max 1 (Stdlib.min n total) in
  (* Evenly strided subset of the grid, so a small [n] still spans the
     full RTT x bandwidth ranges. *)
  List.filteri (fun i _ -> i * keep mod total < keep) all

(** [digest cfg] is a canonical, collision-free rendering of every field
    (floats in lossless hex notation) — the trace store's cache key, so
    two configs share a digest iff every parameter, including the seed,
    is bit-identical. *)
let digest cfg =
  Printf.sprintf "%h|%h|%d|%h|%h|%d|%h|%h" cfg.bandwidth_bps cfg.rtt_prop
    cfg.queue_capacity cfg.mss cfg.duration cfg.seed cfg.loss_rate
    cfg.ack_jitter

(** [of_digest s] parses a {!digest} rendering back into a config — the
    inverse the batch orchestrator uses to deserialize job grids. The hex
    float notation makes the round trip lossless:
    [of_digest (digest cfg) = Some cfg] for every [cfg]. *)
let of_digest s =
  match String.split_on_char '|' s with
  | [ bandwidth_bps; rtt_prop; queue_capacity; mss; duration; seed; loss_rate;
      ack_jitter ] -> (
      try
        Some
          {
            bandwidth_bps = float_of_string bandwidth_bps;
            rtt_prop = float_of_string rtt_prop;
            queue_capacity = int_of_string queue_capacity;
            mss = float_of_string mss;
            duration = float_of_string duration;
            seed = int_of_string seed;
            loss_rate = float_of_string loss_rate;
            ack_jitter = float_of_string ack_jitter;
          }
      with Failure _ -> None)
  | _ -> None

let describe cfg =
  Printf.sprintf "%.0fMbit/%.0fms/q%d" (cfg.bandwidth_bps /. 1e6)
    (cfg.rtt_prop *. 1000.0) cfg.queue_capacity
