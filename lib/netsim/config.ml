(** Network scenario configuration.

    Matches the paper's trace-collection testbed (§3.2): a single
    bottleneck with RTTs between 10 and 100 ms and bandwidth between 5 and
    15 Mbit/s, a DropTail queue, and one bulk flow. Optional impairments
    (iid random loss, ACK-path jitter) model measurement noise.

    On top of the testbed core, the adversarial-scenario search
    (DESIGN.md §12) mutates an *extended* space: cross-traffic flows
    sharing the bottleneck, piecewise bandwidth step schedules, bursty
    link outages, packet reordering, and a RED queue discipline. All
    extended knobs default to neutral values under which the simulator
    is bit-identical to the original testbed simulator. *)

(** Queue discipline at the bottleneck. [Droptail] drops only on a full
    buffer; [Red] additionally drops probabilistically as the EWMA queue
    occupancy moves between [min_th] and [max_th] packets (drop
    probability ramping linearly from 0 to [max_p], then 1 above
    [max_th]). *)
type qdisc = Droptail | Red of { min_th : int; max_th : int; max_p : float }

(** A competing flow at the bottleneck. [Constant] offers [rate_bps]
    continuously; [On_off] alternates [on_s] seconds of offering
    [rate_bps] with [off_s] seconds of silence (square-wave bursts). *)
type cross_flow =
  | Constant of { rate_bps : float }
  | On_off of { rate_bps : float; on_s : float; off_s : float }

type t = {
  bandwidth_bps : float;  (** bottleneck rate, bits per second *)
  rtt_prop : float;  (** two-way propagation delay, seconds *)
  queue_capacity : int;  (** bottleneck buffer, packets *)
  mss : float;  (** segment size, bytes *)
  duration : float;  (** simulated seconds *)
  seed : int;  (** PRNG seed for impairments *)
  loss_rate : float;  (** iid packet drop probability at the queue *)
  ack_jitter : float;  (** stddev of Gaussian ACK-path jitter, seconds *)
  bandwidth_steps : (float * float) list;
      (** piecewise bandwidth schedule: [(t, bps)] means the link rate
          becomes [bps] at simulated time [t]. Sorted ascending; empty
          means the rate is [bandwidth_bps] throughout. *)
  cross : cross_flow list;  (** competing flows at the bottleneck *)
  outage_rate : float;
      (** mean link outages per second (Poisson arrivals); 0 = none *)
  outage_duration : float;  (** seconds the link stays dark per outage *)
  reorder_prob : float;
      (** probability a delivered data packet is held back and re-injected
          [reorder_delay] later, arriving behind its successors *)
  reorder_delay : float;  (** extra one-way delay of a reordered packet *)
  qdisc : qdisc;  (** bottleneck queue discipline *)
}

let default =
  {
    bandwidth_bps = 10e6;
    rtt_prop = 0.05;
    queue_capacity = 60;
    mss = 1448.0;
    duration = 30.0;
    seed = 42;
    loss_rate = 0.0;
    ack_jitter = 0.0;
    bandwidth_steps = [];
    cross = [];
    outage_rate = 0.0;
    outage_duration = 0.0;
    reorder_prob = 0.0;
    reorder_delay = 0.0;
    qdisc = Droptail;
  }

(** Whether every extended-scenario knob sits at its neutral default —
    i.e. the config describes a plain §3.2 testbed scenario. Neutral
    configs digest identically to the pre-extension 8-field format, so
    existing trace-store keys, batch-job digests and pinned CI bytes are
    untouched. *)
let is_neutral_extension cfg =
  cfg.bandwidth_steps = [] && cfg.cross = [] && cfg.outage_rate = 0.0
  && cfg.outage_duration = 0.0 && cfg.reorder_prob = 0.0
  && cfg.reorder_delay = 0.0 && cfg.qdisc = Droptail

(** Bandwidth-delay product in bytes (at the base rate). *)
let bdp cfg = cfg.bandwidth_bps /. 8.0 *. cfg.rtt_prop

(** Receive-window clamp, bytes: no sender can have more than this
    outstanding regardless of its congestion window — as with any real TCP
    peer's advertised window. Set to 4x the path capacity (BDP plus
    buffer), generous enough never to bind for a sane CCA while bounding
    the damage a runaway window estimate can do. *)
let rwnd cfg =
  4.0 *. (bdp cfg +. (float_of_int cfg.queue_capacity *. cfg.mss))

(** [bandwidth_at cfg ~time] is the scheduled link rate at simulated
    [time]: the base rate until the first step, then the rate of the last
    step at or before [time]. *)
let bandwidth_at cfg ~time =
  List.fold_left
    (fun rate (t, bps) -> if t <= time then bps else rate)
    cfg.bandwidth_bps cfg.bandwidth_steps

(** [capacity_bytes cfg] integrates the bandwidth schedule over the full
    duration: the maximum bytes the link could carry, ignoring outages.
    The throughput-minimizing fitness normalizes against this. *)
let capacity_bytes cfg =
  let rec go t rate acc = function
    | [] -> acc +. ((cfg.duration -. t) *. rate /. 8.0)
    | (st, bps) :: rest ->
        let st = Float.min (Float.max st t) cfg.duration in
        go st bps (acc +. ((st -. t) *. rate /. 8.0)) rest
  in
  go 0.0 cfg.bandwidth_bps 0.0 cfg.bandwidth_steps

(** [make ~bandwidth_mbps ~rtt_ms ()] builds a scenario with a queue sized
    to 1.75x the BDP. Deep enough that BBR's PROBE_BW pulses (inflight up
    to 2.5x BDP at the probing gain) show up as *window* excursions rather
    than being clipped into loss storms — matching the clean pulse traces
    of the paper's Figure 4 — while still shallow enough that loss-based
    CCAs see regular congestion signals. *)
let make ?(duration = 30.0) ?(seed = 42) ?(loss_rate = 0.0)
    ?(ack_jitter = 0.0) ?queue_capacity ?(bandwidth_steps = []) ?(cross = [])
    ?(outage_rate = 0.0) ?(outage_duration = 0.0) ?(reorder_prob = 0.0)
    ?(reorder_delay = 0.0) ?(qdisc = Droptail) ~bandwidth_mbps ~rtt_ms () =
  let bandwidth_bps = bandwidth_mbps *. 1e6 in
  let rtt_prop = rtt_ms /. 1000.0 in
  let bdp_pkts =
    int_of_float (Float.ceil (bandwidth_bps /. 8.0 *. rtt_prop /. 1448.0))
  in
  let queue_capacity =
    match queue_capacity with
    | Some q -> q
    | None -> Stdlib.max 12 (bdp_pkts * 7 / 4)
  in
  {
    bandwidth_bps;
    rtt_prop;
    queue_capacity;
    mss = 1448.0;
    duration;
    seed;
    loss_rate;
    ack_jitter;
    bandwidth_steps;
    cross;
    outage_rate;
    outage_duration;
    reorder_prob;
    reorder_delay;
    qdisc;
  }

(** [rebuild] names every field positionally-by-label with no [with]
    update, so adding a field to {!t} breaks this definition — and with
    it {!perturbations} — at compile time. That is the point: the
    digest-coverage test below can then never silently miss a field. *)
let rebuild ~bandwidth_bps ~rtt_prop ~queue_capacity ~mss ~duration ~seed
    ~loss_rate ~ack_jitter ~bandwidth_steps ~cross ~outage_rate
    ~outage_duration ~reorder_prob ~reorder_delay ~qdisc =
  {
    bandwidth_bps;
    rtt_prop;
    queue_capacity;
    mss;
    duration;
    seed;
    loss_rate;
    ack_jitter;
    bandwidth_steps;
    cross;
    outage_rate;
    outage_duration;
    reorder_prob;
    reorder_delay;
    qdisc;
  }

(** [perturbations cfg] returns one variant of [cfg] per field, each
    differing from [cfg] in exactly that field. Exhaustive by
    construction: the record literal below must name every field, so a
    new field that is not given a perturbation is a compile error. The
    digest-coverage test asserts every variant digests differently. *)
let perturbations cfg =
  [
    ("bandwidth_bps", { cfg with bandwidth_bps = cfg.bandwidth_bps +. 1.0 });
    ("rtt_prop", { cfg with rtt_prop = cfg.rtt_prop +. 1e-6 });
    ("queue_capacity", { cfg with queue_capacity = cfg.queue_capacity + 1 });
    ("mss", { cfg with mss = cfg.mss +. 1.0 });
    ("duration", { cfg with duration = cfg.duration +. 1.0 });
    ("seed", { cfg with seed = cfg.seed + 1 });
    ("loss_rate", { cfg with loss_rate = cfg.loss_rate +. 1e-4 });
    ("ack_jitter", { cfg with ack_jitter = cfg.ack_jitter +. 1e-5 });
    ( "bandwidth_steps",
      { cfg with bandwidth_steps = (1.0, 5e6) :: cfg.bandwidth_steps } );
    ("cross", { cfg with cross = Constant { rate_bps = 1e6 } :: cfg.cross });
    ("outage_rate", { cfg with outage_rate = cfg.outage_rate +. 0.01 });
    ( "outage_duration",
      { cfg with outage_duration = cfg.outage_duration +. 0.05 } );
    ("reorder_prob", { cfg with reorder_prob = cfg.reorder_prob +. 0.01 });
    ("reorder_delay", { cfg with reorder_delay = cfg.reorder_delay +. 0.01 });
    ( "qdisc",
      {
        cfg with
        qdisc =
          (match cfg.qdisc with
          | Droptail -> Red { min_th = 5; max_th = 15; max_p = 0.1 }
          | Red r -> Red { r with max_p = r.max_p +. 0.01 });
      } );
  ]

(* Ensure [rebuild] participates in the exhaustiveness pact even though
   normal construction goes through [make]. *)
let _ = rebuild

(** The diversity grid of §3.2: RTT x bandwidth combinations spanning the
    testbed ranges. [n] picks roughly [n] scenarios from the grid.

    The default 1 ms ACK-path jitter models the measurement noise any real
    vantage point exhibits; it is load-bearing for synthesis quality: with
    perfectly clean signals, "echo" handlers that reconstruct the window
    from instantaneous rate x delay fit every trace perfectly and drown
    out the structural handlers the search is after. *)
let testbed_grid ?(duration = 30.0) ?(ack_jitter = 0.001) ~n () =
  let rtts = [ 10.0; 25.0; 50.0; 75.0; 100.0 ] in
  let bws = [ 5.0; 8.0; 10.0; 12.0; 15.0 ] in
  let all =
    List.concat_map
      (fun rtt_ms ->
        List.map (fun bandwidth_mbps ->
            make ~duration ~ack_jitter
              ~seed:(int_of_float (rtt_ms +. (bandwidth_mbps *. 1000.0)))
              ~bandwidth_mbps ~rtt_ms ())
          bws)
      rtts
  in
  let total = List.length all in
  let keep = Stdlib.max 1 (Stdlib.min n total) in
  (* Evenly strided subset of the grid, so a small [n] still spans the
     full RTT x bandwidth ranges. *)
  List.filteri (fun i _ -> i * keep mod total < keep) all

let steps_to_string = function
  | [] -> "-"
  | steps ->
      String.concat ";"
        (List.map (fun (t, bps) -> Printf.sprintf "%h,%h" t bps) steps)

let steps_of_string = function
  | "-" -> []
  | s ->
      List.map
        (fun part ->
          match String.split_on_char ',' part with
          | [ t; bps ] -> (float_of_string t, float_of_string bps)
          | _ -> failwith "steps")
        (String.split_on_char ';' s)

let cross_to_string = function
  | [] -> "-"
  | flows ->
      String.concat ";"
        (List.map
           (function
             | Constant { rate_bps } -> Printf.sprintf "c,%h" rate_bps
             | On_off { rate_bps; on_s; off_s } ->
                 Printf.sprintf "o,%h,%h,%h" rate_bps on_s off_s)
           flows)

let cross_of_string = function
  | "-" -> []
  | s ->
      List.map
        (fun part ->
          match String.split_on_char ',' part with
          | [ "c"; rate ] -> Constant { rate_bps = float_of_string rate }
          | [ "o"; rate; on_s; off_s ] ->
              On_off
                {
                  rate_bps = float_of_string rate;
                  on_s = float_of_string on_s;
                  off_s = float_of_string off_s;
                }
          | _ -> failwith "cross")
        (String.split_on_char ';' s)

let qdisc_to_string = function
  | Droptail -> "droptail"
  | Red { min_th; max_th; max_p } ->
      Printf.sprintf "red,%d,%d,%h" min_th max_th max_p

let qdisc_of_string = function
  | "droptail" -> Droptail
  | s -> (
      match String.split_on_char ',' s with
      | [ "red"; min_th; max_th; max_p ] ->
          Red
            {
              min_th = int_of_string min_th;
              max_th = int_of_string max_th;
              max_p = float_of_string max_p;
            }
      | _ -> failwith "qdisc")

(** [digest cfg] is a canonical, collision-free rendering of every field
    (floats in lossless hex notation) — the trace store's cache key, so
    two configs share a digest iff every parameter, including the seed,
    is bit-identical.

    Configs whose extended-scenario knobs all sit at their neutral
    defaults render in the original 8-field format, byte-identical to the
    pre-fuzz digest — preserving every persisted trace-store key, batch
    run directory and pinned CI artifact. Extended configs append a [v2]
    section covering every new field to the ULP. *)
let digest cfg =
  let base =
    Printf.sprintf "%h|%h|%d|%h|%h|%d|%h|%h" cfg.bandwidth_bps cfg.rtt_prop
      cfg.queue_capacity cfg.mss cfg.duration cfg.seed cfg.loss_rate
      cfg.ack_jitter
  in
  if is_neutral_extension cfg then base
  else
    Printf.sprintf "%s|v2|%s|%s|%h|%h|%h|%h|%s" base
      (steps_to_string cfg.bandwidth_steps)
      (cross_to_string cfg.cross)
      cfg.outage_rate cfg.outage_duration cfg.reorder_prob cfg.reorder_delay
      (qdisc_to_string cfg.qdisc)

(** [of_digest s] parses a {!digest} rendering back into a config — the
    inverse the batch orchestrator uses to deserialize job grids. The hex
    float notation makes the round trip lossless:
    [of_digest (digest cfg) = Some cfg] for every [cfg]. *)
let of_digest s =
  match String.split_on_char '|' s with
  | bandwidth_bps :: rtt_prop :: queue_capacity :: mss :: duration :: seed
    :: loss_rate :: ack_jitter :: rest -> (
      try
        let base =
          {
            default with
            bandwidth_bps = float_of_string bandwidth_bps;
            rtt_prop = float_of_string rtt_prop;
            queue_capacity = int_of_string queue_capacity;
            mss = float_of_string mss;
            duration = float_of_string duration;
            seed = int_of_string seed;
            loss_rate = float_of_string loss_rate;
            ack_jitter = float_of_string ack_jitter;
          }
        in
        match rest with
        | [] -> Some base
        | [ "v2"; steps; cross; outage_rate; outage_duration; reorder_prob;
            reorder_delay; qdisc ] ->
            Some
              {
                base with
                bandwidth_steps = steps_of_string steps;
                cross = cross_of_string cross;
                outage_rate = float_of_string outage_rate;
                outage_duration = float_of_string outage_duration;
                reorder_prob = float_of_string reorder_prob;
                reorder_delay = float_of_string reorder_delay;
                qdisc = qdisc_of_string qdisc;
              }
        | _ -> None
      with Failure _ -> None)
  | _ -> None

let describe cfg =
  let base =
    Printf.sprintf "%.0fMbit/%.0fms/q%d" (cfg.bandwidth_bps /. 1e6)
      (cfg.rtt_prop *. 1000.0) cfg.queue_capacity
  in
  if is_neutral_extension cfg then base
  else
    let parts = ref [] in
    let add s = parts := s :: !parts in
    (match cfg.qdisc with
    | Droptail -> ()
    | Red { min_th; max_th; max_p } ->
        add (Printf.sprintf "red(%d,%d,%.2f)" min_th max_th max_p));
    if cfg.reorder_prob > 0.0 then
      add
        (Printf.sprintf "ro%.1f%%/%.0fms" (cfg.reorder_prob *. 100.0)
           (cfg.reorder_delay *. 1000.0));
    if cfg.outage_rate > 0.0 then
      add
        (Printf.sprintf "out%.2f/s*%.0fms" cfg.outage_rate
           (cfg.outage_duration *. 1000.0));
    List.iter
      (function
        | Constant { rate_bps } ->
            add (Printf.sprintf "x%.1fM" (rate_bps /. 1e6))
        | On_off { rate_bps; on_s; off_s } ->
            add
              (Printf.sprintf "x%.1fM(%.1fs/%.1fs)" (rate_bps /. 1e6) on_s
                 off_s))
      cfg.cross;
    if cfg.bandwidth_steps <> [] then
      add
        (Printf.sprintf "steps%d" (List.length cfg.bandwidth_steps));
    base ^ "+" ^ String.concat "+" (List.rev !parts)
