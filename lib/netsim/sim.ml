(** Single-flow packet-level simulation of a bulk transfer through one
    bottleneck.

    The model is the standard single-bottleneck dumbbell used by the
    paper's trace-collection testbed: the sender emits fixed-size segments
    whenever the flight size is below the CCA's window; segments pass
    through a DropTail queue served at the bottleneck rate, reach the
    receiver after half the propagation RTT, and cumulative ACKs return
    after the other half (plus optional jitter). Loss is detected by three
    duplicate ACKs (with an RTO fallback), exactly the signal Abagnale's
    trace segmentation later infers from traces (§3.2).

    The queue is represented implicitly by the time the link becomes free:
    with fixed-size packets, backlog divided by serialization time is the
    queue length. This is exact for DropTail FIFO.

    The event loop is allocation-free: events are packed into a single
    immediate int (a 2-bit tag plus the integer argument), the one float
    an event carries — the ACK-triggering segment's send time — rides in
    the queue's unboxed aux channel, and the per-ACK observation record is
    a flat float record allocated once per run and mutated in place. *)

open Abg_util

(** One observation delivered to the trace-collection callback, one per
    cumulative ACK arriving at the sender.

    The record handed to [on_ack_obs] is reused across calls (it is
    rewritten in place before each delivery); copy the fields out — do not
    retain the record itself. *)
type ack_observation = {
  mutable time : float;
  mutable cwnd : float;  (** CCA's window after processing this ACK, bytes *)
  mutable in_flight : float;
      (** bytes outstanding after this ACK ("visible CWND") *)
  mutable acked_bytes : float;  (** bytes newly acknowledged *)
  mutable rtt_sample : float;  (** RTT measured from the triggering segment, s *)
}

type observer = {
  on_ack_obs : ack_observation -> unit;
  on_loss_obs : time:float -> unit;
}

let null_observer = { on_ack_obs = ignore; on_loss_obs = (fun ~time:_ -> ()) }

(* Events are packed into one immediate int: the low two bits are the
   tag, the rest the argument. An ACK arrival's argument carries the
   cumulative point and the Karn sample-validity bit (false when the
   triggering segment was ever retransmitted: such RTT samples are
   ambiguous and discarded); its send timestamp travels in the event
   queue's unboxed aux float channel. A delivery's argument carries the
   sequence number and a "late" bit marking a packet already reordered
   once (so it cannot be re-held forever). *)
let tag_deliver = 0 (* arg = (seq lsl 1) lor late *)
let tag_ack = 1 (* arg = (cum lsl 1) lor sample_ok; aux = sent_at *)
let tag_rto = 2 (* arg unused; the timer state lives on the simulator *)
let tag_cross = 3 (* arg = cross-flow index; next packet of that flow *)

let encode_deliver ?(late = false) seq =
  (((seq lsl 1) lor (if late then 1 else 0)) lsl 2) lor tag_deliver
let encode_ack ~cum ~sample_ok =
  (((cum lsl 1) lor (if sample_ok then 1 else 0)) lsl 2) lor tag_ack
let encode_rto arg = (arg lsl 2) lor tag_rto
let encode_cross idx = (idx lsl 2) lor tag_cross

type t = {
  cfg : Config.t;
  cca : Abg_cca.Cca_sig.t;
  events : int Event_queue.t;
  rng : Rng.t;
  obs : ack_observation;  (* reusable observation record, see above *)
  mutable now : float;
  (* Sender state. *)
  mutable next_seq : int;
  mutable snd_una : int;  (** lowest unacknowledged sequence number *)
  mutable dup_acks : int;
  mutable recovery_point : int;  (** next_seq at the last loss event *)
  mutable in_recovery : bool;
  mutable srtt : float;
  mutable rttvar : float;
  (* Lazy RTO timer: [rto_deadline] is where the timer conceptually sits;
     at most one RTO event lives in the queue at a time ([rto_outstanding]
     is its pop time, or [infinity] when none). Re-arming just moves the
     deadline; the queued event re-schedules itself when it pops early.
     This avoids pushing (and later popping) a stale RTO event per ACK —
     about a third of all heap traffic in steady state. *)
  mutable rto_deadline : float;
  mutable rto_outstanding : float;
  (* Per-segment send times, for RTT samples; grows with next_seq. *)
  mutable sent_at : float array;
  mutable retransmitted : bool array;
  (* Link state. *)
  mutable link_free : float;
  (* Extended-scenario state (all inert for neutral configs). The current
     serialization time tracks the bandwidth step schedule; pending steps
     are consumed in time order by the event loop. Outages are a
     precomputed sorted [(start, end)] schedule from a dedicated RNG
     stream (so they never perturb the impairment draws of the main
     stream); [outage_idx] is the next one to take effect. [avg_queue] is
     RED's EWMA occupancy estimate. *)
  mutable cur_serialize : float;
  mutable steps_pending : (float * float) list;
  cross_flows : Config.cross_flow array;
  outages : (float * float) array;
  mutable outage_idx : int;
  mutable avg_queue : float;
  mutable cross_delivered : int;
  mutable cross_dropped : int;
  (* Receiver state: [received.(seq)] once segment [seq] has arrived
     (never cleared — sequence numbers are not reused, so a flat flag
     array replaces the former out-of-order hash table). *)
  mutable received : bool array;
  mutable rcv_next : int;
  mutable rcv_high : int;  (** highest sequence number received *)
  mutable last_ack_arrival : float;  (** ACK-path FIFO ordering floor *)
  (* Counters. *)
  mutable delivered : int;
  mutable drops : int;
  mutable losses_detected : int;
  mutable events_processed : int;
}

let serialize_time cfg = cfg.Config.mss *. 8.0 /. cfg.Config.bandwidth_bps
let one_way cfg = cfg.Config.rtt_prop /. 2.0

(* The outage schedule is drawn up front from its own seeded stream:
   Poisson arrivals at [outage_rate] per second, each darkening the link
   for [outage_duration]. A separate stream keeps the main RNG's draw
   sequence (loss, jitter, RED, reordering) independent of how many
   outages happen to fall in the run. *)
let make_outages cfg =
  if cfg.Config.outage_rate <= 0.0 || cfg.Config.outage_duration <= 0.0 then
    [||]
  else begin
    let rng = Rng.create (cfg.Config.seed lxor 0x00517a6e) in
    let acc = ref [] in
    let t = ref 0.0 in
    let continue = ref true in
    while !continue do
      t := !t +. Rng.exponential rng ~rate:cfg.Config.outage_rate;
      if !t >= cfg.Config.duration then continue := false
      else acc := (!t, !t +. cfg.Config.outage_duration) :: !acc
    done;
    Array.of_list (List.rev !acc)
  end

let create cfg cca =
  {
    cfg;
    cca;
    events = Event_queue.create ~dummy:0 ();
    rng = Rng.create cfg.Config.seed;
    obs =
      { time = 0.0; cwnd = 0.0; in_flight = 0.0; acked_bytes = 0.0;
        rtt_sample = 0.0 };
    now = 0.0;
    next_seq = 0;
    snd_una = 0;
    dup_acks = 0;
    recovery_point = 0;
    in_recovery = false;
    srtt = 0.0;
    rttvar = 0.0;
    rto_deadline = infinity;
    rto_outstanding = infinity;
    sent_at = Array.make 1024 0.0;
    retransmitted = Array.make 1024 false;
    link_free = 0.0;
    received = Array.make 1024 false;
    rcv_next = 0;
    rcv_high = -1;
    last_ack_arrival = 0.0;
    delivered = 0;
    drops = 0;
    losses_detected = 0;
    events_processed = 0;
    cur_serialize = serialize_time cfg;
    steps_pending =
      List.sort (fun (a, _) (b, _) -> Float.compare a b)
        cfg.Config.bandwidth_steps;
    cross_flows = Array.of_list cfg.Config.cross;
    outages = make_outages cfg;
    outage_idx = 0;
    avg_queue = 0.0;
    cross_delivered = 0;
    cross_dropped = 0;
  }

let ensure_seq_capacity sim seq =
  let len = Array.length sim.sent_at in
  if seq >= len then begin
    let new_len = Stdlib.max (2 * len) (seq + 1) in
    let sent_at = Array.make new_len 0.0 in
    Array.blit sim.sent_at 0 sent_at 0 len;
    sim.sent_at <- sent_at;
    let retransmitted = Array.make new_len false in
    Array.blit sim.retransmitted 0 retransmitted 0 len;
    sim.retransmitted <- retransmitted;
    let received = Array.make new_len false in
    Array.blit sim.received 0 received 0 len;
    sim.received <- received
  end

let queue_length sim =
  let backlog = sim.link_free -. sim.now in
  if backlog <= 0.0 then 0
  else int_of_float (Float.ceil (backlog /. sim.cur_serialize))

(* Fold every outage that has started by [now] into the link: the link
   serves nothing until the outage ends, so the free time is floored at
   the outage's end. Packets admitted meanwhile pile up behind it —
   occupancy (and with it DropTail/RED pressure) spikes, which is the
   bufferbloat signature a real outage produces. *)
let apply_outages sim =
  let n = Array.length sim.outages in
  while
    sim.outage_idx < n && fst sim.outages.(sim.outage_idx) <= sim.now
  do
    let _, until = sim.outages.(sim.outage_idx) in
    if until > sim.link_free then sim.link_free <- until;
    sim.outage_idx <- sim.outage_idx + 1
  done

(** RED's drop probability as a pure function of the EWMA queue estimate:
    0 below [min_th], ramping linearly to [max_p] at [max_th], 1 above.
    Exposed for the monotonicity unit test. *)
let red_drop_probability ~min_th ~max_th ~max_p avg =
  let lo = float_of_int min_th and hi = float_of_int max_th in
  if avg < lo then 0.0
  else if avg >= hi then 1.0
  else max_p *. (avg -. lo) /. Float.max (hi -. lo) 1e-9

(* Queue-discipline admission test shared by the CCA flow and cross
   traffic. DropTail is the original check, byte-for-byte; RED
   additionally updates its EWMA occupancy estimate (weight 0.05) on
   every admission attempt and drops probabilistically. *)
let queue_dropped sim =
  if Array.length sim.outages > 0 then apply_outages sim;
  match sim.cfg.Config.qdisc with
  | Config.Droptail -> queue_length sim >= sim.cfg.Config.queue_capacity
  | Config.Red { min_th; max_th; max_p } ->
      let q = queue_length sim in
      sim.avg_queue <-
        sim.avg_queue +. (0.05 *. (float_of_int q -. sim.avg_queue));
      q >= sim.cfg.Config.queue_capacity
      ||
      let p = red_drop_probability ~min_th ~max_th ~max_p sim.avg_queue in
      p > 0.0 && Rng.float sim.rng < p

(* Transmit segment [seq]: qdisc admission, serialization, delivery. *)
let transmit sim seq =
  ensure_seq_capacity sim seq;
  sim.sent_at.(seq) <- sim.now;
  let dropped =
    queue_dropped sim
    || (sim.cfg.Config.loss_rate > 0.0 && Rng.float sim.rng < sim.cfg.Config.loss_rate)
  in
  if dropped then sim.drops <- sim.drops + 1
  else begin
    let start = Float.max sim.now sim.link_free in
    let departure = start +. sim.cur_serialize in
    sim.link_free <- departure;
    Event_queue.push sim.events
      ~time:(departure +. one_way sim.cfg)
      ~aux:0.0 (encode_deliver seq)
  end

let in_flight_bytes sim =
  float_of_int (sim.next_seq - sim.snd_una) *. sim.cfg.Config.mss

(* Oracle view of the receiver, standing in for SACK blocks: the sender of
   a real (SACK-enabled) stack knows which segments above snd_una arrived.
   Every seq below rcv_next has its flag set (rcv_next only advances over
   received segments), so one array read answers both cases. *)
let is_received sim seq = sim.received.(seq)

(* A segment is scored lost when it is unreceived and either carries SACK
   evidence (>= 3 segments received above its first transmission, RFC
   6675's DupThresh rule) or its latest (re)transmission is older than a
   RACK-style reordering timer. The evidence/timer requirement prevents
   spurious retransmission of segments merely still in transit, whose
   ambiguous RTT samples would poison every delay-based CCA; the timer
   makes re-dropped retransmissions recoverable without waiting for a
   full RTO per hole. *)
let scored_lost sim seq =
  let evidence = (not sim.retransmitted.(seq)) && seq <= sim.rcv_high - 3 in
  let rack_timeout = if sim.srtt > 0.0 then 1.25 *. sim.srtt else 1.0 in
  evidence || sim.now -. sim.sent_at.(seq) > rack_timeout

let retransmit_hole sim seq =
  sim.retransmitted.(seq) <- true;
  transmit sim seq

(* Transmission policy per RFC 6675 with a per-segment scoreboard:
   retransmissions of scored-lost segments take priority over new data,
   both gated on pipe < cwnd, where the pipe excludes received and
   scored-lost segments. When [force_rtx] is set (one per incoming ACK
   event during recovery, the spirit of proportional-rate reduction), the
   first retransmission goes out even if the pipe has not yet drained
   below the window. *)
let fill_window ?(force_rtx = false) sim =
  let window =
    Float.min (sim.cca.Abg_cca.Cca_sig.cwnd ()) (Config.rwnd sim.cfg)
  in
  let mss = sim.cfg.Config.mss in
  (* One scoreboard pass: pipe size and the list of repairable holes. *)
  let pipe = ref 0.0 in
  let holes = ref [] in
  if sim.in_recovery then begin
    for seq = sim.next_seq - 1 downto sim.snd_una do
      if not (is_received sim seq) then begin
        if scored_lost sim seq then holes := seq :: !holes
        else pipe := !pipe +. mss
      end
    done
  end
  else pipe := float_of_int (sim.next_seq - sim.snd_una) *. mss;
  if sim.in_recovery then begin
    (* Packet conservation during recovery: one transmission per incoming
       ACK event, repairs first. Anything more re-floods the queue that
       just overflowed and stretches the episode; anything less lets the
       ACK clock die. New data is sent only once every hole is repaired
       or in flight. *)
    let budget = ref (if force_rtx || !pipe +. mss <= window then 1 else 0) in
    while !budget > 0 do
      decr budget;
      match !holes with
      | seq :: rest ->
          holes := rest;
          retransmit_hole sim seq
      | [] ->
          transmit sim sim.next_seq;
          sim.next_seq <- sim.next_seq + 1
    done
  end
  else
    while !pipe +. mss <= window do
      transmit sim sim.next_seq;
      sim.next_seq <- sim.next_seq + 1;
      pipe := !pipe +. mss
    done

let rto sim =
  if sim.srtt = 0.0 then 1.0
  else Float.max 0.2 (sim.srtt +. (4.0 *. sim.rttvar))

(* Move the RTO deadline; only queue an event if none is in flight. The
   deadline an armed timer eventually fires at is the same float the
   eager push-per-arm scheme produced, so firing times are unchanged. *)
let arm_rto sim =
  sim.rto_deadline <- sim.now +. rto sim;
  if sim.rto_outstanding = infinity then begin
    sim.rto_outstanding <- sim.rto_deadline;
    Event_queue.push sim.events ~time:sim.rto_deadline ~aux:0.0
      (encode_rto 0)
  end

let update_rtt_estimators sim rtt =
  if sim.srtt = 0.0 then begin
    sim.srtt <- rtt;
    sim.rttvar <- rtt /. 2.0
  end
  else begin
    sim.rttvar <- (0.75 *. sim.rttvar) +. (0.25 *. Float.abs (sim.srtt -. rtt));
    sim.srtt <- (0.875 *. sim.srtt) +. (0.125 *. rtt)
  end

(* Receiver side: segment [seq] arrives; emit a cumulative ACK. *)
let receive sim seq =
  if seq > sim.rcv_high then sim.rcv_high <- seq;
  if seq >= sim.rcv_next && not sim.received.(seq) then begin
    sim.received.(seq) <- true;
    let len = Array.length sim.received in
    while sim.rcv_next < len && sim.received.(sim.rcv_next) do
      sim.rcv_next <- sim.rcv_next + 1
    done
  end;
  let jitter =
    if sim.cfg.Config.ack_jitter > 0.0 then
      Float.abs (Rng.normal sim.rng ~mean:0.0 ~stddev:sim.cfg.Config.ack_jitter)
    else 0.0
  in
  (* The ACK path is FIFO: jitter delays but never reorders, or every
     delayed ACK would masquerade as duplicate-ACK loss evidence. *)
  let arrival =
    Float.max (sim.now +. one_way sim.cfg +. jitter) sim.last_ack_arrival
  in
  sim.last_ack_arrival <- arrival;
  Event_queue.push sim.events ~time:arrival ~aux:sim.sent_at.(seq)
    (encode_ack ~cum:sim.rcv_next ~sample_ok:(not sim.retransmitted.(seq)))

let handle_loss sim observer =
  sim.losses_detected <- sim.losses_detected + 1;
  sim.cca.Abg_cca.Cca_sig.on_loss ~now:sim.now;
  observer.on_loss_obs ~time:sim.now;
  (* A loss during an ongoing episode (an RTO) must not move the episode's
     exit point to the raced-ahead next_seq, or the episode never ends. *)
  if not sim.in_recovery then begin
    sim.in_recovery <- true;
    sim.recovery_point <- sim.next_seq
  end;
  fill_window ~force_rtx:true sim

let handle_ack sim observer ~cum ~sent_at ~sample_ok =
  if cum > sim.snd_una then begin
    let newly = cum - sim.snd_una in
    sim.snd_una <- cum;
    sim.dup_acks <- 0;
    sim.delivered <- sim.delivered + newly;
    (* Karn: an RTT measured through a retransmitted segment is ambiguous;
       substitute the smoothed estimate so the CCA still sees a sane
       sample without polluting its min/max filters. *)
    let rtt =
      if sample_ok then sim.now -. sent_at
      else if sim.srtt > 0.0 then sim.srtt
      else sim.cfg.Config.rtt_prop
    in
    if sample_ok then update_rtt_estimators sim rtt;
    let acked_bytes = float_of_int newly *. sim.cfg.Config.mss in
    sim.cca.Abg_cca.Cca_sig.on_ack ~now:sim.now ~acked:acked_bytes ~rtt;
    if sim.in_recovery && cum >= sim.recovery_point then
      sim.in_recovery <- false;
    (* A partial ACK (still in recovery) keeps repairing holes. *)
    fill_window ~force_rtx:sim.in_recovery sim;
    let obs = sim.obs in
    obs.time <- sim.now;
    obs.cwnd <- sim.cca.Abg_cca.Cca_sig.cwnd ();
    obs.in_flight <- in_flight_bytes sim;
    obs.acked_bytes <- acked_bytes;
    obs.rtt_sample <- rtt;
    observer.on_ack_obs obs;
    arm_rto sim
  end
  else begin
    (* Duplicate ACK: each one shrinks the SACK pipe, possibly opening
       room for new transmissions. *)
    sim.dup_acks <- sim.dup_acks + 1;
    if sim.dup_acks = 3 && not sim.in_recovery then handle_loss sim observer
    else fill_window ~force_rtx:sim.in_recovery sim
  end

(* Delivery-side reordering: with probability [reorder_prob] a data
   packet is pulled out of line on arrival and re-injected
   [reorder_delay] later, behind whatever was delivered meanwhile. The
   "late" bit stops a packet from being re-held, so every packet arrives
   eventually. *)
let handle_deliver sim arg =
  let seq = arg lsr 1 in
  let late = arg land 1 = 1 in
  if
    (not late)
    && sim.cfg.Config.reorder_prob > 0.0
    && Rng.float sim.rng < sim.cfg.Config.reorder_prob
  then
    Event_queue.push sim.events
      ~time:(sim.now +. sim.cfg.Config.reorder_delay)
      ~aux:0.0
      (encode_deliver ~late:true seq)
  else receive sim seq

(* One cross-traffic packet of flow [idx] arrives at the bottleneck: it
   contends for the same queue (same admission test, same link
   occupancy) but terminates at the bottleneck — no delivery or ACK
   events. The flow then schedules its own next packet: back-to-back at
   [rate_bps] for constant flows; on-off flows skip ahead to the next
   on-window whenever the next slot falls in a silence. *)
let handle_cross sim idx =
  (match sim.cross_flows.(idx) with
  | Config.Constant _ | Config.On_off _ ->
      if queue_dropped sim then sim.cross_dropped <- sim.cross_dropped + 1
      else begin
        let start = Float.max sim.now sim.link_free in
        sim.link_free <- start +. sim.cur_serialize;
        sim.cross_delivered <- sim.cross_delivered + 1
      end);
  let rate_bps =
    match sim.cross_flows.(idx) with
    | Config.Constant { rate_bps } | Config.On_off { rate_bps; _ } -> rate_bps
  in
  if rate_bps > 0.0 then begin
    let dt = sim.cfg.Config.mss *. 8.0 /. rate_bps in
    let next = sim.now +. dt in
    let next =
      match sim.cross_flows.(idx) with
      | Config.Constant _ -> next
      | Config.On_off { on_s; off_s; _ } ->
          let period = on_s +. off_s in
          if period <= 0.0 || Float.rem next period < on_s then next
          else (Float.floor (next /. period) +. 1.0) *. period
    in
    if next <= sim.cfg.Config.duration then
      Event_queue.push sim.events ~time:next ~aux:0.0 (encode_cross idx)
  end

(* Consume any bandwidth steps due by [sim.now]: subsequent serializations
   (CCA and cross alike) run at the new rate; packets already on the link
   keep their departure times. *)
let rec apply_bandwidth_steps sim =
  match sim.steps_pending with
  | (t, bps) :: rest when t <= sim.now ->
      if bps > 0.0 then
        sim.cur_serialize <- sim.cfg.Config.mss *. 8.0 /. bps;
      sim.steps_pending <- rest;
      apply_bandwidth_steps sim
  | _ -> ()

let handle_rto sim observer =
  sim.rto_outstanding <- infinity;
  if sim.now < sim.rto_deadline then begin
    (* The deadline moved while this event was queued (the timer was
       re-armed by intervening ACKs); chase it instead of firing. *)
    sim.rto_outstanding <- sim.rto_deadline;
    Event_queue.push sim.events ~time:sim.rto_deadline ~aux:0.0
      (encode_rto 0)
  end
  else if sim.next_seq > sim.snd_una then begin
    (* After a timeout the RACK timer has expired for the whole
       outstanding flight, so handle_loss's scoreboard pass retransmits
       from the head. *)
    handle_loss sim observer;
    sim.dup_acks <- 0;
    arm_rto sim
  end

(** Simulation statistics returned by {!run}. *)
type stats = {
  acks_processed : int;
  packets_dropped : int;
  loss_events : int;
  final_time : float;
  delivered_bytes : float;
  cross_delivered_bytes : float;
      (** cross-traffic bytes that made it through the bottleneck *)
  cross_dropped : int;  (** cross-traffic packets the queue rejected *)
  events_processed : int;  (** events dequeued by the run loop *)
  heap_peak : int;  (** event-queue high-water mark *)
}

(* Telemetry: per-run totals added once at the end of [run] — nothing in
   the event loop itself. All deterministic: the simulator's RNG is
   seeded from the config. *)
let obs_runs = Abg_obs.Obs.Counter.make "sim.runs"
let obs_events = Abg_obs.Obs.Counter.make "sim.events"
let obs_acks = Abg_obs.Obs.Counter.make "sim.acks"
let obs_drops = Abg_obs.Obs.Counter.make "sim.drops"
let obs_losses = Abg_obs.Obs.Counter.make "sim.loss_events"

(** [run cfg cca ~observer] simulates the flow for [cfg.duration] seconds,
    invoking [observer] on every cumulative ACK and loss event, and
    returns summary statistics. *)
let run ?(observer = null_observer) cfg cca =
  let sim = create cfg cca in
  let acks = ref 0 in
  let counting_observer =
    {
      on_ack_obs =
        (fun obs ->
          incr acks;
          observer.on_ack_obs obs);
      on_loss_obs = observer.on_loss_obs;
    }
  in
  fill_window sim;
  arm_rto sim;
  (* Cross flows start contending at t=0 (on-off flows begin in their
     on-window) and self-reschedule from then on. *)
  Array.iteri
    (fun idx _ ->
      Event_queue.push sim.events ~time:0.0 ~aux:0.0 (encode_cross idx))
    sim.cross_flows;
  let stepped = sim.steps_pending <> [] in
  let events = sim.events in
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty events then continue := false
    else begin
      let code = Event_queue.pop events in
      let time = Event_queue.popped_time events in
      if time > cfg.Config.duration then continue := false
      else begin
        sim.now <- time;
        if stepped then apply_bandwidth_steps sim;
        sim.events_processed <- sim.events_processed + 1;
        let tag = code land 3 in
        let arg = code lsr 2 in
        if tag = tag_deliver then handle_deliver sim arg
        else if tag = tag_ack then
          handle_ack sim counting_observer ~cum:(arg lsr 1)
            ~sent_at:(Event_queue.popped_aux events)
            ~sample_ok:(arg land 1 = 1)
        else if tag = tag_rto then handle_rto sim counting_observer
        else handle_cross sim arg
      end
    end
  done;
  Abg_obs.Obs.Counter.incr obs_runs;
  Abg_obs.Obs.Counter.add obs_events sim.events_processed;
  Abg_obs.Obs.Counter.add obs_acks !acks;
  Abg_obs.Obs.Counter.add obs_drops sim.drops;
  Abg_obs.Obs.Counter.add obs_losses sim.losses_detected;
  {
    acks_processed = !acks;
    packets_dropped = sim.drops;
    loss_events = sim.losses_detected;
    final_time = sim.now;
    delivered_bytes = float_of_int sim.delivered *. cfg.Config.mss;
    cross_delivered_bytes = float_of_int sim.cross_delivered *. cfg.Config.mss;
    cross_dropped = sim.cross_dropped;
    events_processed = sim.events_processed;
    heap_peak = Event_queue.heap_peak sim.events;
  }
