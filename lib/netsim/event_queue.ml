(** Binary min-heap event queue for the discrete-event simulator.

    Ordered by (time, sequence-of-insertion) so simultaneous events pop in
    insertion order, which keeps runs deterministic. Since (time, id) is a
    total order, the pop sequence is exactly the sorted order of pushes —
    independent of the heap's internal layout.

    The heap is laid out as parallel unboxed arrays — [times] and [aux]
    are flat float arrays, [ids] and [payloads] int/value arrays — instead
    of an array of boxed [(float * int * 'a)] tuples. Sift compares touch
    only the float and int arrays (no pointer chasing), pushes store into
    preallocated slots, and {!pop} returns the payload directly with the
    popped time available through {!popped_time} — so with an immediate
    payload type the entire push/pop cycle allocates nothing. The [aux]
    channel carries one caller-defined float per event (the simulator uses
    it for ACK send timestamps), keeping float data out of the payload.

    [pushed]/[peak] counters are maintained for observability; the
    simulator surfaces them in its run statistics. *)

type 'a t = {
  mutable times : float array;
  mutable aux : float array;
  mutable ids : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_id : int;
  dummy : 'a;  (* fills vacated payload slots so the heap never retains them *)
  popped : float array;  (* [| time; aux |] of the most recent pop *)
  mutable pushed : int;
  mutable peak : int;
}

let create ~dummy () =
  {
    times = Array.make 64 0.0;
    aux = Array.make 64 0.0;
    ids = Array.make 64 0;
    payloads = Array.make 64 dummy;
    size = 0;
    next_id = 0;
    dummy;
    popped = [| nan; nan |];
    pushed = 0;
    peak = 0;
  }

let is_empty q = q.size = 0
let length q = q.size

(** Total pushes over the queue's lifetime. *)
let events_pushed q = q.pushed

(** High-water mark of the heap size. *)
let heap_peak q = q.peak

let grow q =
  let cap = Array.length q.times in
  let times = Array.make (2 * cap) 0.0 in
  Array.blit q.times 0 times 0 cap;
  q.times <- times;
  let aux = Array.make (2 * cap) 0.0 in
  Array.blit q.aux 0 aux 0 cap;
  q.aux <- aux;
  let ids = Array.make (2 * cap) 0 in
  Array.blit q.ids 0 ids 0 cap;
  q.ids <- ids;
  let payloads = Array.make (2 * cap) q.dummy in
  Array.blit q.payloads 0 payloads 0 cap;
  q.payloads <- payloads

(* before i j: does slot i order strictly before slot j? Indices come
   from the sift loops, which keep them below [size] <= capacity, so the
   bounds checks are elided. *)
let before q i j =
  let ti = Array.unsafe_get q.times i and tj = Array.unsafe_get q.times j in
  ti < tj
  || (ti = tj && Array.unsafe_get q.ids i < Array.unsafe_get q.ids j)

let swap q i j =
  let t = Array.unsafe_get q.times i in
  Array.unsafe_set q.times i (Array.unsafe_get q.times j);
  Array.unsafe_set q.times j t;
  let x = Array.unsafe_get q.aux i in
  Array.unsafe_set q.aux i (Array.unsafe_get q.aux j);
  Array.unsafe_set q.aux j x;
  let d = Array.unsafe_get q.ids i in
  Array.unsafe_set q.ids i (Array.unsafe_get q.ids j);
  Array.unsafe_set q.ids j d;
  let p = Array.unsafe_get q.payloads i in
  Array.unsafe_set q.payloads i (Array.unsafe_get q.payloads j);
  Array.unsafe_set q.payloads j p

(** [push q ~time ~aux payload] inserts an event. [aux] is an arbitrary
    float riding along with the payload (pass 0.0 when unused). *)
let push q ~time ~aux payload =
  if q.size = Array.length q.times then grow q;
  let i = ref q.size in
  q.times.(!i) <- time;
  q.aux.(!i) <- aux;
  q.ids.(!i) <- q.next_id;
  q.payloads.(!i) <- payload;
  q.next_id <- q.next_id + 1;
  q.size <- q.size + 1;
  q.pushed <- q.pushed + 1;
  if q.size > q.peak then q.peak <- q.size;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before q !i parent then begin
      swap q !i parent;
      i := parent
    end
    else continue := false
  done

(** [pop q] removes and returns the payload of the earliest event; its
    time and aux value are readable through {!popped_time}/{!popped_aux}
    until the next pop. The queue must be non-empty (check {!is_empty}).
    Allocation-free for immediate payload types. *)
let pop q =
  q.popped.(0) <- q.times.(0);
  q.popped.(1) <- q.aux.(0);
  let payload = q.payloads.(0) in
  let last = q.size - 1 in
  q.size <- last;
  q.times.(0) <- q.times.(last);
  q.aux.(0) <- q.aux.(last);
  q.ids.(0) <- q.ids.(last);
  q.payloads.(0) <- q.payloads.(last);
  q.payloads.(last) <- q.dummy;
  (* Sift down. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.size && before q l !smallest then smallest := l;
    if r < q.size && before q r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap q !smallest !i;
      i := !smallest
    end
    else continue := false
  done;
  payload

(** Time of the most recently popped event. *)
let popped_time q = q.popped.(0)

(** Aux value of the most recently popped event. *)
let popped_aux q = q.popped.(1)
