(** Sketch and handler scoring.

    A handler's score is its summed distance over the current segment
    subset ({!Replay.total_distance}); a sketch's score is the best score
    any of its concretizations achieves (§4.2) — that minimum is also what
    the bucket prioritization of §4.4 aggregates.

    Scoring runs on {!Replay.prepared} segments (environments, truth
    preparation and output buffer built once per segment) and prunes with
    best-so-far cutoffs. Pruning is strictly conservative: a distance is
    replaced by [infinity] only when it provably exceeds a threshold that
    already disqualifies it, so the selected handlers and their recorded
    distances are identical to exhaustive scoring. *)

open Abg_dsl

type scored = {
  sketch : Expr.num;
  handler : Expr.num;  (** best concretization found *)
  distance : float;
  completions_scored : int;
}

(* Telemetry: scoring volume, published once per sketch. Deterministic —
   the completion set is a pure function of (rng seed, sketch, pool,
   budget) and the finalist count of the coarse distances, which thread
   cutoffs deterministically. *)
let obs_sketches = Abg_obs.Obs.Counter.make "score.sketches"
let obs_completions = Abg_obs.Obs.Counter.make "score.completions"
let obs_finalists = Abg_obs.Obs.Counter.make "score.finalists"

(** [sketch_prepared rng ~dsl ~budget ?cutoff ~prepared sk] — score one
    sketch: concretize (bounded by [budget]), replay handlers, keep the
    best. Scoring is two-stage: every completion is scored coarsely on
    the first segment only, then the best few are scored on the full
    segment list. The coarse stage is a sound-enough filter because
    completions of one sketch differ only in constants, and a grossly
    wrong constant is visible on any single segment; the fine stage
    breaks remaining ties properly. A sketch with no plausible completion
    scores infinity.

    Pruning: the coarse stage abandons a completion once it provably
    cannot enter the top-[keep] (running keep-th-smallest threshold, so
    the finalist set is unchanged); the fine stage abandons once a
    completion provably cannot beat the sketch's own best so far *or*
    [cutoff] (an external incumbent, e.g. the best sketch of the bucket).
    A returned distance above [cutoff] may therefore read [infinity], but
    the minimum over sketches — all any caller aggregates — is exact. *)
let sketch_prepared rng ~(dsl : Catalog.t) ~budget ?(cutoff = infinity)
    ~prepared sk =
  let handlers =
    Concretize.completions rng sk ~pool:dsl.Catalog.constant_pool ~budget
  in
  Abg_obs.Obs.Counter.incr obs_sketches;
  Abg_obs.Obs.Counter.add obs_completions (List.length handlers);
  match (handlers, prepared) with
  | [], _ | _, [] ->
      { sketch = sk; handler = sk; distance = infinity; completions_scored = 0 }
  | _, first :: _ ->
      let keep = Stdlib.max 3 (List.length handlers / 4) in
      (* Running top-[keep] coarse distances (unsorted); the threshold is
         their maximum, i.e. the keep-th smallest seen so far. *)
      let top = Array.make keep infinity in
      let threshold () =
        let mx = ref top.(0) in
        for j = 1 to keep - 1 do
          if top.(j) > !mx then mx := top.(j)
        done;
        !mx
      in
      let offer d =
        let mi = ref 0 in
        for j = 1 to keep - 1 do
          if top.(j) > top.(!mi) then mi := j
        done;
        if d < top.(!mi) then top.(!mi) <- d
      in
      let coarse =
        List.map
          (fun h ->
            let f = Replay.compile h in
            let d = Replay.distance_prepared ~cutoff:(threshold ()) first f in
            offer d;
            (h, d, f))
          handlers
        |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
      in
      let finalists = List.filteri (fun i _ -> i < keep) coarse in
      Abg_obs.Obs.Counter.add obs_finalists (List.length finalists);
      let best_h, best_d =
        List.fold_left
          (fun (best_h, best_d) (h, _, f) ->
            let cut = if best_d < cutoff then best_d else cutoff in
            let d = Replay.total_distance_prepared ~cutoff:cut prepared f in
            if d < best_d then (h, d) else (best_h, best_d))
          (sk, infinity) finalists
      in
      {
        sketch = sk;
        handler = best_h;
        distance = best_d;
        completions_scored = List.length handlers;
      }

(** [sketch rng ~dsl ~metric ~budget ~segments sk] — one-shot form of
    {!sketch_prepared}: prepares the segments here (once per call; batch
    callers should prepare once and share). *)
let sketch rng ~(dsl : Catalog.t) ~metric ~budget ~segments sk =
  let prepared = List.map (fun seg -> Replay.prepare ~metric seg) segments in
  sketch_prepared rng ~dsl ~budget ~prepared sk

(** [handler ?metric ?cutoff ~segments h] — summed replay distance of a
    {e fixed} handler expression over [segments]: no concretization, no
    sketch machinery. Re-entrant (all replay state is call-local); this
    is what batch noise-robustness jobs use to re-score a handler
    synthesized from corrupted traces against the clean ones, and what
    report columns that compare against Table-2 handlers call. A [cutoff]
    abandons early once the sum provably exceeds it (the returned value
    is then [infinity]). *)
let handler ?metric ?cutoff ~segments h =
  let prepared = List.map (fun seg -> Replay.prepare ?metric seg) segments in
  Replay.total_distance_prepared ?cutoff prepared (Replay.compile h)
