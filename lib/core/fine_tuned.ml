(** The paper's Table 2 expressions, transcribed as DSL values.

    Two sets: the handlers Abagnale synthesized (used as regression
    references and Figure 4/5 material) and the fine-tuned handlers a
    domain expert wrote from each CCA's source (the accuracy baseline of
    §6.2 and the error-sweep subjects of Figure 3). Windows are in bytes
    here, so the paper's bare constants over packet counts (e.g. Student
    1's "88") appear scaled by MSS. *)

open Abg_dsl.Expr

let c v = Const v
let mss = Signal Abg_dsl.Signal.Mss
let acked = Signal Abg_dsl.Signal.Acked_bytes
let rtt = Signal Abg_dsl.Signal.Rtt
let min_rtt = Signal Abg_dsl.Signal.Min_rtt
let ack_rate = Signal Abg_dsl.Signal.Ack_rate
let time_since_loss = Signal Abg_dsl.Signal.Time_since_loss
let delay_gradient = Signal Abg_dsl.Signal.Delay_gradient
let wmax = Signal Abg_dsl.Signal.Wmax
let reno_inc = Macro Abg_dsl.Macro.Reno_inc
let vegas_diff = Macro Abg_dsl.Macro.Vegas_diff
let htcp_diff = Macro Abg_dsl.Macro.Htcp_diff
let rtts_since_loss = Macro Abg_dsl.Macro.Rtts_since_loss

(** Synthesized cwnd-ack handlers (Table 2, column 2). *)
let synthesized : (string * num) list =
  [
    ( "bbr",
      Add
        ( Mul (Mul (c 2.0, ack_rate), min_rtt),
          Ite (Mod_eq (Cwnd, c 2.7), Mul (c 2.05, Cwnd), mss) ) );
    ("reno", Add (Cwnd, Mul (c 0.7, reno_inc)));
    ("westwood", Add (Cwnd, reno_inc));
    ("scalable", Add (Cwnd, Mul (c 0.37, reno_inc)));
    ("lp", Add (Cwnd, Mul (c 0.68, reno_inc)));
    ("hybla", Add (Cwnd, Mul (Mul (c 8.0, rtt), reno_inc)));
    ("htcp", Add (Cwnd, reno_inc));
    ("illinois", Add (Cwnd, Mul (c 1.3, reno_inc)));
    ( "vegas",
      Add (Cwnd, Ite (Lt (vegas_diff, c 1.0), Mul (c 0.7, reno_inc), c 0.0)) );
    ( "veno",
      Add (Cwnd, Mul (reno_inc, Ite (Lt (vegas_diff, c 0.7), c 0.35, c 0.16)))
    );
    ( "nv",
      Add (Cwnd, Ite (Lt (vegas_diff, c 1.0), Mul (c 0.7, reno_inc), c 0.0)) );
    ( "yeah",
      Add (Cwnd, Mul (reno_inc, Ite (Gt (vegas_diff, c 5.0), c 0.3, c 1.0))) );
    ("cubic", Add (Cwnd, Cube time_since_loss));
    ("student1", Mul (c 88.0, mss));
    ( "student2",
      Ite
        ( Lt (Div (vegas_diff, min_rtt), c 5.0),
          Add (Cwnd, mss),
          mss ) );
    ("student3", Mul (c 0.8, Div (acked, min_rtt)));
    ("student4", mss);
    ( "student5",
      (* The paper prints the simplified [2 * mss]; the handler as written
         guards on [vegas-diff / min-rtt < 0], which no physical
         environment satisfies (rtt >= min-rtt makes vegas-diff >= 0) —
         exactly the §5.6 vacuous conditional the relational analysis is
         built to catch. Evaluates bit-identically to [2 * mss]. *)
      Ite
        ( Lt (Div (vegas_diff, min_rtt), c 0.0),
          Add (Cwnd, mss),
          Mul (c 2.0, mss) ) );
    ("student6", Div (Add (Cwnd, Mul (c 150.0, mss)), delay_gradient));
    ("student7", Add (Cwnd, Div (Mul (c 2.0, acked), rtt)));
  ]

(** Fine-tuned cwnd-ack handlers (Table 2, column 3; kernel CCAs only). *)
let fine_tuned : (string * num) list =
  [
    ( "bbr",
      Mul
        ( Mul (min_rtt, ack_rate),
          Ite (Mod_eq (rtts_since_loss, c 8.0), c 2.6, c 2.05) ) );
    ("reno", Add (Cwnd, Mul (c 0.7, reno_inc)));
    ("westwood", Add (Cwnd, Mul (c 0.68, reno_inc)));
    ("scalable", Add (Cwnd, Mul (c 0.37, reno_inc)));
    ( "lp",
      Add
        ( Mul (Cwnd, Ite (Gt (htcp_diff, c 0.5), c 0.5, c 1.0)),
          Mul (c 0.68, reno_inc) ) );
    ("hybla", Add (Cwnd, Mul (Mul (c 8.0, rtt), reno_inc)));
    ( "htcp",
      Add (Cwnd, Mul (reno_inc, Ite (Lt (htcp_diff, c 0.25), c 1.0, c 0.2))) );
    ( "illinois",
      Add
        ( Add (Cwnd, Mul (c 0.3, reno_inc)),
          Mul (Mul (c 5.0, reno_inc), htcp_diff) ) );
    ( "vegas",
      Add
        ( Cwnd,
          Ite
            ( Lt (vegas_diff, c 1.0),
              Mul (c 0.7, reno_inc),
              Ite (Gt (vegas_diff, c 5.0), Mul (c (-0.7), reno_inc), c 0.0) )
        ) );
    ( "veno",
      Add (Cwnd, Mul (reno_inc, Ite (Lt (vegas_diff, c 0.7), c 0.35, c 0.16)))
    );
    ( "nv",
      Add
        ( Cwnd,
          Ite
            ( Gt (vegas_diff, c 1.0),
              Mul (c 0.7, reno_inc),
              Ite (Gt (vegas_diff, c 5.0), Mul (c (-0.7), reno_inc), c 0.0) )
        ) );
    ( "yeah",
      Add (Cwnd, Mul (reno_inc, Ite (Gt (vegas_diff, c 5.0), c 0.3, c 1.0))) );
    ( "cubic",
      Add
        ( wmax,
          Cube
            (Sub
               ( Mul (c 8.0, time_since_loss),
                 Cbrt (Mul (c 24.0, wmax)) )) ) );
  ]

let find_synthesized name = List.assoc_opt name synthesized
let find_fine_tuned name = List.assoc_opt name fine_tuned

(** Multiply every constant in a handler by [factor] — the error injection
    of Figure 3's metric-tolerance sweep. *)
let rec scale_constants factor (e : num) : num =
  match e with
  | Const v -> Const (v *. factor)
  | Cwnd | Signal _ | Macro _ | Hole _ -> e
  | Add (a, b) -> Add (scale_constants factor a, scale_constants factor b)
  | Sub (a, b) -> Sub (scale_constants factor a, scale_constants factor b)
  | Mul (a, b) -> Mul (scale_constants factor a, scale_constants factor b)
  | Div (a, b) -> Div (scale_constants factor a, scale_constants factor b)
  | Ite (cond, t, el) ->
      Ite
        ( scale_constants_bool factor cond,
          scale_constants factor t,
          scale_constants factor el )
  | Cube a -> Cube (scale_constants factor a)
  | Cbrt a -> Cbrt (scale_constants factor a)

and scale_constants_bool factor (b : boolean) : boolean =
  match b with
  | Lt (a, b) -> Lt (scale_constants factor a, scale_constants factor b)
  | Gt (a, b) -> Gt (scale_constants factor a, scale_constants factor b)
  | Mod_eq (a, b) -> Mod_eq (scale_constants factor a, scale_constants factor b)
