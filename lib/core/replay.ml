(** Candidate-handler replay (§3.1).

    Given a trace segment collected from the ground-truth CCA, a candidate
    cwnd-ack handler is executed in simulation over the *same* sequence of
    events and congestion signals: for every ACK record, the handler
    computes a new window from the recorded signals and its own current
    window (statefulness flows only through the window). The resulting
    series is the candidate's *synthesized trace*, compared against the
    observed trace with a distance metric.

    Two write-ups of the same loop live here. The plain
    {!synthesize}/{!distance} functions are the simple one-shot API. The
    {!prepared} API is the scoring hot path: a segment's record
    environments, ground-truth preparation ({!Abg_distance.Metric.prepare})
    and output buffer are built once, after which replaying a candidate
    costs one compiled-closure call plus one field store per record —
    no allocation, no per-record environment rebuild. A [prepared] value
    contains mutable scratch (the envs and the output buffer), so each
    domain must own its own; share the immutable
    {!Abg_distance.Metric.prepared} truth across domains instead and call
    {!prepare_with} per worker. *)

open Abg_dsl

(* Keep candidate windows in a sane numeric range: a wild handler (e.g. a
   cube of a cube) must score badly, not overflow the distance
   arithmetic. *)
let cwnd_ceiling = 1e12

type compiled = Env.t -> float
(** A handler staged by {!Compile.handler}: compile once, replay many. *)

let compile = Compile.handler

(** [synthesize_compiled f segment] — the candidate's window series over
    the segment, starting from the ground truth's initial window. *)
let synthesize_compiled (f : compiled) (segment : Abg_trace.Segmentation.segment) =
  let records = segment.Abg_trace.Segmentation.records in
  let n = Array.length records in
  let out = Array.make n 0.0 in
  let cwnd = ref (Abg_trace.Record.observed_cwnd records.(0)) in
  (* One scratch environment for the whole replay (see Env mutability). *)
  let env = Env.copy Env.example in
  for i = 0 to n - 1 do
    Abg_trace.Record.load_env env records.(i) ~cwnd:!cwnd;
    (* = Float.min cwnd_ceiling v: the handler guard rules out NaN. *)
    let v = f env in
    cwnd := if v > cwnd_ceiling then cwnd_ceiling else v;
    out.(i) <- !cwnd
  done;
  out

(** [synthesize expr segment] — {!synthesize_compiled} after staging the
    handler once (rather than interpreting it per record). *)
let synthesize expr segment = synthesize_compiled (compile expr) segment

type prepared = {
  segment : Abg_trace.Segmentation.segment;
  truth : Abg_distance.Metric.prepared;
  envs : Env.t array;  (* one env per record; only [cwnd] changes per replay *)
  cwnd0 : float;
  scratch : float array;  (* synthesized series, reused across candidates *)
}

(** [prepare_with ~truth segment] builds the per-domain replay state for a
    segment against an already-prepared (shareable) ground truth. *)
let prepare_with ~truth (segment : Abg_trace.Segmentation.segment) =
  let records = segment.Abg_trace.Segmentation.records in
  let n = Array.length records in
  let envs =
    Array.init n (fun i -> Abg_trace.Record.to_env records.(i) ~cwnd:0.0)
  in
  let cwnd0 =
    if n = 0 then 0.0 else Abg_trace.Record.observed_cwnd records.(0)
  in
  { segment; truth; envs; cwnd0; scratch = Array.make n 0.0 }

(** [prepare ?metric ?length segment] — {!prepare_with} with the truth
    prepared here (once per segment, not once per candidate). *)
let prepare ?(metric = Abg_distance.Metric.default) ?length segment =
  let truth =
    Abg_distance.Metric.prepare ?length metric
      ~truth:(Abg_trace.Segmentation.observed segment)
  in
  prepare_with ~truth segment

(** [synthesize_prepared p f] replays a compiled handler over a prepared
    segment. Returns [p.scratch] — valid until the next replay on [p]. *)
let synthesize_prepared (p : prepared) (f : compiled) =
  let envs = p.envs and out = p.scratch in
  let n = Array.length envs in
  let cwnd = ref p.cwnd0 in
  for i = 0 to n - 1 do
    (* Indices are loop-bounded; unsafe access keeps the per-record cost
       to the closure call plus a handful of moves. *)
    let env = Array.unsafe_get envs i in
    env.Env.cwnd <- !cwnd;
    let v = f env in
    let v = if v > cwnd_ceiling then cwnd_ceiling else v in
    cwnd := v;
    Array.unsafe_set out i v
  done;
  out

(** [distance_prepared ?cutoff p f] — distance of a compiled candidate
    against the prepared truth of one segment. See
    {!Abg_distance.Metric.compute_prepared} for [cutoff] semantics. *)
let distance_prepared ?cutoff (p : prepared) (f : compiled) =
  let candidate = synthesize_prepared p f in
  Abg_distance.Metric.compute_prepared ?cutoff p.truth ~candidate

(** [total_distance_prepared ?cutoff ps f] — sum of per-segment distances,
    abandoning with [infinity] as soon as the running sum provably
    (strictly) exceeds [cutoff]: each segment is scored with the
    *remaining* budget [cutoff - acc], and distances are nonnegative, so
    any [infinity] below is a sound "worse than the incumbent". Results
    at or below [cutoff] are exact. *)
let total_distance_prepared ?(cutoff = infinity) ps (f : compiled) =
  let rec go acc = function
    | [] -> acc
    | p :: rest ->
        if acc > cutoff then infinity
        else go (acc +. distance_prepared ~cutoff:(cutoff -. acc) p f) rest
  in
  go 0.0 ps

(** [distance ?metric ?cutoff expr segment] — distance between the
    synthesized and observed window series of one segment. *)
let distance ?(metric = Abg_distance.Metric.default) ?cutoff expr segment =
  let truth = Abg_trace.Segmentation.observed segment in
  let candidate = synthesize expr segment in
  Abg_distance.Metric.compute ?cutoff metric ~truth ~candidate

(** [total_distance ?metric ?cutoff expr segments] — the sum used
    throughout the paper's Table 2 ("sum of DTW distances ... over the
    trace segments used to synthesize each CCA"). [cutoff] as in
    {!total_distance_prepared}. *)
let total_distance ?(metric = Abg_distance.Metric.default) ?(cutoff = infinity)
    expr segments =
  let f = compile expr in
  let rec go acc = function
    | [] -> acc
    | seg :: rest ->
        if acc > cutoff then infinity
        else
          let truth = Abg_trace.Segmentation.observed seg in
          let candidate = synthesize_compiled f seg in
          let d =
            Abg_distance.Metric.compute ~cutoff:(cutoff -. acc) metric ~truth
              ~candidate
          in
          go (acc +. d) rest
  in
  go 0.0 segments
