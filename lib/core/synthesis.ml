(** End-to-end synthesis pipeline (Figure 1).

    Traces in, expression out: segment the traces at loss events, pick a
    diverse segment subset, choose a sub-DSL (from a classifier hint or
    explicitly), and run the refinement loop. *)

open Abg_util
open Abg_dsl

type outcome = {
  cca_name : string;
  dsl_name : string;
  handler : Expr.num;
  pretty : string;
  distance : float;
  refinement : Refinement.result;
  segments_used : int;
}

(** [segments_of_traces rng ~metric ~budget traces] — segmentation plus
    the §3.2 diversity selection. Falls back to whole traces as single
    segments when no loss event ever splits them. *)
let segments_of_traces rng ~metric ~budget traces =
  let segments =
    Abg_trace.Segmentation.split_all ~min_length:30 ~skip_initial:true traces
  in
  let segments =
    if segments <> [] then segments
    else
      List.filter_map
        (fun (tr : Abg_trace.Trace.t) ->
          if Array.length tr.Abg_trace.Trace.records < 10 then None
          else
            Some
              {
                Abg_trace.Segmentation.cca_name = tr.Abg_trace.Trace.cca_name;
                scenario = tr.Abg_trace.Trace.scenario;
                start_time = tr.Abg_trace.Trace.records.(0).Abg_trace.Record.time;
                records = tr.Abg_trace.Trace.records;
              })
        traces
  in
  let distance a b = Abg_distance.Metric.compute metric ~truth:a ~candidate:b in
  let selected = Abg_trace.Sampling.select rng ~distance ~n:budget segments in
  (* The refinement loop scores a growing prefix of this list; order it by
     record count (descending) so the earliest iterations see the segments
     with the most window evolution. *)
  List.sort
    (fun a b ->
      compare
        (Abg_trace.Segmentation.length b)
        (Abg_trace.Segmentation.length a))
    selected

(** [run ?config ?dsl ~name traces] — synthesize a cwnd-ack handler from
    traces of CCA [name]. When [dsl] is omitted, the Gordon classifier
    picks the sub-DSL (§3.3). Returns [None] only if no segment yields a
    finite-distance candidate. *)
let run ?(config = Refinement.default_config) ?dsl ~name traces =
  Abg_obs.Obs.span "synth" @@ fun () ->
  let dsl =
    match dsl with
    | Some d -> d
    | None ->
        Abg_obs.Obs.span "classify" (fun () ->
            Abg_classifier.Dsl_hint.choose
              (Abg_classifier.Gordon.classify traces))
  in
  let rng = Rng.create config.Refinement.seed in
  let segments =
    Abg_obs.Obs.span "segments" (fun () ->
        segments_of_traces rng ~metric:config.Refinement.metric ~budget:8
          traces)
  in
  match Refinement.run ~config ~dsl segments with
  | None -> None
  | Some refinement ->
      Some
        {
          cca_name = name;
          dsl_name = dsl.Catalog.name;
          handler = refinement.Refinement.handler;
          pretty = Pretty.num refinement.Refinement.handler;
          distance = refinement.Refinement.distance;
          refinement;
          segments_used = List.length segments;
        }

(** [collect_and_run ?config ?dsl ?scenarios ~name constructor] —
    convenience wrapper: generate the trace suite on the §3.2 testbed grid
    and synthesize from it. *)
let collect_and_run ?config ?dsl ?(scenarios = 4) ?(duration = 20.0) ~name
    constructor =
  let traces =
    Abg_trace.Trace.collect_suite ~duration ~n:scenarios ~name constructor
  in
  run ?config ?dsl ~name traces
