(** End-to-end synthesis pipeline (Figure 1).

    Traces in, expression out: segment the traces at loss events, pick a
    diverse segment subset, choose a sub-DSL (from a classifier hint or
    explicitly), and run the refinement loop. *)

open Abg_util
open Abg_dsl

type outcome = {
  cca_name : string;
  dsl_name : string;
  handler : Expr.num;
  pretty : string;
  distance : float;
  refinement : Refinement.result;
  segments_used : int;
}

(** [segments_of_traces rng ~metric ~budget traces] — segmentation plus
    the §3.2 diversity selection. Falls back to whole traces as single
    segments when no loss event ever splits them. *)
let segments_of_traces rng ~metric ~budget traces =
  let segments =
    Abg_trace.Segmentation.split_all ~min_length:30 ~skip_initial:true traces
  in
  let segments =
    if segments <> [] then segments
    else
      List.filter_map
        (fun (tr : Abg_trace.Trace.t) ->
          if Array.length tr.Abg_trace.Trace.records < 10 then None
          else
            Some
              {
                Abg_trace.Segmentation.cca_name = tr.Abg_trace.Trace.cca_name;
                scenario = tr.Abg_trace.Trace.scenario;
                start_time = tr.Abg_trace.Trace.records.(0).Abg_trace.Record.time;
                records = tr.Abg_trace.Trace.records;
              })
        traces
  in
  let distance a b = Abg_distance.Metric.compute metric ~truth:a ~candidate:b in
  let selected = Abg_trace.Sampling.select rng ~distance ~n:budget segments in
  (* The refinement loop scores a growing prefix of this list; order it by
     record count (descending) so the earliest iterations see the segments
     with the most window evolution. *)
  List.sort
    (fun a b ->
      compare
        (Abg_trace.Segmentation.length b)
        (Abg_trace.Segmentation.length a))
    selected

(** [run ?config ?dsl ?segment_budget ~name traces] — synthesize a
    cwnd-ack handler from traces of CCA [name]. When [dsl] is omitted,
    the Gordon classifier picks the sub-DSL (§3.3). [segment_budget]
    bounds the diversity-selected segment subset (default 8, the
    paper's). Returns [None] only if no segment yields a finite-distance
    candidate.

    Re-entrant: all state (RNGs, enumerators, prune accounting) is local
    to the call, so concurrent runs — e.g. several batch jobs sharing
    the domain pool — do not perturb each other's results. *)
let run ?(config = Refinement.default_config) ?dsl ?(segment_budget = 8)
    ~name traces =
  Abg_obs.Obs.span "synth" @@ fun () ->
  let dsl =
    match dsl with
    | Some d -> d
    | None ->
        Abg_obs.Obs.span "classify" (fun () ->
            Abg_classifier.Dsl_hint.choose
              (Abg_classifier.Gordon.classify traces))
  in
  let rng = Rng.create config.Refinement.seed in
  let segments =
    Abg_obs.Obs.span "segments" (fun () ->
        segments_of_traces rng ~metric:config.Refinement.metric
          ~budget:segment_budget traces)
  in
  match Refinement.run ~config ~dsl segments with
  | None -> None
  | Some refinement ->
      Some
        {
          cca_name = name;
          dsl_name = dsl.Catalog.name;
          handler = refinement.Refinement.handler;
          pretty = Pretty.num refinement.Refinement.handler;
          distance = refinement.Refinement.distance;
          refinement;
          segments_used = List.length segments;
        }

(** [run_configs ?config ?dsl ?noise ~configs ~name constructor] — the
    batch orchestrator's entry point: collect one trace per explicit
    scenario config (through the process-wide trace store, so identical
    configs across jobs share a simulation), optionally corrupt the
    traces with a seeded noise transform, and synthesize. The result is a
    pure function of (constructor, configs, noise, config.seed). *)
let run_configs ?(config = Refinement.default_config) ?dsl ?noise ~configs
    ~name constructor =
  let traces = Abg_trace.Trace.collect_configs ~name constructor configs in
  let traces = match noise with None -> traces | Some f -> f traces in
  run ~config ?dsl ~name traces

(** [collect_and_run ?config ?dsl ?scenarios ~name constructor] —
    convenience wrapper: generate the trace suite on the §3.2 testbed grid
    and synthesize from it. *)
let collect_and_run ?config ?dsl ?(scenarios = 4) ?(duration = 20.0) ~name
    constructor =
  run_configs ?config ?dsl ~name
    ~configs:(Abg_netsim.Config.testbed_grid ~duration ~n:scenarios ())
    constructor
