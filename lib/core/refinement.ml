(** Abagnale's refinement loop — Algorithm 1 (§4.4).

    The sketch space is partitioned into buckets keyed by the exact
    operator subset a sketch uses. One persistent SAT enumerator serves
    the whole run: a bucket is selected purely via solver assumptions
    (the [used_op] pins of §4.4), its blocking clauses live in a
    retractable clause group, and dropped buckets are retired so their
    clauses are reclaimed. (The paper runs an independent Z3 instance
    per bucket; sharing one incremental solver keeps the learnt clauses
    and heuristic state across bucket switches.) Each iteration samples
    [n] sketches per surviving bucket, scores them on the current
    trace-segment subset, keeps the [k] most promising buckets,
    then grows the sample size 8x, halves [k] and adds two more segments.
    The loop ends when one bucket remains (it is then enumerated
    exhaustively) or every surviving bucket has been exhausted. The best
    handler seen at any point is retained, so an interrupted run still
    returns a result.

    Instrumentation records, per iteration, each bucket's score and rank —
    the data behind Table 4 and §6.1. *)

open Abg_util
open Abg_dsl

type config = {
  metric : Abg_distance.Metric.kind;
  initial_samples : int;  (** N in Algorithm 1; the paper uses 16 *)
  initial_keep : int;  (** k in Algorithm 1; the paper uses 5 *)
  initial_segments : int;  (** trace segments scored in iteration 1 *)
  completion_budget : int;  (** max concretizations scored per sketch *)
  max_segment_records : int;  (** replay length cap per segment *)
  max_iterations : int;
  exhaustive_cap : int;  (** bound on final exhaustive enumeration *)
  num_domains : int option;  (** parallelism; None = machine default *)
  seed : int;
  verbose : bool;  (** progress logging to stderr *)
}

let default_config =
  {
    metric = Abg_distance.Metric.default;
    initial_samples = 16;
    initial_keep = 5;
    initial_segments = 2;
    completion_budget = 24;
    max_segment_records = 500;
    max_iterations = 6;
    exhaustive_cap = 2000;
    num_domains = None;
    seed = 1;
    verbose = false;
  }

type bucket_state = {
  ops : Abg_enum.Buckets.bucket;
  mutable sketches : Expr.num list;  (** sampled so far, newest first *)
  mutable exhausted : bool;
  mutable score : float;
  mutable best : Score.scored option;
}

type iteration_report = {
  iteration : int;
  samples_per_bucket : int;
  segments_used : int;
  handlers_scored : int;
  bucket_ranking : (Abg_enum.Buckets.bucket * float) list;  (** sorted *)
  kept : Abg_enum.Buckets.bucket list;
}

type result = {
  handler : Expr.num;
  sketch : Expr.num;
  distance : float;
  iterations : iteration_report list;
  total_handlers_scored : int;
  total_sketches_scored : int;
  buckets_initial : int;
  pruned : (string * int) list;
      (** sketches rejected before simulation, per reason — read off this
          run's own (single, persistent) enumerator. Per-instance
          accounting, so the field is exact even when several refinement
          runs execute concurrently (batch jobs) or telemetry is
          disabled. With symmetry breaking on, the ["duplicate"] entry
          stays at zero: commutative duplicates are excluded inside the
          encoding rather than enumerated and folded. *)
  prune_rate : float;
      (** fraction of decoded sketches pruned before simulation *)
  solver : Abg_sat.Solver.stats;
      (** search effort of the run's persistent SAT enumerator *)
}

(* Telemetry: one span per pipeline phase, plus loop volume counters.
   [result.pruned] reads the run's own enumerator — NOT a delta of the
   process-wide telemetry counters, which would interleave arbitrarily
   when concurrent batch jobs refine at the same time. *)
let obs_iterations = Abg_obs.Obs.Counter.make "refine.iterations"
let obs_buckets_scored = Abg_obs.Obs.Counter.make "refine.buckets_scored"
let obs_candidates = Abg_obs.Obs.Counter.make "refine.candidates"

(* Long segments are thinned (stride with ACK aggregation), not truncated:
   a truncated prefix covers only a couple of RTTs of window evolution, on
   which the identity handler CWND is nearly optimal and the search
   collapses onto algebraic identities. *)
let truncate_segment max_records seg =
  Abg_trace.Segmentation.thin ~max_records seg

(* Enumerate up to [want] total sketches for a bucket (cumulative).
   Serial only: [enc] is the run's shared enumerator and is not
   domain-safe — callers run top-ups on the main domain, in bucket-array
   order, before fanning scoring out to the pool. *)
let top_up enc bucket ~want =
  let have = List.length bucket.sketches in
  let missing = want - have in
  let rec pull n acc =
    if n = 0 then acc
    else
      match Abg_enum.Encode.next ~bucket:bucket.ops enc with
      | Some sk -> pull (n - 1) (sk :: acc)
      | None ->
          bucket.exhausted <- true;
          acc
  in
  if missing > 0 then bucket.sketches <- pull missing [] @ bucket.sketches

(** [run ?config ~dsl segments] executes Algorithm 1 over the segment
    list. [segments] should already be diversity-selected ({!Abg_trace.Sampling});
    the loop consumes a growing prefix each iteration. *)
let run ?(config = default_config) ~(dsl : Catalog.t) segments =
  Abg_obs.Obs.span "refine" @@ fun () ->
  let segments =
    List.map (truncate_segment config.max_segment_records) segments
  in
  let segment_array = Array.of_list segments in
  let total_segments = Array.length segment_array in
  assert (total_segments > 0);
  (* ONE persistent enumerator for the whole run: bucket switches cost
     only a different assumption list, and the solver's learnt clauses
     and heuristic state accumulate across iterations. *)
  let enc = Abg_enum.Encode.create dsl in
  let buckets =
    Abg_enum.Buckets.all dsl
    |> List.map (fun ops ->
           {
             ops;
             sketches = [];
             exhausted = false;
             score = infinity;
             best = None;
           })
  in
  let buckets = ref (Array.of_list buckets) in
  let buckets_initial = Array.length !buckets in
  let iteration = ref 1 in
  let n = ref config.initial_samples in
  let k = ref config.initial_keep in
  let n_segments = ref (Stdlib.min config.initial_segments total_segments) in
  let reports = ref [] in
  let total_handlers = ref 0 in
  let total_sketches = ref 0 in
  (* Candidate pool: the best handler of every bucket at every iteration.
     Scores from different iterations are not comparable (each iteration
     uses a different segment subset), so the winner is decided by a final
     uniform re-scoring over all segments. *)
  let candidates : Score.scored list ref = ref [] in
  let consider (s : Score.scored) =
    if Float.is_finite s.Score.distance then begin
      Abg_obs.Obs.Counter.incr obs_candidates;
      candidates := s :: !candidates
    end
  in
  let score_bucket ~rng ~segs ~truths bucket =
    (* Score every sampled sketch of this bucket on this iteration's
       segment subset; returns the per-bucket minimum and best handler.
       The truth-side metric preparation ([truths]) is shared across all
       buckets (immutable); the replay state (mutable envs and scratch)
       is built here so each worker domain owns its own. The bucket's
       best score so far prunes later sketches — conservatively, so the
       minimum and its handler are exactly those of exhaustive scoring. *)
    let prepared =
      List.map2 (fun seg truth -> Replay.prepare_with ~truth seg) segs truths
    in
    let incumbent = ref infinity in
    let scored =
      List.map
        (fun sk ->
          let s =
            Score.sketch_prepared rng ~dsl ~budget:config.completion_budget
              ~cutoff:!incumbent ~prepared sk
          in
          if s.Score.distance < !incumbent then incumbent := s.Score.distance;
          s)
        bucket.sketches
    in
    let best =
      List.fold_left
        (fun acc s ->
          match acc with
          | None -> Some s
          | Some b -> if s.Score.distance < b.Score.distance then Some s else acc)
        None scored
    in
    let handlers =
      List.fold_left (fun acc s -> acc + s.Score.completions_scored) 0 scored
    in
    (best, handlers, List.length scored)
  in
  let log fmt =
    if config.verbose then Printf.eprintf fmt
    else Printf.ifprintf stderr fmt
  in
  let finished = ref false in
  while not !finished do
    let t_iter = Unix.gettimeofday () in
    log "[refine] iter %d: %d buckets, N=%d, %d segments\n%!" !iteration
      (Array.length !buckets) !n !n_segments;
    let segs =
      Array.to_list (Array.sub segment_array 0 !n_segments)
    in
    (* Truth-side preparation once per iteration, shared by every bucket
       and every candidate (Metric.prepared is immutable). *)
    let truths =
      List.map
        (fun seg ->
          Abg_distance.Metric.prepare config.metric
            ~truth:(Abg_trace.Segmentation.observed seg))
        segs
    in
    (* Sample up to !n sketches per surviving bucket, in parallel. *)
    let master_rng = Rng.create (config.seed + (1000 * !iteration)) in
    let worker_seeds =
      Array.map (fun _ -> Rng.int master_rng 1_000_000_000) !buckets
    in
    let want = !n in
    Abg_obs.Obs.Counter.incr obs_iterations;
    Abg_obs.Obs.Counter.add obs_buckets_scored (Array.length !buckets);
    (* Enumeration runs serially on the main domain (the shared solver is
       not domain-safe, and serial order keeps the model sequence — hence
       the whole run — deterministic); only scoring fans out. *)
    Abg_obs.Obs.span "enumerate" (fun () ->
        Array.iter (fun bucket -> top_up enc bucket ~want) !buckets);
    let outcomes =
      Abg_obs.Obs.span "iteration" @@ fun () ->
      Abg_parallel.Pool.mapi ?num_domains:config.num_domains
        (fun i bucket ->
          let rng = Rng.create worker_seeds.(i) in
          score_bucket ~rng ~segs ~truths bucket)
        !buckets
    in
    log "[refine] iter %d scored in %.1fs\n%!" !iteration
      (Unix.gettimeofday () -. t_iter);
    Array.iteri
      (fun i (best, handlers, sketches) ->
        let bucket = !buckets.(i) in
        bucket.best <- best;
        bucket.score <-
          (match best with Some b -> b.Score.distance | None -> infinity);
        total_handlers := !total_handlers + handlers;
        total_sketches := !total_sketches + sketches;
        match best with Some b -> consider b | None -> ())
      outcomes;
    (* Rank buckets by score; keep the top k (ties at the k-th score are
       all retained, per only-top-k). *)
    let ranking =
      Array.to_list !buckets
      |> List.map (fun b -> (b, b.score))
      |> List.sort (fun (_, a) (_, b) -> compare a b)
    in
    (* Strict top-k. The paper's only-top-k admits score ties beyond k,
       but distance ties here are almost always *degenerate* duplicates
       (equivalent handlers reachable in several buckets), and admitting
       them defeats the 8x/0.5x growth schedule: the bucket set stops
       shrinking while N keeps multiplying. *)
    let kept =
      List.filteri (fun i _ -> i < !k) ranking
      |> List.filter (fun (_b, s) -> (not (Float.is_nan s)) && s < infinity)
      |> List.map fst
    in
    reports :=
      {
        iteration = !iteration;
        samples_per_bucket = !n;
        segments_used = !n_segments;
        handlers_scored = !total_handlers;
        bucket_ranking = List.map (fun (b, s) -> (b.ops, s)) ranking;
        kept = List.map (fun b -> b.ops) kept;
      }
      :: !reports;
    (* Dropped buckets are never enumerated again: retire their blocking
       clauses so the solver reclaims them. *)
    Array.iter
      (fun b ->
        if not (List.memq b kept) then Abg_enum.Encode.retire_bucket enc b.ops)
      !buckets;
    let all_exhausted = List.for_all (fun b -> b.exhausted) kept in
    if kept = [] then finished := true
    else if List.length kept = 1 || all_exhausted || !iteration >= config.max_iterations
    then begin
      (* Terminal phase: exhaustively enumerate the surviving bucket(s)
         (bounded), score everything, return the best. *)
      let segs_final = segs in
      let rng = Rng.create (config.seed + 999983) in
      let t_final = Unix.gettimeofday () in
      log "[refine] terminal phase over %d bucket(s)\n%!" (List.length kept);
      Abg_obs.Obs.span "terminal" (fun () ->
          List.iter
            (fun bucket ->
              if not bucket.exhausted then
                top_up enc bucket
                  ~want:(List.length bucket.sketches + config.exhaustive_cap);
              let best, handlers, sketches =
                score_bucket ~rng ~segs:segs_final ~truths bucket
              in
              total_handlers := !total_handlers + handlers;
              total_sketches := !total_sketches + sketches;
              match best with Some b -> consider b | None -> ())
            kept);
      log "[refine] terminal phase done in %.1fs\n%!"
        (Unix.gettimeofday () -. t_final);
      finished := true
    end
    else begin
      buckets := Array.of_list kept;
      n := !n * 8;
      k := Stdlib.max 1 (!k / 2);
      n_segments := Stdlib.min total_segments (!n_segments + 2);
      incr iteration
    end
  done;
  (* Final uniform re-scoring: every candidate over the full segment
     list, deduplicated by handler. *)
  let all_segments = Array.to_list segment_array in
  let deduped =
    List.fold_left
      (fun acc (s : Score.scored) ->
        if List.exists (fun (s' : Score.scored) ->
               Abg_analysis.Canonical.equal s'.Score.handler s.Score.handler)
             acc
        then acc
        else s :: acc)
      [] !candidates
  in
  let all_prepared =
    List.map (fun seg -> Replay.prepare ~metric:config.metric seg) all_segments
  in
  (* Best-so-far cutoff: a candidate provably worse than the incumbent may
     score infinity, but every improving candidate — in particular the
     winner — gets its exact distance, so the result is unchanged. *)
  let rescore_incumbent = ref infinity in
  let rescored =
    Abg_obs.Obs.span "rescore" @@ fun () ->
    List.map
      (fun (s : Score.scored) ->
        let d =
          Replay.total_distance_prepared ~cutoff:!rescore_incumbent
            all_prepared
            (Replay.compile s.Score.handler)
        in
        if d < !rescore_incumbent then rescore_incumbent := d;
        { s with Score.distance = d })
      deduped
  in
  let winner =
    List.fold_left
      (fun acc (s : Score.scored) ->
        match acc with
        | None -> Some s
        | Some b -> if s.Score.distance < b.Score.distance then Some s else acc)
      None rescored
  in
  let pruned = Abg_enum.Encode.prune_stats enc in
  let prune_rate = Abg_enum.Encode.prune_rate enc in
  match winner with
  | None -> None
  | Some best ->
      Some
        {
          (* Concretization can leave foldable arithmetic (x * 1, c + c);
             simplify for readability as the paper does for Table 2 — under
             the relational oracle, so each cancellation's side condition
             is proven on the DSL's own signal zone rather than assumed. *)
          handler =
            Abg_analysis.Relint.simplify
              (Abg_analysis.Relint.for_dsl dsl)
              best.Score.handler;
          sketch = best.Score.sketch;
          distance = best.Score.distance;
          iterations = List.rev !reports;
          total_handlers_scored = !total_handlers;
          total_sketches_scored = !total_sketches;
          buckets_initial;
          pruned;
          prune_rate;
          solver = Abg_enum.Encode.solver_stats enc;
        }

(** [bucket_rank_of result ~target ~iteration] — the §6.2 instrumentation:
    the 1-based rank of [target]'s bucket in the given iteration's
    ranking, with the number of buckets ranked, or [None] if that bucket
    was no longer in play. *)
let bucket_rank_of (result : result) ~target ~iteration =
  let target_bucket = Abg_enum.Buckets.of_sketch target in
  match List.nth_opt result.iterations (iteration - 1) with
  | None -> None
  | Some report ->
      let ranking = report.bucket_ranking in
      let rec find i = function
        | [] -> None
        | (ops, _) :: rest ->
            if Abg_enum.Buckets.equal ops target_bucket then Some i
            else find (i + 1) rest
      in
      Option.map (fun r -> (r, List.length ranking)) (find 1 ranking)
